//! Word-level to bit-level lowering (bit-blasting).
//!
//! [`SeqAig`] is the transition-relation view of a [`Module`]: a purely
//! combinational AIG whose inputs are the module's input-port bits plus the
//! current-state bits, and whose distinguished literals give the next-state
//! functions, output-port bits, and the value of every word-level node.
//! The bounded model checker unrolls this structure frame by frame.

use crate::graph::{Aig, AigLit};
use autocc_hdl::{BinOp, MemId, Module, Node, RegId};

/// Where a flattened state bit lives in the original module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateSource {
    /// Bit `bit` of a register.
    Reg {
        /// The register.
        reg: RegId,
        /// Bit index (0 = LSB).
        bit: u32,
    },
    /// Bit `bit` of word `word` of a memory.
    MemWord {
        /// The memory.
        mem: MemId,
        /// Word index.
        word: usize,
        /// Bit index (0 = LSB).
        bit: u32,
    },
}

/// Metadata for one flattened state bit.
#[derive(Clone, Debug)]
pub struct StateBitInfo {
    /// Human-readable name, e.g. `pc[3]` or `ram[2][5]`.
    pub name: String,
    /// Source state element.
    pub source: StateSource,
}

/// Bit-blasted transition relation of a module.
///
/// AIG inputs are created in a fixed order: first every input-port bit
/// (ports in declaration order, LSB first), then every state bit in
/// [`SeqAig::state_info`] order. [`Aig::eval`] consumers must respect it.
#[derive(Debug)]
pub struct SeqAig {
    /// The combinational graph.
    pub aig: Aig,
    /// Per input port: the AIG literals of its bits (LSB first).
    pub input_lits: Vec<Vec<AigLit>>,
    /// Current-state bits (AIG inputs), flattened.
    pub state_cur: Vec<AigLit>,
    /// Next-state functions, aligned with `state_cur`.
    pub state_next: Vec<AigLit>,
    /// Reset value of each state bit.
    pub state_init: Vec<bool>,
    /// Name and source of each state bit.
    pub state_info: Vec<StateBitInfo>,
    /// Per output port: the AIG literals of its bits (LSB first).
    pub output_lits: Vec<Vec<AigLit>>,
    /// Per word-level node: its bits, for trace extraction and for building
    /// monitor properties over internal signals.
    pub node_lits: Vec<Vec<AigLit>>,
}

impl SeqAig {
    /// Bit-blasts `module` into a transition-relation AIG.
    pub fn from_module(module: &Module) -> SeqAig {
        Blaster::new(module).run()
    }

    /// Total number of AIG input bits (ports plus state).
    pub fn num_aig_inputs(&self) -> usize {
        self.aig.num_inputs()
    }

    /// Number of input-port bits (the AIG inputs preceding the state bits).
    pub fn num_port_bits(&self) -> usize {
        self.input_lits.iter().map(Vec::len).sum()
    }
}

struct Blaster<'m> {
    module: &'m Module,
    aig: Aig,
    input_lits: Vec<Vec<AigLit>>,
    state_cur: Vec<AigLit>,
    state_init: Vec<bool>,
    state_info: Vec<StateBitInfo>,
    /// Current-value bits of each register.
    reg_cur: Vec<Vec<AigLit>>,
    /// Current-value bits of each memory word: `mem_cur[mem][word]`.
    mem_cur: Vec<Vec<Vec<AigLit>>>,
    node_lits: Vec<Vec<AigLit>>,
}

impl<'m> Blaster<'m> {
    fn new(module: &'m Module) -> Blaster<'m> {
        Blaster {
            module,
            aig: Aig::new(),
            input_lits: Vec::new(),
            state_cur: Vec::new(),
            state_init: Vec::new(),
            state_info: Vec::new(),
            reg_cur: Vec::new(),
            mem_cur: Vec::new(),
            node_lits: Vec::new(),
        }
    }

    fn run(mut self) -> SeqAig {
        // 1. Input-port bits, in declaration order.
        for port in self.module.inputs() {
            let bits: Vec<AigLit> = (0..port.width).map(|_| self.aig.input()).collect();
            self.input_lits.push(bits);
        }
        // 2. State bits: registers then memory words.
        for (ri, reg) in self.module.regs().iter().enumerate() {
            let mut bits = Vec::with_capacity(reg.width as usize);
            for b in 0..reg.width {
                let lit = self.aig.input();
                bits.push(lit);
                self.state_cur.push(lit);
                self.state_init.push(reg.init.get_bit(b));
                self.state_info.push(StateBitInfo {
                    name: format!("{}[{b}]", reg.name),
                    source: StateSource::Reg {
                        reg: reg_id(ri),
                        bit: b,
                    },
                });
            }
            self.reg_cur.push(bits);
        }
        for (mi, mem) in self.module.mems().iter().enumerate() {
            let mut words = Vec::with_capacity(mem.depth);
            for w in 0..mem.depth {
                let mut bits = Vec::with_capacity(mem.width as usize);
                for b in 0..mem.width {
                    let lit = self.aig.input();
                    bits.push(lit);
                    self.state_cur.push(lit);
                    self.state_init.push(mem.init[w].get_bit(b));
                    self.state_info.push(StateBitInfo {
                        name: format!("{}[{w}][{b}]", mem.name),
                        source: StateSource::MemWord {
                            mem: mem_id(mi),
                            word: w,
                            bit: b,
                        },
                    });
                }
                words.push(bits);
            }
            self.mem_cur.push(words);
        }

        // 3. Combinational nodes, in creation order (operands precede users).
        for node in self.module.nodes() {
            let bits = self.blast_node(node);
            self.node_lits.push(bits);
        }

        // 4. Next-state functions.
        let mut state_next = Vec::with_capacity(self.state_cur.len());
        for reg in self.module.regs() {
            let next = reg.next.expect("validated module");
            for b in 0..reg.width as usize {
                state_next.push(self.node_lits[next.index()][b]);
            }
        }
        for (mi, mem) in self.module.mems().iter().enumerate() {
            for w in 0..mem.depth {
                let mut word = self.mem_cur[mi][w].clone();
                for port in &mem.writes {
                    let en = self.node_lits[port.en.index()][0];
                    let hit = self.addr_eq(port.addr.index(), w as u64);
                    let cond = self.aig.and(en, hit);
                    let data = self.node_lits[port.data.index()].clone();
                    for (bit, d) in word.iter_mut().zip(data) {
                        *bit = self.aig.mux(cond, d, *bit);
                    }
                }
                state_next.extend(word);
            }
        }

        // 5. Output ports.
        let output_lits = self
            .module
            .outputs()
            .iter()
            .map(|o| self.node_lits[o.node.index()].clone())
            .collect();

        SeqAig {
            aig: self.aig,
            input_lits: self.input_lits,
            state_cur: self.state_cur,
            state_next,
            state_init: self.state_init,
            state_info: self.state_info,
            output_lits,
            node_lits: self.node_lits,
        }
    }

    /// 1-bit condition `node == value` where `node` is a word-level node
    /// index already blasted.
    fn addr_eq(&mut self, node_index: usize, value: u64) -> AigLit {
        let bits = self.node_lits[node_index].clone();
        if bits.len() < 64 && value >= 1u64 << bits.len() {
            return AigLit::FALSE;
        }
        let mut acc = AigLit::TRUE;
        for (i, &b) in bits.iter().enumerate() {
            let want = value >> i & 1 == 1;
            let m = if want { b } else { !b };
            acc = self.aig.and(acc, m);
        }
        acc
    }

    fn blast_node(&mut self, node: &Node) -> Vec<AigLit> {
        match node {
            Node::Input { port } => self.input_lits[*port].clone(),
            Node::Const(bv) => (0..bv.width())
                .map(|b| {
                    if bv.get_bit(b) {
                        AigLit::TRUE
                    } else {
                        AigLit::FALSE
                    }
                })
                .collect(),
            Node::Not(a) => self.node_lits[a.index()].iter().map(|&l| !l).collect(),
            Node::Binary { op, a, b } => {
                let x = self.node_lits[a.index()].clone();
                let y = self.node_lits[b.index()].clone();
                match op {
                    BinOp::And => self.zip(&x, &y, Aig::and),
                    BinOp::Or => self.zip(&x, &y, Aig::or),
                    BinOp::Xor => self.zip(&x, &y, Aig::xor),
                    BinOp::Add => self.adder(&x, &y, AigLit::FALSE, false),
                    BinOp::Sub => {
                        let ny: Vec<AigLit> = y.iter().map(|&l| !l).collect();
                        self.adder(&x, &ny, AigLit::TRUE, false)
                    }
                    BinOp::Eq => {
                        let eqs = self.zip(&x, &y, Aig::xnor);
                        vec![self.aig.and_all(&eqs)]
                    }
                    BinOp::Ult => vec![self.borrow_out(&x, &y)],
                    BinOp::Shl => self.barrel(&x, &y, true),
                    BinOp::Shr => self.barrel(&x, &y, false),
                }
            }
            Node::Mux { sel, t, e } => {
                let s = self.node_lits[sel.index()][0];
                let tv = self.node_lits[t.index()].clone();
                let ev = self.node_lits[e.index()].clone();
                tv.iter()
                    .zip(&ev)
                    .map(|(&tb, &eb)| self.aig.mux(s, tb, eb))
                    .collect()
            }
            Node::Slice { a, hi, lo } => {
                self.node_lits[a.index()][*lo as usize..=*hi as usize].to_vec()
            }
            Node::Concat { hi, lo } => {
                let mut bits = self.node_lits[lo.index()].clone();
                bits.extend_from_slice(&self.node_lits[hi.index()]);
                bits
            }
            Node::Zext { a, width } => {
                let mut bits = self.node_lits[a.index()].clone();
                bits.resize(*width as usize, AigLit::FALSE);
                bits
            }
            Node::Sext { a, width } => {
                let mut bits = self.node_lits[a.index()].clone();
                let sign = *bits.last().expect("non-empty");
                bits.resize(*width as usize, sign);
                bits
            }
            Node::ReduceOr(a) => {
                let bits = self.node_lits[a.index()].clone();
                vec![self.aig.or_all(&bits)]
            }
            Node::ReduceAnd(a) => {
                let bits = self.node_lits[a.index()].clone();
                vec![self.aig.and_all(&bits)]
            }
            Node::ReduceXor(a) => {
                let bits = self.node_lits[a.index()].clone();
                let mut acc = AigLit::FALSE;
                for &b in &bits {
                    acc = self.aig.xor(acc, b);
                }
                vec![acc]
            }
            Node::RegOut(r) => self.reg_cur[r.index()].clone(),
            Node::MemRead { mem, addr } => {
                let mi = mem.index();
                let width = self.module.mems()[mi].width as usize;
                let depth = self.module.mems()[mi].depth;
                let mut result = vec![AigLit::FALSE; width];
                for w in 0..depth {
                    let hit = self.addr_eq(addr.index(), w as u64);
                    let word = self.mem_cur[mi][w].clone();
                    for (r, &bit) in result.iter_mut().zip(&word) {
                        let sel = self.aig.and(hit, bit);
                        *r = self.aig.or(*r, sel);
                    }
                }
                result
            }
        }
    }

    fn zip(
        &mut self,
        x: &[AigLit],
        y: &[AigLit],
        f: fn(&mut Aig, AigLit, AigLit) -> AigLit,
    ) -> Vec<AigLit> {
        x.iter()
            .zip(y)
            .map(|(&a, &b)| f(&mut self.aig, a, b))
            .collect()
    }

    /// Ripple-carry adder; returns sum bits, optionally appending carry-out.
    fn adder(
        &mut self,
        x: &[AigLit],
        y: &[AigLit],
        carry_in: AigLit,
        keep_carry: bool,
    ) -> Vec<AigLit> {
        let mut carry = carry_in;
        let mut sum = Vec::with_capacity(x.len() + keep_carry as usize);
        for (&a, &b) in x.iter().zip(y) {
            let axb = self.aig.xor(a, b);
            let s = self.aig.xor(axb, carry);
            let c1 = self.aig.and(a, b);
            let c2 = self.aig.and(carry, axb);
            carry = self.aig.or(c1, c2);
            sum.push(s);
        }
        if keep_carry {
            sum.push(carry);
        }
        sum
    }

    /// Borrow-out of `x - y`, i.e. the 1-bit result of `x < y` (unsigned).
    fn borrow_out(&mut self, x: &[AigLit], y: &[AigLit]) -> AigLit {
        let mut borrow = AigLit::FALSE;
        for (&a, &b) in x.iter().zip(y) {
            let direct = self.aig.and(!a, b);
            let same = self.aig.xnor(a, b);
            let chain = self.aig.and(same, borrow);
            borrow = self.aig.or(direct, chain);
        }
        borrow
    }

    /// Barrel shifter; `left` selects shift direction.
    fn barrel(&mut self, x: &[AigLit], amount: &[AigLit], left: bool) -> Vec<AigLit> {
        let width = x.len();
        let mut value = x.to_vec();
        let mut overflow = AigLit::FALSE;
        for (j, &sh_bit) in amount.iter().enumerate() {
            let step = 1usize.checked_shl(j as u32).unwrap_or(usize::MAX);
            if step >= width {
                overflow = self.aig.or(overflow, sh_bit);
                continue;
            }
            let shifted: Vec<AigLit> = (0..width)
                .map(|i| {
                    let src = if left {
                        i.checked_sub(step)
                    } else {
                        let s = i + step;
                        (s < width).then_some(s)
                    };
                    src.map_or(AigLit::FALSE, |s| value[s])
                })
                .collect();
            value = value
                .iter()
                .zip(&shifted)
                .map(|(&v, &s)| self.aig.mux(sh_bit, s, v))
                .collect();
        }
        value.iter().map(|&v| self.aig.and(v, !overflow)).collect()
    }
}

fn reg_id(index: usize) -> RegId {
    RegId::from_index(index)
}

fn mem_id(index: usize) -> MemId {
    MemId::from_index(index)
}
