//! Tseitin encoding of AIG frames into the SAT solver.
//!
//! The bounded model checker instantiates the transition-relation AIG once
//! per time step ("frame"). [`FrameMap`] lazily encodes only the cone of
//! influence of the literals actually requested — next-state functions,
//! checked outputs, and the property — which keeps unrolled formulas small.

use crate::graph::{Aig, AigLit, AigNode};
use autocc_sat::{Lit, Solver};

/// SAT-literal assignment for one time frame of an AIG.
pub struct FrameMap {
    /// SAT literal per AIG node, `None` until encoded.
    lits: Vec<Option<Lit>>,
    /// A SAT literal constrained true, used for constant AIG literals.
    const_true: Lit,
}

impl FrameMap {
    /// Creates a frame over `aig` whose input nodes take the given SAT
    /// literals, in AIG-input creation order.
    ///
    /// `const_true` must be a literal already constrained to true in the
    /// solver (see [`assert_true_lit`]).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the AIG's input count.
    pub fn new(aig: &Aig, inputs: &[Lit], const_true: Lit) -> FrameMap {
        assert_eq!(inputs.len(), aig.num_inputs(), "frame input arity mismatch");
        let mut lits = vec![None; aig.num_nodes()];
        lits[0] = Some(!const_true); // constant-false node
        let mut next_input = 0;
        for (i, node) in aig.nodes().iter().enumerate() {
            if matches!(node, AigNode::Input) {
                lits[i] = Some(inputs[next_input]);
                next_input += 1;
            }
        }
        FrameMap { lits, const_true }
    }

    /// Returns the SAT literal for `lit`, Tseitin-encoding its cone of
    /// influence into `solver` on first use.
    pub fn sat_lit(&mut self, solver: &mut Solver, aig: &Aig, lit: AigLit) -> Lit {
        let base = self.encode_node(solver, aig, lit.node());
        if lit.inverted() {
            !base
        } else {
            base
        }
    }

    fn encode_node(&mut self, solver: &mut Solver, aig: &Aig, node: usize) -> Lit {
        if let Some(l) = self.lits[node] {
            return l;
        }
        // Iterative DFS to avoid recursion depth limits on deep logic cones.
        let mut stack = vec![node];
        while let Some(&n) = stack.last() {
            if self.lits[n].is_some() {
                stack.pop();
                continue;
            }
            let AigNode::And(a, b) = aig.nodes()[n] else {
                unreachable!("inputs and constants are pre-seeded");
            };
            let need_a = self.lits[a.node()].is_none();
            let need_b = self.lits[b.node()].is_none();
            if need_a {
                stack.push(a.node());
            }
            if need_b {
                stack.push(b.node());
            }
            if need_a || need_b {
                continue;
            }
            stack.pop();
            let la = self.lit_of(a);
            let lb = self.lit_of(b);
            let v = solver.new_var().positive();
            // v <-> la ∧ lb
            solver.add_clause(&[!v, la]);
            solver.add_clause(&[!v, lb]);
            solver.add_clause(&[v, !la, !lb]);
            self.lits[n] = Some(v);
        }
        self.lits[node].expect("just encoded")
    }

    fn lit_of(&self, lit: AigLit) -> Lit {
        let base = self.lits[lit.node()].expect("operand encoded");
        if lit.inverted() {
            !base
        } else {
            base
        }
    }

    /// The always-true literal of this frame's solver context.
    pub fn const_true(&self) -> Lit {
        self.const_true
    }
}

/// Allocates and constrains a SAT literal to true; share it across frames.
pub fn assert_true_lit(solver: &mut Solver) -> Lit {
    let t = solver.new_var().positive();
    solver.add_clause(&[t]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_sat::SolveResult;

    /// Encode a full adder and check all input combinations via SAT.
    #[test]
    fn tseitin_matches_eval() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let cin = aig.input();
        let axb = aig.xor(a, b);
        let sum = aig.xor(axb, cin);
        let c1 = aig.and(a, b);
        let c2 = aig.and(cin, axb);
        let cout = aig.or(c1, c2);

        for bits in 0..8u32 {
            let (va, vb, vc) = (bits & 1 == 1, bits & 2 == 2, bits & 4 == 4);
            let mut solver = Solver::new();
            let t = assert_true_lit(&mut solver);
            let ins: Vec<Lit> = (0..3).map(|_| solver.new_var().positive()).collect();
            let mut frame = FrameMap::new(&aig, &ins, t);
            let s_lit = frame.sat_lit(&mut solver, &aig, sum);
            let c_lit = frame.sat_lit(&mut solver, &aig, cout);

            let mut assum = vec![
                if va { ins[0] } else { !ins[0] },
                if vb { ins[1] } else { !ins[1] },
                if vc { ins[2] } else { !ins[2] },
            ];
            let expect_sum = va ^ vb ^ vc;
            let expect_cout = (va && vb) || (vc && (va ^ vb));
            assum.push(if expect_sum { s_lit } else { !s_lit });
            assum.push(if expect_cout { c_lit } else { !c_lit });
            assert_eq!(solver.solve_with(&assum), SolveResult::Sat, "bits={bits}");
            // And the complement must be unsatisfiable.
            let bad = vec![
                if va { ins[0] } else { !ins[0] },
                if vb { ins[1] } else { !ins[1] },
                if vc { ins[2] } else { !ins[2] },
                if expect_sum { !s_lit } else { s_lit },
            ];
            assert_eq!(solver.solve_with(&bad), SolveResult::Unsat, "bits={bits}");
        }
    }

    #[test]
    fn constants_encode_correctly() {
        let aig = Aig::new();
        let mut solver = Solver::new();
        let t = assert_true_lit(&mut solver);
        let mut frame = FrameMap::new(&aig, &[], t);
        let f_lit = frame.sat_lit(&mut solver, &aig, AigLit::FALSE);
        let t_lit = frame.sat_lit(&mut solver, &aig, AigLit::TRUE);
        assert_eq!(solver.solve_with(&[t_lit]), SolveResult::Sat);
        assert_eq!(solver.solve_with(&[f_lit]), SolveResult::Unsat);
    }
}
