//! Sequential cone-of-influence (COI) reduction.
//!
//! Given a set of root literals (properties and constraints), the COI is
//! the set of input-port bits and state bits the roots transitively read —
//! through combinational logic *and* through the sequential next-state
//! functions. Everything outside the cone can be dropped from a bounded
//! model checking encoding without changing any check outcome: out-of-cone
//! state can never influence a root's value at any cycle.
//!
//! This is the slicing step JasperGold performs per property before
//! dispatching its engines; here it lets the portfolio scheduler hand each
//! property a model containing only what that property needs.

use crate::blast::SeqAig;
use crate::graph::{AigLit, AigNode};

/// The sequential cone of influence of a set of root literals.
#[derive(Clone, Debug)]
pub struct SeqCoi {
    /// Per flattened state bit (in [`SeqAig::state_info`] order): whether
    /// the bit is inside the cone.
    pub state_keep: Vec<bool>,
    /// Per flattened input-port bit (ports in declaration order, LSB
    /// first): whether the bit is inside the cone.
    pub port_keep: Vec<bool>,
}

impl SeqCoi {
    /// Number of state bits inside the cone.
    pub fn num_kept_state(&self) -> usize {
        self.state_keep.iter().filter(|&&k| k).count()
    }

    /// Number of input-port bits inside the cone.
    pub fn num_kept_ports(&self) -> usize {
        self.port_keep.iter().filter(|&&k| k).count()
    }

    /// True when slicing removed nothing (the cone covers the whole model).
    pub fn keeps_all(&self) -> bool {
        self.state_keep.iter().all(|&k| k) && self.port_keep.iter().all(|&k| k)
    }

    /// Total bits (state + input-port) inside the cone.
    pub fn num_kept_bits(&self) -> usize {
        self.num_kept_state() + self.num_kept_ports()
    }

    /// Grows this cone to also cover everything `other` covers.
    ///
    /// Both cones must come from the same [`SeqAig`] (same bit layout);
    /// mismatched lengths panic.
    pub fn union_with(&mut self, other: &SeqCoi) {
        assert_eq!(self.state_keep.len(), other.state_keep.len());
        assert_eq!(self.port_keep.len(), other.port_keep.len());
        for (k, o) in self.state_keep.iter_mut().zip(&other.state_keep) {
            *k |= *o;
        }
        for (k, o) in self.port_keep.iter_mut().zip(&other.port_keep) {
            *k |= *o;
        }
    }

    /// Jaccard overlap of two cones over the combined state + port bit
    /// sets: `|A ∩ B| / |A ∪ B|`. Two empty cones overlap fully (1.0).
    pub fn jaccard(&self, other: &SeqCoi) -> f64 {
        assert_eq!(self.state_keep.len(), other.state_keep.len());
        assert_eq!(self.port_keep.len(), other.port_keep.len());
        let mut inter = 0usize;
        let mut union = 0usize;
        let bits = self
            .state_keep
            .iter()
            .zip(&other.state_keep)
            .chain(self.port_keep.iter().zip(&other.port_keep));
        for (&a, &b) in bits {
            if a || b {
                union += 1;
                if a && b {
                    inter += 1;
                }
            }
        }
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }
}

/// A group of properties whose sequential cones overlap enough to be
/// sliced and bit-blasted as one sub-model.
#[derive(Clone, Debug)]
pub struct ConeCluster {
    /// Indices into the cone slice handed to [`cluster_cones`] (i.e. the
    /// caller's property ordinals), in ascending order.
    pub members: Vec<usize>,
    /// Union cone of every member — the slice the cluster is checked
    /// under.
    pub cone: SeqCoi,
}

impl ConeCluster {
    /// State + port bits of the cluster's union cone.
    pub fn cone_bits(&self) -> usize {
        self.cone.num_kept_bits()
    }
}

/// Groups per-property cones into clusters by Jaccard overlap.
///
/// Greedy first-fit in input order: each cone joins the first existing
/// cluster whose *union* cone overlaps it by at least `overlap`
/// (Jaccard), else it opens a new cluster. The pass is deterministic —
/// cluster membership depends only on the input order and the threshold —
/// so downstream content keys and schedules are stable across runs.
///
/// `overlap` is clamped to `[0, 1]`. At `0.0` every cone joins the first
/// cluster (one cluster total); at `1.0` only identical cones share a
/// cluster.
pub fn cluster_cones(cones: &[SeqCoi], overlap: f64) -> Vec<ConeCluster> {
    let overlap = overlap.clamp(0.0, 1.0);
    let mut clusters: Vec<ConeCluster> = Vec::new();
    for (i, cone) in cones.iter().enumerate() {
        let slot = clusters
            .iter()
            .position(|c| c.cone.jaccard(cone) >= overlap);
        match slot {
            Some(s) => {
                clusters[s].members.push(i);
                clusters[s].cone.union_with(cone);
            }
            None => clusters.push(ConeCluster {
                members: vec![i],
                cone: cone.clone(),
            }),
        }
    }
    clusters
}

/// Computes the sequential COI of `roots` over `seq`.
///
/// The computation is a fixpoint: the combinational support of the roots
/// seeds the cone; every state bit that enters the cone adds its
/// next-state function's support, until no new state bit appears.
pub fn sequential_coi(seq: &SeqAig, roots: &[AigLit]) -> SeqCoi {
    let aig = &seq.aig;
    let num_state = seq.state_cur.len();

    // Map AIG node index -> state bit / port bit ordinal.
    let mut state_of_node = vec![usize::MAX; aig.num_nodes()];
    for (j, lit) in seq.state_cur.iter().enumerate() {
        state_of_node[lit.node()] = j;
    }
    let mut port_of_node = vec![usize::MAX; aig.num_nodes()];
    let mut num_ports = 0;
    for (k, lit) in seq.input_lits.iter().flatten().enumerate() {
        port_of_node[lit.node()] = k;
        num_ports = k + 1;
    }

    let mut visited = vec![false; aig.num_nodes()];
    let mut state_keep = vec![false; num_state];
    let mut port_keep = vec![false; num_ports];
    // Roots still to traverse; grows as state bits enter the cone.
    let mut pending: Vec<AigLit> = roots.to_vec();
    let mut stack: Vec<usize> = Vec::new();

    while let Some(root) = pending.pop() {
        stack.push(root.node());
        while let Some(n) = stack.pop() {
            if visited[n] {
                continue;
            }
            visited[n] = true;
            match aig.nodes()[n] {
                AigNode::False => {}
                AigNode::Input => {
                    if state_of_node[n] != usize::MAX {
                        let j = state_of_node[n];
                        state_keep[j] = true;
                        // The bit's next-state function joins the cone.
                        pending.push(seq.state_next[j]);
                    } else if port_of_node[n] != usize::MAX {
                        port_keep[port_of_node[n]] = true;
                    }
                }
                AigNode::And(a, b) => {
                    stack.push(a.node());
                    stack.push(b.node());
                }
            }
        }
    }

    SeqCoi {
        state_keep,
        port_keep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_hdl::{Bv, ModuleBuilder};

    /// Two independent counters; a property over one must slice the other
    /// away along with its increment input.
    #[test]
    fn independent_state_is_sliced() {
        let mut b = ModuleBuilder::new("two_counters");
        let step_a = b.input("step_a", 1);
        let step_b = b.input("step_b", 1);
        let a = b.reg("a", 4, Bv::zero(4));
        let bb = b.reg("b", 4, Bv::zero(4));
        let one = b.lit(4, 1);
        let a1 = b.add(a, one);
        let an = b.mux(step_a, a1, a);
        b.set_next(a, an);
        let b1 = b.add(bb, one);
        let bn = b.mux(step_b, b1, bb);
        b.set_next(bb, bn);
        let limit = b.lit(4, 12);
        let ok = b.ult(a, limit);
        b.output("a_small", ok);
        let m = b.build();

        let seq = SeqAig::from_module(&m);
        let root = seq.node_lits[m.output_node("a_small").unwrap().index()][0];
        let coi = sequential_coi(&seq, &[root]);

        assert_eq!(coi.num_kept_state(), 4, "only counter `a` is in the cone");
        assert_eq!(coi.num_kept_ports(), 1, "only `step_a` is in the cone");
        assert!(!coi.keeps_all());
        for (j, info) in seq.state_info.iter().enumerate() {
            assert_eq!(
                coi.state_keep[j],
                info.name.starts_with("a["),
                "{}",
                info.name
            );
        }
    }

    /// A register feeding another register that feeds the property: the
    /// sequential fixpoint must pull in the whole chain.
    #[test]
    fn sequential_chain_stays_in_cone() {
        let mut b = ModuleBuilder::new("chain");
        let d = b.input("d", 1);
        let s1 = b.reg("s1", 1, Bv::zero(1));
        let s2 = b.reg("s2", 1, Bv::zero(1));
        let unused = b.reg("unused", 1, Bv::zero(1));
        b.set_next(s1, d);
        b.set_next(s2, s1);
        let nu = b.not(unused);
        b.set_next(unused, nu);
        b.output("q", s2);
        let m = b.build();

        let seq = SeqAig::from_module(&m);
        let root = seq.node_lits[m.output_node("q").unwrap().index()][0];
        let coi = sequential_coi(&seq, &[root]);

        assert_eq!(coi.num_kept_state(), 2, "s1 and s2 kept, `unused` dropped");
        assert_eq!(coi.num_kept_ports(), 1, "d kept via s1's next-state");
    }

    fn cone(state: &[bool], ports: &[bool]) -> SeqCoi {
        SeqCoi {
            state_keep: state.to_vec(),
            port_keep: ports.to_vec(),
        }
    }

    #[test]
    fn jaccard_and_union_compose() {
        let a = cone(&[true, true, false, false], &[true]);
        let b = cone(&[false, true, true, false], &[true]);
        // |A ∩ B| = {s1, p0} = 2, |A ∪ B| = {s0, s1, s2, p0} = 4.
        assert!((a.jaccard(&b) - 0.5).abs() < 1e-12);
        assert!((a.jaccard(&a) - 1.0).abs() < 1e-12);
        let empty = cone(&[false; 4], &[false]);
        assert!((empty.jaccard(&empty) - 1.0).abs() < 1e-12);
        assert!((empty.jaccard(&a) - 0.0).abs() < 1e-12);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.num_kept_state(), 3);
        assert_eq!(u.num_kept_ports(), 1);
        assert_eq!(u.num_kept_bits(), 4);
    }

    #[test]
    fn clustering_groups_overlapping_cones() {
        // Two near-identical cones, one disjoint cone.
        let c0 = cone(&[true, true, true, false, false, false], &[]);
        let c1 = cone(&[true, true, true, true, false, false], &[]);
        let c2 = cone(&[false, false, false, false, true, true], &[]);
        let clusters = cluster_cones(&[c0, c1, c2], 0.7);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].members, vec![0, 1]);
        assert_eq!(clusters[0].cone.num_kept_state(), 4, "union of c0 and c1");
        assert_eq!(clusters[1].members, vec![2]);
        assert_eq!(clusters[1].cone_bits(), 2);
    }

    #[test]
    fn clustering_threshold_extremes() {
        let c0 = cone(&[true, false], &[]);
        let c1 = cone(&[false, true], &[]);
        let c2 = cone(&[true, false], &[]);
        // Threshold 0: everything joins the first cluster.
        let all = cluster_cones(&[c0.clone(), c1.clone(), c2.clone()], 0.0);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].members, vec![0, 1, 2]);
        // Threshold 1: only identical cones merge. Cluster 0's union is
        // still {s0} (c1 never joined it), so c2 matches it exactly.
        let strict = cluster_cones(&[c0, c1, c2], 1.0);
        assert_eq!(strict.len(), 2);
        assert_eq!(strict[0].members, vec![0, 2]);
        assert_eq!(strict[1].members, vec![1]);
    }
}
