//! Sequential cone-of-influence (COI) reduction.
//!
//! Given a set of root literals (properties and constraints), the COI is
//! the set of input-port bits and state bits the roots transitively read —
//! through combinational logic *and* through the sequential next-state
//! functions. Everything outside the cone can be dropped from a bounded
//! model checking encoding without changing any check outcome: out-of-cone
//! state can never influence a root's value at any cycle.
//!
//! This is the slicing step JasperGold performs per property before
//! dispatching its engines; here it lets the portfolio scheduler hand each
//! property a model containing only what that property needs.

use crate::blast::SeqAig;
use crate::graph::{AigLit, AigNode};

/// The sequential cone of influence of a set of root literals.
#[derive(Clone, Debug)]
pub struct SeqCoi {
    /// Per flattened state bit (in [`SeqAig::state_info`] order): whether
    /// the bit is inside the cone.
    pub state_keep: Vec<bool>,
    /// Per flattened input-port bit (ports in declaration order, LSB
    /// first): whether the bit is inside the cone.
    pub port_keep: Vec<bool>,
}

impl SeqCoi {
    /// Number of state bits inside the cone.
    pub fn num_kept_state(&self) -> usize {
        self.state_keep.iter().filter(|&&k| k).count()
    }

    /// Number of input-port bits inside the cone.
    pub fn num_kept_ports(&self) -> usize {
        self.port_keep.iter().filter(|&&k| k).count()
    }

    /// True when slicing removed nothing (the cone covers the whole model).
    pub fn keeps_all(&self) -> bool {
        self.state_keep.iter().all(|&k| k) && self.port_keep.iter().all(|&k| k)
    }
}

/// Computes the sequential COI of `roots` over `seq`.
///
/// The computation is a fixpoint: the combinational support of the roots
/// seeds the cone; every state bit that enters the cone adds its
/// next-state function's support, until no new state bit appears.
pub fn sequential_coi(seq: &SeqAig, roots: &[AigLit]) -> SeqCoi {
    let aig = &seq.aig;
    let num_state = seq.state_cur.len();

    // Map AIG node index -> state bit / port bit ordinal.
    let mut state_of_node = vec![usize::MAX; aig.num_nodes()];
    for (j, lit) in seq.state_cur.iter().enumerate() {
        state_of_node[lit.node()] = j;
    }
    let mut port_of_node = vec![usize::MAX; aig.num_nodes()];
    let mut num_ports = 0;
    for (k, lit) in seq.input_lits.iter().flatten().enumerate() {
        port_of_node[lit.node()] = k;
        num_ports = k + 1;
    }

    let mut visited = vec![false; aig.num_nodes()];
    let mut state_keep = vec![false; num_state];
    let mut port_keep = vec![false; num_ports];
    // Roots still to traverse; grows as state bits enter the cone.
    let mut pending: Vec<AigLit> = roots.to_vec();
    let mut stack: Vec<usize> = Vec::new();

    while let Some(root) = pending.pop() {
        stack.push(root.node());
        while let Some(n) = stack.pop() {
            if visited[n] {
                continue;
            }
            visited[n] = true;
            match aig.nodes()[n] {
                AigNode::False => {}
                AigNode::Input => {
                    if state_of_node[n] != usize::MAX {
                        let j = state_of_node[n];
                        state_keep[j] = true;
                        // The bit's next-state function joins the cone.
                        pending.push(seq.state_next[j]);
                    } else if port_of_node[n] != usize::MAX {
                        port_keep[port_of_node[n]] = true;
                    }
                }
                AigNode::And(a, b) => {
                    stack.push(a.node());
                    stack.push(b.node());
                }
            }
        }
    }

    SeqCoi {
        state_keep,
        port_keep,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_hdl::{Bv, ModuleBuilder};

    /// Two independent counters; a property over one must slice the other
    /// away along with its increment input.
    #[test]
    fn independent_state_is_sliced() {
        let mut b = ModuleBuilder::new("two_counters");
        let step_a = b.input("step_a", 1);
        let step_b = b.input("step_b", 1);
        let a = b.reg("a", 4, Bv::zero(4));
        let bb = b.reg("b", 4, Bv::zero(4));
        let one = b.lit(4, 1);
        let a1 = b.add(a, one);
        let an = b.mux(step_a, a1, a);
        b.set_next(a, an);
        let b1 = b.add(bb, one);
        let bn = b.mux(step_b, b1, bb);
        b.set_next(bb, bn);
        let limit = b.lit(4, 12);
        let ok = b.ult(a, limit);
        b.output("a_small", ok);
        let m = b.build();

        let seq = SeqAig::from_module(&m);
        let root = seq.node_lits[m.output_node("a_small").unwrap().index()][0];
        let coi = sequential_coi(&seq, &[root]);

        assert_eq!(coi.num_kept_state(), 4, "only counter `a` is in the cone");
        assert_eq!(coi.num_kept_ports(), 1, "only `step_a` is in the cone");
        assert!(!coi.keeps_all());
        for (j, info) in seq.state_info.iter().enumerate() {
            assert_eq!(
                coi.state_keep[j],
                info.name.starts_with("a["),
                "{}",
                info.name
            );
        }
    }

    /// A register feeding another register that feeds the property: the
    /// sequential fixpoint must pull in the whole chain.
    #[test]
    fn sequential_chain_stays_in_cone() {
        let mut b = ModuleBuilder::new("chain");
        let d = b.input("d", 1);
        let s1 = b.reg("s1", 1, Bv::zero(1));
        let s2 = b.reg("s2", 1, Bv::zero(1));
        let unused = b.reg("unused", 1, Bv::zero(1));
        b.set_next(s1, d);
        b.set_next(s2, s1);
        let nu = b.not(unused);
        b.set_next(unused, nu);
        b.output("q", s2);
        let m = b.build();

        let seq = SeqAig::from_module(&m);
        let root = seq.node_lits[m.output_node("q").unwrap().index()][0];
        let coi = sequential_coi(&seq, &[root]);

        assert_eq!(coi.num_kept_state(), 2, "s1 and s2 kept, `unused` dropped");
        assert_eq!(coi.num_kept_ports(), 1, "d kept via s1's next-state");
    }
}
