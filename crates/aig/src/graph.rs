//! And-inverter graph (AIG) with structural hashing and constant folding.
//!
//! The bit-blaster lowers word-level netlists to this representation; the
//! CNF emitter Tseitin-encodes it for the SAT solver. Structural hashing
//! keeps the two-universe miter compact: identical logic in universes α and
//! β collapses wherever it does not depend on universe-specific inputs.

use std::collections::HashMap;
use std::ops::Not;

/// A literal over an AIG node: node index plus an inversion flag.
///
/// `AigLit::FALSE` and `AigLit::TRUE` are the constant literals (node 0).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false.
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true.
    pub const TRUE: AigLit = AigLit(1);

    fn new(node: u32, inverted: bool) -> AigLit {
        AigLit(node << 1 | inverted as u32)
    }

    /// Index of the underlying node.
    #[inline]
    pub fn node(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the literal inverts the node's value.
    #[inline]
    pub fn inverted(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is one of the constant literals.
    #[inline]
    pub fn is_const(self) -> bool {
        self.node() == 0
    }
}

impl Not for AigLit {
    type Output = AigLit;

    #[inline]
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

/// An AIG node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AigNode {
    /// The constant-false node (index 0 only).
    False,
    /// A free input bit.
    Input,
    /// Conjunction of two literals.
    And(AigLit, AigLit),
}

/// An and-inverter graph.
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<(AigLit, AigLit), u32>,
    num_inputs: usize,
}

impl Aig {
    /// Creates an AIG containing only the constant node.
    pub fn new() -> Aig {
        Aig {
            nodes: vec![AigNode::False],
            strash: HashMap::new(),
            num_inputs: 0,
        }
    }

    /// Number of nodes, including the constant node.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of input nodes.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of AND gates.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.num_inputs
    }

    /// The node table.
    pub fn nodes(&self) -> &[AigNode] {
        &self.nodes
    }

    /// Creates a fresh input bit.
    pub fn input(&mut self) -> AigLit {
        let idx = self.nodes.len() as u32;
        self.nodes.push(AigNode::Input);
        self.num_inputs += 1;
        AigLit::new(idx, false)
    }

    /// Conjunction with constant folding and structural hashing.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant folding.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        // Canonical operand order for hashing.
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&idx) = self.strash.get(&(a, b)) {
            return AigLit::new(idx, false);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(a, b));
        self.strash.insert((a, b), idx);
        AigLit::new(idx, false)
    }

    /// Disjunction.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// Exclusive or.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let n1 = self.and(a, !b);
        let n2 = self.and(!a, b);
        self.or(n1, n2)
    }

    /// Equivalence (XNOR).
    pub fn xnor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.xor(a, b)
    }

    /// Multiplexer: `sel ? t : e`.
    pub fn mux(&mut self, sel: AigLit, t: AigLit, e: AigLit) -> AigLit {
        if t == e {
            return t;
        }
        let a = self.and(sel, t);
        let b = self.and(!sel, e);
        self.or(a, b)
    }

    /// Conjunction of a list (true for the empty list).
    pub fn and_all(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::TRUE;
        for &l in lits {
            acc = self.and(acc, l);
        }
        acc
    }

    /// Disjunction of a list (false for the empty list).
    pub fn or_all(&mut self, lits: &[AigLit]) -> AigLit {
        let mut acc = AigLit::FALSE;
        for &l in lits {
            acc = self.or(acc, l);
        }
        acc
    }

    /// Evaluates the whole graph under an assignment of the input nodes
    /// (in input creation order). Returns the value of every node.
    ///
    /// Used by differential tests to check the bit-blaster against the
    /// word-level simulator.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut values = vec![false; self.nodes.len()];
        let mut next_input = 0;
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                AigNode::False => false,
                AigNode::Input => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                AigNode::And(a, b) => {
                    let va = values[a.node()] ^ a.inverted();
                    let vb = values[b.node()] ^ b.inverted();
                    va && vb
                }
            };
        }
        values
    }

    /// Value of a literal under previously computed node values.
    pub fn lit_value(values: &[bool], lit: AigLit) -> bool {
        values[lit.node()] ^ lit.inverted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let mut g = Aig::new();
        let a = g.input();
        assert_eq!(g.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(g.and(a, AigLit::TRUE), a);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), AigLit::FALSE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_reuses_nodes() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x = g.and(a, b);
        let y = g.and(b, a);
        assert_eq!(x, y);
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn xor_truth_table() {
        let mut g = Aig::new();
        let a = g.input();
        let b = g.input();
        let x = g.xor(a, b);
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let values = g.eval(&[va, vb]);
            assert_eq!(Aig::lit_value(&values, x), va ^ vb);
        }
    }

    #[test]
    fn mux_selects() {
        let mut g = Aig::new();
        let s = g.input();
        let t = g.input();
        let e = g.input();
        let m = g.mux(s, t, e);
        for s_v in [false, true] {
            for t_v in [false, true] {
                for e_v in [false, true] {
                    let values = g.eval(&[s_v, t_v, e_v]);
                    let expect = if s_v { t_v } else { e_v };
                    assert_eq!(Aig::lit_value(&values, m), expect);
                }
            }
        }
    }

    #[test]
    fn and_or_all() {
        let mut g = Aig::new();
        let ins: Vec<AigLit> = (0..3).map(|_| g.input()).collect();
        let all = g.and_all(&ins);
        let any = g.or_all(&ins);
        let empty_all = g.and_all(&[]);
        let empty_any = g.or_all(&[]);
        assert_eq!(empty_all, AigLit::TRUE);
        assert_eq!(empty_any, AigLit::FALSE);
        let values = g.eval(&[true, true, false]);
        assert!(!Aig::lit_value(&values, all));
        assert!(Aig::lit_value(&values, any));
    }
}
