//! # autocc-aig
//!
//! Bit-level lowering for the AutoCC flow (Orenes-Vera et al., MICRO 2023):
//! an and-inverter graph (AIG) with structural hashing, a word-to-bit
//! *bit-blaster* that turns an `autocc-hdl` module into a transition
//! relation, and a lazy Tseitin CNF encoder feeding the `autocc-sat`
//! solver.
//!
//! This crate is the moral equivalent of the synthesis front-end inside the
//! FPV tools the paper uses: JasperGold and SBY both reduce RTL to an
//! internal AIG-like form before invoking their solver engines.
//!
//! ## Pipeline
//!
//! ```text
//! Module ──SeqAig::from_module──▶ SeqAig (AIG + state/next/output lits)
//!        ──FrameMap::new per cycle──▶ CNF clauses in autocc-sat::Solver
//! ```
//!
//! ## Example
//!
//! ```
//! use autocc_hdl::{Bv, ModuleBuilder};
//! use autocc_aig::SeqAig;
//!
//! let mut b = ModuleBuilder::new("toggle");
//! let t = b.reg("t", 1, Bv::zero(1));
//! let n = b.not(t);
//! b.set_next(t, n);
//! b.output("q", t);
//! let module = b.build();
//!
//! let seq = SeqAig::from_module(&module);
//! assert_eq!(seq.state_cur.len(), 1);
//! assert_eq!(seq.state_init, vec![false]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blast;
mod cnf;
mod coi;
mod graph;

pub use blast::{SeqAig, StateBitInfo, StateSource};
pub use cnf::{assert_true_lit, FrameMap};
pub use coi::{cluster_cones, sequential_coi, ConeCluster, SeqCoi};
pub use graph::{Aig, AigLit, AigNode};
