//! Differential test: the bit-blasted transition relation must agree with
//! the word-level interpreter, cycle by cycle, on every node.

use autocc_aig::{Aig, SeqAig};
use autocc_hdl::{Bv, Module, ModuleBuilder, Sim};
use proptest::prelude::*;

/// A module exercising every operator: ALU + shifter + memory + FSM.
fn stress_module() -> Module {
    let mut b = ModuleBuilder::new("stress");
    let a = b.input("a", 8);
    let c = b.input("c", 8);
    let sel = b.input("sel", 3);
    let we = b.input("we", 1);

    let acc = b.reg("acc", 8, Bv::new(8, 0x5a));
    let small = b.reg("small", 3, Bv::zero(3));

    let sum = b.add(a, c);
    let diff = b.sub(a, c);
    let band = b.and(a, c);
    let bor = b.or(a, c);
    let bxor = b.xor(a, c);
    let binv = b.not(a);
    let lt = b.ult(a, c);
    let le = b.ule(a, c);
    let eq = b.eq(a, c);
    let sh_amount = b.slice(c, 2, 0);
    let shl = b.shl(a, sh_amount);
    let shr = b.shr(a, c); // wide shift amount: saturates to zero
    let hi = b.slice(a, 7, 4);
    let lo = b.slice(a, 3, 0);
    let swapped = b.concat(lo, hi);
    let zx = b.zext(lo, 8);
    let sx = b.sext(lo, 8);
    let ro = b.reduce_or(a);
    let ra = b.reduce_and(a);
    let rx = b.reduce_xor(a);

    // Memory with two write ports (second wins) and two read addresses.
    let mem = b.mem("scratch", 4, 8);
    let addr = b.slice(a, 1, 0);
    let addr2 = b.slice(c, 1, 0);
    b.mem_write(mem, we, addr, sum);
    b.mem_write(mem, lt, addr2, diff);
    let rd = b.mem_read(mem, addr);
    let rd2 = b.mem_read(mem, addr2);

    // Accumulator muxed over the results.
    let s0 = b.bit(sel, 0);
    let s1 = b.bit(sel, 1);
    let s2 = b.bit(sel, 2);
    let m0 = b.mux(s0, sum, bxor);
    let m1 = b.mux(s1, shl, swapped);
    let m2 = b.mux(s2, m0, m1);
    let with_mem = b.xor(m2, rd);
    b.set_next(acc, with_mem);

    // 3-bit FSM fed by compare bits.
    let cmp = b.concat(lt, eq);
    let cmp3 = b.zext(cmp, 3);
    let small_next = b.add(small, cmp3);
    b.set_next(small, small_next);

    b.output("acc", acc);
    b.output("sum", sum);
    b.output("diff", diff);
    b.output("band", band);
    b.output("bor", bor);
    b.output("binv", binv);
    b.output("lt", lt);
    b.output("le", le);
    b.output("shr", shr);
    b.output("zx", zx);
    b.output("sx", sx);
    b.output("ro", ro);
    b.output("ra", ra);
    b.output("rx", rx);
    b.output("rd2", rd2);
    b.output("small", small);
    b.build()
}

/// Steps the SeqAig once: given current state bits and input values,
/// returns (per-node values, next state bits).
fn aig_step(
    seq: &SeqAig,
    module: &Module,
    state: &[bool],
    inputs: &[(usize, Bv)],
) -> (Vec<Vec<bool>>, Vec<bool>) {
    // Assemble AIG input vector: port bits (declaration order) then state.
    let mut aig_inputs = Vec::new();
    for (pi, port) in module.inputs().iter().enumerate() {
        let value = inputs
            .iter()
            .find(|(i, _)| *i == pi)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| Bv::zero(port.width));
        for b in 0..port.width {
            aig_inputs.push(value.get_bit(b));
        }
    }
    aig_inputs.extend_from_slice(state);
    let values = seq.aig.eval(&aig_inputs);

    let node_values: Vec<Vec<bool>> = seq
        .node_lits
        .iter()
        .map(|bits| bits.iter().map(|&l| Aig::lit_value(&values, l)).collect())
        .collect();
    let next: Vec<bool> = seq
        .state_next
        .iter()
        .map(|&l| Aig::lit_value(&values, l))
        .collect();
    (node_values, next)
}

fn bits_to_bv(bits: &[bool]) -> Bv {
    let mut v = 0u64;
    for (i, &b) in bits.iter().enumerate() {
        v |= (b as u64) << i;
    }
    Bv::new(bits.len() as u32, v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Run random input sequences through both engines; every node value and
    /// the full state evolution must match on every cycle.
    #[test]
    fn blast_matches_interpreter(seq_inputs in proptest::collection::vec((any::<u8>(), any::<u8>(), 0u8..8, any::<bool>()), 1..20)) {
        let module = stress_module();
        let seq = SeqAig::from_module(&module);
        let mut sim = Sim::new(&module);
        let mut state: Vec<bool> = seq.state_init.clone();

        for (a, c, sel, we) in seq_inputs {
            let inputs = vec![
                (0, Bv::new(8, u64::from(a))),
                (1, Bv::new(8, u64::from(c))),
                (2, Bv::new(3, u64::from(sel))),
                (3, Bv::bit(we)),
            ];
            sim.set_input("a", inputs[0].1);
            sim.set_input("c", inputs[1].1);
            sim.set_input("sel", inputs[2].1);
            sim.set_input("we", inputs[3].1);

            let (node_values, next) = aig_step(&seq, &module, &state, &inputs);

            // Compare every word-level node.
            for (ni, bits) in node_values.iter().enumerate() {
                let got = bits_to_bv(bits);
                let want = sim.node(autocc_hdl_node_id(ni));
                prop_assert_eq!(
                    got, want,
                    "node {} ({}) mismatch", ni, module.describe(autocc_hdl_node_id(ni))
                );
            }

            sim.step();
            state = next;

            // Compare committed state against the interpreter.
            for (i, info) in seq.state_info.iter().enumerate() {
                let got = state[i];
                let want = match &info.source {
                    autocc_aig::StateSource::Reg { reg, bit } => sim.reg(*reg).get_bit(*bit),
                    autocc_aig::StateSource::MemWord { mem, word, bit } => {
                        sim.mem_word(*mem, *word).get_bit(*bit)
                    }
                };
                prop_assert_eq!(got, want, "state bit {} mismatch", info.name);
            }
        }
    }
}

/// Reconstructs a NodeId from a dense index (nodes are created densely).
fn autocc_hdl_node_id(index: usize) -> autocc_hdl::NodeId {
    // NodeId has no public from_index; recover it through the module's
    // node ordering using a transmute-free trick: iterate outputs? Instead,
    // autocc-hdl guarantees dense ids; we add a helper there.
    autocc_hdl::NodeId::from_index(index)
}
