//! The CNF encoder must be lazy: only the cone of influence of requested
//! literals may allocate SAT variables.

use autocc_aig::{assert_true_lit, Aig, FrameMap};
use autocc_sat::Solver;

#[test]
fn only_the_requested_cone_is_encoded() {
    let mut aig = Aig::new();
    let a = aig.input();
    let b = aig.input();
    let c = aig.input();
    // Small cone: a & b. Large unrelated cone: a 64-gate chain over c.
    let small = aig.and(a, b);
    let mut big = c;
    for _ in 0..64 {
        let x = aig.xor(big, a);
        big = aig.and(x, c);
    }

    let mut solver = Solver::new();
    let t = assert_true_lit(&mut solver);
    let inputs: Vec<_> = (0..3).map(|_| solver.new_var().positive()).collect();
    let mut frame = FrameMap::new(&aig, &inputs, t);
    let before = solver.num_vars();
    let _ = frame.sat_lit(&mut solver, &aig, small);
    let after_small = solver.num_vars();
    assert!(
        after_small - before <= 2,
        "small cone allocated {} vars",
        after_small - before
    );
    let _ = frame.sat_lit(&mut solver, &aig, big);
    let after_big = solver.num_vars();
    assert!(after_big - after_small >= 32, "big cone now encoded");
    // Re-requesting is free.
    let _ = frame.sat_lit(&mut solver, &aig, big);
    assert_eq!(solver.num_vars(), after_big);
}

#[test]
fn structural_sharing_reduces_frame_cost() {
    // Encoding a + shared subterm twice costs once.
    let mut aig = Aig::new();
    let a = aig.input();
    let b = aig.input();
    let shared = aig.and(a, b);
    let x = aig.or(shared, a);
    let y = aig.xor(shared, b);

    let mut solver = Solver::new();
    let t = assert_true_lit(&mut solver);
    let inputs: Vec<_> = (0..2).map(|_| solver.new_var().positive()).collect();
    let mut frame = FrameMap::new(&aig, &inputs, t);
    let before = solver.num_vars();
    let _ = frame.sat_lit(&mut solver, &aig, x);
    let mid = solver.num_vars();
    let _ = frame.sat_lit(&mut solver, &aig, y);
    let after = solver.num_vars();
    // y's cone reuses `shared`; only the xor structure is new.
    assert!(after - mid <= mid - before + 1);
}
