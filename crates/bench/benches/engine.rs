//! Engine ablations: SAT-solver scaling, BMC depth scaling, the
//! transfer-period THRESHOLD sweep (Sec. 3.3.2), and the modularity /
//! blackboxing tradeoff (Sec. 3.4).

use autocc_bench::default_options;
use autocc_core::FtSpec;
use autocc_duts::aes::{build_aes, AesConfig};
use autocc_duts::vscale::{arch, build_vscale, VscaleConfig};
use autocc_hdl::{Bv, ModuleBuilder};
use autocc_sat::{Lit, SolveResult, Solver, Var};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Pigeonhole principle: n pigeons, n-1 holes (UNSAT, exponentially hard).
fn pigeonhole(n: usize) -> Solver {
    let holes = n - 1;
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..n * holes).map(|_| s.new_var()).collect();
    let p = |i: usize, j: usize| -> Lit { vars[i * holes + j].positive() };
    for i in 0..n {
        let row: Vec<Lit> = (0..holes).map(|j| p(i, j)).collect();
        s.add_clause(&row);
    }
    for j in 0..holes {
        for a in 0..n {
            for b in (a + 1)..n {
                s.add_clause(&[!p(a, j), !p(b, j)]);
            }
        }
    }
    s
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_pigeonhole");
    group.sample_size(10);
    for n in [6usize, 7, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole(n);
                assert_eq!(s.solve(), SolveResult::Unsat);
            })
        });
    }
    group.finish();
}

fn bench_bmc_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("bmc_depth_scaling");
    group.sample_size(10);
    // Bounded-clean runs of a small sequential design at growing depth.
    for depth in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut mb = ModuleBuilder::new("counter");
                let c0 = mb.reg("count", 8, Bv::zero(8));
                let one = mb.lit(8, 1);
                let next = mb.add(c0, one);
                mb.set_next(c0, next);
                let limit = mb.lit(8, 200);
                let ok = mb.ult(c0, limit);
                mb.output("ok", ok);
                let m = mb.build();
                let mut bmc = autocc_bmc::Bmc::new(&m);
                bmc.add_property("below", m.output_node("ok").unwrap());
                let r = bmc.check(&default_options(depth));
                assert!(matches!(r, autocc_bmc::CheckOutcome::BoundReached { .. }));
            })
        });
    }
    group.finish();
}

fn bench_threshold_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold_sweep");
    group.sample_size(10);
    // Sec. 3.3.2: a longer transfer period pushes the CEX deeper (and can
    // rule out short-lived channels entirely).
    for threshold in [1u32, 2, 4, 6] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &threshold| {
                let dut = build_aes(&AesConfig::default());
                b.iter(|| {
                    let ft = FtSpec::new(&dut).threshold(threshold).generate();
                    let r = ft.check(&default_options(16));
                    assert!(r.outcome.cex().is_some());
                })
            },
        );
    }
    group.finish();
}

fn bench_modularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("modularity_blackbox");
    group.sample_size(10);
    // Sec. 3.4: blackboxing the CSR removes 64 state bits from the model.
    // Both runs use the fully refined FT (bounded clean to depth 6 — deep
    // enough to exercise the transfer period, shallow enough to bench).
    for blackbox in [false, true] {
        let label = if blackbox {
            "csr_blackboxed"
        } else {
            "csr_in_model"
        };
        group.bench_function(label, |b| {
            let dut = build_vscale(&VscaleConfig {
                blackbox_csr: blackbox,
                ..VscaleConfig::default()
            });
            b.iter(|| {
                let mut spec = FtSpec::new(&dut).arch_mem(arch::REGFILE_MEM);
                for r in arch::PIPELINE_REGS.iter().chain(arch::INT_REGS.iter()) {
                    spec = spec.arch_reg(r);
                }
                if !blackbox {
                    spec = spec.arch_mem("csr.file");
                }
                let ft = spec.generate();
                let r = ft.check(&default_options(6));
                assert!(r.outcome.is_clean(), "{:?}", r.outcome);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sat,
    bench_bmc_depth,
    bench_threshold_sweep,
    bench_modularity
);
criterion_main!(benches);
