//! Criterion bench for the Sec. 3.5 flush-synthesis algorithms.

use autocc_bench::{banked_device, default_options};
use autocc_core::{decremental_flush, incremental_flush, FlushSynthesisConfig, FtSpec};
use autocc_hdl::{Instance, ModuleBuilder, NodeId};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;

fn flush_input(b: &mut ModuleBuilder, _ua: &Instance, _ub: &Instance) -> NodeId {
    b.input_node("flush").expect("common flush input")
}

fn bench_flush_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("flush_synthesis");
    group.sample_size(10);
    let config = FlushSynthesisConfig {
        check_options: default_options(12),
        max_iterations: 12,
    };
    group.bench_function("algorithm1_incremental", |b| {
        b.iter(|| {
            let r = incremental_flush(
                banked_device,
                |s: FtSpec| s.flush_done(flush_input),
                &config,
            );
            assert!(r.converged);
        })
    });
    group.bench_function("algorithm2_decremental", |b| {
        let full: BTreeSet<String> = ["bank0", "bank1", "bank2", "scratch"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let candidates: Vec<String> = full.iter().cloned().collect();
        b.iter(|| {
            let r = decremental_flush(
                banked_device,
                |s: FtSpec| s.flush_done(flush_input),
                &full,
                &candidates,
                &config,
            );
            assert!(r.converged);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_flush_synthesis);
criterion_main!(benches);
