//! Criterion bench regenerating each Table-1 experiment (one benchmark per
//! row). Times here are the "Time" column of the reproduced table.

use autocc_bench::{
    cva6_cex_config, default_options, run_aes_a1, run_cva6, run_maple, run_vscale_stage,
    VSCALE_STAGES,
};
use autocc_duts::maple::MapleConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    let options = default_options(20);

    // The Vscale search takes minutes at full depth; bench it under a
    // conflict budget so an iteration is a fixed amount of solver work
    // (the full unbudgeted run is covered by `report_table1`).
    group.bench_function("V5_interrupt_pending_budgeted", |b| {
        let budgeted = options.clone().conflicts(Some(20_000));
        b.iter(|| {
            let r = run_vscale_stage(&VSCALE_STAGES[2], &budgeted);
            let _ = r.outcome;
        })
    });
    for id in ["C1", "C2", "C3"] {
        group.bench_function(format!("{id}_cva6"), |b| {
            let config = cva6_cex_config(id);
            b.iter(|| {
                let r = run_cva6(&config, &options);
                assert!(r.outcome.cex().is_some());
            })
        });
    }
    group.bench_function("M2_tlb_enable", |b| {
        let config = MapleConfig {
            fix_tlb_enable: false,
            fix_array_base: true,
        };
        b.iter(|| {
            let r = run_maple(&config, &options);
            assert!(r.outcome.cex().is_some());
        })
    });
    group.bench_function("M3_array_base", |b| {
        let config = MapleConfig {
            fix_tlb_enable: true,
            fix_array_base: false,
        };
        b.iter(|| {
            let r = run_maple(&config, &options);
            assert!(r.outcome.cex().is_some());
        })
    });
    group.bench_function("A1_inflight_request", |b| {
        b.iter(|| {
            let r = run_aes_a1(&options);
            assert!(r.outcome.cex().is_some());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
