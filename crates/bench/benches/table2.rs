//! Criterion bench regenerating each Table-2 stage (the Vscale ladder).

use autocc_bench::{default_options, run_vscale_stage, VSCALE_STAGES};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    // Full-depth CEX searches take minutes; each bench iteration does a
    // fixed amount of solver work instead (the unbudgeted runs live in
    // `report_table2`). The proof stage is cheap and runs unbudgeted.
    let options = default_options(16).conflicts(Some(20_000));
    for stage in &VSCALE_STAGES[..3] {
        group.bench_function(stage.id.replace('/', "_"), |b| {
            b.iter(|| {
                let r = run_vscale_stage(stage, &options);
                let _ = r.outcome;
            })
        });
    }
    let proof_options = default_options(12);
    group.bench_function("proof_stage", |b| {
        b.iter(|| {
            let r = run_vscale_stage(&VSCALE_STAGES[4], &proof_options);
            assert!(r.outcome.is_clean());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
