//! Validate an emitted `--profile` JSON file against the profile schema.
//!
//! Exits 0 and prints a one-line summary when the file parses as a
//! current-version `RunProfile`; exits 2 with the validation error
//! otherwise. CI runs this on the profile a report binary just wrote.

use autocc_telemetry::validate_profile_json;
use std::process::ExitCode;

const USAGE: &str = "usage: profile_check <profile.json>";

fn main() -> ExitCode {
    autocc_bench::maybe_run_worker();
    let mut args = std::env::args().skip(1);
    let (Some(path), None) = (args.next(), args.next()) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let json = match std::fs::read_to_string(&path) {
        Ok(json) => json,
        Err(e) => {
            eprintln!("profile_check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match validate_profile_json(&json) {
        Ok(summary) => {
            println!(
                "{path}: valid profile v{} — {} spans, {} us wall, {} solve calls, {} conflicts, phases: {}",
                summary.version,
                summary.span_count,
                summary.wall_us,
                summary.solve_calls,
                summary.conflicts,
                summary.phase_names.join(", ")
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("profile_check: {path} failed validation: {e}");
            ExitCode::from(2)
        }
    }
}
