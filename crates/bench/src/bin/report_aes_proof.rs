//! Regenerates the Sec. A.5.4 result: full proof of the AES accelerator
//! under the idle-pipeline flush condition.

use autocc_bench::{default_options, finish_profile, parse_report_args, run_aes_a1, run_aes_proof};
use autocc_core::{format_duration, AutoCcOutcome};

const USAGE: &str = "usage: report_aes_proof [--jobs N] [--slice on|off]
                     [--retries N] [--timeout SECS] [--poll-interval N]
                     [--profile PATH]
  --jobs N          portfolio workers for experiment fan-out (default 1)
  --slice on|off    per-property cone-of-influence slicing (default off)
  --retries N       retry panicked engine jobs up to N times (default 1)
  --timeout SECS    wall-clock budget per check job (degrades to UNKNOWN)
  --poll-interval N solver conflicts between deadline polls (default 128)
  --profile PATH    write a JSON run profile (span tree + rollups)
As `report_aes_proof worker --connect HOST:PORT [--backoff-ms N]
[--backoff-max-ms N] [--max-retries N]`, serves a remote fleet instead.";

fn main() {
    autocc_bench::maybe_run_worker();
    let args = parse_report_args(USAGE);
    println!("== AES accelerator: A1 and the full proof (A.5.4) ==\n");
    let (config, sink) = args.instrument(default_options(14), "aes-proof");
    let report = run_aes_a1(&config);
    match &report.outcome {
        AutoCcOutcome::Cex(cex) => println!(
            "A1   : CEX {} at depth {} in {} (paper: depth 42, seconds)",
            cex.property,
            cex.depth,
            format_duration(report.elapsed)
        ),
        other => println!("A1   : unexpected {other:?}"),
    }
    let report = run_aes_proof(&config);
    match &report.outcome {
        AutoCcOutcome::Proved { induction_depth } => println!(
            "proof: full proof at k={induction_depth} in {} (paper: full proof < 6h)",
            format_duration(report.elapsed)
        ),
        other => println!("proof: unexpected {other:?}"),
    }
    finish_profile(&sink);
}
