//! Regenerates the Sec. A.5.4 result: full proof of the AES accelerator
//! under the idle-pipeline flush condition.

use autocc_bench::{default_options, run_aes_a1, run_aes_proof};
use autocc_core::{format_duration, AutoCcOutcome};

fn main() {
    println!("== AES accelerator: A1 and the full proof (A.5.4) ==\n");
    let options = default_options(14);
    let report = run_aes_a1(&options);
    match &report.outcome {
        AutoCcOutcome::Cex(cex) => println!(
            "A1   : CEX {} at depth {} in {} (paper: depth 42, seconds)",
            cex.property,
            cex.depth,
            format_duration(report.elapsed)
        ),
        other => println!("A1   : unexpected {other:?}"),
    }
    let report = run_aes_proof(&options);
    match &report.outcome {
        AutoCcOutcome::Proved { induction_depth } => println!(
            "proof: full proof at k={induction_depth} in {} (paper: full proof < 6h)",
            format_duration(report.elapsed)
        ),
        other => println!("proof: unexpected {other:?}"),
    }
}
