//! Regenerates the Sec. 4.2 "validating previously-found covert channels"
//! result: the full-flush fence.t leaves FSM state behind (the killed-AXI
//! I$ state and the PTW walk state), motivating microreset.

use autocc_bench::{cva6_flush_done, default_options};
use autocc_core::{format_duration, FtSpec};
use autocc_duts::cva6::{build_cva6, Cva6Config, ARCH_REGS};

fn main() {
    autocc_bench::maybe_run_worker();
    println!("== CVA6 full-flush fence.t: the known channels ==\n");
    let dut = build_cva6(&Cva6Config::full_flush());
    let mut spec = FtSpec::new(&dut).flush_done(cva6_flush_done);
    for r in ARCH_REGS {
        spec = spec.arch_reg(r);
    }
    let ft = spec.generate();
    let report = ft.check(&default_options(18));
    match report.outcome.cex() {
        Some(cex) => {
            println!(
                "CEX {} at depth {} in {}",
                cex.property,
                cex.depth,
                format_duration(report.elapsed)
            );
            println!("surviving microarchitectural state:");
            for d in &cex.diverging_state {
                println!("  {:<22} a={} b={}", d.name, d.value_a, d.value_b);
            }
            println!("\nThe full flush misses FSM/AXI state — the motivation for microreset.");
        }
        None => println!("unexpected: {:?}", report.outcome),
    }
}
