//! Regenerates the Fig.-3 convergence picture from a real counterexample:
//! per-cycle arch/input/output equality, the transfer counter, and the
//! spy-mode latch, extracted from the A1 trace.

use autocc_bench::default_options;
use autocc_core::FtSpec;
use autocc_duts::aes::{build_aes, AesConfig};

fn main() {
    autocc_bench::maybe_run_worker();
    println!("== Fig. 3 (reproduced): context-switch convergence in a CEX ==\n");
    let dut = build_aes(&AesConfig::default());
    let ft = FtSpec::new(&dut).generate();
    let report = ft.check(&default_options(14));
    let Some(cex) = report.outcome.cex() else {
        // Degrade instead of aborting: report what the check produced and
        // exit non-zero, like the table binaries do for degraded rows.
        eprintln!(
            "error: the A1 check did not produce a counterexample \
             (outcome: {:?}); cannot draw the convergence series",
            report.outcome
        );
        std::process::exit(1);
    };
    println!(
        "trace: {} cycles, property {}, spy starts at cycle {}\n",
        cex.depth, cex.property, cex.spy_start_cycle
    );
    let wf = ft.convergence_waveform(cex);
    println!("{}", wf.to_table());
    println!("Reading: inputs/outputs converge, flush_done fires, eq_cnt counts the");
    println!("transfer period, spy_mode latches — then the victim's in-flight request");
    println!("surfaces as an output difference: the covert channel.");
    // Also emit a VCD for waveform viewers.
    let vcd = wf.to_vcd("autocc_fig3");
    let path = std::env::temp_dir().join("autocc_fig3.vcd");
    match std::fs::write(&path, vcd) {
        Ok(()) => println!("\nVCD written to {}", path.display()),
        Err(e) => {
            // The series above already printed; a missing VCD degrades the
            // run rather than voiding it.
            eprintln!("error: cannot write VCD to {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
