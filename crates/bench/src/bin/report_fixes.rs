//! Fix-validation runs (Sec. 4): re-running each testbench on the fixed
//! RTL eliminates the CEXs.

use autocc_bench::{default_options, fix_validation};
use autocc_core::format_table;

fn main() {
    let options = default_options(16);
    let rows = fix_validation(&options);
    println!(
        "{}",
        format_table("Fix validation: every fixed configuration is clean", &rows)
    );
}
