//! Fix-validation runs (Sec. 4): re-running each testbench on the fixed
//! RTL eliminates the CEXs.

use autocc_bench::{default_options, fix_validation};
use autocc_core::{failure_summary, format_table, report_exit_code};

fn main() {
    let options = default_options(16);
    let rows = fix_validation(&options);
    println!(
        "{}",
        format_table("Fix validation: every fixed configuration is clean", &rows)
    );
    if let Some(summary) = failure_summary(&rows) {
        eprintln!("\n{summary}");
    }
    std::process::exit(report_exit_code(&rows));
}
