//! Fix-validation runs (Sec. 4): re-running each testbench on the fixed
//! RTL eliminates the CEXs.

use autocc_bench::{default_options, finish_profile, fix_validation, parse_report_args};
use autocc_core::{failure_summary, report_exit_code};

const USAGE: &str = "usage: report_fixes [--jobs N] [--slice on|off] [--stable] [--detailed]
                     [--retries N] [--timeout SECS] [--poll-interval N]
                     [--profile PATH]
  --jobs N          fan experiments across N portfolio workers (default 1)
  --slice on|off    per-property cone-of-influence slicing (default off)
  --stable          omit the Time column (byte-reproducible output)
  --detailed        per-row solver-work columns (solves, conflicts)
  --retries N       retry panicked engine jobs up to N times (default 1)
  --timeout SECS    wall-clock budget per check job (degrades to UNKNOWN)
  --poll-interval N solver conflicts between deadline polls (default 128)
  --profile PATH    write a JSON run profile (span tree + rollups)";

fn main() {
    let args = parse_report_args(USAGE);
    let (config, sink) = args.instrument(default_options(16), "fixes");
    let rows = fix_validation(&config);
    let title = "Fix validation: every fixed configuration is clean";
    println!("{}", args.render_table(title, &rows));
    if let Some(summary) = failure_summary(&rows) {
        eprintln!("\n{summary}");
    }
    finish_profile(&sink);
    std::process::exit(report_exit_code(&rows));
}
