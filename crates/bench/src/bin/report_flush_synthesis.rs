//! Regenerates the Sec. 3.5 experiments: Algorithms 1 and 2 synthesising a
//! minimal flush set for the banked-register demo device and for MAPLE's
//! configuration block.

use autocc_bench::{banked_device, default_options};
use autocc_core::{decremental_flush, incremental_flush, FlushSynthesisConfig, FtSpec};
use autocc_hdl::{Instance, ModuleBuilder, NodeId};
use std::collections::BTreeSet;

fn flush_input(b: &mut ModuleBuilder, _ua: &Instance, _ub: &Instance) -> NodeId {
    b.input_node("flush").expect("common flush input")
}

fn main() {
    autocc_bench::maybe_run_worker();
    println!("== Flush synthesis (Algorithms 1 & 2) on the banked device ==\n");
    let config = FlushSynthesisConfig {
        check_options: default_options(12),
        max_iterations: 12,
    };

    let inc = incremental_flush(
        banked_device,
        |s: FtSpec| s.flush_done(flush_input),
        &config,
    );
    println!("Algorithm 1 (incremental):");
    for (i, it) in inc.iterations.iter().enumerate() {
        match (&it.state, it.clean) {
            (Some(state), _) => println!("  round {i}: CEX -> flush += {state}"),
            (None, true) => println!("  round {i}: clean"),
            (None, false) => println!("  round {i}: inconclusive"),
        }
    }
    println!(
        "  result: {:?} (converged: {})\n",
        inc.flush_set, inc.converged
    );

    let full: BTreeSet<String> = ["bank0", "bank1", "bank2", "scratch"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let candidates: Vec<String> = full.iter().cloned().collect();
    let dec = decremental_flush(
        banked_device,
        |s: FtSpec| s.flush_done(flush_input),
        &full,
        &candidates,
        &config,
    );
    println!("Algorithm 2 (decremental):");
    for it in &dec.iterations {
        if let Some(state) = &it.state {
            println!(
                "  remove {state}: {}",
                if it.clean {
                    "still clean — removed"
                } else {
                    "CEX — kept"
                }
            );
        }
    }
    println!(
        "  result: {:?} (converged: {})\n",
        dec.flush_set, dec.converged
    );
    assert_eq!(inc.flush_set, dec.flush_set);
    println!("Both algorithms agree on the minimal flush set.");
}
