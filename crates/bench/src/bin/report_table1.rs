//! Regenerates Table 1: the valuable CEXs across all four DUTs.

use autocc_bench::{default_options, table1};
use autocc_core::format_table;

fn main() {
    let options = default_options(20);
    let rows = table1(&options);
    println!(
        "{}",
        format_table("Table 1 (reproduced): valuable CEXs across the four DUTs", &rows)
    );
    println!("Paper reference (JasperGold, original RTL):");
    println!("  V5 depth 9 <10min | C1 depth 76 <30min | C2 depth 80 <6h | C3 depth 80 <6h");
    println!("  M2 depth 21 <30min | M3 depth 23 <3h | A1 depth 42 <1min");
}
