//! Regenerates Table 1: the valuable CEXs across all four DUTs.

use autocc_bench::{default_options, parse_report_args, table1_with};
use autocc_core::{failure_summary, format_table, format_table_stable, report_exit_code};

const USAGE: &str = "usage: report_table1 [--jobs N] [--slice on|off] [--stable]
                     [--retries N] [--timeout SECS]
  --jobs N        fan experiments across N portfolio workers (default 1)
  --slice on|off  per-property cone-of-influence slicing (default off)
  --stable        omit the Time column (byte-reproducible output)
  --retries N     retry panicked engine jobs up to N times (default 1)
  --timeout SECS  wall-clock budget per check job (degrades to UNKNOWN)";

fn main() {
    let args = parse_report_args(USAGE);
    let options = default_options(20);
    let rows = table1_with(&options, args.exec);
    let title = "Table 1 (reproduced): valuable CEXs across the four DUTs";
    let table = if args.stable {
        format_table_stable(title, &rows)
    } else {
        format_table(title, &rows)
    };
    println!("{table}");
    println!("Paper reference (JasperGold, original RTL):");
    println!("  V5 depth 9 <10min | C1 depth 76 <30min | C2 depth 80 <6h | C3 depth 80 <6h");
    println!("  M2 depth 21 <30min | M3 depth 23 <3h | A1 depth 42 <1min");
    if let Some(summary) = failure_summary(&rows) {
        eprintln!("\n{summary}");
    }
    std::process::exit(report_exit_code(&rows));
}
