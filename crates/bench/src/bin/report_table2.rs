//! Regenerates Table 2: the Vscale CEX ladder (description, depth, time).

use autocc_bench::{
    default_options, finish_profile, parse_report_args, run_campaign, table2_tasks_with,
};
use autocc_core::{certificate_summary, failure_summary, report_exit_code};

const USAGE: &str = "usage: report_table2 [--jobs N] [--slice on|off] [--stable] [--detailed]
                     [--retries N] [--timeout SECS] [--poll-interval N]
                     [--granularity monolithic|output|register]
                     [--cluster-overlap FRACTION]
                     [--depth N] [--profile PATH]
                     [--journal PATH] [--resume | --fresh] [--retry-failed]
                     [--hang-factor N] [--isolate] [--memory-limit-mb N]
                     [--worker-heartbeat-ms N] [--certify]
                     [--listen ADDR] [--lease-factor N]
                     [--fleet-grace-ms N] [--fleet-lease-ms N]
  --jobs N          fan ladder stages across N portfolio workers (default 1)
  --slice on|off    per-property cone-of-influence slicing (default off)
  --granularity G   property decomposition: monolithic (default), output
                    (clustered per-output checks), register (adds per-state
                    attribution properties naming the leaking signal)
  --cluster-overlap F  minimum Jaccard cone overlap for two decomposed
                    properties to share a sliced cluster (default 0.9)
  --stable          omit the Time column (byte-reproducible output)
  --detailed        per-row solver-work columns (solves, conflicts, src)
  --retries N       retry panicked engine jobs up to N times (default 1)
  --timeout SECS    wall-clock budget per check job (degrades to UNKNOWN)
  --poll-interval N solver conflicts between deadline polls (default 128)
  --depth N         override the default check depth (default 16)
  --profile PATH    write a JSON run profile (span tree + rollups)
  --journal PATH    crash-safe campaign journal (content-addressed cache)
  --resume          continue an existing journal, skipping finished checks
  --fresh           discard any existing journal and start over
  --retry-failed    re-run journaled FAILED checks instead of serving them
  --hang-factor N   watchdog limit as a multiple of the time budget
                    (default 4; 0 disarms)
  --isolate         run each check attempt in a supervised worker subprocess
  --memory-limit-mb N  kill (and quarantine repeat offenders) any worker
                    whose RSS exceeds N MiB (needs --isolate)
  --worker-heartbeat-ms N  isolated-worker heartbeat period (default 250)
  --certify         demand an independently checked certificate for every
                    conclusive verdict (DRAT proof for UNSAT answers,
                    replayed trace for CEXs); missing/failed certificates
                    degrade the row to FAILED (certification)
  --listen ADDR     accept remote `worker --connect` processes on ADDR and
                    dispatch checks to them under lease-based ownership;
                    degrades to local workers when the fleet drains
  --lease-factor N  remote lease = time budget x N x property count
                    (default 4)
  --fleet-grace-ms N  with zero workers connected, fall back to local
                    execution after this long (default 2000)
  --fleet-lease-ms N  fixed remote lease in ms (overrides --lease-factor)
As `report_table2 worker --connect HOST:PORT [--backoff-ms N]
[--backoff-max-ms N] [--max-retries N]`, serves a remote fleet instead.";

fn main() {
    autocc_bench::maybe_run_worker();
    let args = parse_report_args(USAGE);
    let (config, sink) = args.instrument(default_options(16), "table2");
    let options = args.campaign_options();
    let outcome = match run_campaign(
        "table2",
        table2_tasks_with(args.granularity),
        &config,
        &options,
    ) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let title = "Table 2 (reproduced): CEXs found in Vscale from the default AutoCC FT";
    println!("{}", args.render_table(title, &outcome.rows));
    println!("Paper reference (JasperGold, original 32-bit Vscale RTL):");
    println!("  V1 depth 6 <10s | V2 depth 6 <10s | V3 depth 7 <10s");
    println!("  V4 depth 7 <10s | V5 depth 9 <100s | bounded proof depth 21 in 24h");
    if options.journal.is_some() {
        eprintln!("journal: {}", outcome.stats);
    }
    if args.certify {
        eprintln!("{}", certificate_summary(&outcome.rows));
    }
    if let Some(summary) = failure_summary(&outcome.rows) {
        eprintln!("\n{summary}");
    }
    autocc_bench::finish_fleet(&options);
    finish_profile(&sink);
    std::process::exit(report_exit_code(&outcome.rows));
}
