//! Regenerates Table 2: the Vscale CEX ladder (description, depth, time).

use autocc_bench::{default_options, table2};
use autocc_core::format_table;

fn main() {
    let options = default_options(16);
    let rows = table2(&options);
    println!(
        "{}",
        format_table(
            "Table 2 (reproduced): CEXs found in Vscale from the default AutoCC FT",
            &rows
        )
    );
    println!("Paper reference (JasperGold, original 32-bit Vscale RTL):");
    println!("  V1 depth 6 <10s | V2 depth 6 <10s | V3 depth 7 <10s");
    println!("  V4 depth 7 <10s | V5 depth 9 <100s | bounded proof depth 21 in 24h");
}
