//! Regenerates Table 2: the Vscale CEX ladder (description, depth, time).

use autocc_bench::{default_options, parse_report_args, table2_with};
use autocc_core::{failure_summary, format_table, format_table_stable, report_exit_code};

const USAGE: &str = "usage: report_table2 [--jobs N] [--slice on|off] [--stable]
                     [--retries N] [--timeout SECS]
  --jobs N        fan ladder stages across N portfolio workers (default 1)
  --slice on|off  per-property cone-of-influence slicing (default off)
  --stable        omit the Time column (byte-reproducible output)
  --retries N     retry panicked engine jobs up to N times (default 1)
  --timeout SECS  wall-clock budget per check job (degrades to UNKNOWN)";

fn main() {
    let args = parse_report_args(USAGE);
    let options = default_options(16);
    let rows = table2_with(&options, args.exec);
    let title = "Table 2 (reproduced): CEXs found in Vscale from the default AutoCC FT";
    let table = if args.stable {
        format_table_stable(title, &rows)
    } else {
        format_table(title, &rows)
    };
    println!("{table}");
    println!("Paper reference (JasperGold, original 32-bit Vscale RTL):");
    println!("  V1 depth 6 <10s | V2 depth 6 <10s | V3 depth 7 <10s");
    println!("  V4 depth 7 <10s | V5 depth 9 <100s | bounded proof depth 21 in 24h");
    if let Some(summary) = failure_summary(&rows) {
        eprintln!("\n{summary}");
    }
    std::process::exit(report_exit_code(&rows));
}
