//! Regenerates the Sec. 4.1 bounded-proof result: after the last
//! refinement, the FPV engine keeps deepening until the time budget runs
//! out (the paper reached depth 21 in 24 hours; we run a 5-minute budget).

use autocc_bmc::CheckConfig;
use autocc_core::{format_duration, AutoCcOutcome};
use std::time::Duration;

fn main() {
    autocc_bench::maybe_run_worker();
    println!("== Vscale bounded proof under a time budget ==\n");
    let config = CheckConfig::default()
        .depth(48)
        .timeout(Duration::from_secs(300));
    // The fully refined testbench, run as plain BMC deepening.
    let report = {
        // `run_vscale_stage` proves at level 4; rebuild manually for a
        // pure bounded run instead.
        let dut = autocc_duts::vscale::build_vscale(&autocc_duts::vscale::VscaleConfig {
            blackbox_csr: true,
            ..Default::default()
        });
        let mut spec =
            autocc_core::FtSpec::new(&dut).arch_mem(autocc_duts::vscale::arch::REGFILE_MEM);
        for r in autocc_duts::vscale::arch::PIPELINE_REGS
            .iter()
            .chain(autocc_duts::vscale::arch::INT_REGS.iter())
        {
            spec = spec.arch_reg(r);
        }
        let ft = spec.generate();
        ft.check(&config)
    };
    match report.outcome {
        AutoCcOutcome::Clean { bound } => println!(
            "bounded proof to depth {bound} in {} (paper: depth 21 in 24 h)",
            format_duration(report.elapsed)
        ),
        AutoCcOutcome::Exhausted { bound } => println!(
            "budget exhausted at proven depth {bound} after {} (paper: depth 21 in 24 h)",
            format_duration(report.elapsed)
        ),
        // A wall-clock stop is the expected end state of this experiment:
        // the proven depth is still a result, just a machine-dependent one.
        AutoCcOutcome::Unknown { bound, cause } => println!(
            "time budget hit ({cause}) at proven depth {bound} after {} (paper: depth 21 in 24 h)",
            format_duration(report.elapsed)
        ),
        AutoCcOutcome::Failed { ref failures } => {
            println!("FAILED after {}:", format_duration(report.elapsed));
            for f in failures {
                println!("  {f}");
            }
            std::process::exit(1);
        }
        other => println!("unexpected: {other:?}"),
    }
}
