//! The campaign runner: drives a set of experiments through the
//! crash-safe journal with checkpoint/resume and a content-addressed
//! check cache.
//!
//! Every campaign task builds one [`FpvTestbench`] and runs it in one
//! mode (bounded check or unbounded proof). With a journal attached
//! (`--journal`), each completed check is appended — durably, fsync'd —
//! under its [`content_key`]: a stable hash of the COI-sliced AIG, the
//! property set, and the deterministic check budgets. A resumed campaign
//! (`--resume`) recovers the journal, serves completed checks from it,
//! and re-runs exactly the ones whose content changed or that were lost
//! to a torn tail. Cached counterexamples are never trusted blindly:
//! they are replay-certified against the freshly built testbench
//! ([`FpvTestbench::certify_cex`]) and re-run live if certification
//! fails.
//!
//! A coarse supervisor watchdog sits above the portfolio: a live check
//! that produces no result within `hang_factor` times its configured
//! time budget (scaled by the property count, since properties check
//! serially) is abandoned, journaled as `FAILED (hang)`, and the
//! campaign continues. On resume such rows are served from the journal
//! (skipped) unless `--retry-failed` asks for another attempt.

use crate::fleet::{Fleet, FleetEngine};
use crate::workers::{ProcEngine, WorkerLimits, WorkerPool};
use autocc_bmc::{
    config_fingerprint, content_key, BmcEngine, CertificateStatus, CheckConfig, CheckEngine,
    CheckMode, ContentKey, FailureReason, Isolation, JobFailure, Portfolio,
};
use autocc_core::{
    AutoCcOutcome, CheckReport, FpvTestbench, PropertyCluster, PropertyVerdict, TableRow,
};
use autocc_journal::{Journal, JournalEntry, JournalError, JournalHeader, JOURNAL_SCHEMA_VERSION};
use autocc_telemetry::{SolverCounters, SpanKind};
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

/// One experiment of a campaign: a testbench builder plus the metadata
/// that names its table row and telemetry span.
pub struct CampaignTask {
    /// Table-row id (`V5`, `C2`, ...).
    pub id: String,
    /// Table-row description.
    pub description: String,
    /// Experiment span name (`vscale:V5`, `cva6`, ...).
    pub span: String,
    /// Bounded check or unbounded proof.
    pub mode: CheckMode,
    /// Builds the testbench (runs inside the worker, under the span).
    pub build: Box<dyn FnOnce() -> FpvTestbench + Send>,
    /// Check-engine override — the seam hang/fault tests use to inject
    /// misbehaving engines. `None` runs the standard portfolio. Only
    /// honoured in [`CheckMode::Check`].
    pub engine: Option<Arc<dyn CheckEngine + Send + Sync>>,
}

impl CampaignTask {
    /// A bounded-check task.
    pub fn check(
        id: impl Into<String>,
        description: impl Into<String>,
        span: impl Into<String>,
        build: impl FnOnce() -> FpvTestbench + Send + 'static,
    ) -> CampaignTask {
        CampaignTask {
            id: id.into(),
            description: description.into(),
            span: span.into(),
            mode: CheckMode::Check,
            build: Box::new(build),
            engine: None,
        }
    }

    /// An unbounded-proof task.
    pub fn prove(
        id: impl Into<String>,
        description: impl Into<String>,
        span: impl Into<String>,
        build: impl FnOnce() -> FpvTestbench + Send + 'static,
    ) -> CampaignTask {
        CampaignTask {
            mode: CheckMode::Prove,
            ..CampaignTask::check(id, description, span, build)
        }
    }

    /// Overrides the check engine (test seam).
    pub fn with_engine(mut self, engine: Arc<dyn CheckEngine + Send + Sync>) -> CampaignTask {
        self.engine = Some(engine);
        self
    }
}

/// Journal and watchdog knobs for one campaign run.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Journal path; `None` runs the campaign without durability.
    pub journal: Option<PathBuf>,
    /// Resume from an existing journal (`--resume`).
    pub resume: bool,
    /// Discard any existing journal and start over (`--fresh`).
    pub fresh: bool,
    /// Re-run journaled `FAILED` checks instead of serving them
    /// (`--retry-failed`).
    pub retry_failed: bool,
    /// Watchdog hard limit as a multiple of the per-job time budget
    /// (scaled by property count for bounded checks). `0` disarms the
    /// watchdog; it is also disarmed when no time budget is configured.
    pub hang_factor: u32,
    /// Worker pool for process-isolated checks. Only consulted when the
    /// campaign config asks for [`Isolation::Subprocess`] or a fleet is
    /// attached; `None` then builds a default pool (`current_exe()
    /// worker`, limits from the config). Tests inject pools pointing at
    /// a report binary or carrying fault-injection environment.
    pub pool: Option<Arc<WorkerPool>>,
    /// Remote worker fleet (`--listen`). When set, live checks dispatch
    /// to connected `worker --connect` processes under lease-based
    /// ownership, degrading to the local pool (and in-process) when the
    /// fleet cannot answer. Never changes answers — fleet knobs stay
    /// out of `content_key`, and remote workers run the same engines on
    /// the same deterministic budgets.
    pub fleet: Option<Arc<Fleet>>,
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        CampaignOptions {
            journal: None,
            resume: false,
            fresh: false,
            retry_failed: false,
            hang_factor: 4,
            pool: None,
            fleet: None,
        }
    }
}

impl CampaignOptions {
    /// No journal, default watchdog — the mode the plain table functions
    /// use.
    pub fn off() -> CampaignOptions {
        CampaignOptions::default()
    }
}

/// Counters describing how a campaign's rows were produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Rows served from the journal (including skipped failures).
    pub cached: u64,
    /// Rows produced by live checks this run.
    pub live: u64,
    /// Journaled CEXs that failed replay certification and were re-run
    /// live (counted under `live` as well).
    pub stale: u64,
    /// Live checks abandoned by the watchdog this run.
    pub hangs: u64,
    /// Journaled `FAILED` rows served without a retry (subset of
    /// `cached`; pass `--retry-failed` to re-run them).
    pub skipped_failed: u64,
}

impl fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} served from cache ({} failed rows skipped), {} live ({} stale re-runs, {} hangs)",
            self.cached, self.skipped_failed, self.live, self.stale, self.hangs
        )
    }
}

/// A finished campaign: the table rows plus the journal statistics.
#[derive(Clone, Debug)]
pub struct CampaignOutcome {
    /// Table rows, in task order.
    pub rows: Vec<TableRow>,
    /// How the rows were produced.
    pub stats: CampaignStats,
}

/// Why a campaign could not start.
#[derive(Debug)]
pub enum CampaignError {
    /// The journal file could not be created, read, or recovered.
    Journal(JournalError),
    /// A journal exists at the path but neither `--resume` nor `--fresh`
    /// was given; refusing to guess whether to reuse or destroy it.
    ExistsWithoutResume(PathBuf),
    /// The journal was written under a different check configuration;
    /// its cached answers would not match this campaign's questions.
    FingerprintMismatch {
        /// Fingerprint of the current configuration.
        expected: u64,
        /// Fingerprint pinned in the journal header.
        found: u64,
    },
    /// The journal belongs to a different campaign (`table1` journal
    /// passed to `report_table2`, ...).
    RootMismatch {
        /// This campaign's name.
        expected: String,
        /// Campaign name pinned in the journal header.
        found: String,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Journal(e) => write!(f, "{e}"),
            CampaignError::ExistsWithoutResume(path) => write!(
                f,
                "journal {} already exists: pass --resume to continue it or --fresh to discard it",
                path.display()
            ),
            CampaignError::FingerprintMismatch { expected, found } => write!(
                f,
                "journal was written under a different check configuration \
                 (fingerprint {found:016x}, current {expected:016x}); \
                 re-run with the original flags or pass --fresh"
            ),
            CampaignError::RootMismatch { expected, found } => write!(
                f,
                "journal belongs to campaign `{found}`, not `{expected}`; \
                 pass a different --journal path or --fresh"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<JournalError> for CampaignError {
    fn from(e: JournalError) -> CampaignError {
        CampaignError::Journal(e)
    }
}

/// Journal handle plus the recovered check cache, shared by the workers.
struct SharedJournal {
    journal: Mutex<Journal>,
    /// Recovered entries by content key; for re-run checks the latest
    /// record wins.
    cache: HashMap<ContentKey, JournalEntry>,
}

#[derive(Default)]
struct Counters {
    cached: AtomicU64,
    live: AtomicU64,
    stale: AtomicU64,
    hangs: AtomicU64,
    skipped_failed: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> CampaignStats {
        CampaignStats {
            cached: self.cached.load(Ordering::Relaxed),
            live: self.live.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            hangs: self.hangs.load(Ordering::Relaxed),
            skipped_failed: self.skipped_failed.load(Ordering::Relaxed),
        }
    }
}

/// Runs a campaign: fans `tasks` across `config.jobs` portfolio workers
/// (results merge in task order), journaling each completed check when
/// `options.journal` is set. Fails fast — before any check runs — if the
/// journal cannot be opened or belongs to a different campaign or
/// configuration.
pub fn run_campaign(
    name: &str,
    tasks: Vec<CampaignTask>,
    config: &CheckConfig,
    options: &CampaignOptions,
) -> Result<CampaignOutcome, CampaignError> {
    let shared = match &options.journal {
        None => None,
        Some(path) => Some(open_journal(path, name, config, options)?),
    };
    let counters = Counters::default();
    // One pool supervises the whole campaign, so kill counts and the
    // quarantine ledger aggregate across tasks and retries. A fleet
    // always gets a pool: it is the fallback rung when remote workers
    // drain out.
    let want_pool = matches!(config.isolation, Isolation::Subprocess) || options.fleet.is_some();
    let pool: Option<Arc<WorkerPool>> = if want_pool {
        Some(
            options
                .pool
                .clone()
                .unwrap_or_else(|| Arc::new(WorkerPool::new(WorkerLimits::from_config(config)))),
        )
    } else {
        None
    };

    let meta: Vec<(String, String)> = tasks
        .iter()
        .map(|t| (t.id.clone(), t.description.clone()))
        .collect();
    let jobs = config.jobs;
    let workers: Vec<Box<dyn FnOnce() -> TableRow + Send + '_>> = tasks
        .into_iter()
        .map(|task| {
            let shared = shared.as_ref();
            let counters = &counters;
            let pool = pool.as_ref();
            let worker: Box<dyn FnOnce() -> TableRow + Send + '_> =
                Box::new(move || run_task(task, config, options, shared, pool, counters));
            worker
        })
        .collect();
    let rows: Vec<TableRow> = Portfolio::new(jobs)
        .try_run(workers)
        .into_iter()
        .zip(meta)
        .map(|(result, (id, desc))| {
            result.unwrap_or_else(|p| TableRow::failed(id, desc, p.payload))
        })
        .collect();

    let stats = counters.snapshot();
    if config.telemetry.enabled() {
        config.telemetry.gauge("journal_cache_hits", stats.cached);
        config.telemetry.gauge("journal_live_checks", stats.live);
        config.telemetry.gauge("journal_hangs", stats.hangs);
        if let Some(fleet) = &options.fleet {
            use autocc_telemetry::gauges;
            let fs = fleet.stats();
            config
                .telemetry
                .gauge(gauges::WORKERS_CONNECTED, fs.workers_seen);
            config
                .telemetry
                .gauge(gauges::WORKERS_PEAK, fs.workers_peak);
            config
                .telemetry
                .gauge(gauges::LEASES_EXPIRED, fs.leases_expired);
            config
                .telemetry
                .gauge(gauges::JOBS_REASSIGNED, fs.jobs_reassigned);
            config
                .telemetry
                .gauge(gauges::DUPLICATE_RESULTS, fs.duplicate_results);
            config.telemetry.gauge(gauges::JOBS_REMOTE, fs.jobs_remote);
            config
                .telemetry
                .gauge(gauges::FALLBACK_ENGAGED, fs.fallback_jobs);
        }
    }
    Ok(CampaignOutcome { rows, stats })
}

/// Opens the campaign journal per the `--resume`/`--fresh` policy and
/// builds the content-addressed cache from its recovered entries.
fn open_journal(
    path: &std::path::Path,
    name: &str,
    config: &CheckConfig,
    options: &CampaignOptions,
) -> Result<SharedJournal, CampaignError> {
    let fingerprint = config_fingerprint(config);
    let header = JournalHeader {
        schema: JOURNAL_SCHEMA_VERSION,
        fingerprint,
        root: name.to_string(),
    };
    if options.fresh || !path.exists() {
        let journal = Journal::create(path, &header)?;
        return Ok(SharedJournal {
            journal: Mutex::new(journal),
            cache: HashMap::new(),
        });
    }
    if !options.resume {
        return Err(CampaignError::ExistsWithoutResume(path.to_path_buf()));
    }
    let (journal, recovered) = Journal::resume(path)?;
    if recovered.header.root != name {
        return Err(CampaignError::RootMismatch {
            expected: name.to_string(),
            found: recovered.header.root,
        });
    }
    if recovered.header.fingerprint != fingerprint {
        return Err(CampaignError::FingerprintMismatch {
            expected: fingerprint,
            found: recovered.header.fingerprint,
        });
    }
    if recovered.torn_bytes > 0 {
        eprintln!(
            "journal {}: discarded a torn final record ({} bytes); its check will re-run",
            path.display(),
            recovered.torn_bytes
        );
    }
    let mut cache = HashMap::new();
    for entry in recovered.entries {
        cache.insert(entry.key, entry);
    }
    Ok(SharedJournal {
        journal: Mutex::new(journal),
        cache,
    })
}

/// Runs one task under its experiment span: cache lookup, certification,
/// live run with watchdog, journal append.
fn run_task(
    task: CampaignTask,
    config: &CheckConfig,
    options: &CampaignOptions,
    shared: Option<&SharedJournal>,
    pool: Option<&Arc<WorkerPool>>,
    counters: &Counters,
) -> TableRow {
    let span = config.telemetry.child(SpanKind::Experiment, &task.span);
    let mut scoped = config.clone().jobs(1);
    scoped.telemetry = span.clone();

    let CampaignTask {
        id,
        description,
        mode,
        build,
        engine,
        ..
    } = task;
    let ft = build();
    let id = &id;
    let mode = &mode;

    let row = match shared {
        None => {
            counters.live.fetch_add(1, Ordering::Relaxed);
            let (report, _) = run_live(
                ft,
                &scoped,
                *mode,
                engine.clone(),
                pool,
                options,
                1,
                counters,
            );
            TableRow::from_report(id, &description, &report)
        }
        Some(shared) => {
            // Decomposed bounded checks journal per cluster, so a resume
            // re-runs only the clusters whose cones changed. Engine
            // overrides (the fault-injection seam) keep the task-level
            // path: their misbehaviour is part of the task's identity.
            let ft = if *mode == CheckMode::Check && engine.is_none() {
                match run_task_clustered(
                    id,
                    &description,
                    ft,
                    &scoped,
                    options,
                    shared,
                    pool,
                    counters,
                ) {
                    Ok(row) => {
                        span.close();
                        return row;
                    }
                    Err(ft) => *ft,
                }
            } else {
                ft
            };
            let key = content_key(
                ft.miter(),
                ft.properties(),
                ft.constraints(),
                &scoped,
                *mode,
            );
            let cached = shared.cache.get(&key);
            match serve_cached(cached, &ft, options, &scoped, counters) {
                Some(report) => TableRow::from_report(id, &description, &report).cached(true),
                None => {
                    counters.live.fetch_add(1, Ordering::Relaxed);
                    let attempt = cached.map_or(1, |e| e.attempt + 1);
                    let (report, hung) = run_live(
                        ft,
                        &scoped,
                        *mode,
                        engine.clone(),
                        pool,
                        options,
                        attempt,
                        counters,
                    );
                    let entry = JournalEntry {
                        key,
                        id: id.clone(),
                        mode: *mode,
                        engine: if hung { "watchdog" } else { "portfolio" }.to_string(),
                        attempt,
                        report: report.clone(),
                    };
                    append_entry(shared, &entry, id);
                    TableRow::from_report(id, &description, &report)
                }
            }
        }
    };
    span.close();
    row
}

/// Appends one record, degrading to a warning (re-run on resume) when
/// the journal cannot take it.
fn append_entry(shared: &SharedJournal, entry: &JournalEntry, id: &str) {
    match shared.journal.lock() {
        Ok(mut journal) => {
            if let Err(e) = journal.append(entry) {
                eprintln!(
                    "warning: journal append failed for {id}: {e}; \
                     this check will re-run on resume"
                );
            }
        }
        Err(_) => eprintln!(
            "warning: journal poisoned by a panicked worker; \
             {id} will re-run on resume"
        ),
    }
}

/// Runs a decomposed bounded check with per-cluster journaling: each
/// cone cluster is served from the cache (CEXs replay-certified first),
/// or run live under its own watchdog and appended as its own record
/// keyed by the cluster's content. Returns `Err(ft)` — handing the
/// testbench back (boxed, so the happy path isn't taxed with the full
/// struct) for the task-level path — at monolithic granularity.
#[allow(clippy::too_many_arguments)]
fn run_task_clustered(
    id: &str,
    description: &str,
    ft: FpvTestbench,
    scoped: &CheckConfig,
    options: &CampaignOptions,
    shared: &SharedJournal,
    pool: Option<&Arc<WorkerPool>>,
    counters: &Counters,
) -> Result<TableRow, Box<FpvTestbench>> {
    let Some(plan) = ft.cluster_plan(scoped) else {
        return Err(Box::new(ft));
    };
    let keys = ft.cluster_keys(&plan, scoped, CheckMode::Check);
    // The watchdog abandons a wedged cluster by detaching its thread, so
    // the solve closure must own the testbench: share it.
    let ft = Arc::new(ft);
    let mut reports = Vec::with_capacity(plan.clusters.len());
    for (cluster, key) in plan.clusters.iter().zip(keys) {
        let cached = shared.cache.get(&key);
        if let Some(report) = serve_cached(cached, &ft, options, scoped, counters) {
            reports.push(report);
            continue;
        }
        counters.live.fetch_add(1, Ordering::Relaxed);
        let attempt = cached.map_or(1, |e| e.attempt + 1);
        let (report, hung) =
            run_cluster_live(&ft, cluster, scoped, pool, options, attempt, counters);
        let entry = JournalEntry {
            key,
            id: format!("{id}:{}", cluster.label),
            mode: CheckMode::Check,
            engine: if hung { "watchdog" } else { "portfolio" }.to_string(),
            attempt,
            report: report.clone(),
        };
        append_entry(shared, &entry, id);
        reports.push(report);
    }
    let report = ft.merge_cluster_reports(&plan, reports, scoped);
    Ok(TableRow::from_report(id, description, &report))
}

/// Runs one cluster live, under the supervisor watchdog when armed.
/// Returns the cluster report and whether the watchdog fired.
fn run_cluster_live(
    ft: &Arc<FpvTestbench>,
    cluster: &PropertyCluster,
    scoped: &CheckConfig,
    pool: Option<&Arc<WorkerPool>>,
    options: &CampaignOptions,
    attempt: u32,
    counters: &Counters,
) -> (CheckReport, bool) {
    // A cluster's members share one solve, but depth still deepens per
    // property violation candidate; scale the hard limit by member count
    // exactly as the task-level watchdog scales by property count.
    let limit = scoped
        .time_budget
        .filter(|_| options.hang_factor >= 1)
        .map(|budget| budget * options.hang_factor * cluster.members.len().max(1) as u32);
    let config = scoped.clone();
    let pool = pool.map(Arc::clone);
    let fleet = options.fleet.clone();
    let ft_run = Arc::clone(ft);
    let cluster_run = cluster.clone();
    let solve = move || match (&fleet, &pool) {
        (Some(fleet), pool) => ft_run.check_cluster(
            &cluster_run,
            &config,
            &FleetEngine::for_check(Arc::clone(fleet), pool.clone()),
        ),
        (None, Some(pool)) => ft_run.check_cluster(
            &cluster_run,
            &config,
            &ProcEngine::for_check(Arc::clone(pool)),
        ),
        (None, None) => ft_run.check_cluster(&cluster_run, &config, &BmcEngine),
    };
    let Some(limit) = limit else {
        return (solve(), false);
    };
    match run_under_watchdog(limit, solve) {
        Some(report) => (report, false),
        None => {
            counters.hangs.fetch_add(1, Ordering::Relaxed);
            let failure = JobFailure {
                engine: "watchdog".to_string(),
                property: None,
                depth: 0,
                reason: FailureReason::Hang,
                detail: format!(
                    "cluster {}: no result within {}x the configured time budget \
                     ({}s hard limit)",
                    cluster.label,
                    options.hang_factor,
                    limit.as_secs()
                ),
                attempts: attempt,
            };
            let verdicts = cluster
                .members
                .iter()
                .map(|&i| (ft.properties()[i].0.clone(), PropertyVerdict::Failed))
                .collect();
            let report = CheckReport {
                outcome: AutoCcOutcome::Failed {
                    failures: vec![failure],
                },
                elapsed: limit,
                stats: SolverCounters::default(),
                verdicts,
                certificate: CertificateStatus::Uncertified,
            };
            (report, true)
        }
    }
}

/// Decides whether a journaled entry can answer this check. Returns the
/// report to serve, or `None` to run live.
fn serve_cached(
    cached: Option<&JournalEntry>,
    ft: &FpvTestbench,
    options: &CampaignOptions,
    scoped: &CheckConfig,
    counters: &Counters,
) -> Option<CheckReport> {
    let entry = cached?;
    let failed = matches!(entry.report.outcome, AutoCcOutcome::Failed { .. });
    if failed && options.retry_failed {
        return None;
    }
    // Under --certify a conclusive verdict must carry a certificate. A
    // cached row recorded without one (an uncertified campaign's journal)
    // cannot be served as certified — re-run it live to mint the proof.
    let conclusive = matches!(
        entry.report.outcome,
        AutoCcOutcome::Cex(_) | AutoCcOutcome::Clean { .. } | AutoCcOutcome::Proved { .. }
    );
    if scoped.certify && conclusive && !entry.report.certificate.is_certified() {
        counters.stale.fetch_add(1, Ordering::Relaxed);
        return None;
    }
    let report = match &entry.report.outcome {
        AutoCcOutcome::Cex(cex) => {
            // Never trust a cached counterexample: replay-certify it
            // against the freshly built testbench. A journal edited or
            // produced by a diverging build re-runs instead of lying.
            let raw = autocc_bmc::Cex {
                property: cex.property.clone(),
                depth: cex.depth,
                trace: cex.trace.clone(),
            };
            match ft.certify_cex(&raw) {
                Ok(certified) => CheckReport {
                    outcome: AutoCcOutcome::Cex(Box::new(certified)),
                    elapsed: entry.report.elapsed,
                    stats: entry.report.stats,
                    verdicts: entry.report.verdicts.clone(),
                    certificate: entry.report.certificate,
                },
                Err(failure) => {
                    eprintln!(
                        "journal: cached CEX for {} failed certification ({}); re-running",
                        entry.id, failure.detail
                    );
                    counters.stale.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        }
        _ => entry.report.clone(),
    };
    // Telemetry marks the row as replayed, not solved.
    let replay = scoped.telemetry.child(SpanKind::Phase, "journal-replay");
    replay.gauge("journal_cached", 1);
    replay.close();
    counters.cached.fetch_add(1, Ordering::Relaxed);
    if failed {
        counters.skipped_failed.fetch_add(1, Ordering::Relaxed);
    }
    Some(report)
}

/// Runs the check live, under the supervisor watchdog when armed.
/// Returns the report and whether the watchdog fired.
#[allow(clippy::too_many_arguments)]
fn run_live(
    ft: FpvTestbench,
    scoped: &CheckConfig,
    mode: CheckMode,
    engine: Option<Arc<dyn CheckEngine + Send + Sync>>,
    pool: Option<&Arc<WorkerPool>>,
    options: &CampaignOptions,
    attempt: u32,
    counters: &Counters,
) -> (CheckReport, bool) {
    // Bounded checks run their properties serially, each with its own
    // time budget; the hard limit scales accordingly.
    let serial_jobs = match mode {
        CheckMode::Check => ft.properties().len().max(1) as u32,
        CheckMode::Prove => 1,
    };
    let limit = scoped
        .time_budget
        .filter(|_| options.hang_factor >= 1)
        .map(|budget| budget * options.hang_factor * serial_jobs);
    let config = scoped.clone();
    let pool = pool.map(Arc::clone);
    let fleet = options.fleet.clone();
    let solve = move || match mode {
        // An explicit engine override (the test seam) wins even over
        // the fleet and isolation; then the fleet (with the pool as its
        // fallback rung); then a pool substitutes the subprocess
        // engines.
        CheckMode::Check => match (engine, &fleet, &pool) {
            (Some(engine), _, _) => ft.check_portfolio_with(&config, &*engine),
            (None, Some(fleet), pool) => ft.check_portfolio_with(
                &config,
                &FleetEngine::for_check(Arc::clone(fleet), pool.clone()),
            ),
            (None, None, Some(pool)) => {
                ft.check_portfolio_with(&config, &ProcEngine::for_check(Arc::clone(pool)))
            }
            (None, None, None) => ft.check_portfolio(&config),
        },
        CheckMode::Prove => match (&fleet, &pool) {
            (Some(fleet), pool) => {
                let induction = FleetEngine::for_prove(Arc::clone(fleet), pool.clone());
                if config.jobs > 1 {
                    let falsifier = FleetEngine::falsifier(Arc::clone(fleet), pool.clone());
                    ft.prove_portfolio_with(&config, &[&induction, &falsifier])
                } else {
                    ft.prove_portfolio_with(&config, &[&induction])
                }
            }
            (None, Some(pool)) => {
                let induction = ProcEngine::for_prove(Arc::clone(pool));
                if config.jobs > 1 {
                    let falsifier = ProcEngine::falsifier(Arc::clone(pool));
                    ft.prove_portfolio_with(&config, &[&induction, &falsifier])
                } else {
                    ft.prove_portfolio_with(&config, &[&induction])
                }
            }
            (None, None) => ft.prove_portfolio(&config),
        },
    };
    let Some(limit) = limit else {
        return (solve(), false);
    };
    match run_under_watchdog(limit, solve) {
        Some(report) => (report, false),
        None => {
            counters.hangs.fetch_add(1, Ordering::Relaxed);
            let failure = JobFailure {
                engine: "watchdog".to_string(),
                property: None,
                depth: 0,
                reason: FailureReason::Hang,
                detail: format!(
                    "no result within {}x the configured time budget ({}s hard limit)",
                    options.hang_factor,
                    limit.as_secs()
                ),
                attempts: attempt,
            };
            let report = CheckReport {
                outcome: AutoCcOutcome::Failed {
                    failures: vec![failure],
                },
                elapsed: limit,
                stats: SolverCounters::default(),
                verdicts: Vec::new(),
                certificate: CertificateStatus::Uncertified,
            };
            (report, true)
        }
    }
}

/// Runs `solve` on a supervised thread; `None` means the hard limit
/// elapsed with no result. The abandoned solver thread is detached — it
/// still holds its testbench, a deliberate leak that trades memory for
/// letting the rest of the campaign proceed past a wedged solver.
fn run_under_watchdog(
    limit: Duration,
    solve: impl FnOnce() -> CheckReport + Send + 'static,
) -> Option<CheckReport> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(solve));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(limit) {
        Ok(Ok(report)) => Some(report),
        // Re-raise on the worker so the portfolio's panic containment
        // renders the row FAILED exactly as it would without a watchdog.
        Ok(Err(payload)) => std::panic::resume_unwind(payload),
        Err(_) => None,
    }
}
