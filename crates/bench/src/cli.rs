//! Tiny flag parser shared by the report binaries.

use crate::campaign::CampaignOptions;
use crate::fleet::{Fleet, FleetConfig};
use crate::workers::WorkerLimits;
use autocc_bmc::{CheckConfig, Granularity};
use autocc_core::{format_table, format_table_detailed, format_table_stable, TableRow};
use autocc_telemetry::{ProfileRecorder, Telemetry};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Flags common to every report binary.
#[derive(Clone, Debug)]
pub struct ReportArgs {
    /// `--jobs N`: portfolio workers fanning experiments (min 1).
    pub jobs: usize,
    /// `--slice on|off`: per-property cone-of-influence slicing.
    pub slice: bool,
    /// `--granularity monolithic|output|register`: property decomposition
    /// level. `output` checks each output-equality assertion through the
    /// cone-clustered path; `register` also emits per-arch-state
    /// attribution properties naming the leaking signal.
    pub granularity: Granularity,
    /// `--cluster-overlap FRACTION`: minimum Jaccard cone overlap for two
    /// decomposed properties to share a sliced cluster.
    pub cluster_overlap: Option<f64>,
    /// `--retries N`: retries for panicked check jobs.
    pub retries: u32,
    /// `--timeout SECS`: wall-clock budget per check job; overrides the
    /// experiment's default time budget. Enforced mid-solve. Per job, not
    /// per experiment: a shared experiment-level deadline would make each
    /// job's remaining time depend on scheduling order and break the
    /// `jobs`-invariance of the merged outcome.
    pub timeout: Option<Duration>,
    /// `--poll-interval N`: conflicts between solver deadline/hook polls.
    pub poll_interval: u64,
    /// `--stable`: omit the Time column so output is byte-reproducible.
    pub stable: bool,
    /// `--detailed`: per-row solver-work columns (solves, conflicts).
    pub detailed: bool,
    /// `--profile PATH`: write a JSON run profile (span tree + rollups).
    pub profile: Option<PathBuf>,
    /// `--depth N`: override the experiment's default check depth.
    pub depth: Option<usize>,
    /// `--journal PATH`: crash-safe campaign journal with a
    /// content-addressed check cache.
    pub journal: Option<PathBuf>,
    /// `--resume`: continue an existing journal, serving completed
    /// checks from it.
    pub resume: bool,
    /// `--fresh`: discard any existing journal and start over.
    pub fresh: bool,
    /// `--retry-failed`: re-run journaled FAILED checks on resume
    /// instead of serving them.
    pub retry_failed: bool,
    /// `--hang-factor N`: watchdog hard limit as a multiple of the
    /// per-job time budget (0 disarms the watchdog).
    pub hang_factor: u32,
    /// `--isolate`: run each check attempt in a supervised worker
    /// subprocess (same answers, process-sized blast radius).
    pub isolate: bool,
    /// `--memory-limit-mb N`: RSS ceiling per isolated worker, enforced
    /// by the supervisor on every heartbeat. Implies nothing without
    /// `--isolate`.
    pub memory_limit_mb: Option<u64>,
    /// `--worker-heartbeat-ms N`: heartbeat period for isolated workers.
    pub worker_heartbeat_ms: Option<u64>,
    /// `--certify`: demand an independently checked certificate for every
    /// conclusive verdict — a DRAT proof (checked by the self-contained
    /// forward RUP checker) for UNSAT-backed answers, a replay-validated
    /// trace hash for counterexamples. A missing or failed certificate
    /// degrades the row to FAILED (certification), never to a PASS.
    pub certify: bool,
    /// `--listen ADDR`: accept remote `worker --connect` processes on
    /// `ADDR` (e.g. `127.0.0.1:0`) and dispatch checks to them under
    /// lease-based ownership, degrading to local execution when the
    /// fleet drains. Never changes answers.
    pub listen: Option<String>,
    /// `--lease-factor N`: lease = time budget × N × property count.
    pub lease_factor: Option<u64>,
    /// `--fleet-grace-ms N`: with zero workers connected, jobs queued
    /// longer than this fall back to local execution.
    pub fleet_grace_ms: Option<u64>,
    /// `--fleet-lease-ms N`: fixed per-dispatch lease, overriding the
    /// budget-derived formula (fault-injection tests use this to expire
    /// leases quickly).
    pub fleet_lease_ms: Option<u64>,
}

impl Default for ReportArgs {
    fn default() -> ReportArgs {
        ReportArgs {
            jobs: 1,
            slice: false,
            granularity: Granularity::Monolithic,
            cluster_overlap: None,
            retries: 1,
            timeout: None,
            poll_interval: 128,
            stable: false,
            detailed: false,
            profile: None,
            depth: None,
            journal: None,
            resume: false,
            fresh: false,
            retry_failed: false,
            hang_factor: CampaignOptions::default().hang_factor,
            isolate: false,
            memory_limit_mb: None,
            worker_heartbeat_ms: None,
            certify: false,
            listen: None,
            lease_factor: None,
            fleet_grace_ms: None,
            fleet_lease_ms: None,
        }
    }
}

impl ReportArgs {
    /// Applies the parsed flags to an experiment's base config.
    pub fn configure(&self, base: CheckConfig) -> CheckConfig {
        let mut config = base
            .jobs(self.jobs)
            .slice(self.slice)
            .granularity(self.granularity)
            .retries(self.retries)
            .poll_interval(self.poll_interval);
        if let Some(overlap) = self.cluster_overlap {
            config = config.cluster_overlap(overlap);
        }
        if let Some(t) = self.timeout {
            config = config.timeout(t);
        }
        if let Some(d) = self.depth {
            config = config.depth(d);
        }
        if self.isolate {
            config = config.isolate().memory_limit_mb(self.memory_limit_mb);
        }
        if let Some(ms) = self.worker_heartbeat_ms {
            config = config.heartbeat_ms(ms);
        }
        config.certify(self.certify)
    }

    /// The campaign journal/watchdog options these flags describe. The
    /// worker pool stays `None`: the campaign builds its own from the
    /// config's isolation knobs (tests inject a pool directly). With
    /// `--listen`, binds the fleet listener here — a bind failure is
    /// fatal before any check runs.
    pub fn campaign_options(&self) -> CampaignOptions {
        let fleet = self.listen.as_deref().map(|addr| {
            let mut fc = FleetConfig {
                limits: WorkerLimits {
                    memory_limit_mb: self.memory_limit_mb,
                    heartbeat_ms: self.worker_heartbeat_ms.unwrap_or(250).max(1),
                    ..WorkerLimits::default()
                },
                ..FleetConfig::default()
            };
            if let Some(f) = self.lease_factor {
                fc.lease_factor = f.max(1);
            }
            if let Some(ms) = self.fleet_grace_ms {
                fc.fallback_grace = Duration::from_millis(ms);
            }
            if let Some(ms) = self.fleet_lease_ms {
                fc.lease_override = Some(Duration::from_millis(ms.max(1)));
            }
            match Fleet::listen(addr, fc) {
                Ok(fleet) => {
                    eprintln!("fleet: listening on {}", fleet.addr());
                    fleet
                }
                Err(e) => {
                    eprintln!("error: cannot listen on {addr}: {e}");
                    std::process::exit(2);
                }
            }
        });
        CampaignOptions {
            journal: self.journal.clone(),
            resume: self.resume,
            fresh: self.fresh,
            retry_failed: self.retry_failed,
            hang_factor: self.hang_factor,
            pool: None,
            fleet,
        }
    }

    /// [`ReportArgs::configure`] plus profile instrumentation: with
    /// `--profile PATH`, attaches a [`ProfileRecorder`] whose root run
    /// span is named `root` and returns the sink that serializes the
    /// profile once the run finishes. Without the flag, telemetry stays
    /// disabled and instrumentation is a no-op.
    pub fn instrument(&self, base: CheckConfig, root: &str) -> (CheckConfig, Option<ProfileSink>) {
        let mut config = self.configure(base);
        let Some(path) = &self.profile else {
            return (config, None);
        };
        let recorder = Arc::new(ProfileRecorder::new());
        let telemetry = Telemetry::root(recorder.clone(), root);
        config.telemetry = telemetry.clone();
        (
            config,
            Some(ProfileSink {
                path: path.clone(),
                recorder,
                root: telemetry,
            }),
        )
    }

    /// Renders `rows` honouring `--stable` (no Time column) and
    /// `--detailed` (per-row solver-work columns). `--stable` wins when
    /// both are given: reproducible output is the point of that flag.
    pub fn render_table(&self, title: &str, rows: &[TableRow]) -> String {
        if self.stable {
            format_table_stable(title, rows)
        } else if self.detailed {
            format_table_detailed(title, rows)
        } else {
            format_table(title, rows)
        }
    }
}

/// Where a `--profile` run writes its JSON profile.
pub struct ProfileSink {
    path: PathBuf,
    recorder: Arc<ProfileRecorder>,
    root: Telemetry,
}

impl ProfileSink {
    /// Closes the root run span and writes the versioned JSON profile.
    pub fn write(&self) -> std::io::Result<()> {
        self.root.close();
        std::fs::write(&self.path, self.recorder.profile().to_json())
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Shuts a `--listen` fleet down (closing worker connections at the
/// next job boundary) and prints its one-line summary. Idempotent; a
/// no-op for local campaigns.
pub fn finish_fleet(options: &CampaignOptions) {
    if let Some(fleet) = &options.fleet {
        fleet.shutdown();
        eprintln!("fleet: {}", fleet.stats());
    }
}

/// Writes the profile (if a sink exists) and reports where it went.
/// Serialization failures are fatal: a requested profile that cannot be
/// written exits with status 2.
pub fn finish_profile(sink: &Option<ProfileSink>) {
    if let Some(sink) = sink {
        if let Err(e) = sink.write() {
            eprintln!("error: cannot write profile {}: {e}", sink.path().display());
            std::process::exit(2);
        }
        eprintln!("profile written to {}", sink.path().display());
    }
}

/// Parses `--jobs N`, `--slice on|off`, `--retries N`, `--timeout SECS`,
/// `--poll-interval N`, `--profile PATH`, `--depth N`, `--stable`,
/// `--detailed`, the journal flags (`--journal PATH`, `--resume`,
/// `--fresh`, `--retry-failed`, `--hang-factor N`), the isolation
/// flags (`--isolate`, `--memory-limit-mb N`, `--worker-heartbeat-ms N`),
/// and `--certify` from `argv`. Unknown flags print `usage` and exit
/// with status 2.
pub fn parse_report_args(usage: &str) -> ReportArgs {
    parse_report_arg_list(usage, std::env::args().skip(1))
}

fn parse_report_arg_list(usage: &str, args: impl Iterator<Item = String>) -> ReportArgs {
    let mut parsed = ReportArgs::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                parsed.jobs = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&j| j >= 1)
                    .unwrap_or_else(|| die(usage, "--jobs needs a positive integer"));
            }
            "--slice" => {
                parsed.slice = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => die(usage, "--slice needs `on` or `off`"),
                };
            }
            "--granularity" => {
                parsed.granularity = args
                    .next()
                    .as_deref()
                    .and_then(Granularity::parse)
                    .unwrap_or_else(|| {
                        die(usage, "--granularity needs monolithic, output, or register")
                    });
            }
            "--cluster-overlap" => {
                parsed.cluster_overlap = Some(
                    args.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|f| f.is_finite() && (0.0..=1.0).contains(f))
                        .unwrap_or_else(|| {
                            die(usage, "--cluster-overlap needs a fraction in [0, 1]")
                        }),
                );
            }
            "--retries" => {
                parsed.retries = args
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .unwrap_or_else(|| die(usage, "--retries needs a non-negative integer"));
            }
            "--timeout" => {
                let secs = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&s| s >= 1)
                    .unwrap_or_else(|| die(usage, "--timeout needs a positive number of seconds"));
                parsed.timeout = Some(Duration::from_secs(secs));
            }
            "--poll-interval" => {
                parsed.poll_interval = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&p| p >= 1)
                    .unwrap_or_else(|| die(usage, "--poll-interval needs a positive integer"));
            }
            "--profile" => {
                parsed.profile =
                    Some(PathBuf::from(args.next().unwrap_or_else(|| {
                        die(usage, "--profile needs an output path")
                    })));
            }
            "--depth" => {
                parsed.depth = Some(
                    args.next()
                        .and_then(|v| v.parse::<usize>().ok())
                        .filter(|&d| d >= 1)
                        .unwrap_or_else(|| die(usage, "--depth needs a positive integer")),
                );
            }
            "--journal" => {
                parsed.journal =
                    Some(PathBuf::from(args.next().unwrap_or_else(|| {
                        die(usage, "--journal needs a file path")
                    })));
            }
            "--resume" => parsed.resume = true,
            "--fresh" => parsed.fresh = true,
            "--retry-failed" => parsed.retry_failed = true,
            "--hang-factor" => {
                parsed.hang_factor = args
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .unwrap_or_else(|| die(usage, "--hang-factor needs a non-negative integer"));
            }
            "--isolate" => parsed.isolate = true,
            "--certify" => parsed.certify = true,
            "--memory-limit-mb" => {
                parsed.memory_limit_mb = Some(
                    args.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .filter(|&m| m >= 1)
                        .unwrap_or_else(|| {
                            die(usage, "--memory-limit-mb needs a positive integer")
                        }),
                );
            }
            "--worker-heartbeat-ms" => {
                parsed.worker_heartbeat_ms = Some(
                    args.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .filter(|&m| m >= 1)
                        .unwrap_or_else(|| {
                            die(usage, "--worker-heartbeat-ms needs a positive integer")
                        }),
                );
            }
            "--listen" => {
                parsed.listen = Some(
                    args.next()
                        .unwrap_or_else(|| die(usage, "--listen needs an address (host:port)")),
                );
            }
            "--lease-factor" => {
                parsed.lease_factor = Some(
                    args.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .filter(|&f| f >= 1)
                        .unwrap_or_else(|| die(usage, "--lease-factor needs a positive integer")),
                );
            }
            "--fleet-grace-ms" => {
                parsed.fleet_grace_ms = Some(
                    args.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or_else(|| {
                            die(usage, "--fleet-grace-ms needs a non-negative integer")
                        }),
                );
            }
            "--fleet-lease-ms" => {
                parsed.fleet_lease_ms = Some(
                    args.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .filter(|&m| m >= 1)
                        .unwrap_or_else(|| die(usage, "--fleet-lease-ms needs a positive integer")),
                );
            }
            "--stable" => parsed.stable = true,
            "--detailed" => parsed.detailed = true,
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => die(usage, &format!("unknown flag {other}")),
        }
    }
    parsed
}

fn die(usage: &str, msg: &str) -> ! {
    eprintln!("error: {msg}\n{usage}");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ReportArgs {
        parse_report_arg_list("usage", args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_serial_unsliced() {
        let a = parse(&[]);
        assert_eq!(a.jobs, 1);
        assert!(!a.slice);
        assert!(!a.stable);
        assert_eq!(a.retries, 1);
        assert!(a.timeout.is_none());
        assert_eq!(a.poll_interval, 128);
        assert!(a.profile.is_none());
    }

    #[test]
    fn all_flags_parse() {
        let a = parse(&[
            "--jobs",
            "4",
            "--slice",
            "on",
            "--stable",
            "--retries",
            "3",
            "--timeout",
            "600",
            "--poll-interval",
            "32",
            "--profile",
            "out.json",
        ]);
        assert_eq!(a.jobs, 4);
        assert!(a.slice);
        assert!(a.stable);
        assert_eq!(a.retries, 3);
        assert_eq!(a.timeout, Some(Duration::from_secs(600)));
        assert_eq!(a.poll_interval, 32);
        assert_eq!(a.profile.as_deref(), Some(Path::new("out.json")));
    }

    #[test]
    fn journal_flags_parse_and_map_to_campaign_options() {
        let a = parse(&[]);
        assert!(a.journal.is_none());
        assert!(a.depth.is_none());
        let o = a.campaign_options();
        assert!(o.journal.is_none());
        assert!(!o.resume && !o.fresh && !o.retry_failed);
        assert_eq!(o.hang_factor, 4);

        let a = parse(&[
            "--journal",
            "run.jsonl",
            "--resume",
            "--retry-failed",
            "--hang-factor",
            "2",
            "--depth",
            "9",
        ]);
        let o = a.campaign_options();
        assert_eq!(o.journal.as_deref(), Some(Path::new("run.jsonl")));
        assert!(o.resume);
        assert!(!o.fresh);
        assert!(o.retry_failed);
        assert_eq!(o.hang_factor, 2);
        let c = a.configure(CheckConfig::default().depth(20));
        assert_eq!(c.max_depth, 9, "--depth overrides the experiment default");
    }

    #[test]
    fn granularity_flags_parse_and_configure() {
        let a = parse(&[]);
        assert_eq!(a.granularity, Granularity::Monolithic);
        assert!(a.cluster_overlap.is_none());
        let c = a.configure(CheckConfig::default());
        assert_eq!(c.granularity, Granularity::Monolithic);

        let a = parse(&["--granularity", "register", "--cluster-overlap", "0.75"]);
        assert_eq!(a.granularity, Granularity::Register);
        let c = a.configure(CheckConfig::default());
        assert_eq!(c.granularity, Granularity::Register);
        assert!((c.cluster_overlap - 0.75).abs() < 1e-9);

        let a = parse(&["--granularity", "output"]);
        let c = a.configure(CheckConfig::default());
        assert_eq!(c.granularity, Granularity::Output);
        assert!((c.cluster_overlap - 0.9).abs() < 1e-9, "default overlap");
    }

    #[test]
    fn isolation_flags_parse_and_configure() {
        use autocc_bmc::Isolation;
        let a = parse(&[]);
        assert!(!a.isolate);
        let c = a.configure(CheckConfig::default());
        assert_eq!(c.isolation, Isolation::InProcess);

        let a = parse(&[
            "--isolate",
            "--memory-limit-mb",
            "512",
            "--worker-heartbeat-ms",
            "50",
        ]);
        assert!(a.isolate);
        let c = a.configure(CheckConfig::default());
        assert_eq!(c.isolation, Isolation::Subprocess);
        assert_eq!(c.memory_limit_mb, Some(512));
        assert_eq!(c.heartbeat_ms, 50);
        assert!(a.campaign_options().pool.is_none());
    }

    #[test]
    fn certify_flag_parses_without_perturbing_the_fingerprint() {
        let a = parse(&[]);
        assert!(!a.certify);
        let plain = a.configure(CheckConfig::default());
        assert!(!plain.certify);

        let a = parse(&["--certify"]);
        assert!(a.certify);
        let certified = a.configure(CheckConfig::default());
        assert!(certified.certify);
        // Certification only adds evidence; it never changes answers, so
        // certified and uncertified campaigns share journals and produce
        // byte-identical stable tables.
        assert_eq!(
            autocc_bmc::config_fingerprint(&plain),
            autocc_bmc::config_fingerprint(&certified),
        );
    }

    #[test]
    fn configure_applies_every_knob() {
        let mut a = parse(&["--jobs", "2", "--slice", "on", "--poll-interval", "16"]);
        a.timeout = Some(Duration::from_secs(7));
        let c = a.configure(CheckConfig::default().depth(20));
        assert_eq!(c.max_depth, 20);
        assert_eq!(c.jobs, 2);
        assert!(c.slice);
        assert_eq!(c.poll_interval, 16);
        assert_eq!(c.time_budget, Some(Duration::from_secs(7)));
        assert!(!c.telemetry.enabled(), "no --profile, no telemetry");
    }

    #[test]
    fn instrument_attaches_a_recorder_only_with_profile() {
        let plain = parse(&[]);
        let (c, sink) = plain.instrument(CheckConfig::default(), "test");
        assert!(!c.telemetry.enabled());
        assert!(sink.is_none());

        let mut profiled = parse(&[]);
        profiled.profile = Some(PathBuf::from("/tmp/ignored.json"));
        let (c, sink) = profiled.instrument(CheckConfig::default(), "test");
        assert!(c.telemetry.enabled());
        assert!(sink.is_some());
    }
}
