//! Tiny flag parser shared by the report binaries.

use crate::experiments::Exec;

/// Flags common to every report binary.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReportArgs {
    /// Portfolio execution settings (`--jobs N`, `--slice on|off`).
    pub exec: ExecArgs,
    /// `--stable`: omit the Time column so output is byte-reproducible.
    pub stable: bool,
}

/// `Exec` with a `Default` that matches the flags' defaults.
pub type ExecArgs = Exec;

/// Parses `--jobs N`, `--slice on|off`, `--retries N`, `--timeout SECS`,
/// and `--stable` from `argv`. Unknown flags print `usage` and exit with
/// status 2.
pub fn parse_report_args(usage: &str) -> ReportArgs {
    parse_report_arg_list(usage, std::env::args().skip(1))
}

fn parse_report_arg_list(usage: &str, args: impl Iterator<Item = String>) -> ReportArgs {
    let mut parsed = ReportArgs::default();
    parsed.exec.jobs = 1;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" => {
                parsed.exec.jobs = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&j| j >= 1)
                    .unwrap_or_else(|| die(usage, "--jobs needs a positive integer"));
            }
            "--slice" => {
                parsed.exec.slice = match args.next().as_deref() {
                    Some("on") => true,
                    Some("off") => false,
                    _ => die(usage, "--slice needs `on` or `off`"),
                };
            }
            "--retries" => {
                parsed.exec.retries = args
                    .next()
                    .and_then(|v| v.parse::<u32>().ok())
                    .unwrap_or_else(|| die(usage, "--retries needs a non-negative integer"));
            }
            "--timeout" => {
                let secs = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&s| s >= 1)
                    .unwrap_or_else(|| die(usage, "--timeout needs a positive number of seconds"));
                parsed.exec.timeout = Some(std::time::Duration::from_secs(secs));
            }
            "--stable" => parsed.stable = true,
            "--help" | "-h" => {
                println!("{usage}");
                std::process::exit(0);
            }
            other => die(usage, &format!("unknown flag {other}")),
        }
    }
    parsed
}

fn die(usage: &str, msg: &str) -> ! {
    eprintln!("error: {msg}\n{usage}");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ReportArgs {
        parse_report_arg_list("usage", args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_serial_unsliced() {
        let a = parse(&[]);
        assert_eq!(a.exec.jobs, 1);
        assert!(!a.exec.slice);
        assert!(!a.stable);
        assert_eq!(a.exec.retries, 1);
        assert!(a.exec.timeout.is_none());
    }

    #[test]
    fn all_flags_parse() {
        let a = parse(&[
            "--jobs",
            "4",
            "--slice",
            "on",
            "--stable",
            "--retries",
            "3",
            "--timeout",
            "600",
        ]);
        assert_eq!(a.exec.jobs, 4);
        assert!(a.exec.slice);
        assert!(a.stable);
        assert_eq!(a.exec.retries, 3);
        assert_eq!(a.exec.timeout, Some(std::time::Duration::from_secs(600)));
    }
}
