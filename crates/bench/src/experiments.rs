//! Canonical testbench configurations for every experiment in the paper's
//! evaluation, shared by the report binaries and the Criterion benches.
//!
//! Every runner takes one [`CheckConfig`]: depth/budgets plus execution
//! knobs (jobs, slicing, retries) plus the telemetry handle. Parallelism
//! is *across* experiments — each runner opens a [`SpanKind::Experiment`]
//! span and forces `jobs = 1` inside it, so the table functions fan whole
//! experiments over `config.jobs` workers while each experiment checks
//! its properties serially. Jobs only change wall-clock behaviour:
//! results merge in submission order, so any `jobs` value produces the
//! same rows.

use crate::campaign::{run_campaign, CampaignOptions, CampaignTask};
use autocc_bmc::{CheckConfig, Granularity};
use autocc_core::{CheckReport, FpvTestbench, FtSpec, MonitorHandles, TableRow};
use autocc_duts::aes::{build_aes, stage_valid_names, AesConfig};
use autocc_duts::cva6::{build_cva6, Cva6Config, ARCH_REGS};
use autocc_duts::maple::{build_maple, MapleConfig};
use autocc_duts::vscale::{arch, build_vscale, VscaleConfig};
use autocc_hdl::{Instance, Module, ModuleBuilder, NodeId};
use autocc_telemetry::SpanKind;
use std::time::Duration;

/// Default config for CEX-hunting runs: serial, unsliced, 30-minute
/// wall-clock budget per check job.
pub fn default_options(max_depth: usize) -> CheckConfig {
    CheckConfig::default()
        .depth(max_depth)
        .timeout(Duration::from_secs(1800))
}

/// Runs one experiment under its own [`SpanKind::Experiment`] span with
/// properties checked serially (the schedulers above parallelise across
/// experiments, never inside one).
fn with_experiment(
    config: &CheckConfig,
    name: &str,
    run: impl FnOnce(&CheckConfig) -> CheckReport,
) -> CheckReport {
    let span = config.telemetry.child(SpanKind::Experiment, name);
    let mut scoped = config.clone().jobs(1);
    scoped.telemetry = span.clone();
    let report = run(&scoped);
    span.close();
    report
}

// ---------------------------------------------------------------------
// Vscale (Table 2)
// ---------------------------------------------------------------------

/// One stage of the Vscale refinement ladder.
pub struct VscaleStage {
    /// Paper id (`V1`, `V3/V4`, `V5`, `V2`, `—`).
    pub id: &'static str,
    /// Table-2 description.
    pub description: &'static str,
    /// Arch-state refinement level (0..=4) applied before the run.
    pub level: usize,
    /// Whether the CSR is blackboxed at this stage.
    pub blackbox_csr: bool,
}

/// The five stages of the Table-2 ladder, in discovery order.
pub const VSCALE_STAGES: [VscaleStage; 5] = [
    VscaleStage {
        id: "V1",
        description: "Jump/store consumes stale register file",
        level: 0,
        blackbox_csr: false,
    },
    VscaleStage {
        id: "V3/V4",
        description: "PC/valid pipeline registers differ",
        level: 1,
        blackbox_csr: false,
    },
    VscaleStage {
        id: "V5",
        description: "Pending interrupt from victim fires for spy",
        level: 2,
        blackbox_csr: false,
    },
    VscaleStage {
        id: "V2",
        description: "Jump to address read from CSR",
        level: 3,
        blackbox_csr: false,
    },
    VscaleStage {
        id: "proof",
        description: "Fully refined testbench (blackboxed CSR)",
        level: 4,
        blackbox_csr: true,
    },
];

/// Builds the Vscale testbench for a ladder stage (the check itself runs
/// separately — see [`run_vscale_stage`] / [`table2_tasks`]).
pub fn vscale_stage_testbench(stage: &VscaleStage) -> FpvTestbench {
    vscale_stage_testbench_with(stage, Granularity::Monolithic)
}

/// [`vscale_stage_testbench`] at an explicit property granularity.
pub fn vscale_stage_testbench_with(stage: &VscaleStage, granularity: Granularity) -> FpvTestbench {
    let dut = build_vscale(&VscaleConfig {
        blackbox_csr: stage.blackbox_csr,
        ..VscaleConfig::default()
    });
    let mut spec = FtSpec::new(&dut).granularity(granularity);
    if stage.level >= 1 {
        spec = spec.arch_mem(arch::REGFILE_MEM);
    }
    if stage.level >= 2 {
        for r in arch::PIPELINE_REGS {
            spec = spec.arch_reg(r);
        }
    }
    if stage.level >= 3 {
        for r in arch::INT_REGS {
            spec = spec.arch_reg(r);
        }
    }
    if stage.level >= 4 {
        spec = spec.state_equality_invariants();
    }
    spec.generate()
}

/// Builds the Vscale FT for a ladder stage and runs it through the check
/// engines.
pub fn run_vscale_stage(stage: &VscaleStage, config: &CheckConfig) -> CheckReport {
    with_experiment(config, &format!("vscale:{}", stage.id), |config| {
        let ft = vscale_stage_testbench(stage);
        if stage.level >= 4 {
            ft.prove_portfolio(config)
        } else {
            ft.check_portfolio(config)
        }
    })
}

/// The Table-2 ladder as campaign tasks, one per stage.
pub fn table2_tasks() -> Vec<CampaignTask> {
    table2_tasks_with(Granularity::Monolithic)
}

/// [`table2_tasks`] at an explicit property granularity: the testbenches
/// emit their property sets (and, at `register`, the observer monitor and
/// attribution assertions) to match.
pub fn table2_tasks_with(granularity: Granularity) -> Vec<CampaignTask> {
    VSCALE_STAGES
        .iter()
        .map(|stage| {
            let span = format!("vscale:{}", stage.id);
            let build = move || vscale_stage_testbench_with(stage, granularity);
            if stage.level >= 4 {
                CampaignTask::prove(stage.id, stage.description, span, build)
            } else {
                CampaignTask::check(stage.id, stage.description, span, build)
            }
        })
        .collect()
}

/// Regenerates Table 2 (the Vscale ladder), fanning the stages across
/// `config.jobs` portfolio workers.
pub fn table2(config: &CheckConfig) -> Vec<TableRow> {
    run_campaign("table2", table2_tasks(), config, &CampaignOptions::off())
        .expect("campaign without a journal cannot fail to start")
        .rows
}

// ---------------------------------------------------------------------
// MAPLE (Table 1 rows M2, M3; refinement M1)
// ---------------------------------------------------------------------

/// flush_done: the invalidation completes in both universes this cycle.
pub fn maple_flush_done(b: &mut ModuleBuilder, ua: &Instance, ub: &Instance) -> NodeId {
    let da = ua.outputs["inv_done"];
    let db = ub.outputs["inv_done"];
    b.and(da, db)
}

/// The M1 refinement assumption: the NoC output buffer is empty while the
/// invalidation is in progress.
pub fn maple_assume_obuf_empty(
    b: &mut ModuleBuilder,
    ua: &Instance,
    ub: &Instance,
    _mon: &MonitorHandles,
) -> NodeId {
    let zero = b.lit(2, 0);
    let inv_a = b.read_reg(ua.regs["inv_state"]);
    let act_a = b.ne(inv_a, zero);
    let inv_b = b.read_reg(ub.regs["inv_state"]);
    let act_b = b.ne(inv_b, zero);
    let active = b.or(act_a, act_b);
    let ea = b.read_reg(ua.regs["obuf_valid"]);
    let eb = b.read_reg(ub.regs["obuf_valid"]);
    let full = b.or(ea, eb);
    let empty = b.not(full);
    let idle = b.not(active);
    b.or(idle, empty)
}

/// Builds the MAPLE testbench with the M1 assumption in place.
pub fn maple_testbench(config: &MapleConfig) -> FpvTestbench {
    maple_testbench_with(config, Granularity::Monolithic)
}

/// [`maple_testbench`] at an explicit property granularity.
pub fn maple_testbench_with(config: &MapleConfig, granularity: Granularity) -> FpvTestbench {
    let dut = build_maple(config);
    FtSpec::new(&dut)
        .granularity(granularity)
        .flush_done(maple_flush_done)
        .assume(maple_assume_obuf_empty)
        .generate()
}

/// Builds the MAPLE testbench *without* the M1 assumption.
pub fn maple_m1_testbench() -> FpvTestbench {
    let dut = build_maple(&MapleConfig::default());
    FtSpec::new(&dut).flush_done(maple_flush_done).generate()
}

/// Runs the MAPLE testbench with the M1 assumption in place.
pub fn run_maple(config: &MapleConfig, check: &CheckConfig) -> CheckReport {
    with_experiment(check, "maple", |check| {
        maple_testbench(config).check_portfolio(check)
    })
}

/// Runs the MAPLE testbench *without* the M1 assumption (the first CEX).
pub fn run_maple_m1(check: &CheckConfig) -> CheckReport {
    with_experiment(check, "maple-m1", |check| {
        maple_m1_testbench().check_portfolio(check)
    })
}

// ---------------------------------------------------------------------
// CVA6 (Table 1 rows C1–C3; known full-flush channels)
// ---------------------------------------------------------------------

/// flush_done: `fence.t` completes in both universes this cycle.
pub fn cva6_flush_done(b: &mut ModuleBuilder, ua: &Instance, ub: &Instance) -> NodeId {
    let da = ua.outputs["fence_done"];
    let db = ub.outputs["fence_done"];
    b.and(da, db)
}

/// Builds the CVA6 frontend testbench for a given configuration.
pub fn cva6_testbench(config: &Cva6Config) -> FpvTestbench {
    cva6_testbench_with(config, Granularity::Monolithic)
}

/// [`cva6_testbench`] at an explicit property granularity.
pub fn cva6_testbench_with(config: &Cva6Config, granularity: Granularity) -> FpvTestbench {
    let dut = build_cva6(config);
    let mut spec = FtSpec::new(&dut)
        .granularity(granularity)
        .flush_done(cva6_flush_done);
    for r in ARCH_REGS {
        spec = spec.arch_reg(r);
    }
    spec.generate()
}

/// Runs the CVA6 frontend testbench for a given configuration.
pub fn run_cva6(config: &Cva6Config, check: &CheckConfig) -> CheckReport {
    with_experiment(check, "cva6", |check| {
        cva6_testbench(config).check_portfolio(check)
    })
}

/// Per-CEX configurations, isolating each channel as the paper's
/// fix-then-continue workflow does.
pub fn cva6_cex_config(which: &str) -> Cva6Config {
    match which {
        "C1" => Cva6Config {
            fix_c2: true,
            fix_c3: true,
            ..Cva6Config::microreset()
        },
        "C2" => Cva6Config {
            fix_c1: true,
            fix_c3: false,
            ..Cva6Config::microreset()
        },
        "C3" => Cva6Config {
            fix_c1: true,
            fix_c2: true,
            ..Cva6Config::microreset()
        },
        _ => panic!("unknown CVA6 CEX {which}"),
    }
}

// ---------------------------------------------------------------------
// AES (Table 1 row A1; full proof)
// ---------------------------------------------------------------------

/// Builds the default AES testbench (the one that finds A1).
pub fn aes_a1_testbench() -> FpvTestbench {
    aes_a1_testbench_with(Granularity::Monolithic)
}

/// [`aes_a1_testbench`] at an explicit property granularity.
pub fn aes_a1_testbench_with(granularity: Granularity) -> FpvTestbench {
    let dut = build_aes(&AesConfig::default());
    FtSpec::new(&dut).granularity(granularity).generate()
}

/// Builds the refined AES testbench used for the full proof:
/// idle-pipeline flush condition plus the Sec.-4.4 strengthening
/// invariants.
pub fn aes_proof_testbench() -> FpvTestbench {
    let config = AesConfig::default();
    let dut = build_aes(&config);
    let idle_names = stage_valid_names(&config);
    let idle = move |b: &mut ModuleBuilder, ua: &Instance, ub: &Instance| -> NodeId {
        let mut all = Vec::new();
        for name in &idle_names {
            let va = b.read_reg(ua.regs[name]);
            let vb = b.read_reg(ub.regs[name]);
            let na = b.not(va);
            let nb = b.not(vb);
            all.push(na);
            all.push(nb);
        }
        b.all(&all)
    };
    let inv_names = stage_valid_names(&config);
    let invariant = move |b: &mut ModuleBuilder,
                          ua: &Instance,
                          ub: &Instance,
                          mon: &MonitorHandles|
          -> NodeId {
        let zero = {
            let w = b.width(mon.eq_cnt);
            b.lit(w, 0)
        };
        let counting = b.ne(mon.eq_cnt, zero);
        let engaged = b.or(counting, mon.spy_mode);
        let mut conds = Vec::new();
        for name in &inv_names {
            let va = b.read_reg(ua.regs[name]);
            let vb = b.read_reg(ub.regs[name]);
            conds.push(b.eq(va, vb));
            let stage = name.strip_suffix(".valid").expect("valid name");
            for field in ["data", "key"] {
                let da = b.read_reg(ua.regs[&format!("{stage}.{field}")]);
                let db = b.read_reg(ub.regs[&format!("{stage}.{field}")]);
                let eq = b.eq(da, db);
                let nv = b.not(va);
                conds.push(b.or(nv, eq));
            }
        }
        let all = b.all(&conds);
        let ne = b.not(engaged);
        b.or(ne, all)
    };
    FtSpec::new(&dut)
        .flush_done(idle)
        .assert_prop("pipeline_convergence", invariant)
        .generate()
}

/// Runs the default AES testbench (finds A1).
pub fn run_aes_a1(check: &CheckConfig) -> CheckReport {
    with_experiment(check, "aes-a1", |check| {
        aes_a1_testbench().check_portfolio(check)
    })
}

/// Runs the refined AES testbench to a full proof: idle-pipeline flush
/// condition plus the Sec.-4.4 strengthening invariants.
pub fn run_aes_proof(check: &CheckConfig) -> CheckReport {
    with_experiment(check, "aes-proof", |check| {
        aes_proof_testbench().prove_portfolio(check)
    })
}

// ---------------------------------------------------------------------
// Table 1 (the valuable CEXs across all four DUTs)
// ---------------------------------------------------------------------

/// Table 1 (the valuable CEXs V5, C1, C2, C3, M2, M3, A1) as campaign
/// tasks, in table order.
pub fn table1_tasks() -> Vec<CampaignTask> {
    table1_tasks_with(Granularity::Monolithic)
}

/// [`table1_tasks`] at an explicit property granularity: the testbenches
/// emit their property sets (and, at `register`, the observer monitor and
/// attribution assertions) to match.
pub fn table1_tasks_with(granularity: Granularity) -> Vec<CampaignTask> {
    let mut tasks = Vec::new();

    // V5: the Vscale pending-interrupt channel (ladder stage 3).
    tasks.push(CampaignTask::check(
        "V5",
        "Interrupt in the WB stage stalls pipeline",
        "vscale:V5",
        move || vscale_stage_testbench_with(&VSCALE_STAGES[2], granularity),
    ));

    for (id, desc) in [
        ("C1", "Leaks invalid I-Cache data to the next PC"),
        ("C2", "Wrong transition in the FSM of the PTW"),
        ("C3", "Valid D$ line after flush caused by PTW"),
    ] {
        tasks.push(CampaignTask::check(id, desc, "cva6", move || {
            cva6_testbench_with(&cva6_cex_config(id), granularity)
        }));
    }

    // M2: fix nothing except M3 so the TLB-enable channel is the target.
    tasks.push(CampaignTask::check(
        "M2",
        "Leak whether the TLB was disabled",
        "maple",
        move || {
            maple_testbench_with(
                &MapleConfig {
                    fix_tlb_enable: false,
                    fix_array_base: true,
                },
                granularity,
            )
        },
    ));
    // M3: fix M2 so the array-base channel is the target.
    tasks.push(CampaignTask::check(
        "M3",
        "Leak the value of a configuration register",
        "maple",
        move || {
            maple_testbench_with(
                &MapleConfig {
                    fix_tlb_enable: true,
                    fix_array_base: false,
                },
                granularity,
            )
        },
    ));

    tasks.push(CampaignTask::check(
        "A1",
        "Request in the pipeline during the switch",
        "aes-a1",
        move || aes_a1_testbench_with(granularity),
    ));
    tasks
}

/// Regenerates Table 1 (the valuable CEXs V5, C1, C2, C3, M2, M3, A1),
/// fanning one check job per experiment across `config.jobs` workers.
/// Rows come back in table order regardless of worker count. Panic
/// containment happens at the experiment level: a harness panic costs
/// that row only, rendered FAILED, while the rest of the table fills.
pub fn table1(config: &CheckConfig) -> Vec<TableRow> {
    run_campaign("table1", table1_tasks(), config, &CampaignOptions::off())
        .expect("campaign without a journal cannot fail to start")
        .rows
}

/// Fix-validation runs as campaign tasks: every fixed DUT configuration
/// must be clean.
pub fn fix_validation_tasks() -> Vec<CampaignTask> {
    vec![
        CampaignTask::check(
            "C1-C3 fixed",
            "CVA6 microreset with all upstream fixes",
            "cva6",
            || cva6_testbench(&Cva6Config::all_fixed()),
        ),
        CampaignTask::check(
            "M2+M3 fixed",
            "MAPLE cleanup resets config registers",
            "maple",
            || maple_testbench(&MapleConfig::all_fixed()),
        ),
        CampaignTask::prove(
            "A1 refined",
            "AES with idle-pipeline flush condition",
            "aes-proof",
            aes_proof_testbench,
        ),
    ]
}

/// Fix-validation runs: every fixed DUT configuration must be clean.
pub fn fix_validation(config: &CheckConfig) -> Vec<TableRow> {
    run_campaign(
        "fix_validation",
        fix_validation_tasks(),
        config,
        &CampaignOptions::off(),
    )
    .expect("campaign without a journal cannot fail to start")
    .rows
}

/// A demo DUT for the flush-synthesis experiments: banked registers with a
/// configurable flush set (see `examples/flush_synthesis.rs`).
pub fn banked_device(flush_set: &std::collections::BTreeSet<String>) -> Module {
    let mut b = ModuleBuilder::new("banked_device");
    let we = b.input("we", 1);
    let sel = b.input("sel", 2);
    let re = b.input("re", 1);
    let data = b.input("data", 8);
    let flush = b.input_common("flush", 1);

    let zero8 = b.lit(8, 0);
    let mut regs: Vec<NodeId> = Vec::new();
    for (i, name) in ["bank0", "bank1", "bank2", "scratch"].iter().enumerate() {
        let r = b.reg(name, 8, autocc_hdl::Bv::zero(8));
        let hit = b.eq_lit(sel, i as u64);
        let wr_en = b.and(we, hit);
        let wr = b.mux(wr_en, data, r);
        let next = if flush_set.contains(*name) {
            b.mux(flush, zero8, wr)
        } else {
            wr
        };
        b.set_next(r, next);
        regs.push(r);
    }
    let s0 = b.eq_lit(sel, 0);
    let s1 = b.eq_lit(sel, 1);
    let m01 = b.mux(s1, regs[1], regs[2]);
    let read = b.mux(s0, regs[0], m01);
    let q = b.mux(re, read, zero8);
    b.output("q", q);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_cover_the_paper() {
        let ids: Vec<&str> = ["V5", "C1", "C2", "C3", "M2", "M3", "A1"].to_vec();
        // Construction-only check: all configurations build.
        for id in &ids {
            match *id {
                "C1" | "C2" | "C3" => {
                    let _ = build_cva6(&cva6_cex_config(id));
                }
                "M2" | "M3" => {
                    let _ = build_maple(&MapleConfig::default());
                }
                _ => {}
            }
        }
        assert_eq!(VSCALE_STAGES.len(), 5);
    }

    #[test]
    fn default_options_are_serial_with_a_wall_clock_budget() {
        let c = default_options(20);
        assert_eq!(c.max_depth, 20);
        assert_eq!(c.jobs, 1);
        assert!(!c.slice);
        assert_eq!(c.time_budget, Some(Duration::from_secs(1800)));
    }
}
