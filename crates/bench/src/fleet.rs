//! Fault-tolerant remote worker fleet: a TCP listener that hands check
//! jobs to `worker --connect` processes under **lease-based ownership**,
//! with deterministic re-dispatch when workers vanish and graceful
//! degradation to local execution when the fleet drains.
//!
//! The design centers on three invariants:
//!
//! - **Leases, not trust.** Every dispatched job carries a lease derived
//!   from its own time budget (`time_budget × lease_factor × #props`).
//!   A worker that misses its lease — or stops heartbeating, or whose
//!   connection drops or half-opens — loses ownership and the job goes
//!   back on the queue for re-dispatch. The supervisor never waits
//!   indefinitely on any single worker.
//! - **At-most-once results.** Each job carries a generation counter,
//!   bumped on every (re-)claim. A result is accepted only when its
//!   sender still owns the current generation and nothing was delivered
//!   yet; a re-assigned job whose original worker resurfaces late is
//!   counted as a duplicate and dropped, so positional results cannot
//!   be corrupted by double-reports.
//! - **Degrade, never stall.** When no workers are connected (or a job
//!   exhausts its remote attempts, or its check quarantines out), the
//!   job resolves to [`FleetVerdict::Fallback`] and [`FleetEngine`]
//!   reruns it on the local [`ProcEngine`] pool — and, if even local
//!   spawning fails, in-process. Remote execution runs the same engines
//!   on the same deterministic budgets, so the degradation ladder never
//!   changes answers: `--stable` tables stay byte-identical to local
//!   mode under any interleaving of deaths, partitions, and reconnects.
//!
//! None of the fleet knobs participate in `content_key` /
//! `config_fingerprint`: journals written by fleet campaigns
//! interoperate with local ones, exactly like `--isolate`.

use crate::workers::{ProcEngine, WorkerLimits, WorkerPool};
use autocc_bmc::{
    content_key, CancelToken, CheckConfig, CheckEngine, CheckMode, CheckSpec, ContentKey,
    EngineOutcome, EngineRun, FailureReason, JobFailure, UnknownCause,
};
use autocc_journal::ipc::{
    ack_json, job_json, parse_hello, parse_remote_frame, request_json, wire_engine, write_frame,
    NetFrameReader, NetRead, RemoteFrame,
};
use autocc_journal::json::Json;
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Policy knobs for a fleet supervisor.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Lease = `time_budget × lease_factor × max(1, #properties)`. The
    /// slack absorbs honest slowness (engine startup, network) without
    /// letting one silent worker pin a job forever.
    pub lease_factor: u64,
    /// Lease when the check has no time budget.
    pub default_lease: Duration,
    /// Fixed per-dispatch lease overriding the budget-derived formula
    /// (`--fleet-lease-ms`; fault tests use it to expire leases fast).
    pub lease_override: Option<Duration>,
    /// With zero workers connected, a job queued longer than this falls
    /// back to local execution instead of waiting for an attach.
    pub fallback_grace: Duration,
    /// A job re-dispatched this many times without a delivered result
    /// resolves to fallback; remote retry must terminate.
    pub max_remote_attempts: u32,
    /// A connection that has not sent its `hello` within this window is
    /// dropped (half-open sockets must not hold agent threads).
    pub hello_deadline: Duration,
    /// Heartbeat/stall/RSS/quarantine policy, shared with `--isolate`.
    pub limits: WorkerLimits,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            lease_factor: 4,
            default_lease: Duration::from_secs(600),
            lease_override: None,
            fallback_grace: Duration::from_secs(2),
            max_remote_attempts: 3,
            hello_deadline: Duration::from_secs(10),
            limits: WorkerLimits::default(),
        }
    }
}

/// How a submitted job resolved.
#[derive(Debug)]
pub enum FleetVerdict {
    /// A remote worker answered; the run is exactly what a local engine
    /// would have produced.
    Remote(EngineRun),
    /// The fleet could not (or should not) answer remotely; the reason
    /// is diagnostic. The caller reruns locally.
    Fallback(String),
}

/// One job's supervised state. Lock ordering: never take the fleet's
/// shared lock while holding a job lock (all paths take them disjointly
/// or shared-then-release-then-job).
struct JobState {
    id: u64,
    key: ContentKey,
    request: Json,
    lease: Duration,
    reply: mpsc::Sender<FleetVerdict>,
    /// Bumped on every claim; a result is only accepted from the
    /// current generation's owner.
    generation: u64,
    /// Dispatch count, capped by `max_remote_attempts`.
    attempts: u32,
    delivered: bool,
}

type Job = Arc<Mutex<JobState>>;

struct QueuedJob {
    job: Job,
    enqueued_at: Instant,
}

struct FleetShared {
    queue: VecDeque<QueuedJob>,
    workers: usize,
    shutdown: bool,
}

/// A submitted job's handle: the verdict arrives on `rx`.
pub struct FleetTicket {
    job: Job,
    rx: mpsc::Receiver<FleetVerdict>,
}

/// Monotonic counters for the fleet gauges.
#[derive(Default)]
struct FleetCounters {
    workers_seen: AtomicU64,
    workers_peak: AtomicU64,
    leases_expired: AtomicU64,
    jobs_reassigned: AtomicU64,
    duplicate_results: AtomicU64,
    jobs_remote: AtomicU64,
    fallback_jobs: AtomicU64,
}

/// A snapshot of the fleet's counters, printable as a one-line summary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Distinct worker registrations (hellos) over the fleet's life.
    pub workers_seen: u64,
    /// Peak simultaneously-connected workers.
    pub workers_peak: u64,
    /// Leases that expired and returned their job to the queue.
    pub leases_expired: u64,
    /// Jobs returned to the queue for re-dispatch (any cause).
    pub jobs_reassigned: u64,
    /// Late/stale results dropped by at-most-once accounting.
    pub duplicate_results: u64,
    /// Jobs answered by remote workers.
    pub jobs_remote: u64,
    /// Jobs that degraded to local execution.
    pub fallback_jobs: u64,
}

impl std::fmt::Display for FleetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} worker(s) seen (peak {}), {} remote, {} fallback, \
             {} lease(s) expired, {} reassigned, {} duplicate(s) dropped",
            self.workers_seen,
            self.workers_peak,
            self.jobs_remote,
            self.fallback_jobs,
            self.leases_expired,
            self.jobs_reassigned,
            self.duplicate_results,
        )
    }
}

/// The fleet supervisor: owns the listener, the job queue, the lease
/// ledger, and the per-check kill/quarantine bookkeeping.
pub struct Fleet {
    shared: Mutex<FleetShared>,
    cv: Condvar,
    config: FleetConfig,
    addr: SocketAddr,
    next_job: AtomicU64,
    counters: FleetCounters,
    kills: Mutex<HashMap<ContentKey, u32>>,
    quarantined: Mutex<HashSet<ContentKey>>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("addr", &self.addr)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

/// What an agent's claim attempt produced.
enum Claim {
    /// A job to dispatch: (id, generation, request, lease).
    Job(Job, u64, u64, Json, Duration),
    /// Nothing queued within the wait window.
    Idle,
    /// The fleet is shutting down.
    Shutdown,
}

impl Fleet {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the accept and
    /// fallback-monitor threads. The bound address (with the real port)
    /// is available via [`Fleet::addr`].
    pub fn listen(addr: &str, config: FleetConfig) -> std::io::Result<Arc<Fleet>> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let fleet = Arc::new(Fleet {
            shared: Mutex::new(FleetShared {
                queue: VecDeque::new(),
                workers: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            config,
            addr,
            next_job: AtomicU64::new(1),
            counters: FleetCounters::default(),
            kills: Mutex::new(HashMap::new()),
            quarantined: Mutex::new(HashSet::new()),
            threads: Mutex::new(Vec::new()),
        });
        let accept = {
            let fleet = Arc::clone(&fleet);
            std::thread::spawn(move || fleet.accept_loop(listener))
        };
        let monitor = {
            let fleet = Arc::clone(&fleet);
            std::thread::spawn(move || fleet.monitor_loop())
        };
        lock_clean(&fleet.threads).extend([accept, monitor]);
        Ok(fleet)
    }

    /// The address workers should `--connect` to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the fleet's counters.
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            workers_seen: self.counters.workers_seen.load(Ordering::Relaxed),
            workers_peak: self.counters.workers_peak.load(Ordering::Relaxed),
            leases_expired: self.counters.leases_expired.load(Ordering::Relaxed),
            jobs_reassigned: self.counters.jobs_reassigned.load(Ordering::Relaxed),
            duplicate_results: self.counters.duplicate_results.load(Ordering::Relaxed),
            jobs_remote: self.counters.jobs_remote.load(Ordering::Relaxed),
            fallback_jobs: self.counters.fallback_jobs.load(Ordering::Relaxed),
        }
    }

    /// Currently connected workers.
    pub fn workers_connected(&self) -> usize {
        lock_clean(&self.shared).workers
    }

    /// Enqueues a job for remote dispatch. The verdict — a remote run
    /// or a fallback instruction — arrives on the returned ticket.
    pub fn submit(&self, request: Json, lease: Duration, key: ContentKey) -> FleetTicket {
        let (reply, rx) = mpsc::channel();
        let job: Job = Arc::new(Mutex::new(JobState {
            id: self.next_job.fetch_add(1, Ordering::Relaxed),
            key,
            request,
            lease,
            reply,
            generation: 0,
            attempts: 0,
            delivered: false,
        }));
        let mut shared = lock_clean(&self.shared);
        if shared.shutdown {
            drop(shared);
            deliver_fallback(&job, "fleet is shut down", &self.counters);
        } else {
            shared.queue.push_back(QueuedJob {
                job: Arc::clone(&job),
                enqueued_at: Instant::now(),
            });
            drop(shared);
            self.cv.notify_one();
        }
        FleetTicket { job, rx }
    }

    /// Withdraws a ticket (cancellation): the job will not be
    /// dispatched again and any late result is dropped as a duplicate.
    pub fn abandon(&self, ticket: &FleetTicket) {
        let mut job = lock_clean(&ticket.job);
        job.delivered = true;
    }

    /// Stops accepting, closes worker connections at the next job
    /// boundary, and resolves everything still queued to fallback.
    pub fn shutdown(&self) {
        let drained: Vec<Job> = {
            let mut shared = lock_clean(&self.shared);
            if shared.shutdown {
                return;
            }
            shared.shutdown = true;
            shared.queue.drain(..).map(|q| q.job).collect()
        };
        self.cv.notify_all();
        for job in drained {
            deliver_fallback(
                &job,
                "fleet shut down with the job still queued",
                &self.counters,
            );
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let threads = std::mem::take(&mut *lock_clean(&self.threads));
        for t in threads {
            let _ = t.join();
        }
    }

    fn is_shutdown(&self) -> bool {
        lock_clean(&self.shared).shutdown
    }

    /// Records a worker kill attributable to `key` (death, stall,
    /// malformed stream, over-memory — *not* lease expiry) and
    /// quarantines the check once it reaches the shared threshold.
    fn record_kill(&self, key: ContentKey) -> u32 {
        let count = {
            let mut kills = lock_clean(&self.kills);
            let count = kills.entry(key).or_insert(0);
            *count += 1;
            *count
        };
        if count >= self.config.limits.quarantine_after {
            lock_clean(&self.quarantined).insert(key);
        }
        count
    }

    fn is_quarantined(&self, key: ContentKey) -> bool {
        lock_clean(&self.quarantined).contains(&key)
    }

    /// Returns a job to the queue after its owner lost it. No-op when
    /// the result was already delivered (the owner resurfaced late).
    fn requeue(&self, job: &Job) {
        {
            let state = lock_clean(job);
            if state.delivered {
                return;
            }
        }
        let mut shared = lock_clean(&self.shared);
        if shared.shutdown {
            drop(shared);
            deliver_fallback(job, "fleet shut down during re-dispatch", &self.counters);
            return;
        }
        self.counters
            .jobs_reassigned
            .fetch_add(1, Ordering::Relaxed);
        // Front of the queue: re-dispatch order stays deterministic
        // (the oldest claim wins the next free worker).
        shared.queue.push_front(QueuedJob {
            job: Arc::clone(job),
            enqueued_at: Instant::now(),
        });
        drop(shared);
        self.cv.notify_one();
    }

    /// Delivers a result for `job` if `gen` still owns it. Returns
    /// whether the result was accepted; a refusal is a counted
    /// duplicate (at-most-once accounting).
    fn deliver(&self, job: &Job, gen: u64, run: EngineRun) -> bool {
        let mut state = lock_clean(job);
        if state.delivered || state.generation != gen {
            drop(state);
            self.counters
                .duplicate_results
                .fetch_add(1, Ordering::Relaxed);
            return false;
        }
        state.delivered = true;
        let sent = state.reply.send(FleetVerdict::Remote(run)).is_ok();
        drop(state);
        self.counters.jobs_remote.fetch_add(1, Ordering::Relaxed);
        sent
    }

    /// Claims the next dispatchable job, waiting up to `wait`.
    fn claim(&self, wait: Duration) -> Claim {
        let deadline = Instant::now() + wait;
        let mut shared = lock_clean(&self.shared);
        loop {
            if shared.shutdown {
                return Claim::Shutdown;
            }
            while let Some(entry) = shared.queue.pop_front() {
                // Decide under the job lock, with the shared lock
                // released (lock ordering: never nest them).
                drop(shared);
                if let Some(claim) = self.try_claim(&entry.job) {
                    return claim;
                }
                shared = lock_clean(&self.shared);
                if shared.shutdown {
                    return Claim::Shutdown;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Claim::Idle;
            }
            let (guard, _timeout) = self
                .cv
                .wait_timeout(shared, deadline - now)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            shared = guard;
        }
    }

    /// Claims `job` if it is still live: bumps the generation, counts
    /// the attempt, and resolves exhausted/quarantined jobs to
    /// fallback. `None` means the job needs no dispatch.
    fn try_claim(&self, job: &Job) -> Option<Claim> {
        let mut state = lock_clean(job);
        if state.delivered {
            return None; // answered while queued (late result accepted)
        }
        if self.is_quarantined(state.key) {
            let reason = "check quarantined after repeatedly killing remote workers";
            deliver_fallback_locked(&mut state, reason, &self.counters);
            return None;
        }
        if state.attempts >= self.config.max_remote_attempts {
            let reason = format!(
                "job exhausted {} remote dispatch attempt(s)",
                state.attempts
            );
            deliver_fallback_locked(&mut state, &reason, &self.counters);
            return None;
        }
        state.generation += 1;
        state.attempts += 1;
        Some(Claim::Job(
            Arc::clone(job),
            state.id,
            state.generation,
            state.request.clone(),
            state.lease,
        ))
    }

    fn accept_loop(self: Arc<Fleet>, listener: TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.is_shutdown() {
                        return;
                    }
                    let fleet = Arc::clone(&self);
                    std::thread::spawn(move || fleet.run_agent(stream));
                }
                Err(_) => {
                    if self.is_shutdown() {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Resolves jobs that have waited out the grace period with zero
    /// workers connected: the degradation path that keeps a campaign
    /// moving when the whole fleet is gone (or never arrived).
    fn monitor_loop(self: Arc<Fleet>) {
        loop {
            std::thread::sleep(Duration::from_millis(50));
            let expired: Vec<Job> = {
                let mut shared = lock_clean(&self.shared);
                if shared.shutdown {
                    return;
                }
                if shared.workers > 0 {
                    continue;
                }
                let grace = self.config.fallback_grace;
                let mut expired = Vec::new();
                while let Some(front) = shared.queue.front() {
                    if front.enqueued_at.elapsed() < grace {
                        break;
                    }
                    expired.push(shared.queue.pop_front().unwrap().job);
                }
                expired
            };
            for job in expired {
                deliver_fallback(&job, "no remote workers connected", &self.counters);
            }
        }
    }

    fn register_worker(&self) {
        let mut shared = lock_clean(&self.shared);
        shared.workers += 1;
        let now = shared.workers as u64;
        drop(shared);
        self.counters.workers_seen.fetch_add(1, Ordering::Relaxed);
        self.counters.workers_peak.fetch_max(now, Ordering::Relaxed);
    }

    fn deregister_worker(&self) {
        let mut shared = lock_clean(&self.shared);
        shared.workers = shared.workers.saturating_sub(1);
    }

    /// Serves one worker connection: registration, then a claim →
    /// dispatch → supervise loop until the connection dies or the
    /// fleet shuts down.
    fn run_agent(self: Arc<Fleet>, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        let writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = NetFrameReader::new(stream);
        // Registration: a half-open or silent socket must not get past
        // the hello deadline.
        let hello_deadline = Instant::now() + self.config.hello_deadline;
        loop {
            match reader.poll_frame(Duration::from_millis(200)) {
                Ok(NetRead::Frame(frame)) => match parse_hello(&frame) {
                    Ok(_worker) => break,
                    Err(_) => return, // wrong protocol: refuse
                },
                Ok(NetRead::Timeout) => {
                    if Instant::now() >= hello_deadline || self.is_shutdown() {
                        return;
                    }
                }
                Ok(NetRead::Eof) | Err(_) => return,
            }
        }
        self.register_worker();
        let mut writer = writer;
        loop {
            match self.claim(Duration::from_millis(100)) {
                Claim::Shutdown => break,
                Claim::Idle => {
                    // Probe the idle connection so a worker that died
                    // between jobs is deregistered promptly.
                    match reader.poll_frame(Duration::from_millis(1)) {
                        Ok(NetRead::Timeout) => {}
                        Ok(NetRead::Frame(_)) => {
                            // Stray frame between jobs: stale noise from
                            // an earlier lease; drop it.
                            self.counters
                                .duplicate_results
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(NetRead::Eof) | Err(_) => break,
                    }
                }
                Claim::Job(job, id, gen, request, lease) => {
                    let lease_ms = lease.as_millis().min(u128::from(u64::MAX)) as u64;
                    let frame = job_json(id, Some(lease_ms), &request);
                    if write_frame(&mut writer, &frame).is_err() {
                        // Dead before dispatch: not the check's fault.
                        self.requeue(&job);
                        break;
                    }
                    if !self.supervise_job(&mut reader, &mut writer, &job, id, gen, lease) {
                        break;
                    }
                }
            }
        }
        self.deregister_worker();
    }

    /// Supervises one dispatched job on one connection. Returns whether
    /// the connection is still healthy enough for another claim.
    fn supervise_job(
        &self,
        reader: &mut NetFrameReader,
        writer: &mut TcpStream,
        job: &Job,
        id: u64,
        gen: u64,
        lease: Duration,
    ) -> bool {
        let limits = self.config.limits;
        let heartbeat_ms = limits.heartbeat_ms.max(1);
        let quantum = Duration::from_millis(heartbeat_ms.min(100));
        let stall_limit = Duration::from_millis(heartbeat_ms.saturating_mul(limits.stall_factor));
        let key = lock_clean(job).key;
        let lease_deadline = Instant::now() + lease;
        let mut last_beat = Instant::now();
        // `leased` drops to false once the lease expires: the job has
        // been requeued, but the connection keeps draining so a late
        // result is recognized (and dropped) instead of desynchronizing
        // the frame stream.
        let mut leased = true;
        loop {
            match reader.poll_frame(quantum) {
                Ok(NetRead::Frame(frame)) => match parse_remote_frame(&frame) {
                    Ok(RemoteFrame::Heartbeat {
                        job: hb_job,
                        rss_kb,
                    }) => {
                        last_beat = Instant::now();
                        if hb_job != id {
                            continue; // stale liveness from an old lease
                        }
                        if let (Some(rss_kb), Some(limit_mb)) = (rss_kb, limits.memory_limit_mb) {
                            if rss_kb > limit_mb.saturating_mul(1024) {
                                self.record_kill(key);
                                if leased {
                                    self.requeue(job);
                                }
                                return false; // close: worker over limit
                            }
                        }
                    }
                    Ok(RemoteFrame::Result { job: res_job, run }) => {
                        if res_job != id {
                            // A duplicate of an older job's result.
                            self.counters
                                .duplicate_results
                                .fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        // At-most-once: `deliver` refuses stale
                        // generations and double-reports.
                        self.deliver(job, gen, run);
                        // Ack regardless: the worker needs it to move
                        // on, and a dropped duplicate is its problem
                        // to not have sent.
                        return write_frame(writer, &ack_json(id)).is_ok();
                    }
                    Ok(RemoteFrame::Hello { .. }) | Err(_) => {
                        // Protocol violation mid-job: treat as death.
                        self.record_kill(key);
                        if leased {
                            self.requeue(job);
                        }
                        return false;
                    }
                },
                Ok(NetRead::Timeout) => {
                    if self.is_shutdown() {
                        if leased {
                            deliver_fallback(job, "fleet shut down mid-solve", &self.counters);
                        }
                        return false;
                    }
                    if last_beat.elapsed() > stall_limit {
                        // Silent worker: the same reap `--isolate` does.
                        self.record_kill(key);
                        if leased {
                            self.requeue(job);
                        }
                        return false;
                    }
                    if leased && Instant::now() >= lease_deadline {
                        // Lease expiry is not a kill: the worker may be
                        // honestly slow. The job is re-dispatched; this
                        // connection keeps draining.
                        self.counters.leases_expired.fetch_add(1, Ordering::Relaxed);
                        self.requeue(job);
                        leased = false;
                    }
                }
                Ok(NetRead::Eof) | Err(_) => {
                    // Died mid-job (clean close, mid-frame cut, or
                    // reset): requeue if we still own it.
                    self.record_kill(key);
                    if leased {
                        self.requeue(job);
                    }
                    return false;
                }
            }
        }
    }
}

/// Mutex access that shrugs off poisoning (fleet bookkeeping must stay
/// usable even if an agent thread panicked mid-update).
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn deliver_fallback(job: &Job, reason: &str, counters: &FleetCounters) {
    let mut state = lock_clean(job);
    deliver_fallback_locked(&mut state, reason, counters);
}

fn deliver_fallback_locked(state: &mut JobState, reason: &str, counters: &FleetCounters) {
    if state.delivered {
        return;
    }
    state.delivered = true;
    counters.fallback_jobs.fetch_add(1, Ordering::Relaxed);
    let _ = state.reply.send(FleetVerdict::Fallback(reason.to_string()));
}

// ---------------------------------------------------------------------
// FleetEngine: CheckEngine over the fleet, with the degradation ladder
// ---------------------------------------------------------------------

/// A [`CheckEngine`] that ships each attempt to the remote fleet and
/// degrades — local [`ProcEngine`] pool, then in-process — when the
/// fleet cannot answer. Same trait, same determinism as `--isolate`.
#[derive(Clone)]
pub struct FleetEngine {
    fleet: Arc<Fleet>,
    /// Local subprocess pool for the fallback rung; `None` falls back
    /// straight to in-process.
    pool: Option<Arc<WorkerPool>>,
    wire_engine: &'static str,
    engine_name: &'static str,
    mode: CheckMode,
}

impl FleetEngine {
    /// Fleet-dispatched BMC for check campaigns.
    pub fn for_check(fleet: Arc<Fleet>, pool: Option<Arc<WorkerPool>>) -> FleetEngine {
        FleetEngine {
            fleet,
            pool,
            wire_engine: "bmc",
            engine_name: "bmc",
            mode: CheckMode::Check,
        }
    }

    /// Fleet-dispatched k-induction for prove campaigns.
    pub fn for_prove(fleet: Arc<Fleet>, pool: Option<Arc<WorkerPool>>) -> FleetEngine {
        FleetEngine {
            fleet,
            pool,
            wire_engine: "k-induction",
            engine_name: "k-induction",
            mode: CheckMode::Prove,
        }
    }

    /// Fleet-dispatched falsifier (reports as "bmc", like its local
    /// counterparts).
    pub fn falsifier(fleet: Arc<Fleet>, pool: Option<Arc<WorkerPool>>) -> FleetEngine {
        FleetEngine {
            fleet,
            pool,
            wire_engine: "falsifier-bmc",
            engine_name: "bmc",
            mode: CheckMode::Prove,
        }
    }

    /// The lease for one dispatch of `config`-budgeted work over
    /// `props` properties.
    fn lease_for(&self, config: &CheckConfig, props: usize) -> Duration {
        if let Some(lease) = self.fleet.config.lease_override {
            return lease;
        }
        let factor = self.fleet.config.lease_factor.max(1);
        match config.time_budget {
            Some(tb) => tb
                .saturating_mul(factor as u32)
                .saturating_mul(props.max(1) as u32),
            None => self.fleet.config.default_lease,
        }
    }

    /// The local rungs of the degradation ladder: `ProcEngine` when a
    /// pool is available, in-process as the floor. In-process only
    /// replaces a pool failure when the pool could not even spawn — a
    /// check that *kills* local workers must stay contained.
    fn run_fallback(
        &self,
        spec: &CheckSpec<'_>,
        config: &CheckConfig,
        cancel: &CancelToken,
    ) -> EngineRun {
        if let Some(pool) = &self.pool {
            let engine = match (self.mode, self.wire_engine) {
                (CheckMode::Check, _) => ProcEngine::for_check(Arc::clone(pool)),
                (CheckMode::Prove, "falsifier-bmc") => ProcEngine::falsifier(Arc::clone(pool)),
                (CheckMode::Prove, _) => ProcEngine::for_prove(Arc::clone(pool)),
            };
            let run = engine.check(spec, config, cancel);
            let spawn_failed = matches!(
                &run.outcome,
                EngineOutcome::Failed(f)
                    if f.reason == FailureReason::WorkerDied
                        && f.detail.contains("failed to spawn worker")
            );
            if !spawn_failed {
                return run;
            }
        }
        match wire_engine(self.wire_engine) {
            Some(engine) => engine.check(spec, config, cancel),
            None => EngineRun::from(EngineOutcome::Failed(JobFailure {
                engine: self.engine_name.to_string(),
                property: None,
                depth: 0,
                reason: FailureReason::WorkerDied,
                detail: format!("no in-process engine for `{}`", self.wire_engine),
                attempts: 1,
            })),
        }
    }
}

impl CheckEngine for FleetEngine {
    fn name(&self) -> &'static str {
        self.engine_name
    }

    fn check(&self, spec: &CheckSpec<'_>, config: &CheckConfig, cancel: &CancelToken) -> EngineRun {
        let key = content_key(
            spec.module,
            &spec.properties,
            &spec.constraints,
            config,
            self.mode,
        );
        let limits = self.fleet.config.limits;
        let policy = config.retry_policy();
        let mut attempt = 0u32;
        loop {
            // The remote worker runs the same deterministic budgets the
            // local engines would, including panic-retry escalation.
            let conflicts = policy.escalated_budget(config.conflict_budget, attempt);
            let wire_config = config
                .clone()
                .conflicts(conflicts)
                .heartbeat_ms(limits.heartbeat_ms.max(1));
            let request = request_json(
                self.wire_engine,
                spec.module,
                &spec.properties,
                &spec.constraints,
                &wire_config,
            );
            let lease = self.lease_for(config, spec.properties.len());
            let ticket = self.fleet.submit(request, lease, key);
            let verdict = loop {
                match ticket.rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(v) => break v,
                    Err(RecvTimeoutError::Timeout) => {
                        if cancel.is_cancelled() {
                            self.fleet.abandon(&ticket);
                            return EngineRun::from(EngineOutcome::Unknown {
                                depth: 0,
                                cause: UnknownCause::Cancelled,
                            });
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        break FleetVerdict::Fallback("fleet dropped the job".to_string());
                    }
                }
            };
            match verdict {
                FleetVerdict::Remote(run) => {
                    // A remote FAILED(panic) is a healthy worker
                    // reporting a contained engine fault; retry it like
                    // every local scheduler does.
                    let panicked = matches!(
                        &run.outcome,
                        EngineOutcome::Failed(f) if f.reason == FailureReason::Panic
                    );
                    if panicked && attempt < policy.max_retries {
                        attempt += 1;
                        continue;
                    }
                    return run;
                }
                FleetVerdict::Fallback(_reason) => {
                    return self.run_fallback(spec, config, cancel);
                }
            }
        }
    }
}
