//! # autocc-bench
//!
//! The experiment harness regenerating every table and figure of the
//! AutoCC paper (see `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record). Each experiment is a library function so the
//! report binaries (`report_*`) and the Criterion benches share one
//! definition of every testbench configuration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod cli;
pub mod experiments;
pub mod fleet;
pub mod workers;
pub use campaign::{
    run_campaign, CampaignError, CampaignOptions, CampaignOutcome, CampaignStats, CampaignTask,
};
pub use cli::{finish_fleet, finish_profile, parse_report_args, ProfileSink, ReportArgs};
pub use experiments::*;
pub use fleet::{Fleet, FleetConfig, FleetEngine, FleetStats, FleetVerdict};
pub use workers::{maybe_run_worker, ProcEngine, WorkerLimits, WorkerPool};
