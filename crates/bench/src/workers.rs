//! Process-isolated check execution: a [`CheckEngine`] that runs each
//! attempt in a supervised worker subprocess.
//!
//! In-process fault containment (panic catching, in-solver budgets) can
//! not survive the faults that kill the *process*: an OOM kill, a
//! runaway allocation, an `abort` in a dependency, a wedged solver that
//! stops polling its budgets. [`ProcEngine`] moves the blast radius of
//! one check attempt into a child process: the campaign supervisor
//! ships the COI-relevant miter over the [`autocc_journal::ipc`]
//! protocol, watches heartbeats for liveness and RSS, and maps every
//! way a worker can die onto the existing failure taxonomy
//! ([`FailureReason::WorkerDied`], [`FailureReason::MemoryLimit`],
//! [`FailureReason::Hang`]) so a dead worker degrades one table row and
//! nothing else.
//!
//! The [`WorkerPool`] holds the policy shared by every isolated attempt
//! — worker command line, resource limits, and the **quarantine**
//! ledger: a check (identified by its [`content_key`], the same
//! identity the journal uses) that kills `quarantine_after` workers is
//! presumed check-shaped poison, not worker bad luck. Further attempts
//! short-circuit to [`FailureReason::Quarantined`] without spawning
//! anything, the journal records the quarantine durably, and `--resume`
//! skips it while `--retry-failed` reopens it.
//!
//! Isolation never changes answers — the worker runs the same engine on
//! the same spec with the same deterministic budgets — so
//! `content_key`/`config_fingerprint` deliberately exclude every knob in
//! here, and journals interoperate across `--isolate` modes.

use autocc_bmc::{
    content_key, CancelToken, CheckConfig, CheckEngine, CheckMode, CheckSpec, ContentKey,
    EngineOutcome, EngineRun, FailureReason, JobFailure, UnknownCause,
};
use autocc_journal::ipc::{parse_worker_frame, read_frame, request_json, write_frame, WorkerFrame};
use std::collections::{HashMap, HashSet};
use std::io::BufReader;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Resource limits and supervision policy for isolated workers.
#[derive(Clone, Copy, Debug)]
pub struct WorkerLimits {
    /// RSS ceiling per worker, in MiB; `None` = unlimited. Enforced from
    /// the parent on every heartbeat, so a worker past the limit is
    /// killed within one heartbeat period.
    pub memory_limit_mb: Option<u64>,
    /// Expected heartbeat period, in milliseconds.
    pub heartbeat_ms: u64,
    /// A worker silent for `heartbeat_ms * stall_factor` is declared
    /// wedged and killed.
    pub stall_factor: u64,
    /// A check that kills this many workers is quarantined.
    pub quarantine_after: u32,
}

impl Default for WorkerLimits {
    fn default() -> WorkerLimits {
        WorkerLimits {
            memory_limit_mb: None,
            heartbeat_ms: 250,
            stall_factor: 20,
            quarantine_after: 2,
        }
    }
}

impl WorkerLimits {
    /// Limits derived from a check config's isolation knobs.
    pub fn from_config(config: &CheckConfig) -> WorkerLimits {
        WorkerLimits {
            memory_limit_mb: config.memory_limit_mb,
            heartbeat_ms: config.heartbeat_ms.max(1),
            ..WorkerLimits::default()
        }
    }
}

/// Shared supervisor state for a campaign's isolated workers: how to
/// spawn them, how hard to police them, and which checks are quarantined.
#[derive(Debug)]
pub struct WorkerPool {
    limits: WorkerLimits,
    command: PathBuf,
    args: Vec<String>,
    env: Vec<(String, String)>,
    kills: Mutex<HashMap<ContentKey, u32>>,
    quarantined: Mutex<HashSet<ContentKey>>,
}

impl WorkerPool {
    /// A pool spawning `current_exe() worker` — the hidden subcommand
    /// every report binary answers (see `maybe_run_worker`).
    pub fn new(limits: WorkerLimits) -> WorkerPool {
        let command = std::env::current_exe().unwrap_or_else(|_| PathBuf::from("autocc"));
        WorkerPool {
            limits,
            command,
            args: vec!["worker".to_string()],
            env: Vec::new(),
            kills: Mutex::new(HashMap::new()),
            quarantined: Mutex::new(HashSet::new()),
        }
    }

    /// Overrides the worker executable (tests point this at a report
    /// binary; the default is the current executable).
    pub fn with_command(mut self, command: impl Into<PathBuf>) -> WorkerPool {
        self.command = command.into();
        self
    }

    /// Adds an environment variable to every spawned worker. The
    /// fault-injection suite uses this for `AUTOCC_WORKER_FAULT` instead
    /// of mutating the test process's own environment.
    pub fn with_env(mut self, key: &str, value: &str) -> WorkerPool {
        self.env.push((key.to_string(), value.to_string()));
        self
    }

    /// The pool's supervision policy.
    pub fn limits(&self) -> WorkerLimits {
        self.limits
    }

    /// Whether `key` has been quarantined.
    pub fn is_quarantined(&self, key: ContentKey) -> bool {
        lock_clean(&self.quarantined).contains(&key)
    }

    /// Number of quarantined checks so far.
    pub fn quarantined_count(&self) -> usize {
        lock_clean(&self.quarantined).len()
    }

    /// Records that a worker running `key` was killed (died, stalled, or
    /// exceeded memory). Returns the updated kill count and quarantines
    /// the key once it reaches `quarantine_after`.
    fn record_kill(&self, key: ContentKey) -> u32 {
        let count = {
            let mut kills = lock_clean(&self.kills);
            let count = kills.entry(key).or_insert(0);
            *count += 1;
            *count
        };
        if count >= self.limits.quarantine_after {
            lock_clean(&self.quarantined).insert(key);
        }
        count
    }

    fn spawn(&self) -> std::io::Result<Child> {
        let mut cmd = Command::new(&self.command);
        cmd.args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (k, v) in &self.env {
            cmd.env(k, v);
        }
        cmd.spawn()
    }
}

/// Mutex access that shrugs off poisoning: pool bookkeeping must stay
/// usable even if some other attempt panicked mid-update.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// How one worker attempt ended, before failure-taxonomy mapping.
enum Attempt {
    /// The worker answered; its result frame.
    Finished(EngineRun),
    /// The supervisor observed a cancellation and killed the worker.
    Cancelled { proven_depth: usize },
    /// The worker died (crash, SIGKILL, malformed stream, refused spawn).
    Died(String),
    /// The worker exceeded the RSS limit and was killed.
    OverMemory { rss_kb: u64 },
    /// The worker stopped heartbeating and was killed.
    Stalled { silent_ms: u64 },
}

/// A [`CheckEngine`] that runs each attempt in a supervised subprocess.
///
/// Same trait, same determinism, different blast radius: `check` ships
/// the spec to a worker, supervises it, and maps worker death onto
/// [`EngineOutcome::Failed`] instead of taking down the campaign.
/// Worker-killing retries are handled *here* (the in-process retry loop
/// only sees the final mapped outcome), so `attempts` in a reported
/// failure counts real subprocess attempts.
#[derive(Clone)]
pub struct ProcEngine {
    pool: Arc<WorkerPool>,
    wire_engine: &'static str,
    engine_name: &'static str,
    mode: CheckMode,
}

impl ProcEngine {
    /// Isolated BMC: the engine behind `--isolate` check campaigns.
    pub fn for_check(pool: Arc<WorkerPool>) -> ProcEngine {
        ProcEngine {
            pool,
            wire_engine: "bmc",
            engine_name: "bmc",
            mode: CheckMode::Check,
        }
    }

    /// Isolated k-induction for prove campaigns.
    pub fn for_prove(pool: Arc<WorkerPool>) -> ProcEngine {
        ProcEngine {
            pool,
            wire_engine: "k-induction",
            engine_name: "k-induction",
            mode: CheckMode::Prove,
        }
    }

    /// Isolated falsifier (BMC hunting a counterexample inside a proof
    /// race; reports as "bmc", like its in-process counterpart).
    pub fn falsifier(pool: Arc<WorkerPool>) -> ProcEngine {
        ProcEngine {
            pool,
            wire_engine: "falsifier-bmc",
            engine_name: "bmc",
            mode: CheckMode::Prove,
        }
    }

    fn failure(&self, reason: FailureReason, detail: String, attempts: u32) -> EngineRun {
        EngineRun::from(EngineOutcome::Failed(JobFailure {
            engine: self.engine_name.to_string(),
            property: None,
            depth: 0,
            reason,
            detail,
            attempts,
        }))
    }

    /// Runs one worker to completion (or death) for `spec` under
    /// `config`, with `conflicts` as the (possibly escalated) budget.
    fn run_attempt(
        &self,
        spec: &CheckSpec<'_>,
        config: &CheckConfig,
        cancel: &CancelToken,
        conflicts: Option<u64>,
        rss_peak_kb: &mut u64,
    ) -> Attempt {
        let limits = self.pool.limits;
        let heartbeat_ms = limits.heartbeat_ms.max(1);
        let wire_config = config
            .clone()
            .conflicts(conflicts)
            .heartbeat_ms(heartbeat_ms);
        let request = request_json(
            self.wire_engine,
            spec.module,
            &spec.properties,
            &spec.constraints,
            &wire_config,
        );

        let mut child = match self.pool.spawn() {
            Ok(child) => child,
            Err(e) => return Attempt::Died(format!("failed to spawn worker: {e}")),
        };
        // Ship the request. A write error means the worker is already
        // dying; the reader thread observes the same death, so ignore it.
        if let Some(mut stdin) = child.stdin.take() {
            let _ = write_frame(&mut stdin, &request);
        }
        let stdout = match child.stdout.take() {
            Some(stdout) => stdout,
            None => {
                let _ = child.kill();
                let _ = child.wait();
                return Attempt::Died("worker stdout was not captured".to_string());
            }
        };

        let (frames, from_worker) = mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut input = BufReader::new(stdout);
            while let Ok(Some(frame)) = read_frame(&mut input) {
                if frames.send(frame).is_err() {
                    break;
                }
            }
        });

        let reap = |mut child: Child, reader: std::thread::JoinHandle<()>| {
            let _ = child.kill();
            let _ = child.wait();
            let _ = reader.join();
        };
        let quantum = Duration::from_millis(heartbeat_ms.min(100));
        let stall_limit = Duration::from_millis(heartbeat_ms.saturating_mul(limits.stall_factor));
        let mut last_heartbeat = Instant::now();
        loop {
            match from_worker.recv_timeout(quantum) {
                Ok(frame) => match parse_worker_frame(&frame) {
                    Ok(WorkerFrame::Heartbeat { rss_kb }) => {
                        last_heartbeat = Instant::now();
                        // `None` = the worker's platform has no readable
                        // `/proc`: liveness still counts, RSS enforcement
                        // gracefully degrades to "not enforced".
                        if let Some(rss_kb) = rss_kb {
                            *rss_peak_kb = (*rss_peak_kb).max(rss_kb);
                            if let Some(limit_mb) = limits.memory_limit_mb {
                                if rss_kb > limit_mb.saturating_mul(1024) {
                                    reap(child, reader);
                                    return Attempt::OverMemory { rss_kb };
                                }
                            }
                        }
                    }
                    Ok(WorkerFrame::Result(run)) => {
                        let _ = child.wait();
                        let _ = reader.join();
                        return Attempt::Finished(run);
                    }
                    Err(e) => {
                        reap(child, reader);
                        return Attempt::Died(format!("malformed worker frame: {e}"));
                    }
                },
                Err(RecvTimeoutError::Timeout) => {
                    if cancel.is_cancelled() {
                        reap(child, reader);
                        return Attempt::Cancelled { proven_depth: 0 };
                    }
                    let silent = last_heartbeat.elapsed();
                    if silent > stall_limit {
                        reap(child, reader);
                        return Attempt::Stalled {
                            silent_ms: silent.as_millis() as u64,
                        };
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Stream ended without a result frame: the worker is
                    // dead. (Buffered frames drain before this arm fires,
                    // so a completed result is never misread as a death.)
                    let status = child
                        .wait()
                        .map(|s| s.to_string())
                        .unwrap_or_else(|e| format!("unwaitable: {e}"));
                    let _ = reader.join();
                    return Attempt::Died(format!(
                        "worker exited without a result frame ({status})"
                    ));
                }
            }
        }
    }
}

impl CheckEngine for ProcEngine {
    fn name(&self) -> &'static str {
        self.engine_name
    }

    fn check(&self, spec: &CheckSpec<'_>, config: &CheckConfig, cancel: &CancelToken) -> EngineRun {
        let key = content_key(
            spec.module,
            &spec.properties,
            &spec.constraints,
            config,
            self.mode,
        );
        if self.pool.is_quarantined(key) {
            return self.failure(
                FailureReason::Quarantined,
                format!(
                    "check quarantined after killing {} worker(s); \
                     --retry-failed reopens it",
                    self.pool.limits.quarantine_after
                ),
                0,
            );
        }

        let telemetry = &config.telemetry;
        let policy = config.retry_policy();
        let mut spawned = 0u32;
        let mut rss_peak_kb = 0u64;
        let mut counters_total = autocc_telemetry::SolverCounters::default();
        let mut run = loop {
            let attempt = spawned;
            let conflicts = policy.escalated_budget(config.conflict_budget, attempt);
            spawned += 1;
            let kill = match self.run_attempt(spec, config, cancel, conflicts, &mut rss_peak_kb) {
                Attempt::Finished(run) => {
                    counters_total.add(&run.counters);
                    // A worker that *answered* FAILED(panic) is a healthy
                    // process reporting a contained engine fault; retry it
                    // like the in-process scheduler retries panics.
                    let panicked = matches!(
                        &run.outcome,
                        EngineOutcome::Failed(f) if f.reason == FailureReason::Panic
                    );
                    if panicked && attempt < policy.max_retries {
                        continue;
                    }
                    break run;
                }
                Attempt::Cancelled { proven_depth } => {
                    break EngineRun::from(EngineOutcome::Unknown {
                        depth: proven_depth,
                        cause: UnknownCause::Cancelled,
                    });
                }
                Attempt::Died(detail) => (FailureReason::WorkerDied, detail),
                Attempt::OverMemory { rss_kb } => (
                    FailureReason::MemoryLimit,
                    format!(
                        "worker RSS {rss_kb} KiB exceeded the {} MiB limit",
                        self.pool.limits.memory_limit_mb.unwrap_or(0)
                    ),
                ),
                Attempt::Stalled { silent_ms } => (
                    FailureReason::Hang,
                    format!("worker heartbeat silent for {silent_ms} ms; killed"),
                ),
            };

            // The worker was killed (died / over memory / stalled):
            // quarantine bookkeeping, then retry or give up.
            let (reason, detail) = kill;
            let kill_count = self.pool.record_kill(key);
            if kill_count >= self.pool.limits.quarantine_after {
                break self.failure(
                    FailureReason::Quarantined,
                    format!(
                        "quarantined: {kill_count} workers killed by this check \
                         (last: {detail})"
                    ),
                    spawned,
                );
            }
            if attempt < policy.max_retries {
                continue; // respawn and requeue the same attempt
            }
            break self.failure(reason, detail, spawned);
        };

        if telemetry.enabled() {
            telemetry.gauge("worker_spawned", u64::from(spawned));
            if spawned > 1 {
                telemetry.gauge("worker_respawns", u64::from(spawned - 1));
            }
            if rss_peak_kb > 0 {
                telemetry.gauge("worker_rss_peak_kb", rss_peak_kb);
            }
        }
        if let EngineOutcome::Failed(f) = &mut run.outcome {
            f.attempts = f.attempts.max(spawned);
        }
        run.counters = counters_total;
        run
    }
}

/// Dispatches the hidden `worker` subcommand: every report binary (and
/// the `autocc` CLI) calls this first thing in `main`, so any of them
/// can serve as the worker executable for its own isolated campaign —
/// or, with `worker --connect <addr>`, attach to a remote fleet
/// supervisor over TCP. Never returns when invoked as a worker.
///
/// Remote form:
/// `worker --connect HOST:PORT [--backoff-ms N] [--backoff-max-ms N]
///  [--max-retries N]`
pub fn maybe_run_worker() {
    if std::env::args().nth(1).as_deref() != Some("worker") {
        return;
    }
    let rest: Vec<String> = std::env::args().skip(2).collect();
    if rest.is_empty() {
        autocc_journal::ipc::worker_main();
    }
    let mut opts = autocc_journal::ipc::RemoteWorkerOptions::default();
    let die = |msg: &str| -> ! {
        eprintln!("worker: {msg}");
        eprintln!(
            "usage: worker [--connect HOST:PORT [--backoff-ms N] \
             [--backoff-max-ms N] [--max-retries N]]"
        );
        std::process::exit(64);
    };
    let mut i = 0;
    while i < rest.len() {
        let arg = rest[i].as_str();
        let value_u64 = |i: &mut usize| -> u64 {
            *i += 1;
            match rest.get(*i).and_then(|v| v.parse().ok()) {
                Some(v) => v,
                None => die(&format!("{arg} needs a number")),
            }
        };
        match arg {
            "--connect" => {
                i += 1;
                match rest.get(i) {
                    Some(addr) => opts.addr = addr.clone(),
                    None => die("--connect needs HOST:PORT"),
                }
            }
            "--backoff-ms" => opts.backoff_base_ms = value_u64(&mut i).max(1),
            "--backoff-max-ms" => opts.backoff_max_ms = value_u64(&mut i).max(1),
            "--max-retries" => opts.max_connect_attempts = Some(value_u64(&mut i).max(1)),
            other => die(&format!("unknown worker flag `{other}`")),
        }
        i += 1;
    }
    if opts.addr.is_empty() {
        die("remote mode needs --connect HOST:PORT");
    }
    autocc_journal::ipc::remote_worker_main(&opts);
}
