//! End-to-end certification through the campaign runner: a `--certify`
//! campaign stamps every conclusive row with an independently checked
//! certificate without perturbing the stable table, journaled
//! certificates survive resume, and a tampered journal (flipped
//! certificate hash) degrades the row to FAILED (certification) — it is
//! never served as a PASS.

use autocc_bench::{run_campaign, CampaignOptions, CampaignTask};
use autocc_bmc::CheckConfig;
use autocc_core::{format_table_stable, FpvTestbench, FtSpec, RowStatus};
use autocc_duts::demo::config_device;
use std::path::{Path, PathBuf};

fn tmp_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "autocc-certify-{}-{name}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn leaky_ft() -> FpvTestbench {
    FtSpec::new(&config_device(false)).generate()
}

fn flushed_ft() -> FpvTestbench {
    FtSpec::new(&config_device(true)).generate()
}

/// One CEX row and one clean row: both conclusive, so both must carry a
/// certificate under `--certify`.
fn two_tasks() -> Vec<CampaignTask> {
    vec![
        CampaignTask::check("D1", "leaky config register", "demo:D1", leaky_ft),
        CampaignTask::check("D2", "config register with flush", "demo:D2", flushed_ft),
    ]
}

fn config(certify: bool) -> CheckConfig {
    CheckConfig::default()
        .depth(8)
        .no_timeout()
        .certify(certify)
}

fn journaled(path: &Path) -> CampaignOptions {
    CampaignOptions {
        journal: Some(path.to_path_buf()),
        ..CampaignOptions::default()
    }
}

fn resuming(path: &Path) -> CampaignOptions {
    CampaignOptions {
        resume: true,
        ..journaled(path)
    }
}

#[test]
fn certified_campaign_stamps_every_conclusive_row_without_moving_the_table() {
    let uncertified = run_campaign(
        "demo",
        two_tasks(),
        &config(false),
        &CampaignOptions::default(),
    )
    .unwrap();
    let certified = run_campaign(
        "demo",
        two_tasks(),
        &config(true),
        &CampaignOptions::default(),
    )
    .unwrap();

    for row in &certified.rows {
        assert_eq!(row.status, RowStatus::Ok, "{}: {}", row.id, row.outcome);
        assert!(
            row.certificate.is_certified(),
            "{}: conclusive row missing its certificate",
            row.id
        );
    }
    for row in &uncertified.rows {
        assert!(
            !row.certificate.is_certified(),
            "{}: certificate minted without --certify",
            row.id
        );
    }
    // Certification adds evidence, never answers: the stable table is
    // byte-identical with and without it.
    assert_eq!(
        format_table_stable("t", &uncertified.rows),
        format_table_stable("t", &certified.rows),
    );
}

#[test]
fn certified_rows_resume_certified_from_the_journal() {
    let path = tmp_journal("resume");
    let first = run_campaign("demo", two_tasks(), &config(true), &journaled(&path)).unwrap();
    assert!(first.rows.iter().all(|r| r.certificate.is_certified()));

    let second = run_campaign("demo", two_tasks(), &config(true), &resuming(&path)).unwrap();
    assert_eq!(second.stats.cached, 2, "both rows replay from the journal");
    for (a, b) in first.rows.iter().zip(&second.rows) {
        assert_eq!(a.status, b.status);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(
            a.certificate, b.certificate,
            "{}: journaled certificate lost on resume",
            a.id
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn uncertified_journal_rows_rerun_live_under_certify() {
    // A journal written without --certify serves no conclusive row to a
    // certified resume: each re-runs live to mint its proof.
    let path = tmp_journal("upgrade");
    run_campaign("demo", two_tasks(), &config(false), &journaled(&path)).unwrap();

    let upgraded = run_campaign("demo", two_tasks(), &config(true), &resuming(&path)).unwrap();
    assert_eq!(upgraded.stats.cached, 0);
    assert_eq!(upgraded.stats.live, 2, "both rows re-run to mint proofs");
    assert!(upgraded.rows.iter().all(|r| r.certificate.is_certified()));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn flipped_journal_certificate_hash_degrades_to_failed_certification() {
    let path = tmp_journal("tamper");
    run_campaign("demo", two_tasks(), &config(true), &journaled(&path)).unwrap();

    // Flip one hex digit of each record's certificate hash, exactly as a
    // bit-rotted or hand-edited journal would present it.
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.contains("\"cert\":["),
        "certified records were journaled"
    );
    let tampered: String = text
        .lines()
        .map(|line| {
            let flipped = match line.find("\"cert\":[\"") {
                Some(at) => {
                    let digit = at + "\"cert\":[\"".len();
                    let mut chars: Vec<char> = line.chars().collect();
                    chars[digit] = if chars[digit] == '0' { '1' } else { '0' };
                    chars.into_iter().collect()
                }
                None => line.to_string(),
            };
            format!("{flipped}\n")
        })
        .collect();
    std::fs::write(&path, tampered).unwrap();

    let resumed = run_campaign("demo", two_tasks(), &config(true), &resuming(&path)).unwrap();
    for row in &resumed.rows {
        assert_eq!(
            row.status,
            RowStatus::Failed,
            "{}: tampered certificate served as {}",
            row.id,
            row.outcome
        );
        assert!(
            row.outcome.contains("certification"),
            "{}: expected FAILED (certification), got {}",
            row.id,
            row.outcome
        );
        assert!(!row.certificate.is_certified());
    }
    let _ = std::fs::remove_file(&path);
}
