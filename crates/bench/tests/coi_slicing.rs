//! Cone-of-influence slicing must be outcome-preserving: a sliced check
//! returns the same verdict (and the same CEX depth) as an unsliced one,
//! and on a Vscale check with a proper cone it allocates strictly fewer
//! SAT variables.

use autocc_aig::{sequential_coi, AigLit, SeqAig};
use autocc_bmc::{Bmc, CheckConfig, CheckOutcome};
use autocc_core::{FpvTestbench, FtSpec};
use autocc_duts::vscale::{build_vscale, VscaleConfig};
use autocc_hdl::{Module, ModuleBuilder, NodeId};
use std::collections::HashMap;

fn options(max_depth: usize) -> CheckConfig {
    CheckConfig::default().depth(max_depth).no_timeout()
}

/// Variant + depth + property name: the observable verdict. Traces are
/// deliberately excluded — out-of-cone input bits are free in the unsliced
/// trace and constant in the sliced one, which is exactly the point.
fn digest(outcome: &CheckOutcome) -> (u8, usize, String) {
    match outcome {
        CheckOutcome::Cex(c) => (0, c.depth, c.property.clone()),
        CheckOutcome::BoundReached { depth } => (1, *depth, String::new()),
        CheckOutcome::Exhausted { depth, .. } => (2, *depth, String::new()),
        CheckOutcome::Failed(f) => panic!("checker fault in a slicing test: {f}"),
    }
}

fn run_single(
    ft: &FpvTestbench,
    prop: usize,
    slice: bool,
    max_depth: usize,
) -> (CheckOutcome, usize) {
    let mut bmc = Bmc::new(ft.miter());
    bmc.set_slicing(slice);
    for &c in ft.constraints() {
        bmc.add_constraint(c);
    }
    let (name, p) = &ft.properties()[prop];
    bmc.add_property(name.clone(), *p);
    let outcome = bmc.check(&options(max_depth));
    let vars = bmc.stats().vars;
    (outcome, vars)
}

/// Per-property slicing of the default Vscale FT preserves the verdict and
/// never grows the encoding. (The FT's miter properties read nearly the
/// whole dual-core design — the dense cone is a property of the DUT, not
/// of the slicer — so only `<=` is asserted here; the strict reduction is
/// exercised by `sliced_control_check_uses_strictly_fewer_vars`.)
#[test]
fn sliced_vscale_ft_property_matches_unsliced() {
    let dut = build_vscale(&VscaleConfig::default());
    let ft = FtSpec::new(&dut).generate();

    // Pick the property with the smallest sequential cone, and require the
    // slicer to actually drop state on this design.
    let seq = SeqAig::from_module(ft.miter());
    let constraint_roots: Vec<AigLit> = ft
        .constraints()
        .iter()
        .map(|c| seq.node_lits[c.index()][0])
        .collect();
    let (best, coi) = ft
        .properties()
        .iter()
        .enumerate()
        .map(|(i, (_, p))| {
            let mut roots = vec![seq.node_lits[p.index()][0]];
            roots.extend_from_slice(&constraint_roots);
            (i, sequential_coi(&seq, &roots))
        })
        .min_by_key(|(i, c)| (c.num_kept_state(), *i))
        .expect("vscale FT generates properties");
    assert!(
        !coi.keeps_all(),
        "expected at least one Vscale property with a proper cone \
         (kept {}/{} state bits)",
        coi.num_kept_state(),
        seq.state_cur.len()
    );

    let (unsliced, vars_full) = run_single(&ft, best, false, 8);
    let (sliced, vars_sliced) = run_single(&ft, best, true, 8);
    assert_eq!(
        digest(&unsliced),
        digest(&sliced),
        "slicing changed the verdict"
    );
    assert!(
        vars_sliced <= vars_full,
        "slicing must never grow the encoding \
         (sliced {vars_sliced}, unsliced {vars_full})"
    );
}

/// The whole default Vscale FT (all properties, all constraints) finds the
/// same counterexample at the same depth with slicing on and off.
#[test]
fn sliced_full_ft_finds_the_same_cex() {
    let dut = build_vscale(&VscaleConfig::default());
    let ft = FtSpec::new(&dut).generate();

    let run = |slice: bool| {
        let mut bmc = Bmc::new(ft.miter());
        bmc.set_slicing(slice);
        for &c in ft.constraints() {
            bmc.add_constraint(c);
        }
        for (name, p) in ft.properties() {
            bmc.add_property(name.clone(), *p);
        }
        bmc.check(&options(8))
    };
    let unsliced = run(false);
    let sliced = run(true);
    let (kind, depth, _) = digest(&unsliced);
    assert_eq!(
        kind, 0,
        "the default Vscale FT yields a CEX within 8 cycles"
    );
    assert_eq!(
        digest(&unsliced),
        digest(&sliced),
        "full-FT slicing changed the verdict at depth {depth}"
    );
}

/// A single-core Vscale wrapper asserting the control-path property
/// "the core never raises dmem_hwrite". Its cone excludes the register
/// file and CSR datapath, so the sliced encoding must be strictly
/// smaller while refuting the property at the same depth.
fn vscale_control_harness() -> (Module, NodeId) {
    let vscale = build_vscale(&VscaleConfig::default());
    let mut b = ModuleBuilder::new("vscale_ctl");
    let mut inputs = HashMap::new();
    for p in vscale.inputs() {
        inputs.insert(p.name.clone(), b.input(&p.name, p.width));
    }
    let u = b.instantiate(&vscale, "u", &inputs);
    let prop = b.not(u.outputs["dmem_hwrite"]);
    b.output("never_writes", prop);
    (b.build(), prop)
}

#[test]
fn sliced_control_check_uses_strictly_fewer_vars() {
    let (m, prop) = vscale_control_harness();

    // The control property has a proper sequential cone.
    let seq = SeqAig::from_module(&m);
    let coi = sequential_coi(&seq, &[seq.node_lits[prop.index()][0]]);
    assert!(
        coi.num_kept_state() < seq.state_cur.len(),
        "control property must not read the whole core \
         (kept {}/{})",
        coi.num_kept_state(),
        seq.state_cur.len()
    );

    let run = |slice: bool| {
        let mut bmc = Bmc::new(&m);
        bmc.set_slicing(slice);
        bmc.add_property("never_writes", prop);
        let outcome = bmc.check(&options(8));
        (outcome, bmc.stats().vars)
    };
    let (unsliced, vars_full) = run(false);
    let (sliced, vars_sliced) = run(true);
    let (kind, _, _) = digest(&unsliced);
    assert_eq!(kind, 0, "a store instruction refutes never_writes");
    assert_eq!(
        digest(&unsliced),
        digest(&sliced),
        "slicing changed the control-check verdict"
    );
    assert!(
        vars_sliced < vars_full,
        "sliced check must allocate strictly fewer SAT variables \
         (sliced {vars_sliced}, unsliced {vars_full})"
    );
}
