//! Regression tests pinning the decomposed check plan: the per-cluster
//! sequential-COI sizes on the demo device and the cluster statistics of
//! the Vscale testbench at `--granularity register`. If these shrink the
//! change is an improvement worth re-pinning; if they grow, property
//! decomposition regressed and every "small sliced check" silently
//! became a whole-DUT solve again.

use autocc_bench::{banked_device, vscale_stage_testbench_with, VSCALE_STAGES};
use autocc_bmc::{CheckConfig, Granularity};
use autocc_core::{FtSpec, PropertyClass};
use std::collections::BTreeSet;

fn register_config() -> CheckConfig {
    CheckConfig::default().granularity(Granularity::Register)
}

#[test]
fn monolithic_granularity_has_no_plan() {
    let device = banked_device(&BTreeSet::new());
    let ft = FtSpec::new(&device).generate();
    assert!(ft.cluster_plan(&CheckConfig::default()).is_none());
}

#[test]
fn demo_device_cluster_plan_is_pinned() {
    let device = banked_device(&BTreeSet::new());
    let ft = FtSpec::new(&device)
        .granularity(Granularity::Register)
        .generate();
    let plan = ft
        .cluster_plan(&register_config())
        .expect("register granularity plans clusters");

    // One exact output property (`q`) plus one attribution property per
    // bank-register bit (4 banks x 8 bits).
    assert_eq!(plan.num_properties(), 33);
    let exact: Vec<_> = plan
        .clusters
        .iter()
        .filter(|c| c.class == PropertyClass::Exact)
        .collect();
    let attribution: Vec<_> = plan
        .clusters
        .iter()
        .filter(|c| c.class == PropertyClass::Attribution)
        .collect();
    assert_eq!(exact.len(), 1);
    assert_eq!(exact[0].members.len(), 1);
    // The exact Listing-1 property needs most of the device (the spy
    // monitor reaches every output), while each attribution bit's cone is
    // just the flop pair plus the input-only observer counter. These are
    // the numbers the whole decomposition exists to achieve; re-pin only
    // if they shrink.
    assert_eq!(exact[0].cone_state_bits, 53);
    assert_eq!(attribution.len(), 32);
    for cluster in &attribution {
        assert_eq!(cluster.members.len(), 1);
        assert_eq!(
            cluster.cone_state_bits, 7,
            "attribution cone for {} regressed",
            cluster.label
        );
    }
    assert_eq!(plan.total_state_bits, 74);
}

#[test]
fn vscale_register_granularity_produces_many_small_clusters() {
    let ft = vscale_stage_testbench_with(&VSCALE_STAGES[2], Granularity::Register);
    let plan = ft
        .cluster_plan(&register_config())
        .expect("register granularity plans clusters");
    let exact = plan
        .clusters
        .iter()
        .filter(|c| c.class == PropertyClass::Exact)
        .count();
    let attribution = plan.clusters.len() - exact;
    eprintln!(
        "vscale: properties={} clusters={} (exact={} attribution={}) \
         total_state={} mean_cone={} max_cone={}",
        plan.num_properties(),
        plan.clusters.len(),
        exact,
        attribution,
        plan.total_state_bits,
        plan.mean_cone_bits(),
        plan.max_cone_bits()
    );
    for cluster in &plan.clusters {
        eprintln!(
            "  {}: members={} state={} ports={}",
            cluster.label,
            cluster.members.len(),
            cluster.cone_state_bits,
            cluster.cone_port_bits
        );
    }
    // The acceptance bar for the decomposition: the single monolithic
    // Vscale check (531-of-563 state-bit cone) becomes dozens-to-hundreds
    // of sliced property checks grouped into clusters whose mean cone is
    // measurably smaller than the monolithic one.
    assert!(plan.num_properties() >= 50);
    assert!(plan.clusters.len() >= 5);
    assert!(exact >= 1 && attribution >= 2);
    // Exact clusters must stay singletons: batching exact properties into
    // one solve makes the CEX witness model-dependent and breaks verdict
    // parity with the monolithic table (which runs one job per property).
    for cluster in &plan.clusters {
        if cluster.class == PropertyClass::Exact {
            assert_eq!(
                cluster.members.len(),
                1,
                "exact cluster {} is batched; monolithic witness parity is lost",
                cluster.label
            );
        }
    }
    assert!(
        plan.mean_cone_bits() < 531.0,
        "mean sliced cone {} is not smaller than the monolithic 531-bit cone",
        plan.mean_cone_bits()
    );
    // At least some clusters must be genuinely tiny (an instruction-latch
    // bit plus the observer), or slicing has silently regressed to
    // whole-DUT solves.
    let smallest = plan
        .clusters
        .iter()
        .map(|c| c.cone_state_bits)
        .min()
        .unwrap();
    assert!(
        smallest <= 20,
        "smallest cluster cone is {smallest} state bits; slicing regressed"
    );
}
