//! The portfolio scheduler must be invisible in the results: running the
//! Table 1/Table 2 experiments with `--jobs 4` yields byte-identical
//! stable report output to `--jobs 1`, with and without slicing.
//!
//! Depths are reduced against the report binaries' defaults so the suite
//! stays fast; determinism is about scheduling, not about bound size. The
//! time budget is `None` because wall-clock budgets are inherently
//! load-dependent (the stable table format omits runtimes for the same
//! reason).

use autocc_bench::{
    run_campaign, table1, table1_tasks, table1_tasks_with, table2, CampaignOptions, WorkerLimits,
    WorkerPool,
};
use autocc_bmc::{CheckConfig, Granularity};
use autocc_core::format_table_stable;
use std::sync::Arc;

fn options(max_depth: usize) -> CheckConfig {
    CheckConfig::default().depth(max_depth).no_timeout()
}

#[test]
fn table2_is_jobs_invariant() {
    let options = options(7);
    let render = |jobs: usize, slice: bool| {
        let rows = table2(&options.clone().jobs(jobs).slice(slice));
        format_table_stable("Table 2 (determinism check)", &rows)
    };
    let serial = render(1, false);
    assert_eq!(serial, render(4, false), "jobs=4 changed Table 2");
    assert_eq!(
        serial,
        render(4, true),
        "jobs=4 with slicing changed Table 2"
    );
}

/// `--isolate` must be invisible in the results: the same experiments
/// run through subprocess workers render a byte-identical stable table.
/// (This is also why the isolation knobs stay out of `content_key` and
/// `config_fingerprint` — journals interoperate across modes.)
#[test]
fn table1_is_isolation_invariant() {
    let base = options(5);
    let in_process = format_table_stable("Table 1 (isolation check)", &table1(&base));

    let pool = Arc::new(
        WorkerPool::new(WorkerLimits::from_config(&base))
            .with_command(env!("CARGO_BIN_EXE_report_table1")),
    );
    let isolated_rows = run_campaign(
        "table1",
        table1_tasks(),
        &base.isolate(),
        &CampaignOptions {
            pool: Some(pool),
            ..CampaignOptions::default()
        },
    )
    .expect("isolated campaign starts")
    .rows;
    let isolated = format_table_stable("Table 1 (isolation check)", &isolated_rows);
    assert_eq!(in_process, isolated, "--isolate changed Table 1");
}

/// Property decomposition must be invisible in the paper table: running
/// Table 1 at `--granularity register` (hundreds of per-bit attribution
/// properties, clustered and scheduled largest-cone-first) renders a
/// stable table that is byte-identical across `--jobs 1` and `--jobs 4`
/// *and* byte-identical to the monolithic run. Exact-class outcomes alone
/// decide each row; attribution verdicts live in the per-property verdict
/// map, never in the table.
#[test]
fn table1_register_granularity_is_jobs_invariant_and_verdict_equivalent() {
    let title = "Table 1 (granularity check)";
    let base = options(5);
    let render = |granularity: Granularity, jobs: usize| {
        let config = base.clone().granularity(granularity).jobs(jobs);
        let rows = run_campaign(
            "table1",
            table1_tasks_with(granularity),
            &config,
            &CampaignOptions::off(),
        )
        .expect("campaign without a journal cannot fail to start")
        .rows;
        format_table_stable(title, &rows)
    };
    let decomposed_serial = render(Granularity::Register, 1);
    assert_eq!(
        decomposed_serial,
        render(Granularity::Register, 4),
        "jobs=4 changed the decomposed Table 1"
    );
    assert_eq!(
        decomposed_serial,
        render(Granularity::Monolithic, 1),
        "register granularity changed Table 1 verdicts vs monolithic"
    );
}

/// Witness-property parity at a depth where counterexamples actually
/// fire. The M2/M3 maple rows report their CEXs at depth 8 — below that
/// every row is clean and parity is vacuous. This is the regression that
/// motivated singleton exact clusters: a batched exact solve reported
/// whichever member the SAT model happened to violate (`as__fault_eq`)
/// instead of the monolithic winner (`as__noc_req_addr_eq`). Restricted
/// to the maple rows so the suite stays affordable.
#[test]
fn maple_register_granularity_matches_monolithic_cex_witnesses() {
    let title = "Table 1 maple rows (witness parity)";
    let base = options(8);
    let render = |granularity: Granularity| {
        let config = base.clone().granularity(granularity);
        let mut tasks = table1_tasks_with(granularity);
        tasks.retain(|t| t.id.starts_with('M'));
        assert_eq!(tasks.len(), 2, "expected the M2/M3 maple rows");
        let rows = run_campaign("table1-maple", tasks, &config, &CampaignOptions::off())
            .expect("campaign without a journal cannot fail to start")
            .rows;
        format_table_stable(title, &rows)
    };
    let monolithic = render(Granularity::Monolithic);
    eprintln!("{monolithic}");
    assert!(
        monolithic.contains("CEX"),
        "depth 8 must be deep enough to fire the maple CEXs:\n{monolithic}"
    );
    assert_eq!(
        monolithic,
        render(Granularity::Register),
        "register granularity changed a maple CEX witness"
    );
}

#[test]
fn table1_is_jobs_invariant() {
    let options = options(5);
    let render = |jobs: usize, slice: bool| {
        let rows = table1(&options.clone().jobs(jobs).slice(slice));
        format_table_stable("Table 1 (determinism check)", &rows)
    };
    let serial = render(1, false);
    assert_eq!(serial, render(4, false), "jobs=4 changed Table 1");
    assert_eq!(
        serial,
        render(4, true),
        "jobs=4 with slicing changed Table 1"
    );
}
