//! The portfolio scheduler must be invisible in the results: running the
//! Table 1/Table 2 experiments with `--jobs 4` yields byte-identical
//! stable report output to `--jobs 1`, with and without slicing.
//!
//! Depths are reduced against the report binaries' defaults so the suite
//! stays fast; determinism is about scheduling, not about bound size. The
//! time budget is `None` because wall-clock budgets are inherently
//! load-dependent (the stable table format omits runtimes for the same
//! reason).

use autocc_bench::{
    run_campaign, table1, table1_tasks, table2, CampaignOptions, WorkerLimits, WorkerPool,
};
use autocc_bmc::CheckConfig;
use autocc_core::format_table_stable;
use std::sync::Arc;

fn options(max_depth: usize) -> CheckConfig {
    CheckConfig::default().depth(max_depth).no_timeout()
}

#[test]
fn table2_is_jobs_invariant() {
    let options = options(7);
    let render = |jobs: usize, slice: bool| {
        let rows = table2(&options.clone().jobs(jobs).slice(slice));
        format_table_stable("Table 2 (determinism check)", &rows)
    };
    let serial = render(1, false);
    assert_eq!(serial, render(4, false), "jobs=4 changed Table 2");
    assert_eq!(
        serial,
        render(4, true),
        "jobs=4 with slicing changed Table 2"
    );
}

/// `--isolate` must be invisible in the results: the same experiments
/// run through subprocess workers render a byte-identical stable table.
/// (This is also why the isolation knobs stay out of `content_key` and
/// `config_fingerprint` — journals interoperate across modes.)
#[test]
fn table1_is_isolation_invariant() {
    let base = options(5);
    let in_process = format_table_stable("Table 1 (isolation check)", &table1(&base));

    let pool = Arc::new(
        WorkerPool::new(WorkerLimits::from_config(&base))
            .with_command(env!("CARGO_BIN_EXE_report_table1")),
    );
    let isolated_rows = run_campaign(
        "table1",
        table1_tasks(),
        &base.isolate(),
        &CampaignOptions {
            pool: Some(pool),
            ..CampaignOptions::default()
        },
    )
    .expect("isolated campaign starts")
    .rows;
    let isolated = format_table_stable("Table 1 (isolation check)", &isolated_rows);
    assert_eq!(in_process, isolated, "--isolate changed Table 1");
}

#[test]
fn table1_is_jobs_invariant() {
    let options = options(5);
    let render = |jobs: usize, slice: bool| {
        let rows = table1(&options.clone().jobs(jobs).slice(slice));
        format_table_stable("Table 1 (determinism check)", &rows)
    };
    let serial = render(1, false);
    assert_eq!(serial, render(4, false), "jobs=4 changed Table 1");
    assert_eq!(
        serial,
        render(4, true),
        "jobs=4 with slicing changed Table 1"
    );
}
