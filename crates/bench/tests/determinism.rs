//! The portfolio scheduler must be invisible in the results: running the
//! Table 1/Table 2 experiments with `--jobs 4` yields byte-identical
//! stable report output to `--jobs 1`, with and without slicing.
//!
//! Depths are reduced against the report binaries' defaults so the suite
//! stays fast; determinism is about scheduling, not about bound size. The
//! time budget is `None` because wall-clock budgets are inherently
//! load-dependent (the stable table format omits runtimes for the same
//! reason).

use autocc_bench::{table1, table2};
use autocc_bmc::CheckConfig;
use autocc_core::format_table_stable;

fn options(max_depth: usize) -> CheckConfig {
    CheckConfig::default().depth(max_depth).no_timeout()
}

#[test]
fn table2_is_jobs_invariant() {
    let options = options(7);
    let render = |jobs: usize, slice: bool| {
        let rows = table2(&options.clone().jobs(jobs).slice(slice));
        format_table_stable("Table 2 (determinism check)", &rows)
    };
    let serial = render(1, false);
    assert_eq!(serial, render(4, false), "jobs=4 changed Table 2");
    assert_eq!(
        serial,
        render(4, true),
        "jobs=4 with slicing changed Table 2"
    );
}

#[test]
fn table1_is_jobs_invariant() {
    let options = options(5);
    let render = |jobs: usize, slice: bool| {
        let rows = table1(&options.clone().jobs(jobs).slice(slice));
        format_table_stable("Table 1 (determinism check)", &rows)
    };
    let serial = render(1, false);
    assert_eq!(serial, render(4, false), "jobs=4 changed Table 1");
    assert_eq!(
        serial,
        render(4, true),
        "jobs=4 with slicing changed Table 1"
    );
}
