//! Fault-injection suite for the resilient check path: engines that
//! panic, hang past their wall-clock budget, or fabricate counterexamples
//! must each degrade a single property — never tear down the run, never
//! smuggle an uncertified CEX into a report, and never perturb the
//! deterministic `jobs = 1` vs `jobs = N` merge.

use autocc_bench::{
    run_campaign, CampaignOptions, CampaignTask, ProcEngine, WorkerLimits, WorkerPool,
};
use autocc_bmc::{
    BmcEngine, CancelToken, Cex, CheckConfig, CheckEngine, CheckSpec, EngineOutcome, EngineRun,
    FailureReason, Trace, UnknownCause,
};
use autocc_core::{report_exit_code, AutoCcOutcome, FtSpec, RowStatus};
use autocc_duts::aes::{build_aes, AesConfig};
use autocc_duts::demo::config_device;
use autocc_hdl::{Bv, Module, ModuleBuilder};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

fn options(max_depth: usize) -> CheckConfig {
    CheckConfig::default().depth(max_depth).no_timeout()
}

/// Panics the first `panics_per_property` attempts on every property it is
/// handed, then delegates to the real BMC engine. Counters are keyed by
/// property name, so the injected faults are identical for every worker
/// count and scheduling order.
struct FlakyBmc {
    panics_per_property: u32,
    attempts: Mutex<HashMap<String, u32>>,
}

impl FlakyBmc {
    fn new(panics_per_property: u32) -> FlakyBmc {
        FlakyBmc {
            panics_per_property,
            attempts: Mutex::new(HashMap::new()),
        }
    }
}

impl CheckEngine for FlakyBmc {
    fn name(&self) -> &'static str {
        "flaky-bmc"
    }

    fn check(&self, spec: &CheckSpec<'_>, config: &CheckConfig, cancel: &CancelToken) -> EngineRun {
        let key = spec
            .properties
            .first()
            .map(|(n, _)| n.clone())
            .unwrap_or_default();
        let attempt = {
            let mut attempts = self.attempts.lock().unwrap();
            let count = attempts.entry(key).or_insert(0);
            *count += 1;
            *count
        };
        if attempt <= self.panics_per_property {
            panic!("injected fault (attempt {attempt})");
        }
        BmcEngine.check(spec, config, cancel)
    }
}

/// Panics unconditionally on one named property; real BMC everywhere else.
struct TargetedPanic {
    property: String,
}

impl CheckEngine for TargetedPanic {
    fn name(&self) -> &'static str {
        "targeted-panic"
    }

    fn check(&self, spec: &CheckSpec<'_>, config: &CheckConfig, cancel: &CancelToken) -> EngineRun {
        if spec.properties.iter().any(|(n, _)| *n == self.property) {
            panic!("injected fault on {}", self.property);
        }
        BmcEngine.check(spec, config, cancel)
    }
}

/// Claims a counterexample it never found: an all-zero input trace that
/// replays clean. Certification must reject it.
struct CorruptCexEngine;

impl CheckEngine for CorruptCexEngine {
    fn name(&self) -> &'static str {
        "corrupt-cex"
    }

    fn check(
        &self,
        spec: &CheckSpec<'_>,
        _config: &CheckConfig,
        _cancel: &CancelToken,
    ) -> EngineRun {
        let depth = 3;
        let cycle: Vec<Bv> = spec
            .module
            .inputs()
            .iter()
            .map(|p| Bv::zero(p.width))
            .collect();
        EngineOutcome::Cex(Cex {
            property: spec.properties[0].0.clone(),
            depth,
            trace: Trace::new(vec![cycle; depth]),
        })
        .into()
    }
}

/// A combinational two-output pass-through: outputs depend only on the
/// current (converged) inputs, so the testbench is clean — which makes the
/// fate of every individual property visible in the merged outcome.
fn mirror_device() -> Module {
    let mut b = ModuleBuilder::new("mirror2");
    let a = b.input("a", 4);
    let c = b.input("c", 4);
    b.output("pa", a);
    b.output("pc", c);
    b.build()
}

/// The leaky config register plus a clean pass-through output: one
/// property has a genuine CEX, the other is clean.
fn leaky_pair_device() -> Module {
    let mut b = ModuleBuilder::new("leaky2");
    let we = b.input("we", 1);
    let re = b.input("re", 1);
    let data = b.input("data", 4);
    let cfg = b.reg("cfg", 4, Bv::zero(4));
    let next = b.mux(we, data, cfg);
    b.set_next(cfg, next);
    let zero = b.lit(4, 0);
    let q = b.mux(re, cfg, zero);
    b.output("q", q);
    b.output("mirror", data);
    b.build()
}

#[test]
fn panicking_job_degrades_only_its_property() {
    let dut = mirror_device();
    let ft = FtSpec::new(&dut).generate();
    let config = options(6);
    let engine = TargetedPanic {
        property: "as__pa_eq".to_string(),
    };
    let report = ft.check_portfolio_with(&config, &engine);
    match report.outcome {
        AutoCcOutcome::Failed { failures } => {
            assert_eq!(failures.len(), 1, "only the injected property fails");
            let f = &failures[0];
            assert_eq!(f.property.as_deref(), Some("as__pa_eq"));
            assert_eq!(f.reason, FailureReason::Panic);
            assert_eq!(f.attempts, 2, "default policy retries a panic once");
            assert!(
                f.detail.contains("injected fault"),
                "panic payload is preserved: {}",
                f.detail
            );
        }
        other => panic!("expected a contained failure, got {other:?}"),
    }
}

#[test]
fn panicked_job_recovers_through_retries() {
    let dut = config_device(false);
    let ft = FtSpec::new(&dut).generate();
    let config = options(12);
    let baseline = ft.check_portfolio(&config);
    let baseline_cex = baseline.outcome.cex().expect("cfg register leaks");

    // One injected panic per property; the default policy's single retry
    // recovers and the run ends exactly where the healthy run does.
    let flaky = FlakyBmc::new(1);
    let report = ft.check_portfolio_with(&config, &flaky);
    let cex = report
        .outcome
        .cex()
        .expect("retry recovers the genuine counterexample");
    assert_eq!(cex.property, baseline_cex.property);
    assert_eq!(cex.depth, baseline_cex.depth);
}

#[test]
fn spent_retries_degrade_to_failed_not_panic() {
    let dut = config_device(false);
    let ft = FtSpec::new(&dut).generate();
    let config = options(12).retries(2);
    let flaky = FlakyBmc::new(10); // more faults than retries
    let report = ft.check_portfolio_with(&config, &flaky);
    match report.outcome {
        AutoCcOutcome::Failed { failures } => {
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].reason, FailureReason::Panic);
            assert_eq!(failures[0].attempts, 3, "initial attempt + 2 retries");
        }
        other => panic!("expected a contained failure, got {other:?}"),
    }
}

#[test]
fn corrupt_cex_is_rejected_by_replay_certification() {
    let dut = config_device(false);
    let ft = FtSpec::new(&dut).generate();
    let config = options(12);
    let report = ft.check_portfolio_with(&config, &CorruptCexEngine);
    match report.outcome {
        AutoCcOutcome::Failed { failures } => {
            assert!(!failures.is_empty());
            let f = &failures[0];
            assert_eq!(f.reason, FailureReason::ReplayMismatch);
            assert_eq!(f.engine, "certify");
            assert_eq!(f.property.as_deref(), Some("as__q_eq"));
        }
        other => panic!("a fabricated CEX must never be reported, got {other:?}"),
    }
}

#[test]
fn hung_check_is_stopped_by_the_wall_clock_budget() {
    // AES at depth 64 runs for minutes uninterrupted; the in-solver
    // deadline has to stop it mid-solve, not at the next depth boundary.
    let dut = build_aes(&AesConfig::default());
    let ft = FtSpec::new(&dut).generate();
    let config = CheckConfig::default()
        .depth(64)
        .timeout(Duration::from_millis(50));
    let start = Instant::now();
    let report = ft.check_portfolio(&config);
    let elapsed = start.elapsed();
    match report.outcome {
        AutoCcOutcome::Unknown { cause, .. } => {
            assert_eq!(cause, UnknownCause::TimeBudget);
        }
        other => panic!("expected a time-budget degrade, got {other:?}"),
    }
    // Generous bound: the point is "soon after the budget", not "never".
    assert!(
        elapsed < Duration::from_secs(30),
        "hung check ran {elapsed:?} past a 50 ms budget"
    );
}

// ---------------------------------------------------------------------
// Process-isolated workers: deaths the in-process containment cannot
// survive (SIGKILL, abort, runaway memory, wedged heartbeats) must each
// degrade to a contained failure — or recover through a respawn.
// ---------------------------------------------------------------------

/// A pool whose workers are the `report_table1` binary's hidden `worker`
/// subcommand — the same executable the isolated-mode CI job uses.
fn worker_pool(limits: WorkerLimits) -> WorkerPool {
    WorkerPool::new(limits).with_command(env!("CARGO_BIN_EXE_report_table1"))
}

#[test]
fn sigkilled_worker_degrades_to_a_contained_failure() {
    let dut = config_device(false);
    let ft = FtSpec::new(&dut).generate();
    let config = options(12).retries(0);
    let pool =
        Arc::new(worker_pool(WorkerLimits::default()).with_env("AUTOCC_WORKER_FAULT", "sigkill"));
    let report = ft.check_portfolio_with(&config, &ProcEngine::for_check(pool));
    match report.outcome {
        AutoCcOutcome::Failed { failures } => {
            assert!(!failures.is_empty());
            for f in &failures {
                assert_eq!(f.reason, FailureReason::WorkerDied, "got: {f}");
                assert!(
                    f.detail.contains("without a result frame"),
                    "death is diagnosed, not mislabelled: {}",
                    f.detail
                );
            }
        }
        other => panic!("expected a contained worker death, got {other:?}"),
    }
}

#[test]
fn over_memory_worker_is_killed_and_reported() {
    let dut = config_device(false);
    let ft = FtSpec::new(&dut).generate();
    let config = options(12).retries(0);
    let limits = WorkerLimits {
        memory_limit_mb: Some(64),
        heartbeat_ms: 20,
        ..WorkerLimits::default()
    };
    // The fault makes every heartbeat claim ~1 GiB of RSS; the
    // supervisor must kill within one heartbeat of the first report.
    let pool = Arc::new(worker_pool(limits).with_env("AUTOCC_WORKER_FAULT", "rss:1048576"));
    let report = ft.check_portfolio_with(&config, &ProcEngine::for_check(pool));
    match report.outcome {
        AutoCcOutcome::Failed { failures } => {
            assert!(!failures.is_empty());
            for f in &failures {
                assert_eq!(f.reason, FailureReason::MemoryLimit, "got: {f}");
                assert!(f.detail.contains("exceeded"), "detail: {}", f.detail);
            }
        }
        other => panic!("expected a memory-limit kill, got {other:?}"),
    }
}

#[test]
fn stalled_worker_is_reaped_as_hang() {
    let dut = mirror_device();
    let ft = FtSpec::new(&dut).generate();
    let config = options(6).retries(0);
    let limits = WorkerLimits {
        heartbeat_ms: 10,
        stall_factor: 5, // 50 ms of silence = wedged
        ..WorkerLimits::default()
    };
    let pool = Arc::new(worker_pool(limits).with_env("AUTOCC_WORKER_FAULT", "stall"));
    let report = ft.check_portfolio_with(&config, &ProcEngine::for_check(pool));
    match report.outcome {
        AutoCcOutcome::Failed { failures } => {
            assert!(!failures.is_empty());
            for f in &failures {
                assert_eq!(f.reason, FailureReason::Hang, "got: {f}");
                assert!(f.detail.contains("silent"), "detail: {}", f.detail);
            }
        }
        other => panic!("expected a heartbeat-stall kill, got {other:?}"),
    }
}

#[test]
fn worker_death_respawns_and_recovers() {
    let dut = config_device(false);
    let ft = FtSpec::new(&dut).generate();
    let config = options(12); // default policy: one retry
    let baseline = ft.check_portfolio(&config);
    let baseline_cex = baseline.outcome.cex().expect("cfg register leaks");

    // `abort_if:<path>` kills exactly one worker (the flag file is
    // consumed); the respawned worker must requeue and finish the check.
    let flag =
        std::env::temp_dir().join(format!("autocc-fault-respawn-{}.flag", std::process::id()));
    std::fs::write(&flag, b"die once").expect("write flag file");
    let pool = Arc::new(worker_pool(WorkerLimits::default()).with_env(
        "AUTOCC_WORKER_FAULT",
        &format!("abort_if:{}", flag.display()),
    ));
    let report = ft.check_portfolio_with(&config, &ProcEngine::for_check(Arc::clone(&pool)));
    let _ = std::fs::remove_file(&flag);

    let cex = report
        .outcome
        .cex()
        .expect("respawned worker recovers the genuine counterexample");
    assert_eq!(cex.property, baseline_cex.property);
    assert_eq!(cex.depth, baseline_cex.depth);
    assert_eq!(
        pool.quarantined_count(),
        0,
        "a single death must not trip the circuit breaker"
    );
}

#[test]
fn repeated_killer_is_quarantined_and_resume_skips_it() {
    let dir = std::env::temp_dir().join(format!("autocc-fault-quarantine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal = dir.join("run.jsonl");
    let config = options(12).isolate().retries(1);
    let task = || {
        CampaignTask::check("Q1", "worker killer", "demo", || {
            FtSpec::new(&config_device(false)).generate()
        })
    };

    // Every worker aborts: two kills per check trip the default circuit
    // breaker, the row lands FAILED (quarantined), and the campaign's
    // exit code is the soft 3, not the hard 1.
    let killer =
        Arc::new(worker_pool(WorkerLimits::default()).with_env("AUTOCC_WORKER_FAULT", "abort"));
    let outcome = run_campaign(
        "fault-quarantine",
        vec![task()],
        &config,
        &CampaignOptions {
            journal: Some(journal.clone()),
            pool: Some(Arc::clone(&killer)),
            ..CampaignOptions::default()
        },
    )
    .expect("campaign starts");
    assert_eq!(outcome.rows.len(), 1);
    assert_eq!(outcome.rows[0].status, RowStatus::Quarantined);
    assert!(
        outcome.rows[0].outcome.contains("quarantined"),
        "label: {}",
        outcome.rows[0].outcome
    );
    assert!(killer.quarantined_count() >= 1);
    assert_eq!(report_exit_code(&outcome.rows), 3);

    // --resume with a healthy pool: the quarantined row is served from
    // the journal — no live check, no worker spawned for it.
    let healthy = Arc::new(worker_pool(WorkerLimits::default()));
    let resumed = run_campaign(
        "fault-quarantine",
        vec![task()],
        &config,
        &CampaignOptions {
            journal: Some(journal.clone()),
            resume: true,
            pool: Some(Arc::clone(&healthy)),
            ..CampaignOptions::default()
        },
    )
    .expect("resume starts");
    assert_eq!(resumed.stats.cached, 1);
    assert_eq!(resumed.stats.skipped_failed, 1);
    assert_eq!(resumed.stats.live, 0);
    assert_eq!(resumed.rows[0].status, RowStatus::Quarantined);

    // --retry-failed reopens the quarantined check; healthy workers find
    // the genuine counterexample.
    let retried = run_campaign(
        "fault-quarantine",
        vec![task()],
        &config,
        &CampaignOptions {
            journal: Some(journal),
            resume: true,
            retry_failed: true,
            pool: Some(healthy),
            ..CampaignOptions::default()
        },
    )
    .expect("retry starts");
    assert_eq!(retried.stats.live, 1);
    assert_eq!(retried.rows[0].status, RowStatus::Ok);
    assert!(
        retried.rows[0].outcome.starts_with("CEX"),
        "healthy rerun finds the leak: {}",
        retried.rows[0].outcome
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_faults_preserve_jobs_invariance() {
    let dut = leaky_pair_device();
    let ft = FtSpec::new(&dut).generate();

    // Recovered faults: every property panics once, retries recover.
    let outcome = |jobs: usize| {
        let config = options(12).jobs(jobs);
        let flaky = FlakyBmc::new(1);
        format!("{:?}", ft.check_portfolio_with(&config, &flaky).outcome)
    };
    assert_eq!(outcome(1), outcome(4), "recovered faults broke determinism");

    // Unrecovered faults: panics outlast the retries, every property
    // degrades — and the failure list is identical for any worker count.
    let failed = |jobs: usize| {
        let config = options(12).jobs(jobs).retries(1);
        let flaky = FlakyBmc::new(10);
        format!("{:?}", ft.check_portfolio_with(&config, &flaky).outcome)
    };
    assert_eq!(failed(1), failed(4), "contained failures broke determinism");
}
