//! Loopback fleet fault suite: the remote worker fleet must be invisible
//! in the results. A Table 1 campaign dispatched to `worker --connect`
//! subprocesses renders a stable table byte-identical to the in-process
//! run — with healthy workers, with a SIGKILL'd worker, with a
//! connection severed mid-result-frame, and with no workers at all
//! (degradation to local execution). Lease expiry and at-most-once
//! accounting are exercised directly against the supervisor: a late
//! result from a worker whose lease expired after re-assignment is
//! counted as a duplicate and dropped, never double-reported.
//!
//! Every spawned pool injects `CARGO_BIN_EXE_report_table1` as the
//! worker command — the default would re-spawn the test harness itself.

use autocc_bench::{
    run_campaign, table1, table1_tasks, CampaignOptions, Fleet, FleetConfig, FleetEngine,
    WorkerLimits, WorkerPool,
};
use autocc_bmc::{BmcEngine, CancelToken, CheckConfig, CheckEngine, CheckSpec};
use autocc_core::format_table_stable;
use autocc_hdl::{Bv, Module, ModuleBuilder};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn options(max_depth: usize) -> CheckConfig {
    CheckConfig::default().depth(max_depth).no_timeout()
}

/// Spawns a `worker --connect` subprocess against `addr`, optionally
/// staged to die via `AUTOCC_WORKER_FAULT`.
fn spawn_worker(addr: &str, fault: Option<&str>) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_report_table1"));
    cmd.args(["worker", "--connect", addr])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .env_remove("AUTOCC_WORKER_FAULT");
    if let Some(fault) = fault {
        cmd.env("AUTOCC_WORKER_FAULT", fault);
    }
    cmd.spawn().expect("spawn remote worker")
}

/// Waits until `n` workers have registered with the fleet.
fn wait_for_workers(fleet: &Fleet, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while fleet.workers_connected() < n {
        assert!(
            Instant::now() < deadline,
            "only {} of {n} workers connected",
            fleet.workers_connected()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Reaps worker subprocesses after the fleet shut down; anything still
/// alive after the deadline is killed so the suite never hangs.
fn reap(children: Vec<Child>) {
    let deadline = Instant::now() + Duration::from_secs(20);
    for mut child in children {
        loop {
            match child.try_wait() {
                Ok(Some(_)) | Err(_) => break,
                Ok(None) if Instant::now() >= deadline => {
                    let _ = child.kill();
                    let _ = child.wait();
                    break;
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
            }
        }
    }
}

fn local_pool() -> Arc<WorkerPool> {
    Arc::new(
        WorkerPool::new(WorkerLimits::default()).with_command(env!("CARGO_BIN_EXE_report_table1")),
    )
}

/// Runs the Table 1 campaign against `fleet` and renders it stably.
fn fleet_table1(config: &CheckConfig, fleet: &Arc<Fleet>) -> String {
    let rows = run_campaign(
        "table1",
        table1_tasks(),
        config,
        &CampaignOptions {
            pool: Some(local_pool()),
            fleet: Some(Arc::clone(fleet)),
            ..CampaignOptions::default()
        },
    )
    .expect("fleet campaign starts")
    .rows;
    format_table_stable("Table 1 (fleet check)", &rows)
}

/// Two healthy remote workers answer a Table 1 campaign; the stable
/// table is byte-identical to the in-process run and at least one job
/// actually went remote (the equality is not vacuous).
#[test]
fn table1_over_two_remote_workers_is_byte_identical() {
    let base = options(5).jobs(2);
    let local = format_table_stable("Table 1 (fleet check)", &table1(&base));

    let fleet = Fleet::listen("127.0.0.1:0", FleetConfig::default()).expect("fleet listens");
    let addr = fleet.addr().to_string();
    let workers = vec![spawn_worker(&addr, None), spawn_worker(&addr, None)];
    wait_for_workers(&fleet, 2);

    let remote = fleet_table1(&base, &fleet);
    let stats = fleet.stats();
    fleet.shutdown();
    reap(workers);

    assert_eq!(local, remote, "remote fleet changed Table 1");
    assert!(stats.jobs_remote > 0, "no job went remote: {stats}");
    assert_eq!(stats.workers_peak, 2, "unexpected peak: {stats}");
}

/// The acceptance scenario: one worker is SIGKILL'd on its first job,
/// another severs its connection mid-result-frame, and a third stays
/// healthy. The campaign completes without intervention and the stable
/// table stays byte-identical; the dead workers' jobs were re-assigned.
#[test]
fn table1_survives_sigkill_and_midframe_drop() {
    let base = options(5).jobs(2);
    let local = format_table_stable("Table 1 (fleet check)", &table1(&base));

    let fleet = Fleet::listen("127.0.0.1:0", FleetConfig::default()).expect("fleet listens");
    let addr = fleet.addr().to_string();
    let workers = vec![
        spawn_worker(&addr, Some("sigkill")),
        spawn_worker(&addr, Some("net_drop_result")),
        spawn_worker(&addr, None),
    ];
    wait_for_workers(&fleet, 3);

    let remote = fleet_table1(&base, &fleet);
    let stats = fleet.stats();
    fleet.shutdown();
    reap(workers);

    assert_eq!(local, remote, "worker faults changed Table 1");
    assert!(
        stats.jobs_reassigned >= 1,
        "faulted workers' jobs were never re-assigned: {stats}"
    );
}

/// With no workers ever connecting, every job waits out the fallback
/// grace and degrades to the local pool — same table, zero remote jobs.
#[test]
fn table1_with_empty_fleet_degrades_to_local_workers() {
    let base = options(5);
    let local = format_table_stable("Table 1 (fleet check)", &table1(&base));

    let config = FleetConfig {
        fallback_grace: Duration::from_millis(50),
        ..FleetConfig::default()
    };
    let fleet = Fleet::listen("127.0.0.1:0", config).expect("fleet listens");
    let remote = fleet_table1(&base, &fleet);
    let stats = fleet.stats();
    fleet.shutdown();

    assert_eq!(local, remote, "local degradation changed Table 1");
    assert_eq!(stats.jobs_remote, 0, "phantom remote jobs: {stats}");
    assert!(stats.fallback_jobs > 0, "nothing fell back: {stats}");
}

/// A tiny DUT-shaped module for direct supervisor tests: a counter whose
/// `small` output fails once the count reaches 5, so a depth-8 BMC run
/// deterministically finds a CEX.
fn probe_module() -> Module {
    let mut b = ModuleBuilder::new("probe");
    let inc = b.input("inc", 1);
    let ra = b.reg("a", 4, Bv::zero(4));
    let one = b.lit(4, 1);
    let na = b.add(ra, one);
    let next = b.mux(inc, na, ra);
    b.set_next(ra, next);
    let five = b.lit(4, 5);
    let ok = b.ult(ra, five);
    b.output("small", ok);
    b.build()
}

fn probe_outcome(run: &autocc_bmc::EngineRun) -> String {
    format!("{:?}", run.outcome)
}

/// A socket that connects but never says hello (half-open) must not
/// register as a worker, and a fleet holding only such sockets degrades
/// to local execution after the grace period.
#[test]
fn half_open_socket_never_registers_and_jobs_fall_back() {
    let config = FleetConfig {
        hello_deadline: Duration::from_millis(200),
        fallback_grace: Duration::from_millis(200),
        ..FleetConfig::default()
    };
    let fleet = Fleet::listen("127.0.0.1:0", config).expect("fleet listens");
    let _half_open = std::net::TcpStream::connect(fleet.addr()).expect("connect half-open");
    std::thread::sleep(Duration::from_millis(500));
    assert_eq!(fleet.workers_connected(), 0, "half-open socket registered");
    assert_eq!(fleet.stats().workers_seen, 0);

    let module = probe_module();
    let small = module.output_node("small").expect("probe output");
    let spec = CheckSpec {
        module: &module,
        properties: vec![("small".to_string(), small)],
        constraints: Vec::new(),
        group: None,
    };
    let config = options(8);
    let expected = BmcEngine.check(&spec, &config, &CancelToken::new());

    let engine = FleetEngine::for_check(Arc::clone(&fleet), None);
    let run = engine.check(&spec, &config, &CancelToken::new());
    let stats = fleet.stats();
    fleet.shutdown();

    assert_eq!(probe_outcome(&run), probe_outcome(&expected));
    assert!(stats.fallback_jobs >= 1, "job never fell back: {stats}");
    assert_eq!(stats.jobs_remote, 0);
}

/// At-most-once accounting under lease expiry: a `net_slow` worker
/// claims the job and holds its result past a 300 ms lease while
/// heartbeating; the lease expires, the job is re-assigned to a healthy
/// worker that arrives later, and the slow worker's eventual result —
/// now from a stale generation — is dropped as a counted duplicate. The
/// answer delivered to the caller is the healthy worker's, identical to
/// the in-process run.
#[test]
fn late_result_after_lease_expiry_is_dropped_as_duplicate() {
    let config = FleetConfig {
        lease_override: Some(Duration::from_millis(300)),
        fallback_grace: Duration::from_secs(30),
        ..FleetConfig::default()
    };
    let fleet = Fleet::listen("127.0.0.1:0", config).expect("fleet listens");
    let addr = fleet.addr().to_string();

    let slow = spawn_worker(&addr, Some("net_slow:4000"));
    wait_for_workers(&fleet, 1);
    // The healthy worker arrives only after the slow one has claimed
    // the job and its lease has expired.
    let healthy_handle = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(900));
            spawn_worker(&addr, None)
        })
    };

    let module = probe_module();
    let small = module.output_node("small").expect("probe output");
    let spec = CheckSpec {
        module: &module,
        properties: vec![("small".to_string(), small)],
        constraints: Vec::new(),
        group: None,
    };
    let check_config = options(8);
    let expected = BmcEngine.check(&spec, &check_config, &CancelToken::new());

    let engine = FleetEngine::for_check(Arc::clone(&fleet), None);
    let run = engine.check(&spec, &check_config, &CancelToken::new());
    assert_eq!(probe_outcome(&run), probe_outcome(&expected));

    // The slow worker's late result lands ~4 s after dispatch; wait for
    // the at-most-once ledger to count it.
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let stats = fleet.stats();
        if stats.duplicate_results >= 1 {
            assert!(stats.leases_expired >= 1, "lease never expired: {stats}");
            assert!(stats.jobs_reassigned >= 1, "job never re-assigned: {stats}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "late result never counted as duplicate: {stats}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let healthy = healthy_handle.join().expect("healthy spawner");
    fleet.shutdown();
    reap(vec![slow, healthy]);
}
