//! Campaign-runner durability suite: resume serves completed checks from
//! the content-addressed journal, a torn tail re-runs exactly the lost
//! check, configuration drift invalidates the cache, tampered cached
//! CEXs are caught by replay certification, and the supervisor watchdog
//! journals hangs as contained failures that resume skips.

use autocc_bench::{run_campaign, CampaignError, CampaignOptions, CampaignTask};
use autocc_bmc::{
    BmcEngine, CancelToken, CheckConfig, CheckEngine, CheckSpec, EngineRun, FailureReason, Trace,
};
use autocc_core::{AutoCcOutcome, CovertChannelCex, FpvTestbench, FtSpec, RowStatus};
use autocc_duts::demo::config_device;
use autocc_hdl::Bv;
use autocc_journal::{recover, Journal, JournalEntry};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn tmp_journal(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "autocc-campaign-{}-{name}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn leaky_ft() -> FpvTestbench {
    FtSpec::new(&config_device(false)).generate()
}

fn flushed_ft() -> FpvTestbench {
    FtSpec::new(&config_device(true)).generate()
}

/// Two tasks over structurally different devices, so their content keys
/// differ and each occupies its own journal slot.
fn two_tasks() -> Vec<CampaignTask> {
    vec![
        CampaignTask::check("D1", "leaky config register", "demo:D1", leaky_ft),
        CampaignTask::check("D2", "config register with flush", "demo:D2", flushed_ft),
    ]
}

fn config() -> CheckConfig {
    CheckConfig::default().depth(8).no_timeout()
}

fn journaled(path: &Path) -> CampaignOptions {
    CampaignOptions {
        journal: Some(path.to_path_buf()),
        ..CampaignOptions::default()
    }
}

fn resuming(path: &Path) -> CampaignOptions {
    CampaignOptions {
        resume: true,
        ..journaled(path)
    }
}

#[test]
fn resume_serves_every_completed_check_from_the_journal() {
    let path = tmp_journal("resume");
    let config = config();
    let first = run_campaign("demo", two_tasks(), &config, &journaled(&path)).unwrap();
    assert_eq!(first.stats.live, 2);
    assert_eq!(first.stats.cached, 0);
    assert!(first.rows.iter().all(|r| !r.cached));

    let second = run_campaign("demo", two_tasks(), &config, &resuming(&path)).unwrap();
    assert_eq!(second.stats.cached, 2, "both checks replay from the cache");
    assert_eq!(second.stats.live, 0);
    assert_eq!(second.stats.stale, 0);
    assert!(second.rows.iter().all(|r| r.cached));
    for (a, b) in first.rows.iter().zip(&second.rows) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.outcome, b.outcome, "cached row diverged for {}", a.id);
        assert_eq!(a.depth, b.depth);
        assert_eq!(a.status, b.status);
    }
    // Serving from the cache must not append new records.
    let bytes = std::fs::read(&path).unwrap();
    let recovered = recover(&bytes).unwrap();
    assert_eq!(recovered.entries.len(), 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_tail_reruns_exactly_the_lost_check() {
    let path = tmp_journal("torn");
    let config = config();
    run_campaign("demo", two_tasks(), &config, &journaled(&path)).unwrap();

    // Tear mid-record: drop the last few bytes of the final entry.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

    let resumed = run_campaign("demo", two_tasks(), &config, &resuming(&path)).unwrap();
    assert_eq!(resumed.stats.cached, 1, "the intact check is served");
    assert_eq!(resumed.stats.live, 1, "exactly the torn check re-runs");
    assert!(resumed.rows.iter().all(|r| r.status == RowStatus::Ok));

    // The journal healed: torn tail truncated, the lost check recommitted.
    let recovered = recover(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(recovered.entries.len(), 2);
    assert_eq!(recovered.torn_bytes, 0);
    assert_eq!(recovered.entries[1].attempt, 1, "torn record never counted");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn existing_journal_without_resume_is_refused() {
    let path = tmp_journal("norflag");
    let config = config();
    run_campaign("demo", two_tasks(), &config, &journaled(&path)).unwrap();
    match run_campaign("demo", two_tasks(), &config, &journaled(&path)) {
        Err(CampaignError::ExistsWithoutResume(p)) => assert_eq!(p, path),
        other => panic!("expected ExistsWithoutResume, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn config_drift_invalidates_the_journal() {
    let path = tmp_journal("drift");
    run_campaign("demo", two_tasks(), &config(), &journaled(&path)).unwrap();
    // A different depth changes the check-relevant fingerprint.
    let drifted = CheckConfig::default().depth(9).no_timeout();
    match run_campaign("demo", two_tasks(), &drifted, &resuming(&path)) {
        Err(CampaignError::FingerprintMismatch { expected, found }) => {
            assert_ne!(expected, found)
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    // A different campaign root is refused even with a matching config.
    match run_campaign("other", two_tasks(), &config(), &resuming(&path)) {
        Err(CampaignError::RootMismatch { expected, found }) => {
            assert_eq!(expected, "other");
            assert_eq!(found, "demo");
        }
        other => panic!("expected RootMismatch, got {other:?}"),
    }
    // `--fresh` discards the stale journal and restarts cleanly.
    let fresh = CampaignOptions {
        fresh: true,
        ..journaled(&path)
    };
    let outcome = run_campaign("demo", two_tasks(), &drifted, &fresh).unwrap();
    assert_eq!(outcome.stats.live, 2);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn tampered_cached_cex_fails_certification_and_reruns() {
    let path = tmp_journal("tamper");
    let config = config();
    let tasks = || {
        vec![CampaignTask::check(
            "D1",
            "leaky register",
            "demo:D1",
            leaky_ft,
        )]
    };
    run_campaign("demo", tasks(), &config, &journaled(&path)).unwrap();

    let recovered = recover(&std::fs::read(&path).unwrap()).unwrap();
    let entry = &recovered.entries[0];
    let AutoCcOutcome::Cex(cex) = &entry.report.outcome else {
        panic!(
            "the leaky device must produce a CEX, got {:?}",
            entry.report.outcome
        );
    };

    // Rewrite the journal with the CEX trace zeroed out: same content key,
    // same shape, but the inputs no longer demonstrate the violation.
    let zeroed: Vec<Vec<Bv>> = (0..cex.trace.len())
        .map(|c| {
            (0..cex.trace.num_ports())
                .map(|p| Bv::new(cex.trace.input(c, p).width(), 0))
                .collect()
        })
        .collect();
    let tampered = JournalEntry {
        report: autocc_core::CheckReport {
            outcome: AutoCcOutcome::Cex(Box::new(CovertChannelCex {
                trace: Trace::new(zeroed),
                ..(**cex).clone()
            })),
            elapsed: entry.report.elapsed,
            stats: entry.report.stats,
            verdicts: entry.report.verdicts.clone(),
            certificate: entry.report.certificate,
        },
        ..entry.clone()
    };
    let mut journal = Journal::create(&path, &recovered.header).unwrap();
    journal.append(&tampered).unwrap();
    drop(journal);

    let resumed = run_campaign("demo", tasks(), &config, &resuming(&path)).unwrap();
    assert_eq!(resumed.stats.stale, 1, "the tampered CEX is rejected");
    assert_eq!(resumed.stats.cached, 0);
    assert_eq!(resumed.stats.live, 1, "the check re-runs live");
    assert_eq!(resumed.rows[0].status, RowStatus::Ok);
    assert!(
        resumed.rows[0].outcome.starts_with("CEX"),
        "the genuine CEX is rediscovered, got {}",
        resumed.rows[0].outcome
    );

    // Provenance: the re-run superseded the tampered record as attempt 2.
    let healed = recover(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(healed.entries.last().unwrap().attempt, 2);
    let _ = std::fs::remove_file(&path);
}

/// Ignores its budget and cancellation for far longer than the watchdog
/// allows, then delegates to the real engine.
struct SleepyEngine {
    sleep: Duration,
}

impl CheckEngine for SleepyEngine {
    fn name(&self) -> &'static str {
        "sleepy"
    }

    fn check(&self, spec: &CheckSpec<'_>, config: &CheckConfig, cancel: &CancelToken) -> EngineRun {
        std::thread::sleep(self.sleep);
        BmcEngine.check(spec, config, cancel)
    }
}

#[test]
fn watchdog_journals_hangs_and_resume_skips_them() {
    let path = tmp_journal("hang");
    let config = CheckConfig::default()
        .depth(8)
        .timeout(Duration::from_millis(500));
    let hang_tasks = || {
        vec![
            CampaignTask::check("D1", "leaky register", "demo:D1", leaky_ft).with_engine(Arc::new(
                SleepyEngine {
                    sleep: Duration::from_secs(8),
                },
            )),
        ]
    };
    let options = CampaignOptions {
        hang_factor: 1,
        ..journaled(&path)
    };
    let hung = run_campaign("demo", hang_tasks(), &config, &options).unwrap();
    assert_eq!(hung.stats.hangs, 1);
    assert_eq!(hung.rows[0].status, RowStatus::Failed);

    // The hang was committed as a contained failure with its provenance.
    let recovered = recover(&std::fs::read(&path).unwrap()).unwrap();
    let AutoCcOutcome::Failed { failures } = &recovered.entries[0].report.outcome else {
        panic!(
            "expected a journaled failure, got {:?}",
            recovered.entries[0].report.outcome
        );
    };
    assert_eq!(failures[0].reason, FailureReason::Hang);
    assert_eq!(recovered.entries[0].engine, "watchdog");

    // Plain resume (healthy engine now) serves the failed row — the
    // campaign does not silently retry known-bad checks.
    let live_tasks = || {
        vec![CampaignTask::check(
            "D1",
            "leaky register",
            "demo:D1",
            leaky_ft,
        )]
    };
    let skipped = run_campaign("demo", live_tasks(), &config, &resuming(&path)).unwrap();
    assert_eq!(skipped.stats.cached, 1);
    assert_eq!(skipped.stats.skipped_failed, 1);
    assert_eq!(skipped.stats.live, 0);
    assert_eq!(skipped.rows[0].status, RowStatus::Failed);

    // `--retry-failed` re-runs it and the genuine result supersedes the
    // hang as attempt 2.
    let retry = CampaignOptions {
        retry_failed: true,
        ..resuming(&path)
    };
    let retried = run_campaign("demo", live_tasks(), &config, &retry).unwrap();
    assert_eq!(retried.stats.live, 1);
    assert_eq!(retried.stats.cached, 0);
    assert_eq!(retried.rows[0].status, RowStatus::Ok);
    assert!(
        retried.rows[0].outcome.starts_with("CEX"),
        "got {}",
        retried.rows[0].outcome
    );
    let healed = recover(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(healed.entries.last().unwrap().attempt, 2);
    let _ = std::fs::remove_file(&path);
}
