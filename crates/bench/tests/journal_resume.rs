//! Crash/resume integration test: SIGKILL a journaled `report_table1`
//! mid-campaign, resume it, and require the final stable table to be
//! byte-identical to an uninterrupted run — with the already-completed
//! checks served from the journal instead of re-solved.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const DEPTH: &str = "7";

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_report_table1")
}

fn tmp_journal() -> PathBuf {
    let path = std::env::temp_dir().join(format!("autocc-resume-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Counts committed (newline-terminated) journal lines.
fn committed_lines(path: &Path) -> usize {
    std::fs::read(path)
        .map(|b| b.iter().filter(|&&c| c == b'\n').count())
        .unwrap_or(0)
}

#[test]
fn sigkill_mid_campaign_then_resume_is_byte_identical() {
    let journal = tmp_journal();

    // The uninterrupted reference: same depth, same stable table, no
    // journal involved.
    let reference = Command::new(bin())
        .args(["--depth", DEPTH, "--stable"])
        .output()
        .expect("reference run");
    assert!(
        !reference.stdout.is_empty(),
        "reference run produced no table"
    );

    // Start a journaled campaign and SIGKILL it once at least one check
    // has been committed (header + 1 entry = 2 lines).
    let mut child = Command::new(bin())
        .args(["--depth", DEPTH, "--stable"])
        .arg("--journal")
        .arg(&journal)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn journaled run");
    let deadline = Instant::now() + Duration::from_secs(240);
    let finished_early = loop {
        if committed_lines(&journal) >= 2 {
            break false;
        }
        match child.try_wait().expect("poll child") {
            Some(_) => break true,
            None => {
                assert!(
                    Instant::now() < deadline,
                    "no check committed within the deadline"
                );
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    };
    if !finished_early {
        child.kill().expect("SIGKILL the campaign");
    }
    let _ = child.wait();
    assert!(
        committed_lines(&journal) >= 2,
        "the interrupted run never committed a check"
    );

    // Resume: completed checks come from the journal, the rest run live,
    // and the table is exactly the uninterrupted one.
    let resumed = Command::new(bin())
        .args(["--depth", DEPTH, "--stable"])
        .arg("--journal")
        .arg(&journal)
        .arg("--resume")
        .output()
        .expect("resumed run");
    assert_eq!(
        resumed.stdout, reference.stdout,
        "resumed stable table differs from the uninterrupted run:\n--- resumed\n{}\n--- reference\n{}",
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&reference.stdout)
    );
    assert_eq!(resumed.status.code(), reference.status.code());

    // The journal stats line proves the cache did the work.
    let stderr = String::from_utf8_lossy(&resumed.stderr);
    let stats = stderr
        .lines()
        .find(|l| l.starts_with("journal: "))
        .unwrap_or_else(|| panic!("no journal stats on stderr:\n{stderr}"));
    let cached: u64 = stats
        .strip_prefix("journal: ")
        .and_then(|s| s.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparseable stats line: {stats}"));
    assert!(cached > 0, "resume served nothing from the cache: {stats}");

    let _ = std::fs::remove_file(&journal);
}
