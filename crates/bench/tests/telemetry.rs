//! Telemetry integration: attaching a recorder must not change verdicts
//! or solver work, the disabled path must stay cheap, and an emitted
//! profile must satisfy its own schema with the span kinds and phases the
//! check pipeline promises.

use autocc_bench::{default_options, run_vscale_stage, VSCALE_STAGES};
use autocc_bmc::CheckConfig;
use autocc_core::FtSpec;
use autocc_duts::demo::config_device;
use autocc_telemetry::{
    validate_profile_json, ProfileRecorder, SpanKind, Telemetry, PROFILE_VERSION,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn profiled(config: CheckConfig, root: &str) -> (CheckConfig, Arc<ProfileRecorder>) {
    let recorder = Arc::new(ProfileRecorder::new());
    let mut config = config;
    config.telemetry = Telemetry::root(recorder.clone(), root);
    (config, recorder)
}

/// The tentpole determinism contract: a recorder observes the run, it
/// never steers it. Verdict, CEX shape, and solver counters are identical
/// with telemetry on and off.
#[test]
fn enabling_telemetry_does_not_change_the_verdict() {
    let dut = config_device(false);
    let ft = FtSpec::new(&dut).generate();
    let plain_config = CheckConfig::default().depth(12).no_timeout();
    let plain = ft.check_portfolio(&plain_config);
    let (config, _recorder) = profiled(plain_config.clone(), "test");
    let instrumented = ft.check_portfolio(&config);
    assert_eq!(
        format!("{:?}", plain.outcome),
        format!("{:?}", instrumented.outcome),
        "telemetry changed the outcome"
    );
    assert_eq!(
        plain.stats, instrumented.stats,
        "telemetry changed solver work"
    );
}

/// Same contract on a real experiment (a Vscale ladder stage), through
/// the experiment/check/attempt span stack rather than a bare testbench.
#[test]
fn profiled_experiment_matches_unprofiled_run() {
    let base = default_options(7).no_timeout();
    let plain = run_vscale_stage(&VSCALE_STAGES[0], &base);
    let (config, recorder) = profiled(base, "vscale-test");
    let instrumented = run_vscale_stage(&VSCALE_STAGES[0], &config);
    assert_eq!(
        format!("{:?}", plain.outcome),
        format!("{:?}", instrumented.outcome)
    );
    assert_eq!(plain.stats, instrumented.stats);
    let profile = recorder.profile();
    assert!(
        profile
            .spans
            .iter()
            .any(|s| s.kind == SpanKind::Experiment && s.name == "vscale:V1"),
        "experiment span missing from the profile"
    );
}

/// Round-trip: emit a profile, validate it against the schema, and check
/// that every pipeline level shows up for a CEX-producing check.
#[test]
fn emitted_profile_validates_and_covers_the_pipeline() {
    let dut = config_device(false);
    let ft = FtSpec::new(&dut).generate();
    // Slicing on so the `coi-slice` phase is exercised too.
    let (config, recorder) = profiled(
        CheckConfig::default().depth(12).no_timeout().slice(true),
        "schema-test",
    );
    let report = ft.check_portfolio(&config);
    assert!(report.outcome.cex().is_some(), "cfg register leaks");
    config.telemetry.close();

    let profile = recorder.profile();
    assert_eq!(profile.version, PROFILE_VERSION);
    let json = profile.to_json();
    let summary = validate_profile_json(&json).expect("profile satisfies its own schema");
    assert_eq!(summary.version, PROFILE_VERSION);
    assert_eq!(summary.span_count, profile.spans.len());
    assert!(summary.solve_calls > 0, "no solve calls recorded");
    assert_eq!(summary.solve_calls, report.stats.solve_calls);

    for phase in ["bit-blast", "coi-slice", "cnf-encode", "solve", "certify"] {
        assert!(
            summary.phase_names.iter().any(|n| n == phase),
            "missing phase `{phase}` in {:?}",
            summary.phase_names
        );
    }
    for kind in [
        SpanKind::Run,
        SpanKind::Check,
        SpanKind::Attempt,
        SpanKind::Phase,
        SpanKind::Solve,
    ] {
        assert!(
            profile.spans.iter().any(|s| s.kind == kind),
            "missing span kind {kind:?}"
        );
    }
    // Every check job is covered: one Check span per generated property.
    let checks = profile
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Check)
        .count();
    assert_eq!(checks, ft.properties().len());
}

/// The disabled path is close enough to free that the same workload under
/// a no-op telemetry handle stays within a generous factor of the
/// recorded one. This is a tripwire for accidentally putting clock reads
/// or allocation on the disabled path, not a benchmark.
#[test]
fn disabled_telemetry_overhead_guard() {
    let dut = config_device(false);
    let ft = FtSpec::new(&dut).generate();
    let config = CheckConfig::default().depth(12).no_timeout();
    // Warm up (first run pays one-time setup costs).
    let _ = ft.check_portfolio(&config);

    let start = Instant::now();
    for _ in 0..3 {
        let _ = ft.check_portfolio(&config);
    }
    let disabled = start.elapsed();

    let start = Instant::now();
    for _ in 0..3 {
        let (c, _r) = profiled(config.clone(), "overhead");
        let _ = ft.check_portfolio(&c);
    }
    let enabled = start.elapsed();

    // Generous by design: CI boxes are noisy. The disabled path must not
    // be slower than the recording path by more than 2x plus a constant.
    assert!(
        disabled <= enabled * 2 + Duration::from_millis(250),
        "telemetry-disabled run ({disabled:?}) is unexpectedly slower than \
         the recorded run ({enabled:?}): the no-op path is doing real work"
    );
}
