//! Content-addressed cache keys for check results.
//!
//! A campaign journal must decide whether a recorded result still answers
//! the question a runner is about to ask. The key is a stable 64-bit hash
//! of exactly the inputs that determine a check's outcome:
//!
//! * the **COI-sliced transition relation** — the bit-blasted AIG restricted
//!   (via [`autocc_aig::sequential_coi`]) to the sequential cone of the
//!   checked properties and constraints, so edits outside the cone do not
//!   invalidate cached results;
//! * the **property and constraint identities** (names plus their AIG
//!   literals);
//! * the **check-relevant [`CheckConfig`] fields**: `max_depth` and
//!   `conflict_budget`, the two budgets whose values change the
//!   *deterministic* outcome. Wall-clock budgets, worker counts, slicing,
//!   retries and poll intervals only change how fast (or whether, on a slow
//!   machine) an answer arrives, never which answer is correct, so they are
//!   deliberately excluded — a whole-campaign identity including them is
//!   pinned separately by [`config_fingerprint`];
//! * the **check mode** (bounded check vs. unbounded proof attempt).
//!
//! The hash is FNV-1a 64 over an explicit byte stream — unlike
//! `std::hash::DefaultHasher` it is specified, so keys are stable across
//! builds, platforms and runs, which is the whole point of writing them to
//! a journal.

use crate::config::CheckConfig;
use autocc_aig::{sequential_coi, AigLit, AigNode, SeqAig};
use autocc_hdl::{Module, NodeId};
use std::fmt;

/// Whether a cached result answers a bounded check or a proof attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckMode {
    /// Bounded covert-channel search (`check_portfolio`).
    Check,
    /// Unbounded proof attempt (`prove_portfolio`).
    Prove,
}

impl CheckMode {
    /// Stable lower-case name used in journal records.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckMode::Check => "check",
            CheckMode::Prove => "prove",
        }
    }

    /// Inverse of [`CheckMode::as_str`].
    pub fn parse(s: &str) -> Option<CheckMode> {
        match s {
            "check" => Some(CheckMode::Check),
            "prove" => Some(CheckMode::Prove),
            _ => None,
        }
    }
}

impl fmt::Display for CheckMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A stable content address for one check: equal keys mean "the same
/// question", so a journaled answer under this key may be reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentKey(pub u64);

impl ContentKey {
    /// Parses the 16-hex-digit form produced by [`fmt::Display`].
    pub fn parse_hex(s: &str) -> Option<ContentKey> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(ContentKey)
    }
}

impl fmt::Display for ContentKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// FNV-1a 64 over an explicit, delimited byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Length-prefixed, so adjacent strings cannot collide by shifting.
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u64(0),
            Some(v) => {
                self.u64(1);
                self.u64(v);
            }
        }
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// An AIG literal as a stable integer (node index shifted, inversion in
/// the low bit) — the same encoding the AIG uses internally.
fn lit_u64(l: AigLit) -> u64 {
    ((l.node() as u64) << 1) | u64::from(l.inverted())
}

/// Fingerprint of the campaign-level configuration, pinned in a journal's
/// header record. Two configs with different fingerprints must not share a
/// journal: even fields that do not enter [`content_key`] (time budgets,
/// retries, slicing) change which *degraded* outcomes a campaign can
/// legitimately record, so resuming under a different configuration would
/// mix regimes. Scheduling-only knobs (`jobs`, `poll_interval`) are
/// excluded — the portfolio merge is jobs-invariant by construction.
/// Process-isolation knobs (`isolation`, `memory_limit_mb`,
/// `heartbeat_ms`) are likewise excluded: an isolated worker runs the
/// identical deterministic solve, so a journal written in-process resumes
/// under `--isolate` (and vice versa) without mixing regimes; a
/// memory-killed check records a *failed* row, which `--retry-failed`
/// already knows how to reopen.
pub fn config_fingerprint(config: &CheckConfig) -> u64 {
    let mut h = Fnv::new();
    h.str("autocc-config-fingerprint-v2");
    h.u64(config.max_depth as u64);
    h.opt_u64(config.conflict_budget);
    h.opt_u64(config.time_budget.map(|d| d.as_micros() as u64));
    h.u64(u64::from(config.slice));
    h.u64(u64::from(config.retries));
    h.u64(u64::from(config.retry_escalation));
    h.str(config.granularity.as_str());
    // The overlap threshold only matters on the decomposed path, but
    // hashing it unconditionally keeps the fingerprint a pure function of
    // the config. Milli-units: f64 bit patterns are not a stable identity.
    h.u64((config.cluster_overlap * 1000.0).round() as u64);
    h.finish()
}

/// Binding digest tying a certificate hash to the content key it
/// certifies. Journals store `(status, certificate hash, binding)` per
/// record; on resume, a row claiming `certified` is only trusted if
/// recomputing this digest from the row's own key and certificate hash
/// reproduces the stored binding — a flipped or transplanted hash fails
/// the check and the row degrades to FAILED(certification), never PASS.
pub fn certificate_digest(key: ContentKey, certificate_hash: u64) -> u64 {
    let mut h = Fnv::new();
    h.str("autocc-cert-binding-v1");
    h.u64(key.0);
    h.u64(certificate_hash);
    h.finish()
}

/// Computes the content key of one check over `module`: the COI-sliced
/// AIG reachable from `properties` and `constraints`, the property and
/// constraint identities, the deterministic budgets of `config`, and the
/// check `mode`. See the module docs for exactly what is (and is not)
/// part of the key.
pub fn content_key(
    module: &Module,
    properties: &[(String, NodeId)],
    constraints: &[NodeId],
    config: &CheckConfig,
    mode: CheckMode,
) -> ContentKey {
    let seq = SeqAig::from_module(module);
    content_key_with_seq(&seq, properties, constraints, config, mode)
}

/// Like [`content_key`], but over an already-blasted [`SeqAig`] of the
/// module, so per-cluster key computation bit-blasts the miter once and
/// reuses it for every cluster's (property subset, constraint set) pair.
pub fn content_key_with_seq(
    seq: &SeqAig,
    properties: &[(String, NodeId)],
    constraints: &[NodeId],
    config: &CheckConfig,
    mode: CheckMode,
) -> ContentKey {
    let mut roots: Vec<AigLit> = Vec::new();
    for (_, p) in properties {
        roots.extend_from_slice(&seq.node_lits[p.index()]);
    }
    for c in constraints {
        roots.extend_from_slice(&seq.node_lits[c.index()]);
    }
    let coi = sequential_coi(seq, &roots);

    // Combinational reachability of the sliced design: the cones of the
    // roots plus the next-state functions of every kept state bit (the
    // same frontier `sequential_coi` saturated, kept here as a node set).
    let nodes = seq.aig.nodes();
    let mut visited = vec![false; nodes.len()];
    let mut stack: Vec<usize> = roots.iter().map(|l| l.node()).collect();
    for (i, keep) in coi.state_keep.iter().enumerate() {
        if *keep {
            stack.push(seq.state_next[i].node());
        }
    }
    while let Some(n) = stack.pop() {
        if visited[n] {
            continue;
        }
        visited[n] = true;
        if let AigNode::And(a, b) = nodes[n] {
            stack.push(a.node());
            stack.push(b.node());
        }
    }

    let mut h = Fnv::new();
    h.str("autocc-content-key-v1");
    h.str(mode.as_str());
    h.u64(config.max_depth as u64);
    h.opt_u64(config.conflict_budget);

    h.u64(properties.len() as u64);
    for (name, p) in properties {
        h.str(name);
        for &l in &seq.node_lits[p.index()] {
            h.u64(lit_u64(l));
        }
    }
    h.u64(constraints.len() as u64);
    for c in constraints {
        for &l in &seq.node_lits[c.index()] {
            h.u64(lit_u64(l));
        }
    }

    // Kept state bits: index, reset value, name, current/next literals.
    for (i, keep) in coi.state_keep.iter().enumerate() {
        if !*keep {
            continue;
        }
        h.u64(i as u64);
        h.u64(u64::from(seq.state_init[i]));
        h.str(&seq.state_info[i].name);
        h.u64(lit_u64(seq.state_cur[i]));
        h.u64(lit_u64(seq.state_next[i]));
    }

    // Kept input-port bits (flattened in `port_keep` order: ports in
    // declaration order, LSB first).
    let mut bit = 0usize;
    for port in &seq.input_lits {
        for &l in port {
            if coi.port_keep[bit] {
                h.u64(bit as u64);
                h.u64(lit_u64(l));
            }
            bit += 1;
        }
    }

    // The reachable combinational graph, in node-index order.
    for (n, v) in visited.iter().enumerate() {
        if !*v {
            continue;
        }
        h.u64(n as u64);
        match nodes[n] {
            AigNode::False => h.u64(0),
            AigNode::Input => h.u64(1),
            AigNode::And(a, b) => {
                h.u64(2);
                h.u64(lit_u64(a));
                h.u64(lit_u64(b));
            }
        }
    }
    ContentKey(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_hdl::{Bv, ModuleBuilder};
    use std::time::Duration;

    /// A two-register device where only `a` feeds the checked output; `b`
    /// is dead logic with respect to the property.
    fn device(dead_init: u64) -> (Module, Vec<(String, NodeId)>) {
        let mut b = ModuleBuilder::new("dev");
        let inc = b.input("inc", 1);
        let ra = b.reg("a", 4, Bv::zero(4));
        let rb = b.reg("b", 4, Bv::new(4, dead_init));
        let one = b.lit(4, 1);
        let na = b.add(ra, one);
        let next_a = b.mux(inc, na, ra);
        b.set_next(ra, next_a);
        let nb = b.add(rb, one);
        b.set_next(rb, nb);
        let five = b.lit(4, 5);
        let ok = b.ult(ra, five);
        b.output("small", ok);
        let m = b.build();
        let p = m.output_node("small").unwrap();
        (m, vec![("small".to_string(), p)])
    }

    fn key(m: &Module, props: &[(String, NodeId)], config: &CheckConfig) -> ContentKey {
        content_key(m, props, &[], config, CheckMode::Check)
    }

    #[test]
    fn key_is_stable_across_calls() {
        let (m, props) = device(0);
        let c = CheckConfig::default().depth(8);
        assert_eq!(key(&m, &props, &c), key(&m, &props, &c));
    }

    #[test]
    fn key_ignores_logic_outside_the_cone() {
        // Changing the reset value of the dead register `b` leaves the
        // property's sequential cone untouched, so the key must not move.
        let (m0, props) = device(0);
        let (m1, _) = device(7);
        let c = CheckConfig::default().depth(8);
        assert_eq!(key(&m0, &props, &c), key(&m1, &props, &c));
    }

    #[test]
    fn key_tracks_the_deterministic_budgets_and_mode() {
        let (m, props) = device(0);
        let base = CheckConfig::default().depth(8);
        let k = key(&m, &props, &base);
        assert_ne!(k, key(&m, &props, &base.clone().depth(9)), "depth");
        assert_ne!(
            k,
            key(&m, &props, &base.clone().conflicts(Some(100))),
            "conflict budget"
        );
        assert_ne!(
            k,
            content_key(&m, &props, &[], &base, CheckMode::Prove),
            "mode"
        );
        // Machine-dependent / scheduling knobs must NOT move the key.
        assert_eq!(
            k,
            key(
                &m,
                &props,
                &base
                    .clone()
                    .timeout(Duration::from_secs(1))
                    .jobs(8)
                    .slice(true)
                    .retries(5)
                    .poll_interval(1)
            ),
            "timeout/jobs/slice/retries/poll must not enter the key"
        );
    }

    #[test]
    fn fingerprint_tracks_the_campaign_config() {
        let base = CheckConfig::default().depth(8);
        let f = config_fingerprint(&base);
        assert_eq!(f, config_fingerprint(&base.clone().jobs(16)), "jobs");
        assert_eq!(
            f,
            config_fingerprint(&base.clone().poll_interval(1)),
            "poll interval"
        );
        assert_ne!(f, config_fingerprint(&base.clone().depth(9)));
        assert_ne!(
            f,
            config_fingerprint(&base.clone().timeout(Duration::from_secs(9)))
        );
        assert_ne!(f, config_fingerprint(&base.clone().slice(true)));
    }

    #[test]
    fn fingerprint_tracks_granularity_and_overlap() {
        use crate::config::Granularity;
        let base = CheckConfig::default().depth(8);
        let f = config_fingerprint(&base);
        assert_ne!(
            f,
            config_fingerprint(&base.clone().granularity(Granularity::Register)),
            "granularity changes which rows a journal can hold"
        );
        assert_ne!(
            f,
            config_fingerprint(&base.clone().cluster_overlap(0.5)),
            "overlap moves cluster boundaries and thus recorded shapes"
        );
    }

    #[test]
    fn shared_seq_key_matches_the_direct_key() {
        let (m, props) = device(0);
        let c = CheckConfig::default().depth(8);
        let seq = SeqAig::from_module(&m);
        assert_eq!(
            content_key(&m, &props, &[], &c, CheckMode::Check),
            content_key_with_seq(&seq, &props, &[], &c, CheckMode::Check)
        );
    }

    #[test]
    fn isolation_moves_neither_key_nor_fingerprint() {
        // Subprocess isolation runs the identical deterministic solve, so
        // a journal written in-process must resume under --isolate (and
        // vice versa): the isolation knobs enter neither hash.
        let (m, props) = device(0);
        let base = CheckConfig::default().depth(8);
        let isolated = base
            .clone()
            .isolate()
            .memory_limit_mb(Some(512))
            .heartbeat_ms(50);
        assert_eq!(key(&m, &props, &base), key(&m, &props, &isolated));
        assert_eq!(config_fingerprint(&base), config_fingerprint(&isolated));
    }

    #[test]
    fn certify_moves_neither_key_nor_fingerprint() {
        // Certification only *checks* answers, never changes them: the
        // search is bit-identical with proof logging on or off. Stable
        // tables must therefore stay byte-identical under --certify, and
        // certified/uncertified journals must resume interchangeably.
        let (m, props) = device(0);
        let base = CheckConfig::default().depth(8);
        let certified = base.clone().certify(true);
        assert_eq!(key(&m, &props, &base), key(&m, &props, &certified));
        assert_eq!(config_fingerprint(&base), config_fingerprint(&certified));
    }

    #[test]
    fn certificate_digest_binds_key_and_hash() {
        let k = ContentKey(0xdead_beef_0123_4567);
        let d = certificate_digest(k, 42);
        assert_eq!(d, certificate_digest(k, 42), "digest is stable");
        assert_ne!(d, certificate_digest(k, 43), "hash is bound");
        assert_ne!(
            d,
            certificate_digest(ContentKey(k.0 ^ 1), 42),
            "key is bound"
        );
    }

    #[test]
    fn content_key_hex_round_trips() {
        let k = ContentKey(0x0123_4567_89ab_cdef);
        assert_eq!(k.to_string(), "0123456789abcdef");
        assert_eq!(ContentKey::parse_hex(&k.to_string()), Some(k));
        assert_eq!(ContentKey::parse_hex("xyz"), None);
        assert_eq!(ContentKey::parse_hex(""), None);
    }

    #[test]
    fn check_mode_round_trips() {
        for mode in [CheckMode::Check, CheckMode::Prove] {
            assert_eq!(CheckMode::parse(mode.as_str()), Some(mode));
        }
        assert_eq!(CheckMode::parse("bogus"), None);
    }
}
