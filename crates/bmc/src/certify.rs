//! UNSAT-side certification: the bridge between the solver's DRAT proof
//! log and the independent forward RUP checker.
//!
//! SAT answers (counterexamples) have been replay-certified against the
//! word-level interpreter since the beginning; this module closes the
//! other half of the trust story. Under [`CheckConfig::certify`], every
//! `Unsat` the BMC base loop or the k-induction step solver returns must
//! come with a DRAT transcript the self-contained [`DratChecker`] accepts
//! and a certificate clause that validates against the solve's
//! assumptions. A failed or missing certificate degrades the outcome to
//! `FAILED(certification)` — never PASS — mirroring the replay-mismatch
//! path on the SAT side.
//!
//! Certification never changes answers: proof logging only appends to a
//! side buffer, so the search (and therefore every outcome, content key
//! and stable table) is bit-identical with the knob on or off.
//!
//! [`CheckConfig::certify`]: crate::CheckConfig::certify

use crate::checker::Cex;
use autocc_sat::{DratChecker, Lit, ProofHasher, Solver};
use autocc_telemetry::{SpanKind, Telemetry};
use std::time::Instant;

/// Whether a conclusive outcome carries an independently-checked
/// certificate, and its content hash when it does.
///
/// For UNSAT-backed verdicts (bounded proofs, full k-induction proofs)
/// the hash is the FNV-1a 64 hash of the cumulative DRAT transcript; for
/// counterexamples it is the hash of the replay-validated trace. Only the
/// status and this hash ever cross the IPC or journal boundary — proofs
/// themselves can be large and stay inside the worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CertificateStatus {
    /// No certificate: certification was off, or the outcome is
    /// inconclusive (budget stop, contained failure).
    Uncertified,
    /// The outcome was certified by an independent check.
    Certified {
        /// FNV-1a 64 content hash of the certificate material.
        hash: u64,
    },
}

impl CertificateStatus {
    /// The certificate content hash, when certified.
    pub fn hash(&self) -> Option<u64> {
        match self {
            CertificateStatus::Uncertified => None,
            CertificateStatus::Certified { hash } => Some(*hash),
        }
    }

    /// Whether this outcome carries a checked certificate.
    pub fn is_certified(&self) -> bool {
        matches!(self, CertificateStatus::Certified { .. })
    }

    /// Folds two statuses: certified only when *both* sides are, with an
    /// order-sensitive hash combining the two. Used when merging
    /// per-property reports and when a proof has a base and a step part.
    pub fn combine(&self, other: &CertificateStatus) -> CertificateStatus {
        match (self, other) {
            (
                CertificateStatus::Certified { hash: a },
                CertificateStatus::Certified { hash: b },
            ) => CertificateStatus::Certified {
                hash: fnv_fold(&[*a, *b]),
            },
            _ => CertificateStatus::Uncertified,
        }
    }
}

impl std::fmt::Display for CertificateStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateStatus::Uncertified => f.write_str("uncertified"),
            CertificateStatus::Certified { hash } => write!(f, "certified:{hash:016x}"),
        }
    }
}

/// FNV-1a 64 over a sequence of u64 words (little-endian bytes).
fn fnv_fold(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    }
    h
}

/// Content hash of a replay-validated counterexample: property name,
/// depth, and every input value of the trace. This is the SAT-side
/// certificate hash — the trace *is* the certificate, and it has already
/// been replayed through the interpreter by the time a [`Cex`] exists.
pub fn cex_hash(cex: &Cex) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let byte = |b: u8, h: &mut u64| {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x1_0000_0000_01b3);
    };
    for b in cex.property.as_bytes() {
        byte(*b, &mut h);
    }
    byte(0, &mut h);
    for b in (cex.depth as u64).to_le_bytes() {
        byte(b, &mut h);
    }
    for cycle in 0..cex.trace.len() {
        for port in 0..cex.trace.num_ports() {
            let v = cex.trace.input(cycle, port);
            byte(v.width() as u8, &mut h);
            for b in v.value().to_le_bytes() {
                byte(b, &mut h);
            }
        }
        byte(0xff, &mut h);
    }
    h
}

/// Per-solver certification state: the forward RUP checker tracking the
/// solver's clause database plus the running transcript hash and check
/// timing. One instance shadows the BMC base solver, another the
/// k-induction step solver.
pub(crate) struct UnsatCertifier {
    checker: DratChecker,
    hasher: ProofHasher,
    check_us: u64,
}

impl UnsatCertifier {
    pub(crate) fn new() -> UnsatCertifier {
        UnsatCertifier {
            checker: DratChecker::new(),
            hasher: ProofHasher::new(),
            check_us: 0,
        }
    }

    /// Drains the solver's proof transcript into the checker and validates
    /// the UNSAT certificate of the solve that just returned `Unsat` under
    /// `assumptions`. On `Err` the caller must degrade the outcome to
    /// `FAILED(certification)`.
    ///
    /// Draining is cumulative and order-preserving, so steps logged during
    /// earlier SAT, `Stopped` or `Unknown` solves (whose learnt clauses
    /// stay in the solver's database) are applied before this solve's —
    /// the checker's database is always a superset of the solver's.
    pub(crate) fn certify_unsat(
        &mut self,
        solver: &mut Solver,
        assumptions: &[Lit],
        telemetry: &Telemetry,
    ) -> Result<(), String> {
        let span = telemetry.child(SpanKind::Phase, "certify-unsat");
        let start = Instant::now();
        let result = self.check(solver, assumptions);
        self.check_us += start.elapsed().as_micros() as u64;
        span.gauge("proof_steps", self.checker.steps());
        span.gauge("cert_check_us", self.check_us);
        span.close();
        result
    }

    fn check(&mut self, solver: &mut Solver, assumptions: &[Lit]) -> Result<(), String> {
        let steps = solver.take_proof_steps();
        self.hasher.update(&steps);
        self.checker
            .apply_all(&steps)
            .map_err(|e| format!("proof transcript rejected: {e}"))?;
        let certificate: Vec<Lit> = solver
            .unsat_certificate()
            .ok_or_else(|| "UNSAT solve produced no certificate".to_string())?
            .to_vec();
        self.checker
            .check_certificate(assumptions, &certificate)
            .map_err(|e| format!("certificate rejected: {e}"))?;
        Ok(())
    }

    /// Running FNV-1a hash of the whole transcript drained so far.
    pub(crate) fn transcript_hash(&self) -> u64 {
        self.hasher.finish()
    }

    /// Total proof steps applied to the checker.
    pub(crate) fn steps(&self) -> u64 {
        self.checker.steps()
    }

    /// Total wall-clock microseconds spent checking.
    pub(crate) fn check_us(&self) -> u64 {
        self.check_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Trace;
    use autocc_hdl::Bv;

    #[test]
    fn status_combines_conservatively() {
        let u = CertificateStatus::Uncertified;
        let a = CertificateStatus::Certified { hash: 1 };
        let b = CertificateStatus::Certified { hash: 2 };
        assert!(!u.is_certified());
        assert!(a.is_certified());
        assert_eq!(u.combine(&a), CertificateStatus::Uncertified);
        assert_eq!(a.combine(&u), CertificateStatus::Uncertified);
        let ab = a.combine(&b);
        let ba = b.combine(&a);
        assert!(ab.is_certified());
        assert_ne!(ab, ba, "combine is order-sensitive");
        assert_eq!(a.combine(&b), ab, "combine is deterministic");
        assert_ne!(ab.hash(), a.hash(), "combined hash differs from parts");
    }

    #[test]
    fn cex_hash_covers_name_depth_and_trace() {
        let cex = |prop: &str, depth: usize, bit: bool| Cex {
            property: prop.to_string(),
            depth,
            trace: Trace::new(vec![vec![Bv::bit(bit)]]),
        };
        let base = cex_hash(&cex("p", 1, false));
        assert_ne!(base, cex_hash(&cex("q", 1, false)), "name matters");
        assert_ne!(base, cex_hash(&cex("p", 2, false)), "depth matters");
        assert_ne!(base, cex_hash(&cex("p", 1, true)), "inputs matter");
        assert_eq!(base, cex_hash(&cex("p", 1, false)), "hash is stable");
    }

    #[test]
    fn certifier_accepts_a_real_unsat_and_reports_counters() {
        let mut solver = Solver::new();
        solver.enable_proof_logging();
        let a = solver.new_var().positive();
        let b = solver.new_var().positive();
        solver.add_clause(&[a, b]);
        solver.add_clause(&[!a, b]);
        solver.add_clause(&[a, !b]);
        solver.add_clause(&[!a, !b]);
        assert_eq!(solver.solve(), autocc_sat::SolveResult::Unsat);
        let mut certifier = UnsatCertifier::new();
        let telemetry = Telemetry::off();
        certifier
            .certify_unsat(&mut solver, &[], &telemetry)
            .expect("a genuine UNSAT must certify");
        assert!(certifier.steps() > 0, "transcript was applied");
        assert_ne!(certifier.transcript_hash(), ProofHasher::new().finish());
        let _ = certifier.check_us();
    }

    #[test]
    fn certifier_rejects_a_missing_certificate() {
        let mut solver = Solver::new();
        solver.enable_proof_logging();
        let a = solver.new_var().positive();
        solver.add_clause(&[a]);
        assert_eq!(solver.solve(), autocc_sat::SolveResult::Sat);
        // SAT leaves no UNSAT certificate; certifying anyway must fail
        // (this is the worker-death / bookkeeping-bug containment path).
        let mut certifier = UnsatCertifier::new();
        let err = certifier
            .certify_unsat(&mut solver, &[], &Telemetry::off())
            .expect_err("no certificate exists");
        assert!(err.contains("no certificate"), "got: {err}");
    }
}
