//! Incremental bounded model checking and k-induction.
//!
//! [`Bmc`] checks safety properties of a module: every property is a 1-bit
//! node that must evaluate to 1 on every cycle, under 1-bit constraint
//! nodes assumed to hold on every cycle. This is exactly the shape of the
//! AutoCC properties (Listing 1 of the paper): single-cycle implications
//! over interface signals, with assumptions constraining the environment.
//!
//! The checker unrolls the bit-blasted transition relation frame by frame
//! into the CDCL solver, reusing learnt clauses across depths (the
//! incremental analogue of JasperGold's bounded engines). Counterexamples
//! are returned as input traces and are *replay-validated* against the
//! word-level interpreter before being reported.

use crate::certify::{CertificateStatus, UnsatCertifier};
use crate::config::{solver_counters, CheckConfig};
use crate::engine::CancelToken;
use crate::trace::Trace;
use autocc_aig::{assert_true_lit, sequential_coi, FrameMap, SeqAig, SeqCoi};
use autocc_hdl::{Bv, Module, NodeId};
use autocc_sat::{Lit, SolveResult, Solver};
use autocc_telemetry::{SolverCounters, SpanKind, Telemetry};
use std::time::{Duration, Instant};

/// Legacy tuning knobs for a check run.
#[deprecated(note = "use `CheckConfig`; convert with `CheckConfig::from(&options)`")]
#[derive(Clone, Debug)]
pub struct BmcOptions {
    /// Maximum unrolling depth (number of cycles).
    pub max_depth: usize,
    /// Total conflict budget across the run (`None` = unlimited).
    pub conflict_budget: Option<u64>,
    /// Wall-clock budget for the run (`None` = unlimited).
    pub time_budget: Option<Duration>,
}

#[allow(deprecated)]
impl Default for BmcOptions {
    fn default() -> BmcOptions {
        BmcOptions {
            max_depth: 64,
            conflict_budget: None,
            time_budget: Some(Duration::from_secs(300)),
        }
    }
}

/// A counterexample to a property.
#[derive(Clone, Debug)]
pub struct Cex {
    /// Name of the violated property.
    pub property: String,
    /// Trace length in cycles (the paper's "depth").
    pub depth: usize,
    /// The violating input sequence, starting from reset.
    pub trace: Trace,
}

/// Why a check stopped before reaching a verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopCause {
    /// The conflict budget ran out — deterministic and machine-independent.
    ConflictBudget,
    /// The wall-clock budget ran out (machine-dependent by nature).
    TimeBudget,
    /// Cancellation was requested, e.g. the job lost a portfolio race.
    Cancelled,
}

impl std::fmt::Display for StopCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StopCause::ConflictBudget => "conflict budget",
            StopCause::TimeBudget => "timeout",
            StopCause::Cancelled => "cancelled",
        })
    }
}

/// Why a check *failed* (as opposed to stopping at a budget): a fault that
/// is reported as a structured outcome instead of tearing the process down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureReason {
    /// A SAT-level counterexample did not reproduce on interpreter replay —
    /// an encoder/simulator divergence, i.e. a checker bug, never a finding.
    ReplayMismatch,
    /// An internal invariant of the check stack broke.
    InternalInconsistency,
    /// The job panicked and the panic was contained.
    Panic,
    /// The job exceeded the campaign watchdog's hard wall-clock limit (a
    /// multiple of its configured time budget) and was abandoned — a hang
    /// in a phase the in-solver deadline poll cannot see.
    Hang,
    /// An isolated check worker died without reporting a result (abort,
    /// OOM-kill, SIGKILL, or a crash the in-process containment cannot
    /// see). The parent survives; the attempt is the only casualty.
    WorkerDied,
    /// An isolated check worker exceeded its RSS memory budget and was
    /// killed by the supervisor before it could take the host down.
    MemoryLimit,
    /// The check killed enough workers to trip the per-content-key
    /// circuit breaker and is quarantined: journaled as failed, skipped
    /// on `--resume`, reopened only by `--retry-failed`.
    Quarantined,
    /// Under `--certify`, an UNSAT solve produced a proof the independent
    /// checker rejected, produced no certificate at all, or a journaled
    /// certificate failed its binding check. A certification failure is
    /// reported as FAILED — never silently downgraded to PASS — because
    /// it means the verdict cannot be independently trusted.
    Certification,
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FailureReason::ReplayMismatch => "replay mismatch",
            FailureReason::InternalInconsistency => "internal inconsistency",
            FailureReason::Panic => "panic",
            FailureReason::Hang => "hang",
            FailureReason::WorkerDied => "worker died",
            FailureReason::MemoryLimit => "memory limit",
            FailureReason::Quarantined => "quarantined",
            FailureReason::Certification => "certification",
        })
    }
}

/// A structured checker failure.
#[derive(Clone, Debug)]
pub struct CheckFailure {
    /// What went wrong.
    pub reason: FailureReason,
    /// Human-readable diagnostic.
    pub detail: String,
    /// Depth reached when the failure was detected, in cycles.
    pub depth: usize,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at depth {}: {}",
            self.reason, self.depth, self.detail
        )
    }
}

/// Outcome of a bounded check.
#[derive(Clone, Debug)]
pub enum CheckOutcome {
    /// A property is violated; the trace proves it.
    Cex(Cex),
    /// No violation exists within `depth` cycles (bounded proof).
    BoundReached {
        /// The proven bound, in cycles.
        depth: usize,
    },
    /// Budget exhausted or cancelled before reaching the requested bound.
    Exhausted {
        /// Deepest fully-proven depth, in cycles.
        depth: usize,
        /// Which budget (or cancellation) stopped the check.
        cause: StopCause,
    },
    /// The check hit an internal fault; the result is unusable but the
    /// process survives.
    Failed(CheckFailure),
}

/// Outcome of a k-induction proof attempt.
#[derive(Clone, Debug)]
pub enum ProveOutcome {
    /// The properties hold on all reachable states, for any depth.
    Proved {
        /// The induction depth at which the step case closed.
        induction_depth: usize,
    },
    /// A real counterexample was found during the base case.
    Cex(Cex),
    /// Budget exhausted; `bound` cycles are still proven (base case).
    Exhausted {
        /// Deepest fully-proven depth, in cycles.
        bound: usize,
        /// Which budget (or cancellation) stopped the attempt.
        cause: StopCause,
    },
    /// The proof attempt hit an internal fault.
    Failed(CheckFailure),
}

/// Aggregate statistics of a checker instance.
#[derive(Clone, Copy, Debug, Default)]
pub struct BmcStats {
    /// Frames encoded so far.
    pub frames: usize,
    /// SAT solver conflicts.
    pub conflicts: u64,
    /// SAT variables allocated.
    pub vars: usize,
    /// Wall-clock time spent inside `check`/`prove`.
    pub solve_time: Duration,
}

struct Frame {
    /// Fresh SAT literals for the input-port bits of this cycle.
    port_lits: Vec<Lit>,
    /// SAT literals of the next-state functions (inputs to the next frame).
    next_state: Vec<Lit>,
    /// SAT literal per property at this cycle.
    prop_lits: Vec<Lit>,
    /// Assumption literal that forces "some property violated here".
    bad: Lit,
}

/// Incremental bounded model checker for one module.
pub struct Bmc<'m> {
    module: &'m Module,
    seq: SeqAig,
    solver: Solver,
    const_true: Lit,
    constraints: Vec<NodeId>,
    properties: Vec<(String, NodeId)>,
    frames: Vec<Frame>,
    stats: BmcStats,
    slice: bool,
    coi: Option<SeqCoi>,
    cancel: CancelToken,
    telemetry: Telemetry,
    /// Solver work done outside the base solver (the k-induction step
    /// solver), folded into [`Bmc::counters`].
    aux_counters: SolverCounters,
    /// DRAT certification state for the base solver, armed by
    /// `CheckConfig::certify` before the first solve.
    certifier: Option<UnsatCertifier>,
    /// Certificate status of the last `prove` call's induction-step
    /// solver, folded into [`Bmc::prove_certificate`].
    step_cert: CertificateStatus,
    /// (proof steps, check µs) spent by the last `prove` call's
    /// induction-step certifier.
    step_effort: (u64, u64),
}

impl<'m> Bmc<'m> {
    /// Creates a checker for `module`. Constraints and properties must be
    /// added before the first [`Bmc::check`] call.
    pub fn new(module: &'m Module) -> Bmc<'m> {
        let seq = SeqAig::from_module(module);
        let mut solver = Solver::new();
        let const_true = assert_true_lit(&mut solver);
        Bmc {
            module,
            seq,
            solver,
            const_true,
            constraints: Vec::new(),
            properties: Vec::new(),
            frames: Vec::new(),
            stats: BmcStats::default(),
            slice: false,
            coi: None,
            cancel: CancelToken::new(),
            telemetry: Telemetry::off(),
            aux_counters: SolverCounters::default(),
            certifier: None,
            step_cert: CertificateStatus::Uncertified,
            step_effort: (0, 0),
        }
    }

    /// Creates a checker with a telemetry handle attached; the bit-blast
    /// (word-level module → AIG) is timed under a `bit-blast` phase span.
    pub fn with_telemetry(module: &'m Module, telemetry: Telemetry) -> Bmc<'m> {
        let span = telemetry.child(SpanKind::Phase, "bit-blast");
        let mut bmc = Bmc::new(module);
        span.close();
        bmc.telemetry = telemetry;
        bmc
    }

    /// Attaches (or replaces) the telemetry handle; spans opened by this
    /// checker become children of its current span.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Enables or disables sequential cone-of-influence slicing: state and
    /// input bits outside the cone of the registered properties and
    /// constraints are never encoded, shrinking the SAT instance without
    /// changing any outcome.
    ///
    /// # Panics
    ///
    /// Panics if called after checking started.
    pub fn set_slicing(&mut self, on: bool) {
        assert!(self.frames.is_empty(), "set slicing before checking");
        self.slice = on;
        self.coi = None;
    }

    /// Installs a cancellation token, polled between depth steps. A
    /// cancelled check returns [`CheckOutcome::Exhausted`] at the deepest
    /// fully-proven depth.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// The cone-of-influence computed for the registered properties, if
    /// slicing is enabled and checking has started.
    pub fn coi(&self) -> Option<&SeqCoi> {
        self.coi.as_ref()
    }

    /// Computes the COI once, from the property and constraint roots.
    fn ensure_coi(&mut self) -> Option<SeqCoi> {
        if !self.slice {
            return None;
        }
        if self.coi.is_none() {
            let roots: Vec<_> = self
                .properties
                .iter()
                .map(|(_, p)| *p)
                .chain(self.constraints.iter().copied())
                .map(|n| self.seq.node_lits[n.index()][0])
                .collect();
            self.coi = Some(sequential_coi(&self.seq, &roots));
        }
        self.coi.clone()
    }

    /// The module under check.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Statistics so far.
    pub fn stats(&self) -> BmcStats {
        let mut s = self.stats;
        s.conflicts = self.solver.stats().conflicts;
        s.vars = self.solver.num_vars();
        s.frames = self.frames.len();
        s
    }

    /// Cumulative solver counters across this checker's lifetime — the
    /// base solver plus any k-induction step solver it has driven.
    pub fn counters(&self) -> SolverCounters {
        let mut c = solver_counters(&self.solver.stats());
        c += &self.aux_counters;
        c
    }

    /// Arms DRAT certification when `config.certify` asks for it: enables
    /// proof logging on the base solver (retro-logging clauses already
    /// encoded) and creates the independent checker. Logging must start
    /// before any search so the transcript is complete; a certify request
    /// arriving after a solve already ran cannot be honoured and degrades
    /// to a certification failure rather than silently passing.
    fn arm_certifier(&mut self, config: &CheckConfig) -> Result<(), CheckFailure> {
        if !config.certify || self.certifier.is_some() {
            return Ok(());
        }
        if self.solver.stats().solve_calls > 0 {
            return Err(CheckFailure {
                reason: FailureReason::Certification,
                detail: "certification requested after search already started; \
                         create the checker with certify enabled from the start"
                    .to_string(),
                depth: self.frames.len(),
            });
        }
        self.solver.enable_proof_logging();
        self.certifier = Some(UnsatCertifier::new());
        Ok(())
    }

    /// Certificate status of the base (bounded) side: `Certified` with the
    /// cumulative DRAT transcript hash when certification is armed — in
    /// which case every UNSAT solve so far was independently checked
    /// (failures return early as FAILED(certification)).
    pub fn certificate(&self) -> CertificateStatus {
        match &self.certifier {
            Some(c) => CertificateStatus::Certified {
                hash: c.transcript_hash(),
            },
            None => CertificateStatus::Uncertified,
        }
    }

    /// Certificate status of the last [`Bmc::prove`] call: base-case and
    /// induction-step certificates combined (certified only if both are).
    pub fn prove_certificate(&self) -> CertificateStatus {
        self.certificate().combine(&self.step_cert)
    }

    /// Total proof steps checked and microseconds spent checking, across
    /// the base and (after `prove`) induction-step certifiers. `None` when
    /// certification is off.
    pub fn certification_effort(&self) -> Option<(u64, u64)> {
        self.certifier.as_ref().map(|c| {
            (
                c.steps() + self.step_effort.0,
                c.check_us() + self.step_effort.1,
            )
        })
    }

    /// Test-only tamper hook: injects a raw step into the base solver's
    /// proof transcript, so tests can prove that a corrupted proof stream
    /// degrades the verdict to FAILED(certification) and never PASS.
    #[doc(hidden)]
    pub fn inject_proof_step_for_test(&mut self, step: autocc_sat::ProofStep) {
        self.solver.inject_proof_step(step);
    }

    /// Adds an environment constraint: `node` (1-bit) is assumed 1 on every
    /// cycle. This is the paper's `assume property (...)`.
    ///
    /// # Panics
    ///
    /// Panics if called after checking started or if `node` is not 1 bit.
    pub fn add_constraint(&mut self, node: NodeId) {
        assert!(self.frames.is_empty(), "add constraints before checking");
        assert_eq!(self.module.width(node), 1, "constraints must be 1 bit");
        self.constraints.push(node);
    }

    /// Adds a safety property: `node` (1-bit) must be 1 on every cycle.
    /// This is the paper's `assert property (...)`.
    ///
    /// # Panics
    ///
    /// Panics if called after checking started or if `node` is not 1 bit.
    pub fn add_property(&mut self, name: impl Into<String>, node: NodeId) {
        assert!(self.frames.is_empty(), "add properties before checking");
        assert_eq!(self.module.width(node), 1, "properties must be 1 bit");
        self.properties.push((name.into(), node));
    }

    /// Number of registered properties.
    pub fn num_properties(&self) -> usize {
        self.properties.len()
    }

    fn build_frame(&mut self) {
        let coi = self.ensure_coi();
        let keep_port = |k: usize| coi.as_ref().is_none_or(|c| c.port_keep[k]);
        let keep_state = |j: usize| coi.as_ref().is_none_or(|c| c.state_keep[j]);
        let t = self.frames.len();
        let state_lits: Vec<Lit> = if t == 0 {
            self.seq
                .state_init
                .iter()
                .map(|&b| if b { self.const_true } else { !self.const_true })
                .collect()
        } else {
            self.frames[t - 1].next_state.clone()
        };
        // Out-of-cone port bits get a constant placeholder instead of a
        // fresh variable; no encoded cone ever reads them (the COI is
        // transitively closed), so the placeholder value is never observed.
        let port_lits: Vec<Lit> = (0..self.seq.num_port_bits())
            .map(|k| {
                if keep_port(k) {
                    self.solver.new_var().positive()
                } else {
                    !self.const_true
                }
            })
            .collect();
        let mut aig_inputs = port_lits.clone();
        aig_inputs.extend_from_slice(&state_lits);
        let mut map = FrameMap::new(&self.seq.aig, &aig_inputs, self.const_true);

        // Constraints hold on every encoded cycle (hard clauses).
        for &c in &self.constraints.clone() {
            let lit = self.node_lit(&mut map, c);
            self.solver.add_clause(&[lit]);
        }
        // Property literals and the per-frame "bad" selector.
        let prop_lits: Vec<Lit> = self
            .properties
            .clone()
            .iter()
            .map(|(_, p)| self.node_lit(&mut map, *p))
            .collect();
        let bad = self.solver.new_var().positive();
        // bad → at least one property is false at this cycle.
        let mut clause: Vec<Lit> = vec![!bad];
        clause.extend(prop_lits.iter().map(|&p| !p));
        self.solver.add_clause(&clause);

        // Next-state literals (wired into the following frame). Dropped
        // bits keep a constant placeholder so their cones never reach the
        // lazy encoder.
        let next_state: Vec<Lit> = self
            .seq
            .state_next
            .clone()
            .iter()
            .enumerate()
            .map(|(j, &l)| {
                if keep_state(j) {
                    map.sat_lit(&mut self.solver, &self.seq.aig, l)
                } else {
                    !self.const_true
                }
            })
            .collect();

        self.frames.push(Frame {
            port_lits,
            next_state,
            prop_lits,
            bad,
        });
    }

    fn node_lit(&mut self, map: &mut FrameMap, node: NodeId) -> Lit {
        let aig_lit = self.seq.node_lits[node.index()][0];
        map.sat_lit(&mut self.solver, &self.seq.aig, aig_lit)
    }

    /// Searches for a counterexample, deepening from the current frontier.
    ///
    /// Calling `check` again after [`CheckOutcome::Cex`] continues deepening
    /// and may find further (deeper) counterexamples to other properties —
    /// but the usual AutoCC workflow is to refine the testbench and re-run.
    pub fn check(&mut self, config: &CheckConfig) -> CheckOutcome {
        assert!(
            !self.properties.is_empty(),
            "no properties registered before check"
        );
        if let Err(failure) = self.arm_certifier(config) {
            return CheckOutcome::Failed(failure);
        }
        let start = Instant::now();
        // Budgets are enforced *inside* the solver: the deadline and the
        // cancellation hook are polled every few conflicts, so a single
        // pathological SAT call cannot run past its wall-clock budget.
        self.solver.set_poll_interval(config.poll_interval);
        self.solver
            .set_deadline(config.time_budget.map(|tb| start + tb));
        let token = self.cancel.clone();
        self.solver
            .set_interrupt_hook(Some(Box::new(move || token.is_cancelled())));
        if self.telemetry.enabled() {
            // Live counter samples, at the same poll cadence as the
            // interrupt hook. A gauge overwrites its previous value, so
            // long searches stay bounded in the recorder.
            let t = self.telemetry.clone();
            self.solver.set_progress_hook(Some(Box::new(move |stats| {
                t.gauge("live_conflicts", stats.conflicts);
            })));
        }
        // The slice phase is recorded even with slicing off (near-zero
        // duration): profiles always show where COI time would go.
        if self.frames.is_empty() {
            let span = self.telemetry.child(SpanKind::Phase, "coi-slice");
            self.ensure_coi();
            span.close();
        }
        let conflicts_start = self.solver.stats().conflicts;
        let mut depth = self.frames.len();
        while depth < config.max_depth {
            if self.cancel.is_cancelled() {
                self.stats.solve_time += start.elapsed();
                return CheckOutcome::Exhausted {
                    depth,
                    cause: StopCause::Cancelled,
                };
            }
            if let Some(tb) = config.time_budget {
                if start.elapsed() > tb {
                    self.stats.solve_time += start.elapsed();
                    return CheckOutcome::Exhausted {
                        depth,
                        cause: StopCause::TimeBudget,
                    };
                }
            }
            if self.frames.len() == depth {
                let span = self.telemetry.child(SpanKind::Phase, "cnf-encode");
                self.build_frame();
                span.gauge("depth", depth as u64);
                span.close();
            }
            let frame_bad = self.frames[depth].bad;
            if let Some(cb) = config.conflict_budget {
                let used = self.solver.stats().conflicts - conflicts_start;
                if used >= cb {
                    self.stats.solve_time += start.elapsed();
                    return CheckOutcome::Exhausted {
                        depth,
                        cause: StopCause::ConflictBudget,
                    };
                }
                self.solver.set_conflict_budget(Some(cb - used));
            } else {
                self.solver.set_conflict_budget(None);
            }
            let span = self.telemetry.child(SpanKind::Solve, "solve");
            span.gauge("depth", depth as u64);
            let before = self.solver.stats();
            let verdict = self.solver.solve_with(&[frame_bad]);
            span.counters(&solver_counters(&self.solver.stats().diff(&before)));
            span.close();
            match verdict {
                SolveResult::Sat => {
                    let span = self.telemetry.child(SpanKind::Phase, "certify");
                    let extracted = self.extract_cex(depth);
                    span.close();
                    self.stats.solve_time += start.elapsed();
                    return match extracted {
                        Ok(cex) => CheckOutcome::Cex(cex),
                        Err(failure) => CheckOutcome::Failed(failure),
                    };
                }
                SolveResult::Unsat => {
                    // Under --certify, the bounded proof of this depth is
                    // only accepted once the independent checker validates
                    // the DRAT transcript and the assumption certificate.
                    if let Some(certifier) = &mut self.certifier {
                        if let Err(detail) =
                            certifier.certify_unsat(&mut self.solver, &[frame_bad], &self.telemetry)
                        {
                            self.stats.solve_time += start.elapsed();
                            return CheckOutcome::Failed(CheckFailure {
                                reason: FailureReason::Certification,
                                detail,
                                depth,
                            });
                        }
                    }
                    depth += 1;
                }
                SolveResult::Unknown => {
                    self.stats.solve_time += start.elapsed();
                    return CheckOutcome::Exhausted {
                        depth,
                        cause: StopCause::ConflictBudget,
                    };
                }
                SolveResult::Stopped => {
                    self.stats.solve_time += start.elapsed();
                    let cause = if self.cancel.is_cancelled() {
                        StopCause::Cancelled
                    } else {
                        StopCause::TimeBudget
                    };
                    return CheckOutcome::Exhausted { depth, cause };
                }
            }
        }
        self.stats.solve_time += start.elapsed();
        CheckOutcome::BoundReached {
            depth: config.max_depth,
        }
    }

    /// Reads the violating input sequence from the SAT model and
    /// replay-validates it against the interpreter. A replay that disagrees
    /// with the SAT model is an encoder/simulator divergence — a checker
    /// bug — and is returned as a structured failure, never as a finding.
    fn extract_cex(&mut self, depth: usize) -> Result<Cex, CheckFailure> {
        let mut inputs = Vec::with_capacity(depth + 1);
        for frame in &self.frames[..=depth] {
            let mut cycle = Vec::with_capacity(self.module.inputs().len());
            let mut bit_idx = 0;
            for port in self.module.inputs() {
                let mut value = 0u64;
                for b in 0..port.width {
                    let lit = frame.port_lits[bit_idx];
                    bit_idx += 1;
                    let v = self.solver.lit_value_model(lit).unwrap_or(false);
                    value |= (v as u64) << b;
                }
                cycle.push(Bv::new(port.width, value));
            }
            inputs.push(cycle);
        }
        let trace = Trace::new(inputs);

        // Replay validation: the interpreter must agree that some property
        // fails at `depth` and all constraints hold throughout.
        let replay = trace.replay(self.module);
        for (t, _) in (0..=depth).enumerate() {
            for &c in &self.constraints {
                if !replay.node(t, c).as_bool() {
                    return Err(CheckFailure {
                        reason: FailureReason::ReplayMismatch,
                        detail: format!(
                            "encoder/simulator divergence: constraint violated at \
                             cycle {t} during replay"
                        ),
                        depth: depth + 1,
                    });
                }
            }
        }
        let violated = self
            .properties
            .iter()
            .find(|(_, p)| !replay.node(depth, *p).as_bool());
        let (name, _) = violated.ok_or_else(|| CheckFailure {
            reason: FailureReason::ReplayMismatch,
            detail: "encoder/simulator divergence: SAT model does not violate any \
                     property on replay"
                .to_string(),
            depth: depth + 1,
        })?;

        Ok(Cex {
            property: name.clone(),
            depth: depth + 1,
            trace,
        })
    }

    /// Attempts a full (unbounded) proof by k-induction with simple-path
    /// constraints, interleaved with base-case BMC.
    ///
    /// Auxiliary strengthening invariants should be supplied as additional
    /// properties — they are proven too.
    pub fn prove(&mut self, config: &CheckConfig) -> ProveOutcome {
        let start = Instant::now();
        let coi = self.ensure_coi();
        let span = self.telemetry.child(SpanKind::Phase, "bit-blast");
        let mut induction = InductionStep::new(
            self.module,
            self.properties.clone(),
            self.constraints.clone(),
            coi,
        );
        span.close();
        induction.configure_run(
            config.time_budget.map(|tb| start + tb),
            self.cancel.clone(),
            config.poll_interval,
            self.telemetry.clone(),
            config.certify,
        );
        let outcome = self.prove_loop(config, &mut induction, start);
        // Step-solver work counts toward this checker's totals, and its
        // certificate toward this prove call's combined certificate.
        self.aux_counters += &solver_counters(&induction.solver.stats());
        self.step_cert = induction.certificate();
        self.step_effort = induction.certification_effort();
        outcome
    }

    fn prove_loop(
        &mut self,
        config: &CheckConfig,
        induction: &mut InductionStep,
        start: Instant,
    ) -> ProveOutcome {
        for k in 1..=config.max_depth {
            if self.cancel.is_cancelled() {
                return ProveOutcome::Exhausted {
                    bound: self.frames.len(),
                    cause: StopCause::Cancelled,
                };
            }
            // Base case: no counterexample within k cycles.
            let mut base = config.clone();
            base.max_depth = k;
            base.time_budget = config
                .time_budget
                .map(|tb| tb.saturating_sub(start.elapsed()));
            match self.check(&base) {
                CheckOutcome::Cex(cex) => return ProveOutcome::Cex(cex),
                CheckOutcome::Exhausted { depth, cause } => {
                    return ProveOutcome::Exhausted {
                        bound: depth,
                        cause,
                    }
                }
                CheckOutcome::Failed(failure) => return ProveOutcome::Failed(failure),
                CheckOutcome::BoundReached { .. } => {}
            }
            // Step case: P holds for k consecutive (distinct) states ⇒ P
            // holds in the next one.
            if let Some(tb) = config.time_budget {
                if start.elapsed() > tb {
                    return ProveOutcome::Exhausted {
                        bound: k,
                        cause: StopCause::TimeBudget,
                    };
                }
            }
            match induction.step_holds(k, config) {
                StepResult::Holds => {
                    self.stats.solve_time += start.elapsed();
                    return ProveOutcome::Proved { induction_depth: k };
                }
                StepResult::Fails => {}
                StepResult::Unknown => {
                    return ProveOutcome::Exhausted {
                        bound: k,
                        cause: StopCause::ConflictBudget,
                    }
                }
                StepResult::Stopped => {
                    let cause = if self.cancel.is_cancelled() {
                        StopCause::Cancelled
                    } else {
                        StopCause::TimeBudget
                    };
                    return ProveOutcome::Exhausted { bound: k, cause };
                }
                StepResult::CertificationFailed(detail) => {
                    return ProveOutcome::Failed(CheckFailure {
                        reason: FailureReason::Certification,
                        detail,
                        depth: k,
                    })
                }
            }
        }
        ProveOutcome::Exhausted {
            bound: config.max_depth,
            cause: StopCause::ConflictBudget,
        }
    }
}

enum StepResult {
    Holds,
    Fails,
    Unknown,
    Stopped,
    /// The step case is UNSAT but its certificate did not check.
    CertificationFailed(String),
}

/// Incremental encoding of the k-induction step case: frames with a free
/// initial state, properties asserted on all but the last frame, pairwise
/// state-distinctness (simple path), violation solved at the last frame.
struct InductionStep {
    seq: SeqAig,
    properties: Vec<(String, NodeId)>,
    constraints: Vec<NodeId>,
    solver: Solver,
    const_true: Lit,
    frames: Vec<Frame>,
    /// Per-frame state literals (inputs to that frame), for simple-path.
    frame_states: Vec<Vec<Lit>>,
    /// Cone-of-influence restriction shared with the base case, if slicing.
    coi: Option<SeqCoi>,
    telemetry: Telemetry,
    /// DRAT certification state for the step solver, armed alongside the
    /// base solver's when the run is certified.
    certifier: Option<UnsatCertifier>,
}

impl InductionStep {
    fn new(
        module: &Module,
        properties: Vec<(String, NodeId)>,
        constraints: Vec<NodeId>,
        coi: Option<SeqCoi>,
    ) -> InductionStep {
        let mut solver = Solver::new();
        let const_true = assert_true_lit(&mut solver);
        InductionStep {
            seq: SeqAig::from_module(module),
            properties,
            constraints,
            solver,
            const_true,
            frames: Vec::new(),
            frame_states: Vec::new(),
            coi,
            telemetry: Telemetry::off(),
            certifier: None,
        }
    }

    /// Installs the wall-clock deadline and cancellation hook on the step
    /// solver (so the step case is interruptible mid-solve like the base),
    /// plus the poll interval and telemetry handle of the run.
    fn configure_run(
        &mut self,
        deadline: Option<Instant>,
        cancel: CancelToken,
        poll_interval: u64,
        telemetry: Telemetry,
        certify: bool,
    ) {
        self.solver.set_poll_interval(poll_interval);
        self.solver.set_deadline(deadline);
        self.solver
            .set_interrupt_hook(Some(Box::new(move || cancel.is_cancelled())));
        self.telemetry = telemetry;
        if certify && self.certifier.is_none() {
            // The step solver is fresh at this point (only the constant-
            // true unit exists), so retro-logging captures everything.
            self.solver.enable_proof_logging();
            self.certifier = Some(UnsatCertifier::new());
        }
    }

    /// Certificate status of the step side (cumulative transcript hash).
    fn certificate(&self) -> CertificateStatus {
        match &self.certifier {
            Some(c) => CertificateStatus::Certified {
                hash: c.transcript_hash(),
            },
            None => CertificateStatus::Uncertified,
        }
    }

    /// (proof steps, check µs) spent by the step certifier so far.
    fn certification_effort(&self) -> (u64, u64) {
        self.certifier
            .as_ref()
            .map_or((0, 0), |c| (c.steps(), c.check_us()))
    }

    fn keep_state(&self, j: usize) -> bool {
        self.coi.as_ref().is_none_or(|c| c.state_keep[j])
    }

    fn build_frame(&mut self) {
        let t = self.frames.len();
        let state_lits: Vec<Lit> = if t == 0 {
            // Free symbolic initial state; out-of-cone bits are constant
            // placeholders (the kept bits form a closed sub-FSM, so the
            // step case over them is unchanged by the dropped ones).
            (0..self.seq.state_cur.len())
                .map(|j| {
                    if self.keep_state(j) {
                        self.solver.new_var().positive()
                    } else {
                        !self.const_true
                    }
                })
                .collect()
        } else {
            self.frames[t - 1].next_state.clone()
        };
        let port_lits: Vec<Lit> = (0..self.seq.num_port_bits())
            .map(|k| {
                if self.coi.as_ref().is_none_or(|c| c.port_keep[k]) {
                    self.solver.new_var().positive()
                } else {
                    !self.const_true
                }
            })
            .collect();
        let mut aig_inputs = port_lits.clone();
        aig_inputs.extend_from_slice(&state_lits);
        let mut map = FrameMap::new(&self.seq.aig, &aig_inputs, self.const_true);

        for &c in &self.constraints.clone() {
            let aig_lit = self.seq.node_lits[c.index()][0];
            let lit = map.sat_lit(&mut self.solver, &self.seq.aig, aig_lit);
            self.solver.add_clause(&[lit]);
        }
        let prop_lits: Vec<Lit> = self
            .properties
            .clone()
            .iter()
            .map(|(_, p)| {
                let aig_lit = self.seq.node_lits[p.index()][0];
                map.sat_lit(&mut self.solver, &self.seq.aig, aig_lit)
            })
            .collect();
        let bad = self.solver.new_var().positive();
        let mut clause: Vec<Lit> = vec![!bad];
        clause.extend(prop_lits.iter().map(|&p| !p));
        self.solver.add_clause(&clause);

        let next_state: Vec<Lit> = self
            .seq
            .state_next
            .clone()
            .iter()
            .enumerate()
            .map(|(j, &l)| {
                if self.keep_state(j) {
                    map.sat_lit(&mut self.solver, &self.seq.aig, l)
                } else {
                    !self.const_true
                }
            })
            .collect();

        // Simple path: this frame's state differs from every earlier one.
        // For each pair, a difference selector x with x → (a ⊕ b); the
        // clause "some x is true" then forces a genuine state difference.
        // Only in-cone bits participate: dropped bits carry placeholder
        // constants, and distinctness over the kept sub-FSM is what the
        // sliced step case needs.
        let states = state_lits.clone();
        for earlier in self.frame_states.clone() {
            let mut diff_bits = Vec::with_capacity(states.len());
            for (j, (&a, &b)) in earlier.iter().zip(&states).enumerate() {
                if !self.keep_state(j) {
                    continue;
                }
                let x = self.solver.new_var().positive();
                self.solver.add_clause(&[!x, a, b]);
                self.solver.add_clause(&[!x, !a, !b]);
                diff_bits.push(x);
            }
            if !diff_bits.is_empty() {
                self.solver.add_clause(&diff_bits);
            }
        }

        self.frame_states.push(states);
        self.frames.push(Frame {
            port_lits,
            next_state,
            prop_lits,
            bad,
        });
    }

    /// Checks whether the induction step closes at depth `k`:
    /// P at frames `0..k` (with distinct states) forces P at frame `k`.
    fn step_holds(&mut self, k: usize, config: &CheckConfig) -> StepResult {
        let encode = self.telemetry.child(SpanKind::Phase, "cnf-encode");
        while self.frames.len() <= k {
            // Before adding frame `t`, assert P at frame `t - 1` (it is no
            // longer the "last" frame).
            if let Some(prev) = self.frames.len().checked_sub(1) {
                for &p in &self.frames[prev].prop_lits.clone() {
                    self.solver.add_clause(&[p]);
                }
            }
            self.build_frame();
        }
        encode.close();
        self.solver.set_conflict_budget(config.conflict_budget);
        let bad = self.frames[k].bad;
        let span = self.telemetry.child(SpanKind::Solve, "solve");
        span.gauge("induction_k", k as u64);
        let before = self.solver.stats();
        let r = self.solver.solve_with(&[bad]);
        span.counters(&solver_counters(&self.solver.stats().diff(&before)));
        span.close();
        match r {
            SolveResult::Unsat => {
                // A closing step case is an UNSAT verdict that becomes a
                // full proof — exactly the answer that most needs an
                // independent certificate.
                if let Some(certifier) = &mut self.certifier {
                    if let Err(detail) =
                        certifier.certify_unsat(&mut self.solver, &[bad], &self.telemetry)
                    {
                        return StepResult::CertificationFailed(detail);
                    }
                }
                StepResult::Holds
            }
            SolveResult::Sat => StepResult::Fails,
            SolveResult::Unknown => StepResult::Unknown,
            SolveResult::Stopped => StepResult::Stopped,
        }
    }
}
