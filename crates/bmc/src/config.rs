//! The unified check configuration.
//!
//! [`CheckConfig`] is the one knob surface for the whole check pipeline:
//! checker budgets (depth, conflicts, wall clock), engine switches
//! (slicing), scheduler shape (worker count, retry policy), solver tuning
//! (poll interval) and the telemetry handle. It replaces the former
//! `BmcOptions` + `EngineOptions` + `CheckSettings` + ad-hoc retry plumbing
//! with a single builder:
//!
//! ```
//! use autocc_bmc::CheckConfig;
//! use std::time::Duration;
//!
//! let config = CheckConfig::default()
//!     .depth(32)
//!     .jobs(8)
//!     .slice(true)
//!     .timeout(Duration::from_secs(60));
//! assert_eq!(config.max_depth, 32);
//! assert_eq!(config.jobs, 8);
//! ```

use crate::portfolio::RetryPolicy;
use autocc_telemetry::{SolverCounters, Telemetry};
use std::time::Duration;

/// Lifts the SAT solver's [`autocc_sat::Stats`] into telemetry
/// [`SolverCounters`] (the two crates do not know each other).
pub fn solver_counters(stats: &autocc_sat::Stats) -> SolverCounters {
    SolverCounters {
        solve_calls: stats.solve_calls,
        conflicts: stats.conflicts,
        decisions: stats.decisions,
        propagations: stats.propagations,
        restarts: stats.restarts,
        learnt_clauses: stats.learnt_clauses,
        deleted_clauses: stats.deleted_clauses,
    }
}

/// Where a check attempt executes: on a thread of this process, or in a
/// supervised worker subprocess.
///
/// Subprocess isolation changes *survivability*, never answers: the worker
/// runs the identical deterministic solve, so outcomes (and therefore
/// content keys and stable tables) are byte-identical across the two
/// modes. What subprocess mode buys is blast-radius containment — a
/// solver OOM, stack overflow, or `abort()` kills one worker, not the
/// campaign — plus an enforceable RSS budget and heartbeat liveness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Isolation {
    /// Run check attempts on threads of the calling process (default).
    #[default]
    InProcess,
    /// Run each check attempt in a supervised worker subprocess speaking
    /// the length-prefixed JSON IPC protocol (`--isolate`).
    Subprocess,
}

/// How finely the FT miter's equality obligation is decomposed into
/// individual properties.
///
/// Decomposition never changes the paper-table verdict: the Listing-1
/// monitor assertions are checked under identical semantics at every
/// granularity. What finer granularities add is *attribution* — extra
/// per-state-element properties with small cones — and a clustered,
/// per-cone-sliced check path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Granularity {
    /// The legacy path: the monitor's per-output assertions checked as
    /// one flat property list, each job encoding the full miter cone.
    #[default]
    Monolithic,
    /// The same property set, but routed through cone clustering: each
    /// cluster of overlapping-cone properties is sliced and bit-blasted
    /// once and cached under its own content key.
    Output,
    /// Additionally emit one equality property per DUT register and per
    /// memory word (`st__*` attribution properties), clustered and
    /// sliced the same way. Verdicts then name the leaking state element.
    Register,
}

impl Granularity {
    /// Stable lower-case name (CLI value and fingerprint token).
    pub fn as_str(self) -> &'static str {
        match self {
            Granularity::Monolithic => "monolithic",
            Granularity::Output => "output",
            Granularity::Register => "register",
        }
    }

    /// Inverse of [`Granularity::as_str`].
    pub fn parse(s: &str) -> Option<Granularity> {
        Some(match s {
            "monolithic" => Granularity::Monolithic,
            "output" => Granularity::Output,
            "register" => Granularity::Register,
            _ => return None,
        })
    }

    /// Whether this granularity uses the clustered (decomposed) check
    /// path instead of the flat per-property portfolio.
    pub fn is_decomposed(self) -> bool {
        !matches!(self, Granularity::Monolithic)
    }
}

impl std::fmt::Display for Granularity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Unified configuration for a check or proof run — budgets, scheduling,
/// solver tuning, and the telemetry handle — consumed by the checker, the
/// engines, the portfolio scheduler, the testbench, and every binary.
#[derive(Clone, Debug)]
pub struct CheckConfig {
    /// Maximum unrolling depth (number of cycles).
    pub max_depth: usize,
    /// Total conflict budget across the run (`None` = unlimited).
    /// Deterministic: exhaustion is identical on every machine.
    pub conflict_budget: Option<u64>,
    /// Wall-clock budget for the run (`None` = unlimited). Time budgets
    /// make outcomes machine-dependent; deterministic runs should prefer
    /// conflict budgets.
    pub time_budget: Option<Duration>,
    /// Apply per-property cone-of-influence slicing before encoding.
    pub slice: bool,
    /// Portfolio worker count (min 1). Results are merged positionally,
    /// so any worker count produces bit-identical output.
    pub jobs: usize,
    /// Additional attempts after a contained engine-job panic
    /// (0 = fail fast).
    pub retries: u32,
    /// Conflict-budget multiplier applied per retry attempt.
    pub retry_escalation: u32,
    /// How many conflicts pass between solver deadline/hook polls
    /// (min 1). Smaller values tighten interruption latency.
    pub poll_interval: u64,
    /// Where check attempts execute (in-process threads or supervised
    /// worker subprocesses). Excluded from the content key *and* the
    /// config fingerprint: isolation never changes answers, so journals
    /// written in either mode resume interchangeably.
    pub isolation: Isolation,
    /// RSS budget per worker subprocess, in MiB (`None` = unlimited).
    /// Only enforced under [`Isolation::Subprocess`]: a worker whose
    /// heartbeat reports more RSS is killed and the attempt degrades to
    /// a contained [`crate::FailureReason::MemoryLimit`] failure.
    pub memory_limit_mb: Option<u64>,
    /// Worker heartbeat period in milliseconds (min 1). A worker whose
    /// heartbeat goes silent for a supervisor-chosen multiple of this
    /// period is presumed wedged and killed.
    pub heartbeat_ms: u64,
    /// Property decomposition level for check runs. Decomposed
    /// granularities route checks through per-cluster slicing and
    /// caching; `Monolithic` (default) keeps the legacy flat path.
    pub granularity: Granularity,
    /// Jaccard overlap threshold (`0.0 ..= 1.0`) above which two
    /// properties' sequential cones share a cluster. Higher values make
    /// smaller, more numerous clusters.
    pub cluster_overlap: f64,
    /// Certify every UNSAT solve with a DRAT proof checked by the
    /// independent forward RUP checker (`--certify`). A failed or missing
    /// certificate degrades the outcome to FAILED(certification), never
    /// PASS. Like [`CheckConfig::isolation`], this knob is excluded from
    /// the content key *and* the config fingerprint: certification never
    /// changes answers, so stable tables stay byte-identical and journals
    /// written in either mode resume interchangeably.
    pub certify: bool,
    /// Telemetry handle; spans opened by the pipeline become children of
    /// its current span. Disabled ([`Telemetry::off`]) by default, in
    /// which case instrumentation is a no-op with no clock reads.
    pub telemetry: Telemetry,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            max_depth: 64,
            conflict_budget: None,
            time_budget: Some(Duration::from_secs(300)),
            slice: false,
            jobs: 1,
            retries: 1,
            retry_escalation: 2,
            poll_interval: 128,
            isolation: Isolation::InProcess,
            memory_limit_mb: None,
            heartbeat_ms: 250,
            granularity: Granularity::Monolithic,
            cluster_overlap: 0.9,
            certify: false,
            telemetry: Telemetry::off(),
        }
    }
}

impl CheckConfig {
    /// Sets the maximum unrolling depth.
    pub fn depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Sets (or clears) the total conflict budget.
    pub fn conflicts(mut self, budget: Option<u64>) -> Self {
        self.conflict_budget = budget;
        self
    }

    /// Sets the wall-clock budget.
    pub fn timeout(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Removes the wall-clock budget (fully deterministic runs).
    pub fn no_timeout(mut self) -> Self {
        self.time_budget = None;
        self
    }

    /// Sets the portfolio worker count (clamped to at least 1).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Switches cone-of-influence slicing on or off.
    pub fn slice(mut self, slice: bool) -> Self {
        self.slice = slice;
        self
    }

    /// Sets the retry count for contained engine-job panics.
    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the per-retry conflict-budget escalation factor.
    pub fn retry_escalation(mut self, escalation: u32) -> Self {
        self.retry_escalation = escalation;
        self
    }

    /// Sets the solver poll interval (clamped to at least 1).
    pub fn poll_interval(mut self, conflicts: u64) -> Self {
        self.poll_interval = conflicts.max(1);
        self
    }

    /// Sets where check attempts execute.
    pub fn isolation(mut self, isolation: Isolation) -> Self {
        self.isolation = isolation;
        self
    }

    /// Shorthand for [`Isolation::Subprocess`] (the `--isolate` flag).
    pub fn isolate(self) -> Self {
        self.isolation(Isolation::Subprocess)
    }

    /// Sets (or clears) the per-worker RSS budget, in MiB.
    pub fn memory_limit_mb(mut self, limit: Option<u64>) -> Self {
        self.memory_limit_mb = limit;
        self
    }

    /// Sets the worker heartbeat period (clamped to at least 1 ms).
    pub fn heartbeat_ms(mut self, ms: u64) -> Self {
        self.heartbeat_ms = ms.max(1);
        self
    }

    /// Sets the property decomposition level.
    pub fn granularity(mut self, granularity: Granularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Sets the cone-clustering Jaccard threshold (clamped to `[0, 1]`).
    pub fn cluster_overlap(mut self, overlap: f64) -> Self {
        self.cluster_overlap = if overlap.is_nan() {
            0.9
        } else {
            overlap.clamp(0.0, 1.0)
        };
        self
    }

    /// Switches DRAT certification of UNSAT solves on or off.
    pub fn certify(mut self, certify: bool) -> Self {
        self.certify = certify;
        self
    }

    /// Attaches a telemetry handle.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The retry policy derived from `retries`/`retry_escalation`.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_retries: self.retries,
            escalation: self.retry_escalation,
        }
    }
}

#[allow(deprecated)]
impl From<&crate::checker::BmcOptions> for CheckConfig {
    fn from(options: &crate::checker::BmcOptions) -> CheckConfig {
        CheckConfig {
            max_depth: options.max_depth,
            conflict_budget: options.conflict_budget,
            time_budget: options.time_budget,
            ..CheckConfig::default()
        }
    }
}

#[allow(deprecated)]
impl From<&crate::engine::EngineOptions> for CheckConfig {
    fn from(options: &crate::engine::EngineOptions) -> CheckConfig {
        CheckConfig {
            max_depth: options.max_depth,
            conflict_budget: options.conflict_budget,
            time_budget: options.time_budget,
            slice: options.slice,
            ..CheckConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_and_clamps() {
        let c = CheckConfig::default()
            .depth(12)
            .conflicts(Some(5_000))
            .no_timeout()
            .jobs(0)
            .slice(true)
            .retries(3)
            .retry_escalation(4)
            .poll_interval(0);
        assert_eq!(c.max_depth, 12);
        assert_eq!(c.conflict_budget, Some(5_000));
        assert_eq!(c.time_budget, None);
        assert_eq!(c.jobs, 1, "jobs clamps to 1");
        assert!(c.slice);
        assert_eq!(c.poll_interval, 1, "poll interval clamps to 1");
        let policy = c.retry_policy();
        assert_eq!(policy.max_retries, 3);
        assert_eq!(policy.escalation, 4);
    }

    #[test]
    fn granularity_knobs_compose_and_clamp() {
        let c = CheckConfig::default();
        assert_eq!(c.granularity, Granularity::Monolithic);
        assert!((c.cluster_overlap - 0.9).abs() < 1e-12);
        let c = c.granularity(Granularity::Register).cluster_overlap(1.5);
        assert_eq!(c.granularity, Granularity::Register);
        assert!((c.cluster_overlap - 1.0).abs() < 1e-12, "overlap clamps");
        let c = c.cluster_overlap(f64::NAN);
        assert!((c.cluster_overlap - 0.9).abs() < 1e-12, "NaN falls back");
    }

    #[test]
    fn granularity_round_trips() {
        for g in [
            Granularity::Monolithic,
            Granularity::Output,
            Granularity::Register,
        ] {
            assert_eq!(Granularity::parse(g.as_str()), Some(g));
        }
        assert_eq!(Granularity::parse("bogus"), None);
        assert!(!Granularity::Monolithic.is_decomposed());
        assert!(Granularity::Output.is_decomposed());
        assert!(Granularity::Register.is_decomposed());
    }

    #[test]
    fn isolation_knobs_compose_and_clamp() {
        let c = CheckConfig::default();
        assert_eq!(c.isolation, Isolation::InProcess);
        assert_eq!(c.memory_limit_mb, None);
        assert_eq!(c.heartbeat_ms, 250);
        let c = c.isolate().memory_limit_mb(Some(512)).heartbeat_ms(0);
        assert_eq!(c.isolation, Isolation::Subprocess);
        assert_eq!(c.memory_limit_mb, Some(512));
        assert_eq!(c.heartbeat_ms, 1, "heartbeat clamps to 1 ms");
    }

    #[test]
    fn certify_knob_composes() {
        let c = CheckConfig::default();
        assert!(!c.certify, "certification is opt-in");
        let c = c.certify(true);
        assert!(c.certify);
        assert!(!c.certify(false).certify);
    }

    #[test]
    fn default_matches_the_legacy_bmc_options() {
        // Behaviour preservation: `CheckConfig::default()` must reproduce
        // the semantics every caller of `BmcOptions::default()` relied on.
        let c = CheckConfig::default();
        assert_eq!(c.max_depth, 64);
        assert_eq!(c.conflict_budget, None);
        assert_eq!(c.time_budget, Some(Duration::from_secs(300)));
        assert!(!c.slice);
        assert_eq!(c.jobs, 1);
        assert_eq!(c.poll_interval, 128);
        assert!(!c.telemetry.enabled());
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_shims_convert_in_one_hop() {
        use crate::checker::BmcOptions;
        use crate::engine::EngineOptions;
        let bmc = BmcOptions {
            max_depth: 9,
            conflict_budget: Some(77),
            time_budget: None,
        };
        let c = CheckConfig::from(&bmc);
        assert_eq!(c.max_depth, 9);
        assert_eq!(c.conflict_budget, Some(77));
        assert_eq!(c.time_budget, None);

        let eng = EngineOptions::from_bmc(&bmc).with_slice(true);
        let c = CheckConfig::from(&eng);
        assert!(c.slice);
        assert_eq!(c.max_depth, 9);
    }
}
