//! Pluggable check engines.
//!
//! A [`CheckEngine`] turns a [`CheckSpec`] (module + properties +
//! constraints) into an [`EngineOutcome`] under [`EngineOptions`] budgets.
//! Engines are `Send + Sync` and take a [`CancelToken`], so a portfolio
//! scheduler can race several of them over the same spec and cancel the
//! losers — the software analogue of JasperGold's engine portfolio that
//! the paper drives with a single property set.
//!
//! Two engines ship with the crate:
//!
//! * [`BmcEngine`] — incremental bounded model checking ([`Bmc::check`]).
//! * [`KInductionEngine`] — k-induction with simple-path constraints
//!   ([`Bmc::prove`]); can return [`EngineOutcome::Proved`].
//!
//! Cancellation and wall-clock deadlines are enforced *inside* the solver
//! (polled every few conflicts), so runaway solves are bounded — but an
//! uncancelled token and an absent deadline never alter the search, so a
//! run's SAT-level behaviour (and therefore its outcome and counterexample
//! depth) is bit-identical whether or not a token is installed — the
//! invariant the deterministic scheduler relies on. Outcomes that depend
//! on wall-clock time or cancellation are reported as
//! [`EngineOutcome::Unknown`] (machine-dependent), while conflict-budget
//! exhaustion stays [`EngineOutcome::Exhausted`] (deterministic).

use crate::certify::{cex_hash, CertificateStatus};
use crate::checker::{Bmc, Cex, CheckOutcome, FailureReason, ProveOutcome, StopCause};
use crate::config::CheckConfig;
use autocc_hdl::{Module, NodeId};
use autocc_telemetry::SolverCounters;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared cancellation flag, cloned into every job of a race.
///
/// Engines poll [`CancelToken::is_cancelled`] at depth-step boundaries and
/// bail out with [`EngineOutcome::Exhausted`] once it is set.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation; every clone observes it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// What to check: a module plus the properties asserted over it and the
/// environment constraints assumed over it.
#[derive(Clone, Debug)]
pub struct CheckSpec<'m> {
    /// The design under test.
    pub module: &'m Module,
    /// `(name, node)` safety properties; each node is 1 bit and must be 1
    /// on every cycle.
    pub properties: Vec<(String, NodeId)>,
    /// 1-bit constraint nodes assumed 1 on every cycle.
    pub constraints: Vec<NodeId>,
    /// Optional property-group label. Set by the decomposed check path to
    /// name the cone cluster this spec carries (e.g. the first member
    /// property); engines treat it as opaque metadata for telemetry and
    /// failure reports.
    pub group: Option<String>,
}

impl<'m> CheckSpec<'m> {
    /// An empty spec over `module`.
    pub fn new(module: &'m Module) -> CheckSpec<'m> {
        CheckSpec {
            module,
            properties: Vec::new(),
            constraints: Vec::new(),
            group: None,
        }
    }

    /// Adds a property (builder style).
    pub fn property(mut self, name: impl Into<String>, node: NodeId) -> Self {
        self.properties.push((name.into(), node));
        self
    }

    /// Adds a constraint (builder style).
    pub fn constraint(mut self, node: NodeId) -> Self {
        self.constraints.push(node);
        self
    }

    /// Adds a batch of constraints (builder style).
    pub fn constraints(mut self, nodes: &[NodeId]) -> Self {
        self.constraints.extend_from_slice(nodes);
        self
    }

    /// Labels the spec with its property-group (cluster) name.
    pub fn group(mut self, label: impl Into<String>) -> Self {
        self.group = Some(label.into());
        self
    }
}

/// Legacy per-job budgets and switches for a check engine run.
#[deprecated(note = "use `CheckConfig`; convert with `CheckConfig::from(&options)`")]
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Maximum unrolling depth (number of cycles).
    pub max_depth: usize,
    /// Conflict budget for the job (`None` = unlimited).
    pub conflict_budget: Option<u64>,
    /// Wall-clock budget for the job (`None` = unlimited). Time budgets
    /// make outcomes machine-dependent; deterministic runs should prefer
    /// conflict budgets.
    pub time_budget: Option<Duration>,
    /// Apply per-property cone-of-influence slicing before encoding.
    pub slice: bool,
}

#[allow(deprecated)]
impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions::from_bmc(&crate::checker::BmcOptions::default())
    }
}

#[allow(deprecated)]
impl EngineOptions {
    /// Lifts legacy [`BmcOptions`](crate::checker::BmcOptions) into engine
    /// options (slicing off).
    pub fn from_bmc(options: &crate::checker::BmcOptions) -> EngineOptions {
        EngineOptions {
            max_depth: options.max_depth,
            conflict_budget: options.conflict_budget,
            time_budget: options.time_budget,
            slice: false,
        }
    }

    /// The checker-level options this job runs with.
    pub fn to_bmc(&self) -> crate::checker::BmcOptions {
        crate::checker::BmcOptions {
            max_depth: self.max_depth,
            conflict_budget: self.conflict_budget,
            time_budget: self.time_budget,
        }
    }

    /// Returns the options with slicing switched on or off.
    pub fn with_slice(mut self, slice: bool) -> EngineOptions {
        self.slice = slice;
        self
    }
}

/// Why a job ended [`EngineOutcome::Unknown`]: a machine-dependent stop
/// (wall-clock or cancellation), as opposed to the deterministic
/// conflict-budget exhaustion of [`EngineOutcome::Exhausted`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnknownCause {
    /// The wall-clock budget ran out mid-check.
    TimeBudget,
    /// The job was cancelled (e.g. it lost a portfolio race).
    Cancelled,
}

impl std::fmt::Display for UnknownCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            UnknownCause::TimeBudget => "timeout",
            UnknownCause::Cancelled => "cancelled",
        })
    }
}

/// A contained job fault: which engine failed, on what, how far it got,
/// why, and after how many attempts. Carried by [`EngineOutcome::Failed`]
/// instead of tearing down the batch.
#[derive(Clone, Debug)]
pub struct JobFailure {
    /// Name of the failing engine ([`CheckEngine::name`]).
    pub engine: String,
    /// The property being checked, when the failure is attributable.
    pub property: Option<String>,
    /// Depth reached when the fault hit, in cycles.
    pub depth: usize,
    /// Failure classification.
    pub reason: FailureReason,
    /// Human-readable diagnostic (panic payload, divergence report, ...).
    pub detail: String,
    /// Number of attempts made (1 = no retries).
    pub attempts: u32,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "engine `{}` failed ({}) at depth {} after {} attempt{}: {}",
            self.engine,
            self.reason,
            self.depth,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.detail
        )?;
        if let Some(p) = &self.property {
            write!(f, " [property {p}]")?;
        }
        Ok(())
    }
}

/// Result of one engine run over one spec.
#[derive(Clone, Debug)]
pub enum EngineOutcome {
    /// A property is violated; the trace proves it.
    Cex(Cex),
    /// No violation exists within `depth` cycles (bounded proof).
    BoundReached {
        /// The proven bound, in cycles.
        depth: usize,
    },
    /// The properties hold on all reachable states, for any depth.
    Proved {
        /// The induction depth at which the step case closed.
        induction_depth: usize,
    },
    /// Conflict budget exhausted; `depth` cycles are still proven.
    /// Deterministic: identical on every machine and run.
    Exhausted {
        /// Deepest fully-proven depth, in cycles.
        depth: usize,
    },
    /// Stopped by wall-clock budget or cancellation; `depth` cycles are
    /// still proven, but where the run stopped is machine-dependent.
    Unknown {
        /// Deepest fully-proven depth, in cycles.
        depth: usize,
        /// What stopped the run.
        cause: UnknownCause,
    },
    /// The job hit an internal fault (panic, replay mismatch, ...); the
    /// result is unusable but the rest of the batch continues.
    Failed(JobFailure),
}

impl EngineOutcome {
    /// A conclusive outcome settles the question the job asked;
    /// [`EngineOutcome::Exhausted`], [`EngineOutcome::Unknown`] and
    /// [`EngineOutcome::Failed`] do not. Races stop on the first
    /// conclusive result.
    pub fn is_conclusive(&self) -> bool {
        matches!(
            self,
            EngineOutcome::Cex(_)
                | EngineOutcome::BoundReached { .. }
                | EngineOutcome::Proved { .. }
        )
    }

    /// The deepest fully-proven depth this outcome still guarantees, when
    /// it guarantees one ([`EngineOutcome::Failed`] guarantees nothing).
    pub fn proven_depth(&self) -> Option<usize> {
        match self {
            EngineOutcome::Cex(_) | EngineOutcome::Failed(_) => None,
            EngineOutcome::BoundReached { depth }
            | EngineOutcome::Exhausted { depth }
            | EngineOutcome::Unknown { depth, .. } => Some(*depth),
            EngineOutcome::Proved { .. } => Some(usize::MAX),
        }
    }
}

fn stop_outcome(depth: usize, cause: StopCause) -> EngineOutcome {
    match cause {
        StopCause::ConflictBudget => EngineOutcome::Exhausted { depth },
        StopCause::TimeBudget => EngineOutcome::Unknown {
            depth,
            cause: UnknownCause::TimeBudget,
        },
        StopCause::Cancelled => EngineOutcome::Unknown {
            depth,
            cause: UnknownCause::Cancelled,
        },
    }
}

/// One finished engine run: the outcome plus the solver work it cost.
///
/// Engines report their counters unconditionally (a struct copy, no clock
/// reads), so run reports carry stats even with telemetry disabled.
#[derive(Clone, Debug)]
pub struct EngineRun {
    /// What the engine concluded.
    pub outcome: EngineOutcome,
    /// Solver work spent reaching it.
    pub counters: SolverCounters,
    /// Whether the outcome carries an independently-checked certificate
    /// (DRAT transcript for UNSAT-backed verdicts, replayed trace for
    /// counterexamples). Always `Uncertified` without `--certify` and for
    /// inconclusive outcomes.
    pub certificate: CertificateStatus,
}

impl From<EngineOutcome> for EngineRun {
    fn from(outcome: EngineOutcome) -> EngineRun {
        EngineRun {
            outcome,
            counters: SolverCounters::default(),
            certificate: CertificateStatus::Uncertified,
        }
    }
}

/// The certificate a conclusive outcome earned: the checker's transcript
/// hash for UNSAT-backed verdicts, the replayed-trace hash for
/// counterexamples, `Uncertified` for everything inconclusive.
fn certificate_for(
    outcome: &EngineOutcome,
    config: &CheckConfig,
    unsat: CertificateStatus,
) -> CertificateStatus {
    if !config.certify {
        return CertificateStatus::Uncertified;
    }
    match outcome {
        EngineOutcome::BoundReached { .. } | EngineOutcome::Proved { .. } => unsat,
        // A Cex has, by construction, already been replay-validated
        // against the interpreter; its trace is the certificate.
        EngineOutcome::Cex(cex) => CertificateStatus::Certified {
            hash: cex_hash(cex),
        },
        _ => CertificateStatus::Uncertified,
    }
}

/// A check engine: one strategy for deciding a [`CheckSpec`].
pub trait CheckEngine: Send + Sync {
    /// Short stable name, used in logs and reports.
    fn name(&self) -> &'static str;

    /// Runs the engine to completion, budget exhaustion, or cancellation.
    fn check(&self, spec: &CheckSpec<'_>, config: &CheckConfig, cancel: &CancelToken) -> EngineRun;
}

fn configure<'m>(spec: &CheckSpec<'m>, config: &CheckConfig, cancel: &CancelToken) -> Bmc<'m> {
    let mut bmc = Bmc::with_telemetry(spec.module, config.telemetry.clone());
    for &c in &spec.constraints {
        bmc.add_constraint(c);
    }
    for (name, p) in &spec.properties {
        bmc.add_property(name.clone(), *p);
    }
    bmc.set_slicing(config.slice);
    bmc.set_cancel_token(cancel.clone());
    bmc
}

/// Incremental bounded model checking (falsification / bounded proof).
#[derive(Clone, Copy, Debug, Default)]
pub struct BmcEngine;

impl CheckEngine for BmcEngine {
    fn name(&self) -> &'static str {
        "bmc"
    }

    fn check(&self, spec: &CheckSpec<'_>, config: &CheckConfig, cancel: &CancelToken) -> EngineRun {
        let mut bmc = configure(spec, config, cancel);
        let outcome = match bmc.check(config) {
            CheckOutcome::Cex(cex) => EngineOutcome::Cex(cex),
            CheckOutcome::BoundReached { depth } => EngineOutcome::BoundReached { depth },
            CheckOutcome::Exhausted { depth, cause } => stop_outcome(depth, cause),
            CheckOutcome::Failed(failure) => EngineOutcome::Failed(JobFailure {
                engine: self.name().to_string(),
                property: None,
                depth: failure.depth,
                reason: failure.reason,
                detail: failure.detail,
                attempts: 1,
            }),
        };
        let certificate = certificate_for(&outcome, config, bmc.certificate());
        EngineRun {
            outcome,
            counters: bmc.counters(),
            certificate,
        }
    }
}

/// K-induction with simple-path constraints (full proofs), interleaved
/// with base-case BMC (so it also finds counterexamples).
#[derive(Clone, Copy, Debug, Default)]
pub struct KInductionEngine;

impl CheckEngine for KInductionEngine {
    fn name(&self) -> &'static str {
        "k-induction"
    }

    fn check(&self, spec: &CheckSpec<'_>, config: &CheckConfig, cancel: &CancelToken) -> EngineRun {
        let mut bmc = configure(spec, config, cancel);
        let outcome = match bmc.prove(config) {
            ProveOutcome::Proved { induction_depth } => EngineOutcome::Proved { induction_depth },
            ProveOutcome::Cex(cex) => EngineOutcome::Cex(cex),
            ProveOutcome::Exhausted { bound, cause } => stop_outcome(bound, cause),
            ProveOutcome::Failed(failure) => EngineOutcome::Failed(JobFailure {
                engine: self.name().to_string(),
                property: None,
                depth: failure.depth,
                reason: failure.reason,
                detail: failure.detail,
                attempts: 1,
            }),
        };
        let certificate = certificate_for(&outcome, config, bmc.prove_certificate());
        EngineRun {
            outcome,
            counters: bmc.counters(),
            certificate,
        }
    }
}

/// Demotes an engine's [`EngineOutcome::BoundReached`] to
/// [`EngineOutcome::Exhausted`], making it inconclusive.
///
/// Use this to enter a bounded engine into a *full-proof* race: the
/// falsifier can win only by finding a counterexample; merely reaching its
/// bound must not cancel a prover that could still close the proof.
#[derive(Clone, Copy, Debug, Default)]
pub struct Falsifier<E>(pub E);

impl<E: CheckEngine> CheckEngine for Falsifier<E> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn check(&self, spec: &CheckSpec<'_>, config: &CheckConfig, cancel: &CancelToken) -> EngineRun {
        let mut run = self.0.check(spec, config, cancel);
        if let EngineOutcome::BoundReached { depth } = run.outcome {
            // The demoted outcome is inconclusive; it carries no
            // certificate even if the bounded proof checked.
            run.outcome = EngineOutcome::Exhausted { depth };
            run.certificate = CertificateStatus::Uncertified;
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_hdl::{Bv, ModuleBuilder};

    fn counter_module() -> Module {
        let mut b = ModuleBuilder::new("counter");
        let c = b.reg("count", 3, Bv::zero(3));
        let one = b.lit(3, 1);
        let next = b.add(c, one);
        b.set_next(c, next);
        let five = b.lit(3, 5);
        let below = b.ult(c, five);
        b.output("small", below);
        b.build()
    }

    #[test]
    fn bmc_engine_finds_cex() {
        let m = counter_module();
        let spec = CheckSpec::new(&m).property("count_below_5", m.output_node("small").unwrap());
        let config = CheckConfig::default().depth(16).no_timeout();
        let run = BmcEngine.check(&spec, &config, &CancelToken::new());
        match run.outcome {
            EngineOutcome::Cex(cex) => assert_eq!(cex.depth, 6),
            other => panic!("expected cex, got {other:?}"),
        }
        assert!(
            run.counters.solve_calls >= 6,
            "one solve call per depth step: {:?}",
            run.counters
        );
    }

    #[test]
    fn cancelled_job_exhausts_immediately() {
        let m = counter_module();
        let spec = CheckSpec::new(&m).property("count_below_5", m.output_node("small").unwrap());
        let config = CheckConfig::default().depth(16).no_timeout();
        let cancel = CancelToken::new();
        cancel.cancel();
        match BmcEngine.check(&spec, &config, &cancel).outcome {
            EngineOutcome::Unknown {
                depth: 0,
                cause: UnknownCause::Cancelled,
            } => {}
            other => panic!("expected immediate cancelled Unknown, got {other:?}"),
        }
    }

    #[test]
    fn sliced_and_unsliced_agree() {
        let m = counter_module();
        let spec = CheckSpec::new(&m).property("count_below_5", m.output_node("small").unwrap());
        let config = CheckConfig::default().depth(16).no_timeout();
        let plain = BmcEngine.check(&spec, &config, &CancelToken::new());
        let sliced = BmcEngine.check(&spec, &config.clone().slice(true), &CancelToken::new());
        match (plain.outcome, sliced.outcome) {
            (EngineOutcome::Cex(a), EngineOutcome::Cex(b)) => {
                assert_eq!(a.depth, b.depth);
                assert_eq!(a.property, b.property);
            }
            other => panic!("expected matching cexes, got {other:?}"),
        }
    }
}
