//! # autocc-bmc
//!
//! Bounded model checking and k-induction over `autocc-hdl` netlists —
//! the solver-engine layer of the AutoCC reproduction (Orenes-Vera et al.,
//! MICRO 2023). Where the paper hands an FPV testbench to JasperGold or
//! SBY, this crate unrolls the bit-blasted transition relation into the
//! `autocc-sat` CDCL solver.
//!
//! * Safety properties and environment constraints are 1-bit module nodes
//!   that must hold on every cycle — the shape of every AutoCC property.
//! * Checking deepens incrementally; learnt clauses carry across depths.
//! * Counterexamples come back as input [`Trace`]s and are replay-validated
//!   against the interpreter before being reported, so a reported covert
//!   channel always reproduces in simulation.
//! * [`Bmc::prove`] runs k-induction with simple-path constraints for full
//!   (unbounded) proofs, as used for the paper's AES full-proof result.
//! * The [`engine`] layer wraps both strategies behind the pluggable
//!   [`CheckEngine`] trait, with per-property cone-of-influence slicing
//!   and cooperative cancellation; the [`portfolio`] scheduler fans
//!   independent jobs across threads (deterministic, order-indexed merge)
//!   and races engines over one spec (first conclusive result wins).
//!
//! ## Example: proving and refuting a counter property
//!
//! ```
//! use autocc_hdl::{Bv, ModuleBuilder};
//! use autocc_bmc::{Bmc, CheckConfig, CheckOutcome};
//!
//! let mut b = ModuleBuilder::new("counter");
//! let c = b.reg("count", 3, Bv::zero(3));
//! let one = b.lit(3, 1);
//! let next = b.add(c, one);
//! b.set_next(c, next);
//! let five = b.lit(3, 5);
//! let below = b.ult(c, five);
//! b.output("small", below);
//! let m = b.build();
//!
//! let mut bmc = Bmc::new(&m);
//! bmc.add_property("count_below_5", m.output_node("small").unwrap());
//! match bmc.check(&CheckConfig::default().depth(16)) {
//!     CheckOutcome::Cex(cex) => {
//!         // The counter reaches 5 after 6 cycles (0,1,2,3,4,5).
//!         assert_eq!(cex.depth, 6);
//!     }
//!     other => panic!("expected counterexample, got {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod certify;
mod checker;
pub mod config;
pub mod engine;
pub mod portfolio;
mod trace;

pub use cache::{
    certificate_digest, config_fingerprint, content_key, content_key_with_seq, CheckMode,
    ContentKey,
};
pub use certify::{cex_hash, CertificateStatus};
#[allow(deprecated)]
pub use checker::BmcOptions;
pub use checker::{
    Bmc, BmcStats, Cex, CheckFailure, CheckOutcome, FailureReason, ProveOutcome, StopCause,
};
pub use config::{solver_counters, CheckConfig, Granularity, Isolation};
#[allow(deprecated)]
pub use engine::EngineOptions;
pub use engine::{
    BmcEngine, CancelToken, CheckEngine, CheckSpec, EngineOutcome, EngineRun, Falsifier,
    JobFailure, KInductionEngine, UnknownCause,
};
pub use portfolio::{EngineJob, JobPanic, Portfolio, RetryPolicy};
pub use trace::{ReplayedTrace, Trace};
