//! Deterministic parallel portfolio scheduler.
//!
//! Two scheduling shapes, mirroring how the paper drives JasperGold:
//!
//! * [`Portfolio::run`] fans a batch of *independent* jobs (one per
//!   property, or one per experiment) across worker threads and returns
//!   results **in submission order**. Each job is a pure function of its
//!   inputs and runs on a private solver, so the merged result is
//!   bit-identical no matter how many workers execute the batch — `--jobs
//!   4` and `--jobs 1` agree byte for byte.
//! * [`Portfolio::race`] runs several engines over the *same* spec with a
//!   shared [`CancelToken`]; the first conclusive result wins and the
//!   losers are cancelled at their next depth-step boundary.
//!
//! Workers claim jobs from an atomic counter (work stealing by index), so
//! scheduling is dynamic but the *result vector* is positional — merging
//! never depends on completion order.

use crate::engine::{CancelToken, CheckEngine, CheckSpec, EngineOptions, EngineOutcome};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// A fixed-width pool of check workers.
#[derive(Clone, Copy, Debug)]
pub struct Portfolio {
    jobs: usize,
}

impl Portfolio {
    /// A scheduler running at most `jobs` tasks concurrently (min 1).
    pub fn new(jobs: usize) -> Portfolio {
        Portfolio { jobs: jobs.max(1) }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every task and returns the results in submission order.
    ///
    /// With `jobs == 1` (or a single task) the tasks run inline on the
    /// calling thread; otherwise worker threads claim tasks from an atomic
    /// counter. Either way the result at index `i` is task `i`'s result,
    /// so downstream merging is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if any task panics (the panic is propagated).
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        if self.jobs == 1 || n <= 1 {
            return tasks.into_iter().map(|task| task()).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        thread::scope(|s| {
            for _ in 0..self.jobs.min(n) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let task = slots[i].lock().unwrap().take().expect("task claimed once");
                    let result = task();
                    *results[i].lock().unwrap() = Some(result);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("worker panics propagate through scope join")
                    .expect("every claimed task stores a result")
            })
            .collect()
    }

    /// Races `engines` over one spec; the first *conclusive* outcome (see
    /// [`EngineOutcome::is_conclusive`]) wins and cancels the rest.
    ///
    /// Returns the winning engine's index and outcome. If no engine is
    /// conclusive, engine 0's outcome is returned (a deterministic
    /// fallback). Which engine wins a race can depend on machine timing —
    /// races trade determinism of the *winner* for wall-clock speed, while
    /// the outcome itself is still a correct answer whoever produces it.
    pub fn race(
        &self,
        engines: &[&dyn CheckEngine],
        spec: &CheckSpec<'_>,
        options: &EngineOptions,
    ) -> (usize, EngineOutcome) {
        assert!(!engines.is_empty(), "race needs at least one engine");
        let tokens: Vec<CancelToken> = engines.iter().map(|_| CancelToken::new()).collect();
        let winner: Mutex<Option<usize>> = Mutex::new(None);
        let outcomes: Vec<Mutex<Option<EngineOutcome>>> =
            engines.iter().map(|_| Mutex::new(None)).collect();
        thread::scope(|s| {
            for (i, engine) in engines.iter().enumerate() {
                let tokens = &tokens;
                let winner = &winner;
                let outcomes = &outcomes;
                s.spawn(move || {
                    let outcome = engine.check(spec, options, &tokens[i]);
                    if outcome.is_conclusive() {
                        let mut w = winner.lock().unwrap();
                        if w.is_none() {
                            *w = Some(i);
                            for (j, t) in tokens.iter().enumerate() {
                                if j != i {
                                    t.cancel();
                                }
                            }
                        }
                    }
                    *outcomes[i].lock().unwrap() = Some(outcome);
                });
            }
        });
        let outcomes: Vec<EngineOutcome> = outcomes
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("every racer reports"))
            .collect();
        let idx = winner.into_inner().unwrap().unwrap_or(0);
        let outcome = outcomes.into_iter().nth(idx).expect("winner index valid");
        (idx, outcome)
    }
}

impl Default for Portfolio {
    fn default() -> Portfolio {
        Portfolio::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BmcEngine, KInductionEngine};
    use autocc_hdl::{Bv, Module, ModuleBuilder};

    #[test]
    fn run_preserves_submission_order() {
        let tasks: Vec<_> = (0..17).map(|i| move || i * i).collect();
        let serial = Portfolio::new(1).run(tasks.clone());
        let parallel = Portfolio::new(4).run(tasks);
        assert_eq!(serial, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(serial, parallel);
    }

    fn toggle_module() -> Module {
        let mut b = ModuleBuilder::new("toggle");
        let t = b.reg("t", 1, Bv::zero(1));
        let n = b.not(t);
        b.set_next(t, n);
        let stuck = b.or(t, n);
        b.output("stuck", stuck);
        b.build()
    }

    #[test]
    fn race_returns_first_conclusive_result() {
        let m = toggle_module();
        let spec = CheckSpec::new(&m).property("t_or_not_t", m.output_node("stuck").unwrap());
        let opts = EngineOptions {
            max_depth: 8,
            conflict_budget: None,
            time_budget: None,
            slice: false,
        };
        let (idx, outcome) = Portfolio::new(2).race(&[&KInductionEngine, &BmcEngine], &spec, &opts);
        assert!(idx < 2);
        assert!(outcome.is_conclusive(), "got {outcome:?}");
        match outcome {
            EngineOutcome::Proved { .. } | EngineOutcome::BoundReached { .. } => {}
            other => panic!("tautology must not be refuted: {other:?}"),
        }
    }
}
