//! Deterministic parallel portfolio scheduler.
//!
//! Two scheduling shapes, mirroring how the paper drives JasperGold:
//!
//! * [`Portfolio::run`] fans a batch of *independent* jobs (one per
//!   property, or one per experiment) across worker threads and returns
//!   results **in submission order**. Each job is a pure function of its
//!   inputs and runs on a private solver, so the merged result is
//!   bit-identical no matter how many workers execute the batch — `--jobs
//!   4` and `--jobs 1` agree byte for byte.
//! * [`Portfolio::race`] runs several engines over the *same* spec with a
//!   shared [`CancelToken`]; the first conclusive result wins and the
//!   losers are cancelled mid-solve via the solver's interrupt hook.
//!
//! Workers claim jobs from an atomic counter (work stealing by index), so
//! scheduling is dynamic but the *result vector* is positional — merging
//! never depends on completion order.
//!
//! Every job is contained with `catch_unwind`: a panicking worker poisons
//! only its own slot, never the batch. [`Portfolio::try_run`] exposes the
//! contained panics as values; [`Portfolio::run`] re-raises the
//! lowest-index panic *after* all other jobs finish, so even the panic
//! propagation path is independent of worker count. Engine jobs go one
//! step further: [`Portfolio::run_engine_jobs`] retries panicked jobs
//! under a [`RetryPolicy`] with escalated conflict budgets, and degrades
//! to [`EngineOutcome::Failed`] only when the retries are spent.

use crate::checker::FailureReason;
use crate::config::CheckConfig;
use crate::engine::{CancelToken, CheckEngine, CheckSpec, EngineOutcome, EngineRun, JobFailure};
use autocc_telemetry::{SolverCounters, SpanKind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

/// A contained panic from one job of a batch.
#[derive(Clone, Debug)]
pub struct JobPanic {
    /// Index of the panicking job in the submitted batch.
    pub index: usize,
    /// Stringified panic payload.
    pub payload: String,
}

/// Renders a panic payload (`&str` or `String` in practice) for reports.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Bounded-retry policy for contained job panics.
///
/// A panicked engine job is re-run up to `max_retries` more times; each
/// attempt multiplies the job's conflict budget by `escalation` (attempt
/// `a` runs with `budget * escalation^a`), on the theory that transient
/// faults near a budget edge deserve more room before giving up. Retries
/// are deterministic: the same job panics (or not) identically on every
/// machine, so retry counts — and therefore outcomes — do not depend on
/// worker count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = fail fast).
    pub max_retries: u32,
    /// Conflict-budget multiplier applied per retry.
    pub escalation: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 1,
            escalation: 2,
        }
    }
}

impl RetryPolicy {
    /// Fail fast: no retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// Default escalation with `n` retries.
    pub fn with_retries(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries: n,
            ..RetryPolicy::default()
        }
    }

    /// The conflict budget for attempt `attempt` (0-based): the base
    /// budget scaled by `escalation^attempt`, saturating.
    pub fn escalated_budget(&self, base: Option<u64>, attempt: u32) -> Option<u64> {
        let factor = u64::from(self.escalation.max(1));
        base.map(|b| b.saturating_mul(factor.saturating_pow(attempt)))
    }
}

/// One engine job of a batch: an engine, what to check, and its budgets.
///
/// The optional `property` names the property under check so a contained
/// failure can be attributed in reports.
pub struct EngineJob<'e, 'm> {
    /// The engine to run.
    pub engine: &'e dyn CheckEngine,
    /// What to check.
    pub spec: CheckSpec<'m>,
    /// Budgets, switches, retry policy, and the job's telemetry handle
    /// (spans opened by the job nest under its current span).
    pub config: CheckConfig,
    /// Property name for failure attribution, if the job is per-property.
    pub property: Option<String>,
    /// Cancellation token observed by the job (fresh = never cancelled).
    pub cancel: CancelToken,
}

/// Runs one engine job with panic containment and the bounded retries of
/// its config's [`CheckConfig::retry_policy`]. Each attempt runs under an
/// `attempt` span; counters from every attempt accumulate into the
/// returned run (panicked attempts report nothing — their checker died
/// with them).
fn run_engine_job(job: &EngineJob<'_, '_>) -> EngineRun {
    let retry = job.config.retry_policy();
    let mut attempt = 0u32;
    let mut counters = SolverCounters::default();
    loop {
        let mut config = job.config.clone();
        config.conflict_budget = retry.escalated_budget(job.config.conflict_budget, attempt);
        let span = job
            .config
            .telemetry
            .child(SpanKind::Attempt, job.engine.name());
        span.gauge("attempt", u64::from(attempt) + 1);
        config.telemetry = span.clone();
        let result = catch_unwind(AssertUnwindSafe(|| {
            job.engine.check(&job.spec, &config, &job.cancel)
        }));
        span.close();
        attempt += 1;
        job.config.telemetry.gauge("attempts", u64::from(attempt));
        match result {
            Ok(run) => {
                counters += &run.counters;
                let outcome = match run.outcome {
                    EngineOutcome::Failed(mut failure) => {
                        // An engine may have retried internally (e.g. a
                        // process-isolated engine respawning dead
                        // workers); keep the larger count.
                        failure.attempts = failure.attempts.max(attempt);
                        if failure.property.is_none() {
                            failure.property.clone_from(&job.property);
                        }
                        EngineOutcome::Failed(failure)
                    }
                    outcome => outcome,
                };
                return EngineRun {
                    outcome,
                    counters,
                    certificate: run.certificate,
                };
            }
            Err(payload) => {
                if attempt > retry.max_retries {
                    return EngineRun {
                        outcome: EngineOutcome::Failed(JobFailure {
                            engine: job.engine.name().to_string(),
                            property: job.property.clone(),
                            depth: 0,
                            reason: FailureReason::Panic,
                            detail: panic_message(payload.as_ref()),
                            attempts: attempt,
                        }),
                        counters,
                        certificate: crate::CertificateStatus::Uncertified,
                    };
                }
            }
        }
    }
}

/// A degraded run for a scheduler-level fault (poisoned lock, vanished
/// result slot): the batch carries on and the affected slot reports
/// FAILED instead of tearing the scheduler down.
fn scheduler_failure(engine: &str, detail: &str) -> EngineRun {
    EngineRun::from(EngineOutcome::Failed(JobFailure {
        engine: engine.to_string(),
        property: None,
        depth: 0,
        reason: FailureReason::InternalInconsistency,
        detail: detail.to_string(),
        attempts: 1,
    }))
}

/// A fixed-width pool of check workers.
#[derive(Clone, Copy, Debug)]
pub struct Portfolio {
    jobs: usize,
}

impl Portfolio {
    /// A scheduler running at most `jobs` tasks concurrently (min 1).
    pub fn new(jobs: usize) -> Portfolio {
        Portfolio { jobs: jobs.max(1) }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every task and returns the results in submission order, with
    /// panics contained per slot.
    ///
    /// With `jobs == 1` (or a single task) the tasks run inline on the
    /// calling thread; otherwise worker threads claim tasks from an atomic
    /// counter. Either way the result at index `i` is task `i`'s result
    /// (or its contained panic), so downstream merging is deterministic
    /// and one bad job cannot take down its batch.
    pub fn try_run<T, F>(&self, tasks: Vec<F>) -> Vec<Result<T, JobPanic>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        self.try_run_ordered(tasks, None)
    }

    /// Like [`Portfolio::try_run`], but workers *claim* tasks in the given
    /// priority order (a permutation of `0..tasks.len()`) instead of
    /// submission order. Results still come back positionally — index `i`
    /// of the return value is task `i` — so the execution order affects
    /// wall-clock load balance only, never what is reported. The
    /// decomposed check path uses this to start the largest-cone clusters
    /// first so a big cluster never lands last on an otherwise drained
    /// pool.
    pub fn try_run_ordered<T, F>(
        &self,
        tasks: Vec<F>,
        priority: Option<&[usize]>,
    ) -> Vec<Result<T, JobPanic>>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let contain = |i: usize, task: F| {
            catch_unwind(AssertUnwindSafe(task)).map_err(|payload| JobPanic {
                index: i,
                payload: panic_message(payload.as_ref()),
            })
        };
        let n = tasks.len();
        if let Some(order) = priority {
            assert_eq!(
                order.len(),
                n,
                "priority must be a permutation of the batch"
            );
        }
        let claim = |rank: usize| priority.map_or(rank, |order| order[rank]);
        if self.jobs == 1 || n <= 1 {
            let mut slots: Vec<Option<F>> = tasks.into_iter().map(Some).collect();
            let mut results: Vec<Option<Result<T, JobPanic>>> = (0..n).map(|_| None).collect();
            for rank in 0..n {
                let i = claim(rank);
                if let Some(task) = slots[i].take() {
                    results[i] = Some(contain(i, task));
                }
            }
            return results
                .into_iter()
                .map(|r| r.expect("every slot was claimed exactly once"))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<Result<T, JobPanic>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        thread::scope(|s| {
            for _ in 0..self.jobs.min(n) {
                s.spawn(|| loop {
                    let rank = next.fetch_add(1, Ordering::Relaxed);
                    if rank >= n {
                        break;
                    }
                    let i = claim(rank);
                    // Poisoned slot locks still yield their data (a plain
                    // `Option` either way): panics are contained inside
                    // `contain`, so poison can only come from a crashed
                    // sibling claim, and refusing to proceed would wedge
                    // the whole batch over one slot.
                    let task = match slots[i].lock() {
                        Ok(mut slot) => slot.take(),
                        Err(poisoned) => poisoned.into_inner().take(),
                    };
                    let Some(task) = task else { continue };
                    let result = contain(i, task);
                    match results[i].lock() {
                        Ok(mut slot) => *slot = Some(result),
                        Err(poisoned) => *poisoned.into_inner() = Some(result),
                    }
                });
            }
        });
        results
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .unwrap_or_else(|| {
                        // The claiming worker vanished between taking the
                        // task and storing a result; degrade the slot
                        // instead of panicking the scheduler.
                        Err(JobPanic {
                            index: i,
                            payload: "scheduler lost the job result".to_string(),
                        })
                    })
            })
            .collect()
    }

    /// Runs every task and returns the results in submission order.
    ///
    /// # Panics
    ///
    /// If any task panics, the panic of the *lowest-index* panicking task
    /// is re-raised — after every other task has run to completion — so
    /// the propagated panic is the same whatever the worker count.
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let mut results = Vec::new();
        let mut first_panic: Option<JobPanic> = None;
        for r in self.try_run(tasks) {
            match r {
                Ok(v) => results.push(v),
                Err(p) => first_panic = first_panic.or(Some(p)),
            }
        }
        if let Some(p) = first_panic {
            panic!("job {} panicked: {}", p.index, p.payload);
        }
        results
    }

    /// Runs a batch of engine jobs with panic containment and each job's
    /// own retry policy ([`CheckConfig::retry_policy`]), returning runs in
    /// submission order. A job whose retries are spent degrades to
    /// [`EngineOutcome::Failed`] (reason [`FailureReason::Panic`]); the
    /// rest of the batch always completes.
    ///
    /// When telemetry is enabled, each job's span records a
    /// `queue_wait_us` gauge: how long the job sat in the queue before a
    /// worker picked it up. The clock is read only on the enabled path.
    pub fn run_engine_jobs(&self, jobs: Vec<EngineJob<'_, '_>>) -> Vec<EngineRun> {
        self.run_engine_jobs_prioritized(jobs, None)
    }

    /// [`Portfolio::run_engine_jobs`] with an optional claim-priority
    /// permutation (see [`Portfolio::try_run_ordered`]). The decomposed
    /// check path passes the clusters sorted largest-cone-first; results
    /// are still returned in submission order.
    pub fn run_engine_jobs_prioritized(
        &self,
        jobs: Vec<EngineJob<'_, '_>>,
        priority: Option<&[usize]>,
    ) -> Vec<EngineRun> {
        let submitted = jobs
            .iter()
            .any(|j| j.config.telemetry.enabled())
            .then(Instant::now);
        let tasks: Vec<_> = jobs
            .into_iter()
            .map(|job| {
                move || {
                    if let Some(t0) = submitted {
                        if job.config.telemetry.enabled() {
                            job.config
                                .telemetry
                                .gauge("queue_wait_us", t0.elapsed().as_micros() as u64);
                        }
                    }
                    run_engine_job(&job)
                }
            })
            .collect();
        self.try_run_ordered(tasks, priority)
            .into_iter()
            .map(|r| {
                // `run_engine_job` contains panics internally, so an `Err`
                // here is a scheduler-level fault; degrade the slot to
                // FAILED rather than panicking the batch.
                r.unwrap_or_else(|p| scheduler_failure("portfolio", &p.payload))
            })
            .collect()
    }

    /// Races `engines` over one spec; a conclusive outcome (see
    /// [`EngineOutcome::is_conclusive`]) cancels the remaining racers
    /// mid-solve.
    ///
    /// Returns the winning engine's index and outcome. The winner is
    /// chosen *after* every racer has stopped: the lowest-index conclusive
    /// engine wins, so the engine list order is a deterministic priority —
    /// a conclusive outcome can no longer lose to a later engine that
    /// merely grabbed a lock first. If no engine is conclusive, the
    /// inconclusive outcome with the deepest proven depth wins (ties to
    /// the lowest index) and failures are reported only when *every*
    /// engine failed. Wall-clock timing still decides how far cancelled
    /// losers get, but never which outcome is reported for a fixed set of
    /// finished outcomes.
    ///
    /// A panicking racer is contained and scored as
    /// [`EngineOutcome::Failed`]; races never apply retries (the point of
    /// a race is that some other engine covers for the failed one).
    pub fn race(
        &self,
        engines: &[&dyn CheckEngine],
        spec: &CheckSpec<'_>,
        config: &CheckConfig,
    ) -> (usize, EngineRun) {
        if engines.is_empty() {
            return (
                0,
                scheduler_failure("portfolio", "race needs at least one engine"),
            );
        }
        let tokens: Vec<CancelToken> = engines.iter().map(|_| CancelToken::new()).collect();
        // Each racer runs under its own attempt span; all spans are opened
        // up front so their ids are deterministic in the profile even
        // though racers finish in wall-clock order.
        let racer_configs: Vec<CheckConfig> = engines
            .iter()
            .map(|e| {
                let mut c = config.clone();
                c.telemetry = config.telemetry.child(SpanKind::Attempt, e.name());
                c
            })
            .collect();
        let runs: Vec<Mutex<Option<EngineRun>>> =
            engines.iter().map(|_| Mutex::new(None)).collect();
        thread::scope(|s| {
            for (i, engine) in engines.iter().enumerate() {
                let tokens = &tokens;
                let runs = &runs;
                let racer_config = &racer_configs[i];
                s.spawn(move || {
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        engine.check(spec, racer_config, &tokens[i])
                    }))
                    .unwrap_or_else(|payload| {
                        EngineRun::from(EngineOutcome::Failed(JobFailure {
                            engine: engine.name().to_string(),
                            property: None,
                            depth: 0,
                            reason: FailureReason::Panic,
                            detail: panic_message(payload.as_ref()),
                            attempts: 1,
                        }))
                    });
                    racer_config.telemetry.close();
                    if run.outcome.is_conclusive() {
                        for (j, t) in tokens.iter().enumerate() {
                            if j != i {
                                t.cancel();
                            }
                        }
                    }
                    match runs[i].lock() {
                        Ok(mut slot) => *slot = Some(run),
                        Err(poisoned) => *poisoned.into_inner() = Some(run),
                    }
                });
            }
        });
        let runs: Vec<EngineRun> = runs
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .unwrap_or_else(|| {
                        scheduler_failure(
                            engines[i].name(),
                            "racer vanished without reporting a result",
                        )
                    })
            })
            .collect();
        // The race's total work (every racer, winners and cancelled
        // losers alike) is charged to the winning run.
        let mut total = SolverCounters::default();
        for r in &runs {
            total += &r.counters;
        }
        let cancelled = runs
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    EngineOutcome::Unknown {
                        cause: crate::engine::UnknownCause::Cancelled,
                        ..
                    }
                )
            })
            .count() as u64;
        // Lowest-index conclusive outcome wins; otherwise the deepest
        // proven depth among the inconclusive outcomes, ties to the lowest
        // index. Failed outcomes guarantee nothing and are reported only
        // when there is nothing else.
        let idx = runs
            .iter()
            .position(|r| r.outcome.is_conclusive())
            .unwrap_or_else(|| {
                runs.iter()
                    .enumerate()
                    .filter_map(|(i, r)| r.outcome.proven_depth().map(|d| (i, d)))
                    .max_by(|(ia, da), (ib, db)| da.cmp(db).then(ib.cmp(ia)))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            });
        config.telemetry.gauge("race_winner", idx as u64);
        config.telemetry.gauge("race_cancelled", cancelled);
        let mut run = runs
            .into_iter()
            .nth(idx)
            .unwrap_or_else(|| scheduler_failure("portfolio", "race winner index out of range"));
        run.counters = total;
        (idx, run)
    }
}

impl Default for Portfolio {
    fn default() -> Portfolio {
        Portfolio::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{BmcEngine, KInductionEngine};
    use autocc_hdl::{Bv, Module, ModuleBuilder};
    use std::sync::atomic::AtomicU32;

    #[test]
    fn run_preserves_submission_order() {
        let tasks: Vec<_> = (0..17).map(|i| move || i * i).collect();
        let serial = Portfolio::new(1).run(tasks.clone());
        let parallel = Portfolio::new(4).run(tasks);
        assert_eq!(serial, (0..17).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn try_run_contains_panics_per_slot() {
        for jobs in [1, 4] {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
                Box::new(|| 10),
                Box::new(|| panic!("boom in slot 1")),
                Box::new(|| 30),
            ];
            let results = Portfolio::new(jobs).try_run(tasks);
            assert_eq!(results.len(), 3);
            assert_eq!(*results[0].as_ref().unwrap(), 10);
            let p = results[1].as_ref().unwrap_err();
            assert_eq!(p.index, 1);
            assert!(p.payload.contains("boom in slot 1"));
            assert_eq!(*results[2].as_ref().unwrap(), 30);
        }
    }

    #[test]
    fn ordered_run_executes_by_priority_but_returns_positionally() {
        // Serial path: the recorded execution order must follow the
        // priority permutation exactly, while results stay positional.
        let executed = Mutex::new(Vec::new());
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
            .map(|i| {
                let executed = &executed;
                Box::new(move || {
                    executed.lock().unwrap().push(i);
                    i * 10
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let priority = [2, 0, 3, 1];
        let results = Portfolio::new(1).try_run_ordered(tasks, Some(&priority));
        assert_eq!(*executed.lock().unwrap(), vec![2, 0, 3, 1]);
        let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, vec![0, 10, 20, 30]);

        // Threaded path: execution order is racy, but results must still
        // come back positionally (and completely).
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
            .map(|i| Box::new(move || i * 10) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let results = Portfolio::new(3).try_run_ordered(tasks, Some(&priority));
        let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, vec![0, 10, 20, 30]);
    }

    #[test]
    fn run_reraises_the_lowest_index_panic() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 0),
            Box::new(|| panic!("first")),
            Box::new(|| panic!("second")),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| Portfolio::new(4).run(tasks)))
            .expect_err("panic must propagate");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("first"), "got: {msg}");
    }

    #[test]
    fn retry_policy_escalates_conflict_budgets() {
        let p = RetryPolicy {
            max_retries: 3,
            escalation: 2,
        };
        assert_eq!(p.escalated_budget(Some(100), 0), Some(100));
        assert_eq!(p.escalated_budget(Some(100), 1), Some(200));
        assert_eq!(p.escalated_budget(Some(100), 2), Some(400));
        assert_eq!(p.escalated_budget(None, 2), None);
        // Escalation below 1 is clamped; budgets never shrink to zero.
        let flat = RetryPolicy {
            max_retries: 1,
            escalation: 0,
        };
        assert_eq!(flat.escalated_budget(Some(7), 5), Some(7));
    }

    fn toggle_module() -> Module {
        let mut b = ModuleBuilder::new("toggle");
        let t = b.reg("t", 1, Bv::zero(1));
        let n = b.not(t);
        b.set_next(t, n);
        let stuck = b.or(t, n);
        b.output("stuck", stuck);
        b.build()
    }

    /// Test double: panics on the first `panics` attempts, then delegates.
    struct FlakyEngine {
        panics: u32,
        calls: AtomicU32,
        budgets: Mutex<Vec<Option<u64>>>,
    }

    impl FlakyEngine {
        fn new(panics: u32) -> FlakyEngine {
            FlakyEngine {
                panics,
                calls: AtomicU32::new(0),
                budgets: Mutex::new(Vec::new()),
            }
        }
    }

    impl CheckEngine for FlakyEngine {
        fn name(&self) -> &'static str {
            "flaky"
        }

        fn check(
            &self,
            spec: &CheckSpec<'_>,
            config: &CheckConfig,
            cancel: &CancelToken,
        ) -> EngineRun {
            self.budgets.lock().unwrap().push(config.conflict_budget);
            let call = self.calls.fetch_add(1, Ordering::SeqCst);
            if call < self.panics {
                panic!("injected fault on attempt {call}");
            }
            BmcEngine.check(spec, config, cancel)
        }
    }

    fn job<'e, 'm>(engine: &'e dyn CheckEngine, spec: CheckSpec<'m>) -> EngineJob<'e, 'm> {
        EngineJob {
            engine,
            spec,
            config: CheckConfig::default()
                .depth(8)
                .conflicts(Some(1000))
                .no_timeout(),
            property: Some("t_or_not_t".to_string()),
            cancel: CancelToken::new(),
        }
    }

    #[test]
    fn engine_job_retries_after_panic_with_escalated_budget() {
        let m = toggle_module();
        let spec = CheckSpec::new(&m).property("t_or_not_t", m.output_node("stuck").unwrap());
        let flaky = FlakyEngine::new(2);
        let mut j = job(&flaky, spec);
        j.config = j.config.retries(2);
        let runs = Portfolio::new(1).run_engine_jobs(vec![j]);
        assert_eq!(runs.len(), 1);
        match &runs[0].outcome {
            EngineOutcome::BoundReached { depth: 8 } => {}
            other => panic!("expected recovery to BoundReached, got {other:?}"),
        }
        assert!(
            runs[0].counters.solve_calls > 0,
            "the surviving attempt's solver work must be reported"
        );
        // Attempt 0 at the base budget, then 2x, then 4x.
        assert_eq!(
            *flaky.budgets.lock().unwrap(),
            vec![Some(1000), Some(2000), Some(4000)]
        );
    }

    #[test]
    fn engine_job_degrades_to_failed_when_retries_are_spent() {
        let m = toggle_module();
        let spec = CheckSpec::new(&m).property("t_or_not_t", m.output_node("stuck").unwrap());
        let flaky = FlakyEngine::new(u32::MAX);
        let mut j = job(&flaky, spec);
        j.config = j.config.retries(1);
        let runs = Portfolio::new(1).run_engine_jobs(vec![j]);
        match &runs[0].outcome {
            EngineOutcome::Failed(f) => {
                assert_eq!(f.reason, FailureReason::Panic);
                assert_eq!(f.attempts, 2);
                assert_eq!(f.engine, "flaky");
                assert_eq!(f.property.as_deref(), Some("t_or_not_t"));
                assert!(f.detail.contains("injected fault"));
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn race_returns_first_conclusive_result() {
        let m = toggle_module();
        let spec = CheckSpec::new(&m).property("t_or_not_t", m.output_node("stuck").unwrap());
        let config = CheckConfig::default().depth(8).no_timeout();
        let (idx, run) = Portfolio::new(2).race(&[&KInductionEngine, &BmcEngine], &spec, &config);
        assert!(idx < 2);
        assert!(run.outcome.is_conclusive(), "got {:?}", run.outcome);
        match run.outcome {
            EngineOutcome::Proved { .. } | EngineOutcome::BoundReached { .. } => {}
            other => panic!("tautology must not be refuted: {other:?}"),
        }
    }

    /// Test double returning a fixed outcome, optionally after a delay.
    struct FixedEngine {
        outcome: EngineOutcome,
        delay: std::time::Duration,
    }

    impl CheckEngine for FixedEngine {
        fn name(&self) -> &'static str {
            "fixed"
        }

        fn check(
            &self,
            _spec: &CheckSpec<'_>,
            _config: &CheckConfig,
            _cancel: &CancelToken,
        ) -> EngineRun {
            if !self.delay.is_zero() {
                thread::sleep(self.delay);
            }
            self.outcome.clone().into()
        }
    }

    #[test]
    fn race_winner_is_lowest_index_conclusive_not_first_to_finish() {
        let m = toggle_module();
        let spec = CheckSpec::new(&m).property("t_or_not_t", m.output_node("stuck").unwrap());
        let config = CheckConfig::default();
        // Engine 0 is conclusive but slow; engine 1 is conclusive and
        // instant. Priority order must still pick engine 0.
        let slow = FixedEngine {
            outcome: EngineOutcome::BoundReached { depth: 8 },
            delay: std::time::Duration::from_millis(50),
        };
        let fast = FixedEngine {
            outcome: EngineOutcome::Proved { induction_depth: 1 },
            delay: std::time::Duration::ZERO,
        };
        let (idx, run) = Portfolio::new(2).race(&[&slow, &fast], &spec, &config);
        assert_eq!(idx, 0, "lowest-index conclusive engine must win");
        match run.outcome {
            EngineOutcome::BoundReached { depth: 8 } => {}
            other => panic!("expected engine 0's outcome, got {other:?}"),
        }
    }

    #[test]
    fn race_fallback_prefers_deepest_inconclusive_outcome() {
        let m = toggle_module();
        let spec = CheckSpec::new(&m).property("t_or_not_t", m.output_node("stuck").unwrap());
        let config = CheckConfig::default();
        let shallow = FixedEngine {
            outcome: EngineOutcome::Exhausted { depth: 3 },
            delay: std::time::Duration::ZERO,
        };
        let deep = FixedEngine {
            outcome: EngineOutcome::Exhausted { depth: 7 },
            delay: std::time::Duration::ZERO,
        };
        let (idx, run) = Portfolio::new(2).race(&[&shallow, &deep], &spec, &config);
        assert_eq!(idx, 1, "deeper exhausted outcome must win the fallback");
        match run.outcome {
            EngineOutcome::Exhausted { depth: 7 } => {}
            other => panic!("expected depth-7 exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn race_survives_a_panicking_racer() {
        let m = toggle_module();
        let spec = CheckSpec::new(&m).property("t_or_not_t", m.output_node("stuck").unwrap());
        let config = CheckConfig::default().depth(8).no_timeout();
        let flaky = FlakyEngine::new(u32::MAX);
        let (idx, run) = Portfolio::new(2).race(&[&flaky, &BmcEngine], &spec, &config);
        assert_eq!(idx, 1, "healthy engine must win over the panicking one");
        assert!(run.outcome.is_conclusive(), "got {:?}", run.outcome);
    }
}
