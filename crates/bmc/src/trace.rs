//! Counterexample traces and their replay.
//!
//! A [`Trace`] stores only the primary-input values the solver chose; all
//! internal values are recovered by replaying the trace through the
//! word-level interpreter. Replay doubles as an end-to-end validation that
//! the CNF encoding and the simulator agree — every counterexample the
//! checker reports has, by construction, been reproduced in simulation
//! (the paper validates CEXs the same way, in system-level RTL simulation).

use autocc_hdl::{Bv, MemId, Module, NodeId, RegId, Sim, Waveform};

/// A finite input sequence for a module, starting from reset.
#[derive(Clone, Debug)]
pub struct Trace {
    /// `inputs[cycle][port]` — value of each input port at each cycle.
    inputs: Vec<Vec<Bv>>,
}

impl Trace {
    /// Creates a trace from per-cycle, per-port input values.
    pub fn new(inputs: Vec<Vec<Bv>>) -> Trace {
        Trace { inputs }
    }

    /// Number of cycles.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// True when the trace has no cycles.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Number of input ports driven per cycle (0 for an empty trace).
    pub fn num_ports(&self) -> usize {
        self.inputs.first().map_or(0, Vec::len)
    }

    /// Input value of `port` at `cycle`.
    pub fn input(&self, cycle: usize, port: usize) -> Bv {
        self.inputs[cycle][port]
    }

    /// Replays the trace through the interpreter, recording everything.
    pub fn replay(&self, module: &Module) -> ReplayedTrace {
        let mut sim = Sim::new(module);
        let mut nodes = Vec::with_capacity(self.len());
        let mut regs = Vec::with_capacity(self.len());
        let mut mems = Vec::with_capacity(self.len());
        for cycle in &self.inputs {
            for (pi, v) in cycle.iter().enumerate() {
                sim.set_input_index(pi, *v);
            }
            // Record pre-edge state, then node values for this cycle.
            regs.push(
                (0..module.regs().len())
                    .map(|i| sim.reg(RegId::from_index(i)))
                    .collect::<Vec<_>>(),
            );
            mems.push(
                module
                    .mems()
                    .iter()
                    .enumerate()
                    .map(|(mi, m)| {
                        (0..m.depth)
                            .map(|w| sim.mem_word(MemId::from_index(mi), w))
                            .collect::<Vec<_>>()
                    })
                    .collect::<Vec<_>>(),
            );
            let node_vals: Vec<Bv> = (0..module.num_nodes())
                .map(|i| sim.node(NodeId::from_index(i)))
                .collect();
            nodes.push(node_vals);
            sim.step();
        }
        ReplayedTrace { nodes, regs, mems }
    }
}

/// Fully-elaborated values of a replayed [`Trace`].
#[derive(Clone, Debug)]
pub struct ReplayedTrace {
    /// `nodes[cycle][node]` — value of every combinational node.
    nodes: Vec<Vec<Bv>>,
    /// `regs[cycle][reg]` — pre-edge register values.
    regs: Vec<Vec<Bv>>,
    /// `mems[cycle][mem][word]` — pre-edge memory contents.
    mems: Vec<Vec<Vec<Bv>>>,
}

impl ReplayedTrace {
    /// Number of cycles.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the trace has no cycles.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of `node` at `cycle`.
    pub fn node(&self, cycle: usize, node: NodeId) -> Bv {
        self.nodes[cycle][node.index()]
    }

    /// Pre-edge value of `reg` at `cycle`.
    pub fn reg(&self, cycle: usize, reg: RegId) -> Bv {
        self.regs[cycle][reg.index()]
    }

    /// Pre-edge contents of word `word` of `mem` at `cycle`.
    pub fn mem_word(&self, cycle: usize, mem: MemId, word: usize) -> Bv {
        self.mems[cycle][mem.index()][word]
    }

    /// Builds a waveform of the named signals for viewing.
    ///
    /// Each entry is `(label, node)`; the waveform samples the node at every
    /// cycle of the trace.
    pub fn waveform(&self, module: &Module, signals: &[(String, NodeId)]) -> Waveform {
        let mut wf = Waveform::new();
        for (label, node) in signals {
            wf.add_signal(label.clone(), module.width(*node));
        }
        for cycle in 0..self.len() {
            let row: Vec<Bv> = signals
                .iter()
                .map(|(_, node)| self.node(cycle, *node))
                .collect();
            wf.sample(&row);
        }
        wf
    }

    /// Builds a waveform of all module outputs plus the given registers.
    pub fn waveform_outputs_and_regs(&self, module: &Module, regs: &[RegId]) -> Waveform {
        let mut signals: Vec<(String, NodeId)> = module
            .outputs()
            .iter()
            .map(|o| (o.name.clone(), o.node))
            .collect();
        let mut wf = Waveform::new();
        for (label, node) in &signals {
            wf.add_signal(label.clone(), module.width(*node));
        }
        for &r in regs {
            wf.add_signal(
                module.regs()[r.index()].name.clone(),
                module.regs()[r.index()].width,
            );
        }
        for cycle in 0..self.len() {
            let mut row: Vec<Bv> = signals
                .iter()
                .map(|(_, node)| self.node(cycle, *node))
                .collect();
            row.extend(regs.iter().map(|&r| self.reg(cycle, r)));
            wf.sample(&row);
        }
        signals.clear();
        wf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_hdl::ModuleBuilder;

    fn counter() -> Module {
        let mut b = ModuleBuilder::new("counter");
        let en = b.input("en", 1);
        let c = b.reg("count", 4, Bv::zero(4));
        let one = b.lit(4, 1);
        let inc = b.add(c, one);
        let next = b.mux(en, inc, c);
        b.set_next(c, next);
        b.output("value", c);
        b.build()
    }

    #[test]
    fn replay_recovers_state_evolution() {
        let m = counter();
        let trace = Trace::new(vec![
            vec![Bv::bit(true)],
            vec![Bv::bit(true)],
            vec![Bv::bit(false)],
            vec![Bv::bit(true)],
        ]);
        let replay = trace.replay(&m);
        let reg = m.find_reg("count").unwrap();
        let values: Vec<u64> = (0..4).map(|t| replay.reg(t, reg).value()).collect();
        assert_eq!(values, vec![0, 1, 2, 2]);
        let out = m.output_node("value").unwrap();
        assert_eq!(replay.node(3, out).value(), 2);
    }

    #[test]
    fn waveform_from_replay() {
        let m = counter();
        let trace = Trace::new(vec![vec![Bv::bit(true)]; 3]);
        let replay = trace.replay(&m);
        let wf = replay.waveform(
            &m,
            &[("value".to_string(), m.output_node("value").unwrap())],
        );
        assert_eq!(wf.cycles(), 3);
        assert_eq!(wf.value(0, 2).value(), 2);
    }
}
