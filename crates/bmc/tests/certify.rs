//! End-to-end UNSAT certification through the checker and engine layers:
//! certified runs return the identical outcome plus a checked certificate,
//! and every tampering or misuse path degrades to FAILED(certification) —
//! never PASS.

use autocc_bmc::{
    Bmc, BmcEngine, CancelToken, CertificateStatus, CheckConfig, CheckEngine, CheckOutcome,
    CheckSpec, EngineOutcome, FailureReason, Falsifier, KInductionEngine,
};
use autocc_hdl::{Bv, Module, ModuleBuilder};
use autocc_sat::{Lit, ProofStep, Var};

/// A 3-bit free-running counter with `small = count < limit`.
fn counter(limit: u64) -> Module {
    let mut b = ModuleBuilder::new("counter");
    let c = b.reg("count", 3, Bv::zero(3));
    let one = b.lit(3, 1);
    let next = b.add(c, one);
    b.set_next(c, next);
    let lim = b.lit(4, limit);
    let cz = b.zext(c, 4);
    let below = b.ult(cz, lim);
    b.output("small", below);
    b.build()
}

/// A register that holds its value forever: `zero = (r == 0)` is
/// inductive at k = 1, so k-induction proves it outright.
fn latch() -> Module {
    let mut b = ModuleBuilder::new("latch");
    let r = b.reg("r", 4, Bv::zero(4));
    b.set_next(r, r);
    let z = b.lit(4, 0);
    let eq = b.eq(r, z);
    b.output("zero", eq);
    b.build()
}

fn spec<'m>(m: &'m Module, out: &str) -> CheckSpec<'m> {
    CheckSpec::new(m).property(out, m.output_node(out).unwrap())
}

#[test]
fn certified_bounded_proof_matches_uncertified_and_carries_a_hash() {
    // count < 8 is a tautology for a 3-bit counter: every depth is UNSAT.
    let m = counter(8);
    let base = CheckConfig::default().depth(12).no_timeout();
    let plain = BmcEngine.check(&spec(&m, "small"), &base, &CancelToken::new());
    let cert = BmcEngine.check(
        &spec(&m, "small"),
        &base.clone().certify(true),
        &CancelToken::new(),
    );
    match (&plain.outcome, &cert.outcome) {
        (EngineOutcome::BoundReached { depth: a }, EngineOutcome::BoundReached { depth: b }) => {
            assert_eq!(a, b, "certification must not change the verdict")
        }
        other => panic!("expected matching bounded proofs, got {other:?}"),
    }
    assert_eq!(
        plain.counters.conflicts, cert.counters.conflicts,
        "proof logging must not alter the search"
    );
    assert_eq!(plain.certificate, CertificateStatus::Uncertified);
    assert!(
        cert.certificate.is_certified(),
        "certified bounded proof carries a certificate: {:?}",
        cert.certificate
    );
}

#[test]
fn certified_kinduction_proof_combines_base_and_step_certificates() {
    let m = latch();
    let config = CheckConfig::default().depth(8).no_timeout().certify(true);
    let run = KInductionEngine.check(&spec(&m, "zero"), &config, &CancelToken::new());
    match run.outcome {
        EngineOutcome::Proved { induction_depth } => assert_eq!(induction_depth, 1),
        other => panic!("expected full proof, got {other:?}"),
    }
    assert!(run.certificate.is_certified(), "{:?}", run.certificate);
}

#[test]
fn certified_cex_is_the_replayed_trace() {
    // count < 5 fails at depth 6; the trace is the SAT-side certificate.
    let m = counter(5);
    let base = CheckConfig::default().depth(16).no_timeout();
    let plain = BmcEngine.check(&spec(&m, "small"), &base, &CancelToken::new());
    let cert = BmcEngine.check(
        &spec(&m, "small"),
        &base.clone().certify(true),
        &CancelToken::new(),
    );
    match (&plain.outcome, &cert.outcome) {
        (EngineOutcome::Cex(a), EngineOutcome::Cex(b)) => {
            assert_eq!(a.depth, b.depth);
            assert_eq!(a.property, b.property);
        }
        other => panic!("expected matching counterexamples, got {other:?}"),
    }
    assert_eq!(plain.certificate, CertificateStatus::Uncertified);
    assert!(cert.certificate.is_certified());
    assert_eq!(
        cert.certificate.hash(),
        match &cert.outcome {
            EngineOutcome::Cex(cex) => Some(autocc_bmc::cex_hash(cex)),
            _ => None,
        },
        "cex certificate hash is the trace hash"
    );
}

#[test]
fn tampered_proof_stream_degrades_to_failed_certification() {
    let m = counter(8);
    let mut bmc = Bmc::new(&m);
    bmc.add_property("small", m.output_node("small").unwrap());
    let config = CheckConfig::default().depth(2).no_timeout().certify(true);
    match bmc.check(&config) {
        CheckOutcome::BoundReached { depth: 2 } => {}
        other => panic!("expected certified bound, got {other:?}"),
    }
    // Inject a clause no resolution chain derives (a unit over a fresh
    // variable): the next certification pass must reject the transcript.
    bmc.inject_proof_step_for_test(ProofStep::Add(vec![Lit::new(Var::from_index(4000), true)]));
    match bmc.check(&config.clone().depth(4)) {
        CheckOutcome::Failed(failure) => {
            assert_eq!(failure.reason, FailureReason::Certification);
            assert!(
                failure.detail.contains("rejected"),
                "diagnostic names the rejection: {}",
                failure.detail
            );
        }
        other => panic!("tampered proof must fail certification, got {other:?}"),
    }
}

#[test]
fn late_certify_request_fails_closed() {
    // Asking for certification after the search already ran cannot be
    // honoured (the transcript is incomplete); it must fail, not pass.
    let m = counter(8);
    let mut bmc = Bmc::new(&m);
    bmc.add_property("small", m.output_node("small").unwrap());
    let plain = CheckConfig::default().depth(2).no_timeout();
    assert!(matches!(
        bmc.check(&plain),
        CheckOutcome::BoundReached { depth: 2 }
    ));
    match bmc.check(&plain.certify(true).depth(4)) {
        CheckOutcome::Failed(failure) => {
            assert_eq!(failure.reason, FailureReason::Certification)
        }
        other => panic!("late certify must fail closed, got {other:?}"),
    }
}

#[test]
fn falsifier_demotion_drops_the_certificate() {
    let m = counter(8);
    let config = CheckConfig::default().depth(4).no_timeout().certify(true);
    let run = Falsifier(BmcEngine).check(&spec(&m, "small"), &config, &CancelToken::new());
    assert!(matches!(run.outcome, EngineOutcome::Exhausted { depth: 4 }));
    assert_eq!(
        run.certificate,
        CertificateStatus::Uncertified,
        "an inconclusive (demoted) outcome carries no certificate"
    );
}
