//! End-to-end model-checking tests on small sequential designs.

use autocc_bmc::{Bmc, CheckConfig, CheckOutcome, ProveOutcome};
use autocc_hdl::{Bv, Module, ModuleBuilder};
use std::time::Duration;

fn options(depth: usize) -> CheckConfig {
    CheckConfig::default()
        .depth(depth)
        .timeout(Duration::from_secs(60))
}

/// A counter that saturates at a limit.
fn saturating_counter(limit: u64) -> Module {
    let mut b = ModuleBuilder::new("sat_counter");
    let en = b.input("en", 1);
    let c = b.reg("count", 4, Bv::zero(4));
    let lim = b.lit(4, limit);
    let below = b.ult(c, lim);
    let one = b.lit(4, 1);
    let inc = b.add(c, one);
    let grow = b.and(en, below);
    let next = b.mux(grow, inc, c);
    b.set_next(c, next);
    let le = b.ule(c, lim);
    b.output("count", c);
    b.output("le_limit", le);
    b.build()
}

#[test]
fn finds_minimal_depth_cex() {
    // Property: count != 3. Counter needs 4 cycles (0,1,2,3) to reach 3.
    let m = saturating_counter(10);
    let bmc = Bmc::new(&m);
    let count = m.output_node("count").unwrap();
    // Rebuild "count != 3" as a property node is not possible post-build,
    // so the DUT exposes `le_limit`; instead check via a fresh module.
    let mut b = ModuleBuilder::new("wrap");
    let en = b.input("en", 1);
    let mut wires = std::collections::HashMap::new();
    wires.insert("en".to_string(), en);
    let inst = b.instantiate(&m, "u", &wires);
    let ne3 = {
        let three = b.lit(4, 3);
        b.ne(inst.outputs["count"], three)
    };
    b.output("ne3", ne3);
    let wrapped = b.build();
    drop(bmc);
    let _ = count;

    let mut bmc = Bmc::new(&wrapped);
    bmc.add_property("count_ne_3", wrapped.output_node("ne3").unwrap());
    match bmc.check(&options(16)) {
        CheckOutcome::Cex(cex) => {
            assert_eq!(cex.property, "count_ne_3");
            assert_eq!(cex.depth, 4, "minimal counterexample is 4 cycles");
            // Every cycle before the last must have en=1 to count up.
            for t in 0..3 {
                assert_eq!(cex.trace.input(t, 0).value(), 1);
            }
        }
        other => panic!("expected CEX, got {other:?}"),
    }
}

#[test]
fn bounded_proof_when_property_holds() {
    // Saturating at 5 means count <= 5 always.
    let m = saturating_counter(5);
    let mut bmc = Bmc::new(&m);
    bmc.add_property("le_limit", m.output_node("le_limit").unwrap());
    match bmc.check(&options(20)) {
        CheckOutcome::BoundReached { depth } => assert_eq!(depth, 20),
        other => panic!("expected bounded proof, got {other:?}"),
    }
}

#[test]
fn constraints_remove_cexs() {
    // Without constraints the input can push count to 3; with the
    // constraint en == 0 it never moves.
    let mut b = ModuleBuilder::new("wrap");
    let m = saturating_counter(10);
    let en = b.input("en", 1);
    let mut wires = std::collections::HashMap::new();
    wires.insert("en".to_string(), en);
    let inst = b.instantiate(&m, "u", &wires);
    let three = b.lit(4, 3);
    let ne3 = b.ne(inst.outputs["count"], three);
    let en_low = b.not(en);
    b.output("ne3", ne3);
    b.output("en_low", en_low);
    let wrapped = b.build();

    let mut bmc = Bmc::new(&wrapped);
    bmc.add_constraint(wrapped.output_node("en_low").unwrap());
    bmc.add_property("count_ne_3", wrapped.output_node("ne3").unwrap());
    match bmc.check(&options(12)) {
        CheckOutcome::BoundReached { depth } => assert_eq!(depth, 12),
        other => panic!("expected bounded proof under constraint, got {other:?}"),
    }
}

#[test]
fn induction_proves_saturating_bound() {
    let m = saturating_counter(5);
    let mut bmc = Bmc::new(&m);
    bmc.add_property("le_limit", m.output_node("le_limit").unwrap());
    match bmc.prove(&options(16)) {
        ProveOutcome::Proved { induction_depth } => {
            assert!(induction_depth >= 1);
        }
        other => panic!("expected full proof, got {other:?}"),
    }
}

#[test]
fn induction_finds_base_case_cex() {
    let m = saturating_counter(10);
    let mut b = ModuleBuilder::new("wrap");
    let en = b.input("en", 1);
    let mut wires = std::collections::HashMap::new();
    wires.insert("en".to_string(), en);
    let inst = b.instantiate(&m, "u", &wires);
    let three = b.lit(4, 3);
    let ne3 = b.ne(inst.outputs["count"], three);
    b.output("ne3", ne3);
    let wrapped = b.build();

    let mut bmc = Bmc::new(&wrapped);
    bmc.add_property("count_ne_3", wrapped.output_node("ne3").unwrap());
    match bmc.prove(&options(16)) {
        ProveOutcome::Cex(cex) => assert_eq!(cex.depth, 4),
        other => panic!("expected CEX from base case, got {other:?}"),
    }
}

#[test]
fn multiple_properties_attribute_correct_one() {
    let m = saturating_counter(10);
    let mut b = ModuleBuilder::new("wrap");
    let en = b.input("en", 1);
    let mut wires = std::collections::HashMap::new();
    wires.insert("en".to_string(), en);
    let inst = b.instantiate(&m, "u", &wires);
    let two = b.lit(4, 2);
    let seven = b.lit(4, 7);
    let ne2 = b.ne(inst.outputs["count"], two);
    let ne7 = b.ne(inst.outputs["count"], seven);
    b.output("ne2", ne2);
    b.output("ne7", ne7);
    let wrapped = b.build();

    let mut bmc = Bmc::new(&wrapped);
    bmc.add_property("ne2", wrapped.output_node("ne2").unwrap());
    bmc.add_property("ne7", wrapped.output_node("ne7").unwrap());
    match bmc.check(&options(16)) {
        CheckOutcome::Cex(cex) => {
            // ne2 fails first (count reaches 2 before 7).
            assert_eq!(cex.property, "ne2");
            assert_eq!(cex.depth, 3);
        }
        other => panic!("expected CEX, got {other:?}"),
    }
}

#[test]
fn memory_state_is_tracked() {
    // Write a value, then property "mem word 0 read is zero" must fail.
    let mut b = ModuleBuilder::new("ram");
    let we = b.input("we", 1);
    let data = b.input("data", 4);
    let mem = b.mem("m", 2, 4);
    let zero_addr = b.lit(1, 0);
    b.mem_write(mem, we, zero_addr, data);
    let rd = b.mem_read(mem, zero_addr);
    let is_zero = b.eq_lit(rd, 0);
    b.output("is_zero", is_zero);
    let m = b.build();

    let mut bmc = Bmc::new(&m);
    bmc.add_property("word0_zero", m.output_node("is_zero").unwrap());
    match bmc.check(&options(8)) {
        CheckOutcome::Cex(cex) => {
            assert_eq!(cex.depth, 2, "write at cycle 0, observe at cycle 1");
            assert_eq!(cex.trace.input(0, 0).value(), 1, "write enable set");
            assert_ne!(cex.trace.input(0, 1).value(), 0, "nonzero data written");
        }
        other => panic!("expected CEX, got {other:?}"),
    }
}

#[test]
fn budget_exhaustion_reports_depth() {
    let m = saturating_counter(5);
    let mut bmc = Bmc::new(&m);
    bmc.add_property("le_limit", m.output_node("le_limit").unwrap());
    let opts = CheckConfig::default()
        .depth(1000)
        .conflicts(Some(1))
        .no_timeout();
    match bmc.check(&opts) {
        CheckOutcome::Exhausted { .. } | CheckOutcome::BoundReached { .. } => {}
        other => panic!("unexpected {other:?}"),
    }
}
