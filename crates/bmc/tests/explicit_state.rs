//! Differential test of the whole checking stack: on small designs, the
//! bounded model checker must agree *exactly* — outcome and minimal
//! counterexample depth — with an explicit-state breadth-first reachability
//! search that enumerates every input at every step.

use autocc_bmc::{Bmc, CheckConfig, CheckOutcome};
use autocc_hdl::{Bv, Module, ModuleBuilder, NodeId, Sim};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};
use std::time::Duration;

/// Explicit-state BFS: returns the minimal number of cycles to violate the
/// property (trace length), or `None` if unreachable within `max_depth`.
fn bfs_min_cex_depth(module: &Module, property: NodeId, max_depth: usize) -> Option<usize> {
    let input_bits: u32 = module.inputs().iter().map(|p| p.width).sum();
    assert!(input_bits <= 6, "explicit search needs few input bits");

    // State key: all registers and memory words.
    let state_key = |sim: &Sim<'_>| -> Vec<u64> {
        let mut key = Vec::new();
        for i in 0..module.regs().len() {
            key.push(sim.reg(autocc_hdl::RegId::from_index(i)).value());
        }
        for (mi, m) in module.mems().iter().enumerate() {
            for w in 0..m.depth {
                key.push(sim.mem_word(autocc_hdl::MemId::from_index(mi), w).value());
            }
        }
        key
    };
    let restore = |sim: &mut Sim<'_>, key: &[u64]| {
        let mut it = key.iter();
        for i in 0..module.regs().len() {
            let w = module.regs()[i].width;
            sim.set_reg(
                autocc_hdl::RegId::from_index(i),
                Bv::new(w, *it.next().unwrap()),
            );
        }
        for (mi, m) in module.mems().iter().enumerate() {
            for w in 0..m.depth {
                sim.set_mem_word(
                    autocc_hdl::MemId::from_index(mi),
                    w,
                    Bv::new(m.width, *it.next().unwrap()),
                );
            }
        }
    };
    let apply_inputs = |sim: &mut Sim<'_>, mut bits: u64| {
        for (pi, p) in module.inputs().iter().enumerate() {
            let v = bits & Bv::mask(p.width);
            bits >>= p.width;
            sim.set_input_index(pi, Bv::new(p.width, v));
        }
    };

    let mut sim = Sim::new(module);
    let initial = state_key(&sim);
    let mut frontier = VecDeque::new();
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    frontier.push_back((initial.clone(), 0usize));
    seen.insert(initial);

    while let Some((key, depth)) = frontier.pop_front() {
        if depth >= max_depth {
            continue;
        }
        for input_bits_v in 0..1u64 << input_bits {
            restore(&mut sim, &key);
            apply_inputs(&mut sim, input_bits_v);
            if !sim.node(property).as_bool() {
                return Some(depth + 1); // trace of depth+1 cycles
            }
            sim.step();
            let next = state_key(&sim);
            if seen.insert(next.clone()) {
                frontier.push_back((next, depth + 1));
            }
        }
    }
    None
}

/// A small family of random sequential designs: a 4-bit register updated
/// by a random function of itself and a 2-bit input, plus a 2-word memory.
fn random_design(seed: (u64, u64, u64, bool)) -> (Module, NodeId, u64) {
    let (k1, k2, target, use_mem) = seed;
    let mut b = ModuleBuilder::new("random_design");
    let din = b.input("din", 2);
    let st = b.reg("st", 4, Bv::zero(4));

    let din4 = b.zext(din, 4);
    let c1 = b.lit(4, k1 & 0xf);
    let c2 = b.lit(4, k2 & 0xf);
    let mixed = b.xor(st, c1);
    let sum = b.add(mixed, din4);
    let sel = b.bit(st, 0);
    let rot = {
        let hi = b.slice(st, 3, 1);
        let lo = b.bit(st, 3);
        b.concat(hi, lo)
    };
    let alt = b.xor(rot, c2);
    let next = b.mux(sel, sum, alt);
    b.set_next(st, next);

    let observed = if use_mem {
        let mem = b.mem("scratch", 2, 4);
        let waddr = b.bit(din, 0);
        let we = b.bit(din, 1);
        b.mem_write(mem, we, waddr, st);
        let rd = b.mem_read(mem, waddr);
        b.xor(rd, st)
    } else {
        st
    };
    // Property: observed != target.
    let t = b.lit(4, target & 0xf);
    let ne = b.ne(observed, t);
    b.output("prop", ne);
    let m = b.build();
    let prop = m.output_node("prop").expect("just declared");
    (m, prop, target & 0xf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// BMC and explicit-state BFS agree on reachability and minimal depth.
    #[test]
    fn bmc_agrees_with_explicit_search(k1 in 0u64..16, k2 in 0u64..16,
                                       target in 0u64..16, use_mem in any::<bool>()) {
        let (module, prop, _) = random_design((k1, k2, target, use_mem));
        let max_depth = 12;
        let expected = bfs_min_cex_depth(&module, prop, max_depth);

        let mut bmc = Bmc::new(&module);
        bmc.add_property("prop", prop);
        let outcome = bmc.check(&CheckConfig::default()
            .depth(max_depth)
            .timeout(Duration::from_secs(60)));
        match (outcome, expected) {
            (CheckOutcome::Cex(cex), Some(depth)) => {
                prop_assert_eq!(cex.depth, depth, "minimal CEX depth must match BFS");
            }
            (CheckOutcome::BoundReached { .. }, None) => {}
            (got, want) => prop_assert!(
                false,
                "disagreement: BMC {:?} vs BFS {:?}",
                got,
                want
            ),
        }
    }
}

/// The builder's `output_node` lookup used above returns the right node.
#[test]
fn output_node_lookup() {
    let (module, prop, _) = random_design((3, 7, 9, true));
    assert_eq!(module.output_node("prop"), Some(prop));
}
