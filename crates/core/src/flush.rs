//! Flush-mechanism synthesis — Algorithms 1 and 2 of the paper (Sec. 3.5).
//!
//! Both algorithms assist test-driven development of the microarchitectural
//! flush: they search for the set of state elements that must be cleared on
//! a context switch for the AutoCC properties to hold.
//!
//! * [`incremental_flush`] (Algorithm 1) starts from an empty flush set and
//!   adds the state that each counterexample's root cause identifies, until
//!   the testbench is clean.
//! * [`decremental_flush`] (Algorithm 2) starts from a full flush and
//!   removes candidates one at a time, keeping a removal only if the
//!   testbench stays clean — yielding a minimal (with respect to the
//!   candidate order) flush set.
//!
//! The DUT is supplied as a *builder function* from flush set to module,
//! playing the role of the RTL edit between FPV runs.

use crate::spec::FtSpec;
use autocc_bmc::CheckConfig;
use autocc_hdl::Module;
use std::collections::BTreeSet;

/// Configuration for flush synthesis.
#[derive(Clone, Debug)]
pub struct FlushSynthesisConfig {
    /// Options for each AutoCC check run.
    pub check_options: CheckConfig,
    /// Safety bound on Algorithm-1 iterations.
    pub max_iterations: usize,
}

impl Default for FlushSynthesisConfig {
    fn default() -> FlushSynthesisConfig {
        FlushSynthesisConfig {
            check_options: CheckConfig::default(),
            max_iterations: 64,
        }
    }
}

/// One round of a synthesis run.
#[derive(Clone, Debug)]
pub struct FlushIteration {
    /// The flush set this round was checked with.
    pub flush_set: BTreeSet<String>,
    /// Whether the testbench was clean (no CEX within the bound).
    pub clean: bool,
    /// Algorithm 1: the state the CEX root-caused to (then added).
    /// Algorithm 2: the candidate whose removal was attempted.
    pub state: Option<String>,
}

/// Result of a synthesis run.
#[derive(Clone, Debug)]
pub struct FlushSynthesisResult {
    /// The final flush set.
    pub flush_set: BTreeSet<String>,
    /// Whether the final set makes the testbench clean.
    pub converged: bool,
    /// Per-round record.
    pub iterations: Vec<FlushIteration>,
}

/// Strips a memory-word suffix: `tlb[3]` → `tlb`.
fn base_state_name(name: &str) -> String {
    match name.find('[') {
        Some(i) => name[..i].to_string(),
        None => name.to_string(),
    }
}

/// Algorithm 1: incrementally grows the flush set from CEX root causes.
///
/// `build_dut` constructs the DUT with a given flush set; `configure`
/// applies the testbench refinements (threshold, flush_done condition,
/// architectural state) to the default spec.
pub fn incremental_flush<B, S>(
    build_dut: B,
    configure: S,
    config: &FlushSynthesisConfig,
) -> FlushSynthesisResult
where
    B: Fn(&BTreeSet<String>) -> Module,
    S: for<'d> Fn(FtSpec<'d>) -> FtSpec<'d>,
{
    let mut flush: BTreeSet<String> = BTreeSet::new();
    let mut iterations = Vec::new();
    for _ in 0..config.max_iterations {
        let dut = build_dut(&flush);
        let ft = configure(FtSpec::new(&dut)).generate();
        let report = ft.check(&config.check_options);
        if report.outcome.is_clean() {
            iterations.push(FlushIteration {
                flush_set: flush.clone(),
                clean: true,
                state: None,
            });
            return FlushSynthesisResult {
                flush_set: flush,
                converged: true,
                iterations,
            };
        }
        let Some(cex) = report.outcome.cex() else {
            // Budget exhausted: cannot conclude.
            iterations.push(FlushIteration {
                flush_set: flush.clone(),
                clean: false,
                state: None,
            });
            return FlushSynthesisResult {
                flush_set: flush,
                converged: false,
                iterations,
            };
        };
        // FindCause: the first diverging state not already flushed.
        let cause = cex
            .diverging_state
            .iter()
            .map(|d| base_state_name(&d.name))
            .find(|n| !flush.contains(n));
        match cause {
            Some(state) => {
                iterations.push(FlushIteration {
                    flush_set: flush.clone(),
                    clean: false,
                    state: Some(state.clone()),
                });
                flush.insert(state);
            }
            None => {
                // The CEX does not root-cause to unflushed state: the
                // builder cannot close this channel by flushing.
                iterations.push(FlushIteration {
                    flush_set: flush.clone(),
                    clean: false,
                    state: None,
                });
                return FlushSynthesisResult {
                    flush_set: flush,
                    converged: false,
                    iterations,
                };
            }
        }
    }
    FlushSynthesisResult {
        flush_set: flush,
        converged: false,
        iterations,
    }
}

/// Algorithm 2: starts from `full_flush` (which must be clean) and tries to
/// remove each of `candidates` in order, keeping removals that stay clean.
pub fn decremental_flush<B, S>(
    build_dut: B,
    configure: S,
    full_flush: &BTreeSet<String>,
    candidates: &[String],
    config: &FlushSynthesisConfig,
) -> FlushSynthesisResult
where
    B: Fn(&BTreeSet<String>) -> Module,
    S: for<'d> Fn(FtSpec<'d>) -> FtSpec<'d>,
{
    let mut flush = full_flush.clone();
    let mut iterations = Vec::new();

    let run = |flush: &BTreeSet<String>| {
        let dut = build_dut(flush);
        let ft = configure(FtSpec::new(&dut)).generate();
        ft.check(&config.check_options).outcome.is_clean()
    };

    // Precondition: the full flush achieves a (bounded) proof.
    if !run(&flush) {
        iterations.push(FlushIteration {
            flush_set: flush.clone(),
            clean: false,
            state: None,
        });
        return FlushSynthesisResult {
            flush_set: flush,
            converged: false,
            iterations,
        };
    }

    for state in candidates {
        if !flush.contains(state) {
            continue;
        }
        flush.remove(state);
        let clean = run(&flush);
        iterations.push(FlushIteration {
            flush_set: flush.clone(),
            clean,
            state: Some(state.clone()),
        });
        if !clean {
            flush.insert(state.clone());
        }
    }
    FlushSynthesisResult {
        flush_set: flush,
        converged: true,
        iterations,
    }
}
