//! # autocc-core
//!
//! The AutoCC methodology (Orenes-Vera et al., *AutoCC: Automatic Discovery
//! of Covert Channels in Time-Shared Hardware*, MICRO 2023), implemented
//! over the `autocc-hdl`/`autocc-aig`/`autocc-bmc`/`autocc-sat` stack.
//!
//! AutoCC detects covert channels in hardware that is time-shared between
//! processes. It instantiates the design under test (DUT) twice — universes
//! α and β — lets both run *any* legal victim execution, models the OS
//! context switch as convergence of architectural state plus completion of
//! the microarchitectural flush, and then, with inputs held equal, asserts
//! that every DUT output is equal in both universes on every cycle. A
//! counterexample is a two-universe execution in which microarchitectural
//! residue from the victim changes what the spy observes: a covert channel.
//!
//! ## Crate map
//!
//! * [`FtSpec`] — testbench specification and generation (paper Sec. 3.3):
//!   `THRESHOLD`, `flush_done`, `architectural_state_eq`, assumptions.
//! * [`FpvTestbench`] — the generated two-universe miter; [`FpvTestbench::check`]
//!   searches for counterexamples, [`FpvTestbench::prove`] attempts a full
//!   proof by k-induction.
//! * [`CovertChannelCex`] — a counterexample with automatic root-cause
//!   analysis: the microarchitectural state that differed at spy start.
//! * [`incremental_flush`] / [`decremental_flush`] — Algorithms 1 and 2
//!   (Sec. 3.5), synthesising minimal flush sets.
//! * [`TableRow`]/[`format_table`] — the experiment-report shape of the
//!   paper's tables.
//!
//! ## Example: catching an unflushed register
//!
//! ```
//! use autocc_hdl::{Bv, ModuleBuilder};
//! use autocc_core::FtSpec;
//! use autocc_bmc::CheckConfig;
//!
//! // A 4-bit "configuration register" device: writes latch, reads expose
//! // the stored value only while `re` is high — so the victim can park a
//! // secret in `cfg` that stays invisible across the context switch.
//! let mut b = ModuleBuilder::new("cfg_dev");
//! let we = b.input("we", 1);
//! let re = b.input("re", 1);
//! let data = b.input("data", 4);
//! let cfg = b.reg("cfg", 4, Bv::zero(4));
//! let next = b.mux(we, data, cfg);
//! b.set_next(cfg, next);
//! let zero = b.lit(4, 0);
//! let q = b.mux(re, cfg, zero);
//! b.output("q", q);
//! let dut = b.build();
//!
//! // Default testbench: no flush, no arch state. The register leaks:
//! // the spy reads back whatever the victim configured.
//! let ft = FtSpec::new(&dut).generate();
//! let report = ft.check(&CheckConfig::default().depth(12));
//! let cex = report.outcome.cex().expect("cfg register is a covert channel");
//! assert_eq!(cex.property, "as__q_eq");
//! assert_eq!(cex.diverging_state[0].name, "cfg");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flush;
mod report;
mod spec;
mod sva;
mod testbench;

pub use flush::{
    decremental_flush, incremental_flush, FlushIteration, FlushSynthesisConfig,
    FlushSynthesisResult,
};
pub use report::{
    certificate_summary, failure_summary, format_duration, format_table, format_table_detailed,
    format_table_stable, report_exit_code, RowStatus, TableRow,
};
pub use spec::{AssumeHook, FlushDone, FtSpec, MiterHook};
pub use sva::to_sva;
pub use testbench::{
    property_class, AutoCcOutcome, CheckReport, ClusterPlan, CovertChannelCex, FpvTestbench,
    MonitorHandles, PortRole, PropertyClass, PropertyCluster, PropertyVerdict, StateDivergence,
};
#[allow(deprecated)]
pub use testbench::{CheckSettings, RunReport};
