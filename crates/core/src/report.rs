//! Plain-text report rendering for the experiment harness.
//!
//! The bench binaries regenerate the paper's tables with these helpers, so
//! every experiment prints rows in the same `Description | Depth | Time`
//! shape as Tables 1 and 2.

use crate::testbench::{AutoCcOutcome, CheckReport};
use autocc_bmc::CertificateStatus;
use autocc_telemetry::SolverCounters;
use std::fmt::Write as _;
use std::time::Duration;

/// Health of a table row: did the experiment answer, stop on a
/// machine-dependent budget, or fail outright?
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RowStatus {
    /// A real answer (CEX, clean, proved, or deterministic exhaustion).
    #[default]
    Ok,
    /// Degraded: stopped by wall-clock budget or cancellation.
    Unknown,
    /// A contained fault (panic, replay mismatch, ...).
    Failed,
    /// Quarantined: the check repeatedly killed isolated workers and was
    /// benched by the circuit breaker. Softer than [`RowStatus::Failed`]
    /// — the campaign chose to stop retrying, nothing crashed unhandled —
    /// so it gets its own exit code (3) and `--retry-failed` reopens it.
    Quarantined,
}

/// One row of an experiment table.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Experiment id (`V1`, `C2`, `M3`, `A1`, ...).
    pub id: String,
    /// Human-readable description of the CEX or proof.
    pub description: String,
    /// CEX depth in cycles (`None` for proofs).
    pub depth: Option<usize>,
    /// FPV tool runtime.
    pub time: Duration,
    /// Outcome label (`CEX`, `clean@N`, `proved`, `UNKNOWN@N`, ...).
    pub outcome: String,
    /// Row health, for exit codes and the failure summary.
    pub status: RowStatus,
    /// Diagnostic detail for degraded rows (panic payloads, replay
    /// divergence reports), printed in the failure summary.
    pub detail: Option<String>,
    /// Solver work behind the row, when the run collected it. Rendered
    /// only by [`format_table_detailed`]; the plain tables ignore it.
    pub stats: Option<SolverCounters>,
    /// Whether the row was served from a campaign journal instead of a
    /// live solver run. Rendered only by [`format_table_detailed`] (as the
    /// `Src` column); the plain and stable tables ignore it so a resumed
    /// campaign stays byte-identical to an uninterrupted one.
    pub cached: bool,
    /// The row's verdict certificate (a checked DRAT transcript hash for
    /// UNSAT-backed verdicts, a replay-validated trace hash for CEXs).
    /// Rendered only by [`certificate_summary`]; the tables ignore it so
    /// certified and uncertified runs stay byte-identical.
    pub certificate: CertificateStatus,
}

impl TableRow {
    /// Builds a row from a run outcome.
    pub fn from_outcome(
        id: impl Into<String>,
        description: impl Into<String>,
        outcome: &AutoCcOutcome,
        time: Duration,
    ) -> TableRow {
        let (depth, label, status, detail) = match outcome {
            AutoCcOutcome::Cex(cex) => (
                Some(cex.depth),
                format!("CEX {}", cex.property),
                RowStatus::Ok,
                None,
            ),
            AutoCcOutcome::Clean { bound } => (None, format!("clean@{bound}"), RowStatus::Ok, None),
            AutoCcOutcome::Proved { induction_depth } => (
                None,
                format!("proved (k={induction_depth})"),
                RowStatus::Ok,
                None,
            ),
            AutoCcOutcome::Exhausted { bound } => {
                (None, format!("exhausted@{bound}"), RowStatus::Ok, None)
            }
            AutoCcOutcome::Unknown { bound, cause } => (
                None,
                format!("UNKNOWN@{bound} ({cause})"),
                RowStatus::Unknown,
                None,
            ),
            AutoCcOutcome::Failed { failures } => {
                let label = match failures.len() {
                    1 => format!("FAILED ({})", failures[0].reason),
                    n => format!("FAILED ({}, +{} more)", failures[0].reason, n - 1),
                };
                let detail = failures
                    .iter()
                    .map(|f| f.to_string())
                    .collect::<Vec<_>>()
                    .join("\n");
                let status = if !failures.is_empty()
                    && failures
                        .iter()
                        .all(|f| f.reason == autocc_bmc::FailureReason::Quarantined)
                {
                    RowStatus::Quarantined
                } else {
                    RowStatus::Failed
                };
                (None, label, status, Some(detail))
            }
        };
        TableRow {
            id: id.into(),
            description: description.into(),
            depth,
            time,
            outcome: label,
            status,
            detail,
            stats: None,
            cached: false,
            certificate: CertificateStatus::Uncertified,
        }
    }

    /// Builds a row from a whole [`CheckReport`]: outcome, wall-clock time
    /// and solver counters in one step.
    pub fn from_report(
        id: impl Into<String>,
        description: impl Into<String>,
        report: &CheckReport,
    ) -> TableRow {
        let mut row = TableRow::from_outcome(id, description, &report.outcome, report.elapsed)
            .with_stats(report.stats);
        row.certificate = report.certificate;
        row
    }

    /// Attaches solver counters to the row (shown by
    /// [`format_table_detailed`]).
    pub fn with_stats(mut self, stats: SolverCounters) -> TableRow {
        self.stats = Some(stats);
        self
    }

    /// Marks the row as served from a campaign journal (shown in the
    /// `Src` column of [`format_table_detailed`]).
    pub fn cached(mut self, cached: bool) -> TableRow {
        self.cached = cached;
        self
    }

    /// A row for an experiment whose harness itself failed (e.g. a panic
    /// contained outside any engine job).
    pub fn failed(
        id: impl Into<String>,
        description: impl Into<String>,
        detail: impl Into<String>,
    ) -> TableRow {
        TableRow {
            id: id.into(),
            description: description.into(),
            depth: None,
            time: Duration::ZERO,
            outcome: "FAILED (panic)".to_string(),
            status: RowStatus::Failed,
            detail: Some(detail.into()),
            stats: None,
            cached: false,
            certificate: CertificateStatus::Uncertified,
        }
    }
}

/// A per-row certificate-status summary for certified campaigns: which
/// rows carry an independently checked certificate (and its hash), and
/// which conclusive rows do not. Report binaries print this to stderr
/// under `--certify`; it is also the artifact CI archives to cross-check
/// certified runs.
pub fn certificate_summary(rows: &[TableRow]) -> String {
    let certified = rows.iter().filter(|r| r.certificate.is_certified()).count();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "certificates: {certified} of {} rows independently checked",
        rows.len()
    );
    for r in rows {
        match r.certificate {
            CertificateStatus::Certified { hash } => {
                let _ = writeln!(out, "  {:<4} certified {hash:016x}", r.id);
            }
            CertificateStatus::Uncertified => {
                let _ = writeln!(out, "  {:<4} uncertified ({})", r.id, r.outcome);
            }
        }
    }
    out
}

/// A human-readable summary of every degraded row, or `None` when the
/// whole table is healthy. Report binaries print this after the table.
pub fn failure_summary(rows: &[TableRow]) -> Option<String> {
    let bad: Vec<&TableRow> = rows.iter().filter(|r| r.status != RowStatus::Ok).collect();
    if bad.is_empty() {
        return None;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} of {} experiments degraded (UNKNOWN/FAILED):",
        bad.len(),
        rows.len()
    );
    for r in bad {
        let _ = writeln!(out, "  {}: {}", r.id, r.outcome);
        if let Some(d) = &r.detail {
            for line in d.lines() {
                let _ = writeln!(out, "      {line}");
            }
        }
    }
    Some(out)
}

/// Process exit code for a finished report: `0` when every row answered
/// (deterministic exhaustion is still an answer), `1` when any row
/// degraded to `UNKNOWN` or a genuine `FAILED`, and the softer `3` when
/// the only degradation is quarantined checks — the circuit breaker
/// benched them deliberately; re-run with `--retry-failed` to reopen.
pub fn report_exit_code(rows: &[TableRow]) -> i32 {
    let hard = rows
        .iter()
        .any(|r| matches!(r.status, RowStatus::Unknown | RowStatus::Failed));
    let soft = rows.iter().any(|r| r.status == RowStatus::Quarantined);
    match (hard, soft) {
        (true, _) => 1,
        (false, true) => 3,
        (false, false) => 0,
    }
}

/// Formats a duration the way the paper's tables do (coarse buckets for
/// long runs, precise values for short ones).
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1.0 {
        format!("{:.0} ms", secs * 1e3)
    } else if secs < 100.0 {
        format!("{secs:.1} s")
    } else if secs < 3600.0 {
        format!("{:.1} min", secs / 60.0)
    } else {
        format!("{:.1} h", secs / 3600.0)
    }
}

/// Renders rows as an aligned text table.
pub fn format_table(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let id_w = rows.iter().map(|r| r.id.len()).max().unwrap_or(2).max(2);
    let desc_w = rows
        .iter()
        .map(|r| r.description.len())
        .max()
        .unwrap_or(11)
        .max(11);
    let out_w = rows
        .iter()
        .map(|r| r.outcome.len())
        .max()
        .unwrap_or(7)
        .max(7);
    let _ = writeln!(
        out,
        "{:id_w$}  {:desc_w$}  {:>5}  {:>9}  {:out_w$}",
        "Id", "Description", "Depth", "Time", "Outcome"
    );
    let _ = writeln!(out, "{}", "-".repeat(id_w + desc_w + out_w + 23));
    for r in rows {
        let depth = r
            .depth
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:id_w$}  {:desc_w$}  {:>5}  {:>9}  {:out_w$}",
            r.id,
            r.description,
            depth,
            format_duration(r.time),
            r.outcome
        );
    }
    out
}

/// Renders rows as an aligned text table with the per-row solver-work
/// breakdown: Time plus Solves and Conflicts columns (from
/// [`TableRow::stats`]; `-` for rows without counters).
pub fn format_table_detailed(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let id_w = rows.iter().map(|r| r.id.len()).max().unwrap_or(2).max(2);
    let desc_w = rows
        .iter()
        .map(|r| r.description.len())
        .max()
        .unwrap_or(11)
        .max(11);
    let out_w = rows
        .iter()
        .map(|r| r.outcome.len())
        .max()
        .unwrap_or(7)
        .max(7);
    let _ = writeln!(
        out,
        "{:id_w$}  {:desc_w$}  {:>5}  {:>9}  {:>7}  {:>10}  {:>6}  {:out_w$}",
        "Id", "Description", "Depth", "Time", "Solves", "Conflicts", "Src", "Outcome"
    );
    let _ = writeln!(out, "{}", "-".repeat(id_w + desc_w + out_w + 52));
    for r in rows {
        let depth = r
            .depth
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".to_string());
        let solves = r
            .stats
            .map(|s| s.solve_calls.to_string())
            .unwrap_or_else(|| "-".to_string());
        let conflicts = r
            .stats
            .map(|s| s.conflicts.to_string())
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:id_w$}  {:desc_w$}  {:>5}  {:>9}  {:>7}  {:>10}  {:>6}  {:out_w$}",
            r.id,
            r.description,
            depth,
            format_duration(r.time),
            solves,
            conflicts,
            if r.cached { "cache" } else { "live" },
            r.outcome
        );
    }
    out
}

/// Renders rows as an aligned text table **without** the Time column.
///
/// Runtimes vary run to run, so this is the form to use when output must
/// be reproducible byte for byte — e.g. diffing a `--jobs 4` report
/// against a `--jobs 1` report, or committing golden outputs.
pub fn format_table_stable(title: &str, rows: &[TableRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let id_w = rows.iter().map(|r| r.id.len()).max().unwrap_or(2).max(2);
    let desc_w = rows
        .iter()
        .map(|r| r.description.len())
        .max()
        .unwrap_or(11)
        .max(11);
    let out_w = rows
        .iter()
        .map(|r| r.outcome.len())
        .max()
        .unwrap_or(7)
        .max(7);
    let _ = writeln!(
        out,
        "{:id_w$}  {:desc_w$}  {:>5}  {:out_w$}",
        "Id", "Description", "Depth", "Outcome"
    );
    let _ = writeln!(out, "{}", "-".repeat(id_w + desc_w + out_w + 12));
    for r in rows {
        let depth = r
            .depth
            .map(|d| d.to_string())
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:id_w$}  {:desc_w$}  {:>5}  {:out_w$}",
            r.id, r.description, depth, r.outcome
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_buckets() {
        assert_eq!(format_duration(Duration::from_millis(12)), "12 ms");
        assert_eq!(format_duration(Duration::from_secs(5)), "5.0 s");
        assert_eq!(format_duration(Duration::from_secs(120)), "2.0 min");
        assert_eq!(format_duration(Duration::from_secs(7200)), "2.0 h");
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = vec![
            TableRow {
                id: "V1".into(),
                description: "Jump to address read from the reg. file".into(),
                depth: Some(6),
                time: Duration::from_millis(800),
                outcome: "CEX as__dmem_hwrite_eq".into(),
                status: RowStatus::Ok,
                detail: None,
                stats: None,
                cached: false,
                certificate: CertificateStatus::Uncertified,
            },
            TableRow {
                id: "V5".into(),
                description: "Interrupt in the WB stage stalls pipeline".into(),
                depth: Some(9),
                time: Duration::from_secs(12),
                outcome: "CEX as__imem_haddr_eq".into(),
                status: RowStatus::Ok,
                detail: None,
                stats: None,
                cached: false,
                certificate: CertificateStatus::Uncertified,
            },
        ];
        let table = format_table("Table 2: Vscale", &rows);
        assert!(table.contains("V1"));
        assert!(table.contains("V5"));
        assert!(table.contains("reg. file"));
        assert!(table.lines().count() >= 5);
    }

    #[test]
    fn stable_table_ignores_runtimes() {
        let row = |time| TableRow {
            id: "V1".into(),
            description: "Jump to address read from the reg. file".into(),
            depth: Some(6),
            time,
            outcome: "CEX as__dmem_hwrite_eq".into(),
            status: RowStatus::Ok,
            detail: None,
            stats: None,
            cached: false,
            certificate: CertificateStatus::Uncertified,
        };
        let fast = format_table_stable("Table 2: Vscale", &[row(Duration::from_millis(3))]);
        let slow = format_table_stable("Table 2: Vscale", &[row(Duration::from_secs(90))]);
        assert_eq!(fast, slow, "stable tables must not encode runtimes");
        assert!(!fast.contains("Time"));
    }

    #[test]
    fn detailed_table_shows_solver_work_per_row() {
        let with = TableRow {
            id: "V1".into(),
            description: "with counters".into(),
            depth: Some(6),
            time: Duration::from_millis(800),
            outcome: "CEX as__y_eq".into(),
            status: RowStatus::Ok,
            detail: None,
            stats: None,
            cached: false,
            certificate: CertificateStatus::Uncertified,
        }
        .with_stats(SolverCounters {
            solve_calls: 12,
            conflicts: 3456,
            ..SolverCounters::default()
        });
        let without = TableRow {
            id: "V2".into(),
            description: "without counters".into(),
            depth: None,
            time: Duration::from_secs(2),
            outcome: "clean@20".into(),
            status: RowStatus::Ok,
            detail: None,
            stats: None,
            cached: false,
            certificate: CertificateStatus::Uncertified,
        };
        let table = format_table_detailed("Detailed", &[with, without]);
        assert!(table.contains("Solves"));
        assert!(table.contains("Conflicts"));
        assert!(table.contains("3456"));
        assert!(table.contains("12"));
        let v2 = table.lines().find(|l| l.starts_with("V2")).unwrap();
        assert!(v2.contains('-'), "missing stats render as dashes: {v2}");
        // The plain table is unchanged by stats.
        let plain = format_table(
            "Plain",
            &[TableRow::from_outcome(
                "V3",
                "x",
                &AutoCcOutcome::Clean { bound: 4 },
                Duration::ZERO,
            )],
        );
        assert!(!plain.contains("Conflicts"));
    }

    #[test]
    fn degraded_rows_drive_summary_and_exit_code() {
        let ok = TableRow {
            id: "V1".into(),
            description: "healthy".into(),
            depth: Some(6),
            time: Duration::ZERO,
            outcome: "CEX as__y_eq".into(),
            status: RowStatus::Ok,
            detail: None,
            stats: None,
            cached: false,
            certificate: CertificateStatus::Uncertified,
        };
        assert_eq!(report_exit_code(std::slice::from_ref(&ok)), 0);
        assert!(failure_summary(std::slice::from_ref(&ok)).is_none());

        let failed = TableRow::failed("V2", "broken", "engine `bmc` panicked: boom");
        let rows = vec![ok, failed];
        assert_eq!(report_exit_code(&rows), 1);
        let summary = failure_summary(&rows).expect("summary for degraded table");
        assert!(summary.contains("1 of 2 experiments degraded"));
        assert!(summary.contains("V2: FAILED (panic)"));
        assert!(summary.contains("boom"));
    }

    #[test]
    fn quarantine_is_a_soft_failure_with_its_own_exit_code() {
        use autocc_bmc::{FailureReason, JobFailure};
        let quarantine = |id: &str| {
            TableRow::from_outcome(
                id,
                "worker killer",
                &AutoCcOutcome::Failed {
                    failures: vec![JobFailure {
                        engine: "bmc".into(),
                        property: None,
                        depth: 0,
                        reason: FailureReason::Quarantined,
                        detail: "2 workers killed by this check".into(),
                        attempts: 2,
                    }],
                },
                Duration::ZERO,
            )
        };
        let row = quarantine("V3");
        assert_eq!(row.status, RowStatus::Quarantined);
        assert_eq!(row.outcome, "FAILED (quarantined)");
        assert_eq!(report_exit_code(std::slice::from_ref(&row)), 3);
        let summary =
            failure_summary(std::slice::from_ref(&row)).expect("quarantine still summarized");
        assert!(summary.contains("V3: FAILED (quarantined)"));

        // A genuine failure outranks the soft code.
        let rows = vec![quarantine("V3"), TableRow::failed("V4", "broken", "boom")];
        assert_eq!(report_exit_code(&rows), 1);
    }

    #[test]
    fn unknown_outcome_renders_with_cause() {
        use autocc_bmc::UnknownCause;
        let row = TableRow::from_outcome(
            "A1",
            "timed out",
            &AutoCcOutcome::Unknown {
                bound: 12,
                cause: UnknownCause::TimeBudget,
            },
            Duration::ZERO,
        );
        assert_eq!(row.outcome, "UNKNOWN@12 (timeout)");
        assert_eq!(row.status, RowStatus::Unknown);
        assert_eq!(report_exit_code(&[row]), 1);
    }
}
