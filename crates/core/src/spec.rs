//! FPV testbench (FT) specification and generation — Sec. 3.3 of the paper.
//!
//! [`FtSpec`] captures everything the user may refine about an AutoCC
//! testbench: the transfer-period `THRESHOLD`, the `flush_done` condition,
//! the architectural-state equality set, and extra environment assumptions.
//! [`FtSpec::generate`] then builds the two-universe miter:
//!
//! 1. a wrapper with the DUT instantiated twice (universes `a` and `b`),
//!    each with its own copy of every non-`common` input;
//! 2. the Listing-1 monitor — `eq_cnt`, `spy_mode`, `flush_done`,
//!    `transfer_cond` — synthesised as netlist logic;
//! 3. one *assumption* per DUT input (`spy_mode |-> input_eq`, payload
//!    equality gated by transaction validity), and
//! 4. one *assertion* per DUT output (`spy_mode |-> output_eq`, payload
//!    assertions gated by the universe-a valid).
//!
//! At [`Granularity::Register`] the spec additionally emits one
//! *attribution* property per DUT register and memory word
//! (`st__<state>_eq`), guarded by a second, slimmer *observer* monitor
//! whose transfer condition omits output equality. Each attribution
//! property's sequential cone therefore reaches only the observed state
//! element's own fan-in (plus the input-only observer), not the whole
//! DUT through `output_signal_eq` — which is what lets the clustered
//! check path slice them into small sub-models. The Listing-1 properties
//! keep their exact semantics untouched, so paper-table verdicts never
//! depend on the attribution class.
//!
//! The default spec needs nothing but the DUT — matching the paper's
//! "no upfront user input" flow. Refinements are added as counterexamples
//! are found, mirroring Sec. 4.1's workflow.

use crate::testbench::{FpvTestbench, MonitorHandles, PortRole};
use autocc_bmc::Granularity;
use autocc_hdl::{Bv, Direction, Instance, Module, ModuleBuilder, NodeId};
use std::collections::HashMap;

/// A user hook evaluated inside the miter: receives the wrapper builder and
/// the two DUT instances, returns a 1-bit node.
pub type MiterHook = Box<dyn Fn(&mut ModuleBuilder, &Instance, &Instance) -> NodeId>;

/// A user assumption evaluated after the monitor exists; may reference
/// monitor signals (e.g. constrain behaviour only around the flush).
pub type AssumeHook =
    Box<dyn Fn(&mut ModuleBuilder, &Instance, &Instance, &MonitorHandles) -> NodeId>;

/// How the end of the microarchitectural flush is detected (Listing 1's
/// `flush_done`).
pub enum FlushDone {
    /// Left free: a fresh symbolic input the solver may assert at any time.
    /// This is the default of the generated FT (`wire flush_done = 'x`).
    Free,
    /// A condition computed from both universes (e.g. "`fence.t` retired in
    /// both" or "both pipelines idle").
    Condition(MiterHook),
}

/// Specification of an AutoCC FPV testbench over one DUT.
///
/// # Examples
///
/// Generating the default testbench for a DUT takes one line, as in the
/// paper's `autocc.py -f vscale_core.v` flow:
///
/// ```
/// use autocc_hdl::{Bv, ModuleBuilder};
/// use autocc_core::FtSpec;
///
/// let mut b = ModuleBuilder::new("dut");
/// let x = b.input("x", 4);
/// let r = b.reg("r", 4, Bv::zero(4));
/// b.set_next(r, x);
/// b.output("y", r);
/// let dut = b.build();
///
/// let ft = FtSpec::new(&dut).generate();
/// assert!(ft.properties().iter().any(|(name, _)| name == "as__y_eq"));
/// ```
pub struct FtSpec<'d> {
    dut: &'d Module,
    threshold: u32,
    flush_done: FlushDone,
    /// Register names whose equality joins `architectural_state_eq`.
    arch_regs: Vec<String>,
    /// Memory names whose (word-wise) equality joins `architectural_state_eq`.
    arch_mems: Vec<String>,
    /// Extra architectural-state conditions.
    arch_hooks: Vec<MiterHook>,
    /// Environment assumptions (constraints holding on every cycle).
    assume_hooks: Vec<AssumeHook>,
    /// Add `spy_mode |-> state_eq` auxiliary invariants for every DUT state
    /// element (strengthens k-induction into a closable proof).
    state_equality_invariants: bool,
    /// Custom auxiliary assertions (checked like generated properties).
    assert_hooks: Vec<(String, AssumeHook)>,
    /// Property decomposition level. At [`Granularity::Register`] the
    /// generated testbench carries `st__*` attribution properties under
    /// the observer monitor; other levels change nothing here.
    granularity: Granularity,
}

impl<'d> FtSpec<'d> {
    /// Default testbench spec for `dut`: `THRESHOLD = 4`, free `flush_done`,
    /// empty architectural state (`architectural_state_eq = 1'b1`).
    pub fn new(dut: &'d Module) -> FtSpec<'d> {
        FtSpec {
            dut,
            threshold: 4,
            flush_done: FlushDone::Free,
            arch_regs: Vec::new(),
            arch_mems: Vec::new(),
            arch_hooks: Vec::new(),
            assume_hooks: Vec::new(),
            state_equality_invariants: false,
            assert_hooks: Vec::new(),
            granularity: Granularity::Monolithic,
        }
    }

    /// Sets the property decomposition level the testbench is generated
    /// for. [`Granularity::Register`] adds per-register / per-memory-word
    /// `st__*` attribution properties (and the observer monitor guarding
    /// them); the Listing-1 property set is identical at every level.
    pub fn granularity(mut self, granularity: Granularity) -> FtSpec<'d> {
        self.granularity = granularity;
        self
    }

    /// Sets the transfer-period length (Listing 1's `THRESHOLD`).
    pub fn threshold(mut self, threshold: u32) -> FtSpec<'d> {
        assert!(threshold >= 1, "threshold must be at least 1");
        self.threshold = threshold;
        self
    }

    /// Defines when the microarchitectural flush has finished in both
    /// universes.
    pub fn flush_done(
        mut self,
        hook: impl Fn(&mut ModuleBuilder, &Instance, &Instance) -> NodeId + 'static,
    ) -> FtSpec<'d> {
        self.flush_done = FlushDone::Condition(Box::new(hook));
        self
    }

    /// Adds a DUT register (by hierarchical name) to the architectural
    /// state: its values must match across universes for the context switch
    /// to complete. This is the paper's iterative-refinement step.
    ///
    /// # Panics
    ///
    /// Panics if the DUT has no such register.
    pub fn arch_reg(mut self, name: &str) -> FtSpec<'d> {
        assert!(
            self.dut.find_reg(name).is_some(),
            "DUT has no register named {name}"
        );
        self.arch_regs.push(name.to_string());
        self
    }

    /// Adds every DUT register whose name starts with `prefix` to the
    /// architectural state (convenient for whole submodules, e.g. a
    /// blackboxed CSR file's neighbours).
    ///
    /// # Panics
    ///
    /// Panics if no register matches.
    pub fn arch_reg_prefix(mut self, prefix: &str) -> FtSpec<'d> {
        let names: Vec<String> = self
            .dut
            .regs()
            .iter()
            .filter(|r| r.name.starts_with(prefix))
            .map(|r| r.name.clone())
            .collect();
        assert!(!names.is_empty(), "no DUT register starts with {prefix}");
        self.arch_regs.extend(names);
        self
    }

    /// Adds a DUT memory (by name) to the architectural state.
    ///
    /// # Panics
    ///
    /// Panics if the DUT has no such memory.
    pub fn arch_mem(mut self, name: &str) -> FtSpec<'d> {
        assert!(
            self.dut.find_mem(name).is_some(),
            "DUT has no memory named {name}"
        );
        self.arch_mems.push(name.to_string());
        self
    }

    /// Adds a custom architectural-state condition.
    pub fn arch_condition(
        mut self,
        hook: impl Fn(&mut ModuleBuilder, &Instance, &Instance) -> NodeId + 'static,
    ) -> FtSpec<'d> {
        self.arch_hooks.push(Box::new(hook));
        self
    }

    /// Adds an environment assumption (a 1-bit condition assumed true on
    /// every cycle). Used to rule out illegal input sequences (Def. 4) and
    /// to refine spurious CEXs, e.g. "the NoC output buffer is empty during
    /// the context switch".
    pub fn assume(
        mut self,
        hook: impl Fn(&mut ModuleBuilder, &Instance, &Instance, &MonitorHandles) -> NodeId + 'static,
    ) -> FtSpec<'d> {
        self.assume_hooks.push(Box::new(hook));
        self
    }

    /// Adds a custom auxiliary assertion (a 1-bit condition that must hold
    /// on every cycle, like the generated properties). Used to supply
    /// design-specific strengthening invariants — the "architectural
    /// modeling" the paper adds to the AES testbench to reach full proof.
    pub fn assert_prop(
        mut self,
        name: &str,
        hook: impl Fn(&mut ModuleBuilder, &Instance, &Instance, &MonitorHandles) -> NodeId + 'static,
    ) -> FtSpec<'d> {
        self.assert_hooks.push((name.to_string(), Box::new(hook)));
        self
    }

    /// Adds one auxiliary assertion `spy_mode |-> state_eq` per DUT state
    /// element (register and memory word). These strengthen the property
    /// set into an inductive invariant, which is what lets
    /// [`FpvTestbench::prove`](crate::FpvTestbench::prove) close a *full*
    /// proof — the paper's "architectural modeling" added to the AES
    /// testbench to reach full proof (Sec. A.5.4). The invariants are also
    /// checked in the base case, so they only pass when the flush/arch
    /// refinement genuinely forces state convergence at spy start.
    pub fn state_equality_invariants(mut self) -> FtSpec<'d> {
        self.state_equality_invariants = true;
        self
    }

    /// The DUT this spec targets.
    pub fn dut(&self) -> &'d Module {
        self.dut
    }

    /// Builds the FPV testbench: the miter module, its monitor handles,
    /// the generated assumptions, and one assertion per DUT output.
    pub fn generate(&self) -> FpvTestbench {
        let dut = self.dut;
        let mut b = ModuleBuilder::new(format!("ft_{}", dut.name()));
        let mut port_roles = Vec::new();

        // --- 1. Wrapper inputs -----------------------------------------
        // Common inputs exist once; the rest are duplicated per universe.
        let mut wires_a: HashMap<String, NodeId> = HashMap::new();
        let mut wires_b: HashMap<String, NodeId> = HashMap::new();
        // (dut input index, a-node, b-node) for equality conditions.
        let mut input_pairs: Vec<(usize, NodeId, NodeId)> = Vec::new();
        for (pi, port) in dut.inputs().iter().enumerate() {
            if port.common {
                let n = b.input(&port.name, port.width);
                wires_a.insert(port.name.clone(), n);
                wires_b.insert(port.name.clone(), n);
                port_roles.push(PortRole::Common { dut_port: pi });
            } else {
                let na = b.input(&format!("a.{}", port.name), port.width);
                let nb = b.input(&format!("b.{}", port.name), port.width);
                wires_a.insert(port.name.clone(), na);
                wires_b.insert(port.name.clone(), nb);
                input_pairs.push((pi, na, nb));
                port_roles.push(PortRole::UniverseA { dut_port: pi });
                port_roles.push(PortRole::UniverseB { dut_port: pi });
            }
        }

        // --- 2. Two universes ------------------------------------------
        let inst_a = b.instantiate(dut, "ua", &wires_a);
        let inst_b = b.instantiate(dut, "ub", &wires_b);

        // --- 3. flush_done ----------------------------------------------
        let flush_done = match &self.flush_done {
            FlushDone::Free => {
                let n = b.input("flush_done", 1);
                port_roles.push(PortRole::FlushFree);
                n
            }
            FlushDone::Condition(hook) => hook(&mut b, &inst_a, &inst_b),
        };
        assert_eq!(b.width(flush_done), 1, "flush_done must be 1 bit");

        // --- 4. architectural_state_eq ----------------------------------
        let mut arch_conds: Vec<NodeId> = Vec::new();
        for name in &self.arch_regs {
            let (ra, rb) = (inst_a.regs[name], inst_b.regs[name]);
            let (na, nb) = (b.read_reg(ra), b.read_reg(rb));
            arch_conds.push(b.eq(na, nb));
        }
        for name in &self.arch_mems {
            let (ma, mb) = (inst_a.mems[name], inst_b.mems[name]);
            let depth = b.mem_depth(ma);
            for w in 0..depth {
                let (wa, wb) = (b.read_mem_word(ma, w), b.read_mem_word(mb, w));
                arch_conds.push(b.eq(wa, wb));
            }
        }
        for hook in &self.arch_hooks {
            let n = hook(&mut b, &inst_a, &inst_b);
            assert_eq!(b.width(n), 1, "arch conditions must be 1 bit");
            arch_conds.push(n);
        }
        let arch_state_eq = b.all(&arch_conds);

        // --- 5. Interface equality conditions ---------------------------
        // Transaction lookup: output/input name -> (is_valid, valid name).
        let mut out_payload_valid: HashMap<String, String> = HashMap::new();
        let mut in_payload_valid: HashMap<String, String> = HashMap::new();
        for t in dut.transactions() {
            match t.direction {
                Direction::Output => {
                    for p in &t.payload {
                        out_payload_valid.insert(p.clone(), t.valid.clone());
                    }
                }
                Direction::Input => {
                    for p in &t.payload {
                        in_payload_valid.insert(p.clone(), t.valid.clone());
                    }
                }
            }
        }

        // Input equality (payloads gated by the a-universe valid).
        let mut input_eqs: Vec<NodeId> = Vec::new();
        // (dut input name, equality node) for assumption generation.
        let mut input_eq_by_name: Vec<(String, NodeId)> = Vec::new();
        for &(pi, na, nb) in &input_pairs {
            let name = dut.inputs()[pi].name.clone();
            let eq = b.eq(na, nb);
            let cond = if let Some(valid_name) = in_payload_valid.get(&name) {
                let va = wires_a[valid_name];
                let nv = b.not(va);
                b.or(nv, eq)
            } else {
                eq
            };
            input_eqs.push(cond);
            input_eq_by_name.push((name, cond));
        }
        let input_signal_eq = b.all(&input_eqs);

        // Output equality (payloads gated by the a-universe valid).
        let mut output_eqs: Vec<NodeId> = Vec::new();
        // (property name, equality node) for assertion generation.
        let mut output_eq_by_name: Vec<(String, NodeId)> = Vec::new();
        for out in dut.outputs() {
            let oa = inst_a.outputs[&out.name];
            let ob = inst_b.outputs[&out.name];
            let eq = b.eq(oa, ob);
            let cond = if let Some(valid_name) = out_payload_valid.get(&out.name) {
                let va = inst_a.outputs[valid_name];
                let nv = b.not(va);
                b.or(nv, eq)
            } else {
                eq
            };
            output_eqs.push(cond);
            output_eq_by_name.push((out.name.clone(), cond));
        }
        let output_signal_eq = b.all(&output_eqs);

        // --- 6. Monitor (Listing 1) -------------------------------------
        let transfer_parts = [arch_state_eq, input_signal_eq, output_signal_eq];
        let transfer_cond = b.all(&transfer_parts);

        let cnt_width = 32 - (self.threshold + 1).leading_zeros();
        let cnt_width = cnt_width.max(1) + 1;
        let eq_cnt = b.reg("autocc.eq_cnt", cnt_width, Bv::zero(cnt_width));
        let spy_mode = b.reg("autocc.spy_mode", 1, Bv::zero(1));

        let threshold_lit = b.lit(cnt_width, u64::from(self.threshold));
        let cnt_at_threshold = b.ule(threshold_lit, eq_cnt);
        let spy_starts = b.and(transfer_cond, cnt_at_threshold);
        let spy_next = b.or(spy_starts, spy_mode);
        b.set_next(spy_mode, spy_next);

        // eq_cnt <= (flush_done || eq_cnt > 0) && transfer_cond
        //             ? eq_cnt + 1 : 0     (saturating at THRESHOLD + 1 so
        // the counter cannot wrap during long transfer periods).
        let cnt_nonzero = {
            let zero = b.lit(cnt_width, 0);
            b.ne(eq_cnt, zero)
        };
        let counting = {
            let armed = b.or(flush_done, cnt_nonzero);
            b.and(armed, transfer_cond)
        };
        let one = b.lit(cnt_width, 1);
        let inc = b.add(eq_cnt, one);
        let saturated = b.ult(eq_cnt, threshold_lit);
        let inc_or_hold = b.mux(saturated, inc, eq_cnt);
        let zero = b.lit(cnt_width, 0);
        let cnt_next = b.mux(counting, inc_or_hold, zero);
        b.set_next(eq_cnt, cnt_next);

        // Expose monitor signals as outputs for trace inspection.
        b.output("autocc.spy_mode", spy_mode);
        b.output("autocc.eq_cnt", eq_cnt);
        b.output("autocc.transfer_cond", transfer_cond);
        b.output("autocc.flush_done", flush_done);
        b.output("autocc.arch_state_eq", arch_state_eq);
        b.output("autocc.input_eq", input_signal_eq);
        b.output("autocc.output_eq", output_signal_eq);

        let monitor = MonitorHandles {
            spy_mode,
            eq_cnt,
            flush_done,
            transfer_cond,
            spy_starts,
            arch_state_eq,
            input_signal_eq,
            output_signal_eq,
        };

        // --- 6b. Observer monitor (attribution class) -------------------
        // A second copy of the Listing-1 counter whose transfer condition
        // keeps only `input_signal_eq`: it observes "an input-quiesced
        // window completed after a flush". Because `transfer_cond` implies
        // `input_signal_eq`, every exact context switch is also an observer
        // window, so the observer over-approximates the exact switch and
        // any state surviving an exact switch is also flagged here.
        // Crucially the observer's sequential cone is only the input pairs
        // plus `flush_done` — including `arch_state_eq` (let alone
        // `output_signal_eq`) would drag the architectural registers and,
        // through their next-state closure, the entire DUT into every
        // attribution property's cone, defeating the point of slicing.
        // The price is that architectural state itself shows up in the
        // attribution map (it legitimately differs across universes);
        // readers filter it against the arch-state set.
        let observer = (self.granularity == Granularity::Register).then(|| {
            let transfer_obs = input_signal_eq;
            let obs_cnt = b.reg("autocc.obs_cnt", cnt_width, Bv::zero(cnt_width));
            let obs_mode = b.reg("autocc.obs_mode", 1, Bv::zero(1));

            let obs_at_threshold = b.ule(threshold_lit, obs_cnt);
            let obs_starts = b.and(transfer_obs, obs_at_threshold);
            let obs_next = b.or(obs_starts, obs_mode);
            b.set_next(obs_mode, obs_next);

            let obs_nonzero = {
                let zero = b.lit(cnt_width, 0);
                b.ne(obs_cnt, zero)
            };
            let counting_obs = {
                let armed = b.or(flush_done, obs_nonzero);
                b.and(armed, transfer_obs)
            };
            let one = b.lit(cnt_width, 1);
            let inc = b.add(obs_cnt, one);
            let saturated = b.ult(obs_cnt, threshold_lit);
            let inc_or_hold = b.mux(saturated, inc, obs_cnt);
            let zero = b.lit(cnt_width, 0);
            let obs_cnt_next = b.mux(counting_obs, inc_or_hold, zero);
            b.set_next(obs_cnt, obs_cnt_next);

            b.output("autocc.obs_mode", obs_mode);
            b.output("autocc.obs_cnt", obs_cnt);
            obs_mode
        });

        // --- 7. Assumptions ----------------------------------------------
        // spy_mode |-> input_eq, one per duplicated input.
        let mut constraints: Vec<NodeId> = Vec::new();
        let not_spy = b.not(spy_mode);
        for (_, eq) in &input_eq_by_name {
            constraints.push(b.or(not_spy, *eq));
        }
        // The attribution class mirrors them under the observer monitor.
        let mut obs_constraints: Vec<NodeId> = Vec::new();
        if let Some(obs_mode) = observer {
            let not_obs = b.not(obs_mode);
            for (_, eq) in &input_eq_by_name {
                obs_constraints.push(b.or(not_obs, *eq));
            }
        }
        for hook in &self.assume_hooks {
            let n = hook(&mut b, &inst_a, &inst_b, &monitor);
            assert_eq!(b.width(n), 1, "assumptions must be 1 bit");
            constraints.push(n);
            // User assumptions state environment legality; they bind the
            // attribution class too (at the cost of whatever cone they
            // reference).
            if observer.is_some() {
                obs_constraints.push(n);
            }
        }

        // --- 8. Assertions -----------------------------------------------
        let mut properties: Vec<(String, NodeId)> = Vec::new();
        for (name, eq) in &output_eq_by_name {
            let prop = b.or(not_spy, *eq);
            properties.push((format!("as__{name}_eq"), prop));
        }

        for (name, hook) in &self.assert_hooks {
            let n = hook(&mut b, &inst_a, &inst_b, &monitor);
            assert_eq!(b.width(n), 1, "assertions must be 1 bit");
            properties.push((format!("inv__{name}"), n));
        }

        if self.state_equality_invariants {
            let reg_names: Vec<String> = dut.regs().iter().map(|r| r.name.clone()).collect();
            for name in reg_names {
                let (ra, rb) = (inst_a.regs[&name], inst_b.regs[&name]);
                let (na, nb) = (b.read_reg(ra), b.read_reg(rb));
                let eq = b.eq(na, nb);
                let prop = b.or(not_spy, eq);
                properties.push((format!("inv__{name}_eq"), prop));
            }
            let mem_names: Vec<String> = dut.mems().iter().map(|m| m.name.clone()).collect();
            for name in mem_names {
                let (ma, mb) = (inst_a.mems[&name], inst_b.mems[&name]);
                let depth = b.mem_depth(ma);
                for w in 0..depth {
                    let (wa, wb) = (b.read_mem_word(ma, w), b.read_mem_word(mb, w));
                    let eq = b.eq(wa, wb);
                    let prop = b.or(not_spy, eq);
                    properties.push((format!("inv__{name}[{w}]_eq"), prop));
                }
            }
        }

        // --- 8b. Attribution properties (st__*) -------------------------
        // One equality property per DUT state *bit* under the observer
        // monitor: `obs_mode |-> state_bit_eq`. A violated `st__` property
        // names a bit that can carry distinct values across an
        // input-quiesced context switch — the per-state attribution of
        // fence.t-style analyses — while the `as__`/`inv__` class above
        // keeps the exact Listing-1 semantics. Bit granularity keeps each
        // property's backward cone minimal (a single flop pair plus the
        // slim observer) and is what lets cone clustering shrink the
        // sliced checks well below the monolithic cone.
        //
        // Naming: `st__<reg>_eq` (1-bit reg), `st__<reg>[<b>]_eq` (bit of a
        // wider reg), `st__<mem>[<w>]_eq` (1-bit memory word) and
        // `st__<mem>[<w>][<b>]_eq` (bit of a wider word). `certify_cex`
        // parses these back to the raw state pair.
        if let Some(obs_mode) = observer {
            let not_obs = b.not(obs_mode);
            let reg_names: Vec<String> = dut.regs().iter().map(|r| r.name.clone()).collect();
            for name in reg_names {
                let (ra, rb) = (inst_a.regs[&name], inst_b.regs[&name]);
                let (na, nb) = (b.read_reg(ra), b.read_reg(rb));
                let width = b.width(na);
                if width == 1 {
                    let eq = b.eq(na, nb);
                    let prop = b.or(not_obs, eq);
                    properties.push((format!("st__{name}_eq"), prop));
                } else {
                    for i in 0..width {
                        let (ba, bb) = (b.bit(na, i), b.bit(nb, i));
                        let eq = b.eq(ba, bb);
                        let prop = b.or(not_obs, eq);
                        properties.push((format!("st__{name}[{i}]_eq"), prop));
                    }
                }
            }
            let mem_names: Vec<String> = dut.mems().iter().map(|m| m.name.clone()).collect();
            for name in mem_names {
                let (ma, mb) = (inst_a.mems[&name], inst_b.mems[&name]);
                let depth = b.mem_depth(ma);
                for w in 0..depth {
                    let (wa, wb) = (b.read_mem_word(ma, w), b.read_mem_word(mb, w));
                    let width = b.width(wa);
                    if width == 1 {
                        let eq = b.eq(wa, wb);
                        let prop = b.or(not_obs, eq);
                        properties.push((format!("st__{name}[{w}]_eq"), prop));
                    } else {
                        for i in 0..width {
                            let (ba, bb) = (b.bit(wa, i), b.bit(wb, i));
                            let eq = b.eq(ba, bb);
                            let prop = b.or(not_obs, eq);
                            properties.push((format!("st__{name}[{w}][{i}]_eq"), prop));
                        }
                    }
                }
            }
        }

        let miter = b.build();
        FpvTestbench::new(
            miter,
            properties,
            constraints,
            obs_constraints,
            monitor,
            inst_a,
            inst_b,
            port_roles,
            self.threshold,
        )
    }
}
