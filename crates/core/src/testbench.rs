//! The generated FPV testbench and its checking interface.
//!
//! [`FpvTestbench`] owns the two-universe miter module and the generated
//! assumptions/assertions. [`FpvTestbench::check`] drives the bounded model
//! checker; a counterexample comes back as a [`CovertChannelCex`] with the
//! root-cause analysis of Sec. 4 already applied: the microarchitectural
//! state that differed between universes when the spy process started.

use autocc_aig::{cluster_cones, sequential_coi, AigLit, ConeCluster, SeqAig};
#[allow(deprecated)]
use autocc_bmc::BmcOptions;
use autocc_bmc::{
    cex_hash, content_key_with_seq, Bmc, BmcEngine, CancelToken, CertificateStatus, CheckConfig,
    CheckEngine, CheckFailure, CheckMode, CheckOutcome, CheckSpec, ContentKey, EngineJob,
    EngineOutcome, EngineRun, FailureReason, Falsifier, JobFailure, KInductionEngine, Portfolio,
    ProveOutcome, ReplayedTrace, RetryPolicy, StopCause, Trace, UnknownCause,
};
use autocc_hdl::{Bv, Instance, Module, NodeId, RegId, Waveform};
use autocc_telemetry::{SolverCounters, SpanKind, Telemetry};
use std::time::{Duration, Instant};

/// Role of each miter input port relative to the DUT interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortRole {
    /// Shared by both universes (the paper's `//AutoCC Common`).
    Common {
        /// Index of the corresponding DUT input.
        dut_port: usize,
    },
    /// Universe-a copy of a DUT input.
    UniverseA {
        /// Index of the corresponding DUT input.
        dut_port: usize,
    },
    /// Universe-b copy of a DUT input.
    UniverseB {
        /// Index of the corresponding DUT input.
        dut_port: usize,
    },
    /// The free `flush_done` oracle input.
    FlushFree,
}

/// Handles to the Listing-1 monitor signals inside the miter.
#[derive(Clone, Copy, Debug)]
pub struct MonitorHandles {
    /// Sticky register: set once the spy process is executing.
    pub spy_mode: NodeId,
    /// Consecutive-equality counter during the transfer period.
    pub eq_cnt: NodeId,
    /// Microarchitectural flush completion (free input or user condition).
    pub flush_done: NodeId,
    /// Equality of arch state, inputs, and outputs this cycle.
    pub transfer_cond: NodeId,
    /// Combinational condition that latches `spy_mode`.
    pub spy_starts: NodeId,
    /// The architectural-state equality condition.
    pub arch_state_eq: NodeId,
    /// All duplicated inputs equal this cycle (payloads valid-gated).
    pub input_signal_eq: NodeId,
    /// All outputs equal this cycle (payloads valid-gated).
    pub output_signal_eq: NodeId,
}

/// A microarchitectural state element that differed between universes
/// inside the context-switch window (the transfer period plus the spy-start
/// cycle). Differences confined to the victim phase are not reported: they
/// are the victim's legitimate divergence, not the channel's storage.
#[derive(Clone, Debug)]
pub struct StateDivergence {
    /// DUT-relative name (`pc`, `dcache.tags[2]`, ...).
    pub name: String,
    /// First cycle within the window at which the values differed.
    pub first_diff_cycle: usize,
    /// Last cycle (≤ spy start) at which the values differed.
    pub last_diff_cycle: usize,
    /// Value in universe a at `last_diff_cycle`.
    pub value_a: Bv,
    /// Value in universe b at `last_diff_cycle`.
    pub value_b: Bv,
}

/// A covert-channel counterexample: the paper's CEX, plus automatic
/// root-cause analysis.
#[derive(Clone, Debug)]
pub struct CovertChannelCex {
    /// The violated assertion (`as__<output>_eq`).
    pub property: String,
    /// Trace length in cycles — Table 1/2's "Depth".
    pub depth: usize,
    /// The miter-level input trace.
    pub trace: Trace,
    /// Cycle at which `spy_mode` first rose.
    pub spy_start_cycle: usize,
    /// Microarchitectural state that still differed between the universes
    /// when the spy began — the covert channel's storage (Sec. 3.5's
    /// `FindCause`). Ordered by DUT state declaration order.
    pub diverging_state: Vec<StateDivergence>,
}

/// Outcome of running AutoCC on a DUT.
#[derive(Clone, Debug)]
pub enum AutoCcOutcome {
    /// A covert channel (or RTL bug) was found.
    Cex(Box<CovertChannelCex>),
    /// No observable difference exists within the bound (bounded proof).
    Clean {
        /// Proven bound, in cycles.
        bound: usize,
    },
    /// The assertions hold for unbounded executions (full proof).
    Proved {
        /// Induction depth that closed the proof.
        induction_depth: usize,
    },
    /// Conflict budget exhausted first (deterministic).
    Exhausted {
        /// Deepest fully-proven depth, in cycles.
        bound: usize,
    },
    /// Stopped by a wall-clock budget or cancellation (machine-dependent,
    /// so kept apart from [`AutoCcOutcome::Exhausted`]).
    Unknown {
        /// Deepest fully-proven depth, in cycles.
        bound: usize,
        /// What stopped the run.
        cause: UnknownCause,
    },
    /// One or more check jobs failed internally (contained panic, replay
    /// mismatch, ...). The run survives; the failures carry the details.
    Failed {
        /// Every contained failure, in property order.
        failures: Vec<JobFailure>,
    },
}

impl AutoCcOutcome {
    /// The counterexample, if any.
    pub fn cex(&self) -> Option<&CovertChannelCex> {
        match self {
            AutoCcOutcome::Cex(c) => Some(c),
            _ => None,
        }
    }

    /// True when no counterexample exists within the explored bound.
    pub fn is_clean(&self) -> bool {
        matches!(
            self,
            AutoCcOutcome::Clean { .. } | AutoCcOutcome::Proved { .. }
        )
    }

    /// True when the run degraded instead of answering: a failure or a
    /// machine-dependent stop.
    pub fn is_degraded(&self) -> bool {
        matches!(
            self,
            AutoCcOutcome::Unknown { .. } | AutoCcOutcome::Failed { .. }
        )
    }
}

/// Which semantic class a generated property belongs to.
///
/// The class decides which constraint set a property is checked under and
/// whether its result may move the table-level outcome. Exact-class
/// results fully determine the row; attribution-class results feed the
/// per-property verdict map (and degrade the row only on internal
/// failures, never on ordinary found/not-found answers), so paper-table
/// verdicts are identical at every granularity *by construction*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropertyClass {
    /// Listing-1 monitor properties (`as__*`, `inv__*`): exact covert-
    /// channel semantics under the `spy_mode` constraints.
    Exact,
    /// Per-state attribution properties (`st__*`): observer-monitor
    /// semantics under the `obs_mode` constraints.
    Attribution,
}

/// The class of a generated property, derived from its name prefix.
pub fn property_class(name: &str) -> PropertyClass {
    if name.starts_with("st__") {
        PropertyClass::Attribution
    } else {
        PropertyClass::Exact
    }
}

/// Splits an attribution state name like `regfile[2][7]` or `pc_f[3]` into
/// its base name and trailing bracketed indices. Returns `None` when the
/// bracket syntax is malformed (unterminated, non-numeric, or trailing
/// garbage after the last `]`).
fn parse_state_indices(state_name: &str) -> Option<(&str, Vec<usize>)> {
    let Some(open) = state_name.find('[') else {
        return Some((state_name, Vec::new()));
    };
    let (base, mut rest) = state_name.split_at(open);
    let mut indices = Vec::new();
    while !rest.is_empty() {
        let inner = rest.strip_prefix('[')?;
        let (idx, tail) = inner.split_once(']')?;
        indices.push(idx.parse().ok()?);
        rest = tail;
    }
    Some((base, indices))
}

/// Per-property outcome recorded in a [`CheckReport`]'s verdict map.
///
/// A compact projection of [`AutoCcOutcome`] — one number per verdict —
/// so hundreds of fine-grained verdicts stay cheap to journal and
/// render. The CEX *trace* lives only in the report-level outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PropertyVerdict {
    /// The property is violated at this depth.
    Cex {
        /// Trace length in cycles.
        depth: usize,
    },
    /// The property holds up to this bound.
    Clean {
        /// Proven bound, in cycles.
        bound: usize,
    },
    /// The property holds for unbounded executions.
    Proved {
        /// Induction depth that closed the proof.
        induction_depth: usize,
    },
    /// Conflict budget exhausted first (deterministic).
    Exhausted {
        /// Deepest fully-proven depth.
        bound: usize,
    },
    /// Stopped by wall clock or cancellation (machine-dependent).
    Unknown {
        /// Deepest fully-proven depth.
        bound: usize,
    },
    /// The check job failed internally.
    Failed,
}

impl PropertyVerdict {
    /// Stable lower-case tag used in journal records.
    pub fn kind(&self) -> &'static str {
        match self {
            PropertyVerdict::Cex { .. } => "cex",
            PropertyVerdict::Clean { .. } => "clean",
            PropertyVerdict::Proved { .. } => "proved",
            PropertyVerdict::Exhausted { .. } => "exhausted",
            PropertyVerdict::Unknown { .. } => "unknown",
            PropertyVerdict::Failed => "failed",
        }
    }

    /// The verdict's single numeric payload (depth or bound; 0 for
    /// failures).
    pub fn num(&self) -> usize {
        match *self {
            PropertyVerdict::Cex { depth } => depth,
            PropertyVerdict::Clean { bound } => bound,
            PropertyVerdict::Proved { induction_depth } => induction_depth,
            PropertyVerdict::Exhausted { bound } => bound,
            PropertyVerdict::Unknown { bound } => bound,
            PropertyVerdict::Failed => 0,
        }
    }

    /// Inverse of the `(kind, num)` encoding.
    pub fn from_kind(kind: &str, num: usize) -> Option<PropertyVerdict> {
        Some(match kind {
            "cex" => PropertyVerdict::Cex { depth: num },
            "clean" => PropertyVerdict::Clean { bound: num },
            "proved" => PropertyVerdict::Proved {
                induction_depth: num,
            },
            "exhausted" => PropertyVerdict::Exhausted { bound: num },
            "unknown" => PropertyVerdict::Unknown { bound: num },
            "failed" => PropertyVerdict::Failed,
            _ => return None,
        })
    }
}

/// Result of a testbench run: the outcome, its wall-clock time (Table
/// 1/2's "Time"), and the solver work behind it. `stats` is collected
/// unconditionally (a struct copy per job, no clock reads), so reports can
/// print conflict counts even with telemetry disabled.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The outcome.
    pub outcome: AutoCcOutcome,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Aggregate solver counters across every job of the run.
    pub stats: SolverCounters,
    /// Per-property verdicts in property-registration order, naming
    /// which signal or state element each answer is about. Populated by
    /// the portfolio check paths; single-`Bmc` paths record what their
    /// one solve can attribute.
    pub verdicts: Vec<(String, PropertyVerdict)>,
    /// Whether the outcome deciding this row carries an independently
    /// checked certificate: a DRAT-checked proof transcript for
    /// UNSAT-backed verdicts (Clean, Proved), the replay-validated trace
    /// hash for counterexamples. Always `Uncertified` unless the run was
    /// made with [`CheckConfig::certify`]; inconclusive or failed rows
    /// never carry one.
    pub certificate: CertificateStatus,
}

/// The former name of [`CheckReport`].
#[deprecated(note = "use `CheckReport`")]
pub type RunReport = CheckReport;

/// Execution settings for the engine/portfolio checking path.
#[deprecated(note = "use `CheckConfig`; convert with `CheckConfig::from(&settings)`")]
#[allow(deprecated)]
#[derive(Clone, Debug)]
pub struct CheckSettings {
    /// Solver budgets (depth, conflicts, wall-clock).
    pub options: BmcOptions,
    /// Worker threads for the portfolio scheduler (min 1).
    pub jobs: usize,
    /// Per-property cone-of-influence slicing.
    pub slice: bool,
    /// Retry policy for contained job panics.
    pub retry: RetryPolicy,
}

#[allow(deprecated)]
impl CheckSettings {
    /// Serial, unsliced settings — the legacy behaviour.
    pub fn serial(options: &BmcOptions) -> CheckSettings {
        CheckSettings {
            options: options.clone(),
            jobs: 1,
            slice: false,
            retry: RetryPolicy::default(),
        }
    }

    /// Sets the worker count (clamped to at least 1).
    pub fn with_jobs(mut self, jobs: usize) -> CheckSettings {
        self.jobs = jobs.max(1);
        self
    }

    /// Switches cone-of-influence slicing on or off.
    pub fn with_slice(mut self, slice: bool) -> CheckSettings {
        self.slice = slice;
        self
    }

    /// Sets the number of retries for panicked jobs.
    pub fn with_retries(mut self, retries: u32) -> CheckSettings {
        self.retry = RetryPolicy::with_retries(retries);
        self
    }
}

#[allow(deprecated)]
impl From<&CheckSettings> for CheckConfig {
    fn from(settings: &CheckSettings) -> CheckConfig {
        CheckConfig::from(&settings.options)
            .jobs(settings.jobs)
            .slice(settings.slice)
            .retries(settings.retry.max_retries)
            .retry_escalation(settings.retry.escalation)
    }
}

/// Maps a checker stop cause onto the outcome taxonomy: conflict budgets
/// stay deterministic exhaustion, wall-clock and cancellation degrade to
/// [`AutoCcOutcome::Unknown`].
fn stop_to_outcome(bound: usize, cause: StopCause) -> AutoCcOutcome {
    match cause {
        StopCause::ConflictBudget => AutoCcOutcome::Exhausted { bound },
        StopCause::TimeBudget => AutoCcOutcome::Unknown {
            bound,
            cause: UnknownCause::TimeBudget,
        },
        StopCause::Cancelled => AutoCcOutcome::Unknown {
            bound,
            cause: UnknownCause::Cancelled,
        },
    }
}

/// Projects one batch-level outcome onto per-property verdicts. The
/// batch's properties share a single solve, so a counterexample pins its
/// own property at the violation depth and bounds every sibling one frame
/// shy (all earlier frames were UNSAT for the whole batch); every other
/// outcome applies to each property uniformly.
fn batch_verdicts(names: &[String], outcome: &AutoCcOutcome) -> Vec<(String, PropertyVerdict)> {
    names
        .iter()
        .map(|n| {
            let v = match outcome {
                AutoCcOutcome::Cex(cc) => {
                    if *n == cc.property {
                        PropertyVerdict::Cex { depth: cc.depth }
                    } else {
                        PropertyVerdict::Clean {
                            bound: cc.depth.saturating_sub(1),
                        }
                    }
                }
                AutoCcOutcome::Clean { bound } => PropertyVerdict::Clean { bound: *bound },
                AutoCcOutcome::Proved { induction_depth } => PropertyVerdict::Proved {
                    induction_depth: *induction_depth,
                },
                AutoCcOutcome::Exhausted { bound } => PropertyVerdict::Exhausted { bound: *bound },
                AutoCcOutcome::Unknown { bound, .. } => PropertyVerdict::Unknown { bound: *bound },
                AutoCcOutcome::Failed { .. } => PropertyVerdict::Failed,
            };
            (n.clone(), v)
        })
        .collect()
}

/// The verdict of a single-property engine run.
fn run_verdict(outcome: &EngineOutcome) -> PropertyVerdict {
    match outcome {
        EngineOutcome::Cex(cex) => PropertyVerdict::Cex { depth: cex.depth },
        EngineOutcome::BoundReached { depth } => PropertyVerdict::Clean { bound: *depth },
        EngineOutcome::Proved { induction_depth } => PropertyVerdict::Proved {
            induction_depth: *induction_depth,
        },
        EngineOutcome::Exhausted { depth } => PropertyVerdict::Exhausted { bound: *depth },
        EngineOutcome::Unknown { depth, .. } => PropertyVerdict::Unknown { bound: *depth },
        EngineOutcome::Failed(_) => PropertyVerdict::Failed,
    }
}

/// Lifts a checker-level failure into a job failure for reporting.
/// Restricts a candidate certificate to conclusive outcomes: a failed row
/// (contained panic, replay mismatch, rejected proof) or an inconclusive
/// one (budget stop) must never look certified, whatever was collected
/// along the way.
fn gate_certificate(outcome: &AutoCcOutcome, candidate: CertificateStatus) -> CertificateStatus {
    match outcome {
        AutoCcOutcome::Cex(_) | AutoCcOutcome::Clean { .. } | AutoCcOutcome::Proved { .. } => {
            candidate
        }
        _ => CertificateStatus::Uncertified,
    }
}

fn check_failure_to_job(engine: &str, failure: CheckFailure) -> JobFailure {
    JobFailure {
        engine: engine.to_string(),
        property: None,
        depth: failure.depth,
        reason: failure.reason,
        detail: failure.detail,
        attempts: 1,
    }
}

/// One group of same-class properties whose sequential cones overlap
/// enough (Jaccard, [`CheckConfig::cluster_overlap`]) to be sliced and
/// bit-blasted as a single sub-miter.
#[derive(Clone, Debug)]
pub struct PropertyCluster {
    /// Indices into [`FpvTestbench::properties`], ascending.
    pub members: Vec<usize>,
    /// The class every member shares (clusters never mix classes: the
    /// two classes run under different constraint sets).
    pub class: PropertyClass,
    /// State bits in the cluster's union cone (properties plus the class
    /// constraint set — exactly what the cluster's job slices to).
    pub cone_state_bits: usize,
    /// Input-port bits in the cluster's union cone.
    pub cone_port_bits: usize,
    /// Display label: the first member's property name, with a `+N`
    /// suffix when N more properties share the cluster.
    pub label: String,
}

impl PropertyCluster {
    /// Total bits (state + ports) of the sliced cone.
    pub fn cone_bits(&self) -> usize {
        self.cone_state_bits + self.cone_port_bits
    }
}

/// The decomposed check plan for a testbench under one config: every
/// property assigned to exactly one cluster, exact-class clusters first.
#[derive(Clone, Debug)]
pub struct ClusterPlan {
    /// The clusters, in deterministic plan order (exact class first,
    /// then attribution, each in first-member order).
    pub clusters: Vec<PropertyCluster>,
    /// State bits of the whole (unsliced) miter, for cone-size ratios.
    pub total_state_bits: usize,
    /// Input-port bits of the whole miter.
    pub total_port_bits: usize,
}

impl ClusterPlan {
    /// Number of properties across all clusters.
    pub fn num_properties(&self) -> usize {
        self.clusters.iter().map(|c| c.members.len()).sum()
    }

    /// Mean union-cone size over clusters, in bits.
    pub fn mean_cone_bits(&self) -> f64 {
        if self.clusters.is_empty() {
            return 0.0;
        }
        let sum: usize = self.clusters.iter().map(|c| c.cone_bits()).sum();
        sum as f64 / self.clusters.len() as f64
    }

    /// Largest union cone over clusters, in bits.
    pub fn max_cone_bits(&self) -> usize {
        self.clusters
            .iter()
            .map(|c| c.cone_bits())
            .max()
            .unwrap_or(0)
    }
}

/// A generated AutoCC FPV testbench (Sec. 3.3).
pub struct FpvTestbench {
    miter: Module,
    properties: Vec<(String, NodeId)>,
    constraints: Vec<NodeId>,
    /// Attribution-class assumptions (`obs_mode |-> input_eq` plus user
    /// hooks); empty unless the spec was generated at
    /// [`autocc_bmc::Granularity::Register`].
    obs_constraints: Vec<NodeId>,
    monitor: MonitorHandles,
    inst_a: Instance,
    inst_b: Instance,
    port_roles: Vec<PortRole>,
    threshold: u32,
}

impl FpvTestbench {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        miter: Module,
        properties: Vec<(String, NodeId)>,
        constraints: Vec<NodeId>,
        obs_constraints: Vec<NodeId>,
        monitor: MonitorHandles,
        inst_a: Instance,
        inst_b: Instance,
        port_roles: Vec<PortRole>,
        threshold: u32,
    ) -> FpvTestbench {
        FpvTestbench {
            miter,
            properties,
            constraints,
            obs_constraints,
            monitor,
            inst_a,
            inst_b,
            port_roles,
            threshold,
        }
    }

    /// The two-universe wrapper module (the FT's `wrapper.v`).
    pub fn miter(&self) -> &Module {
        &self.miter
    }

    /// Generated assertions: `(name, 1-bit node)`, one per DUT output —
    /// plus, at register granularity, one `st__*` attribution property
    /// per DUT state element.
    pub fn properties(&self) -> &[(String, NodeId)] {
        &self.properties
    }

    /// The exact-class (`as__`/`inv__`) subset of [`Self::properties`],
    /// with original `(global index, name, node)` positions. These are
    /// the properties whose answers decide the table-level outcome.
    pub fn exact_properties(&self) -> Vec<(usize, String, NodeId)> {
        self.properties
            .iter()
            .enumerate()
            .filter(|(_, (n, _))| property_class(n) == PropertyClass::Exact)
            .map(|(i, (n, p))| (i, n.clone(), *p))
            .collect()
    }

    /// Generated assumptions (including `spy_mode |-> input_eq`).
    pub fn constraints(&self) -> &[NodeId] {
        &self.constraints
    }

    /// Attribution-class assumptions (`obs_mode |-> input_eq` plus user
    /// hooks); empty unless generated at register granularity.
    pub fn obs_constraints(&self) -> &[NodeId] {
        &self.obs_constraints
    }

    /// The constraint set a property of the given name is checked (and
    /// replayed) under.
    pub fn class_constraints(&self, property: &str) -> &[NodeId] {
        match property_class(property) {
            PropertyClass::Exact => &self.constraints,
            PropertyClass::Attribution => &self.obs_constraints,
        }
    }

    /// Monitor signal handles.
    pub fn monitor(&self) -> &MonitorHandles {
        &self.monitor
    }

    /// Universe-a instance handles.
    pub fn instance_a(&self) -> &Instance {
        &self.inst_a
    }

    /// Universe-b instance handles.
    pub fn instance_b(&self) -> &Instance {
        &self.inst_b
    }

    /// Role of each miter input port.
    pub fn port_roles(&self) -> &[PortRole] {
        &self.port_roles
    }

    /// The configured transfer-period threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    fn configure<'t>(&'t self, telemetry: Telemetry) -> Bmc<'t> {
        // Single-`Bmc` paths check the exact class only: one solver
        // instance has one constraint set, and mixing the observer
        // assumptions into it would restrict the exact properties'
        // traces. Attribution properties are checked by the clustered
        // path, each cluster under its own class constraints.
        let mut bmc = Bmc::with_telemetry(&self.miter, telemetry);
        for &c in &self.constraints {
            bmc.add_constraint(c);
        }
        for (_, name, p) in self.exact_properties() {
            bmc.add_property(name, p);
        }
        bmc
    }

    /// Runs the exhaustive search for covert channels up to
    /// `config.max_depth` cycles.
    pub fn check(&self, config: &CheckConfig) -> CheckReport {
        let start = Instant::now();
        let span = config.telemetry.child(SpanKind::Check, "check");
        let mut run_config = config.clone();
        run_config.telemetry = span.clone();
        let mut bmc = self.configure(span.clone());
        let mut certificate = CertificateStatus::Uncertified;
        let outcome = match bmc.check(&run_config) {
            CheckOutcome::Cex(cex) => {
                if run_config.certify {
                    certificate = CertificateStatus::Certified {
                        hash: cex_hash(&cex),
                    };
                }
                self.certified_outcome(&cex, &span)
            }
            CheckOutcome::BoundReached { depth } => {
                certificate = bmc.certificate();
                AutoCcOutcome::Clean { bound: depth }
            }
            CheckOutcome::Exhausted { depth, cause } => stop_to_outcome(depth, cause),
            CheckOutcome::Failed(failure) => AutoCcOutcome::Failed {
                failures: vec![check_failure_to_job("bmc", failure)],
            },
        };
        let stats = bmc.counters();
        span.close();
        let names: Vec<String> = self
            .exact_properties()
            .into_iter()
            .map(|(_, n, _)| n)
            .collect();
        let verdicts = batch_verdicts(&names, &outcome);
        CheckReport {
            certificate: gate_certificate(&outcome, certificate),
            outcome,
            elapsed: start.elapsed(),
            stats,
            verdicts,
        }
    }

    /// Runs the covert-channel search through the check-engine portfolio:
    /// one [`BmcEngine`] job per generated assertion, optionally sliced to
    /// that assertion's sequential cone of influence, fanned across
    /// `settings.jobs` worker threads.
    ///
    /// The merge is deterministic: the reported counterexample is the one
    /// with the smallest `(depth, property index)`, exhaustion bounds take
    /// the minimum over jobs, and results are merged in property order —
    /// so `jobs = 1` and `jobs = N` agree exactly (absent time budgets,
    /// which are inherently machine-dependent).
    ///
    /// Every job runs panic-contained under the config's retry policy; a
    /// job whose retries are spent degrades that property to a failure
    /// instead of aborting the batch. A counterexample is reported only
    /// after [`FpvTestbench::certify_cex`] replays it successfully.
    pub fn check_portfolio(&self, config: &CheckConfig) -> CheckReport {
        self.check_portfolio_with(config, &BmcEngine)
    }

    /// [`FpvTestbench::check_portfolio`] with an explicit engine — the
    /// seam the fault-injection tests use to exercise panic containment,
    /// hang interruption, and CEX certification with misbehaving engines.
    ///
    /// At a decomposed [`CheckConfig::granularity`] the property set is
    /// routed through [`FpvTestbench::cluster_plan`]: one engine job per
    /// cone cluster (sliced and bit-blasted once per cluster), scheduled
    /// largest-cone-first, merged class-aware so the table-level outcome
    /// still derives exclusively from the exact-class properties.
    pub fn check_portfolio_with(
        &self,
        config: &CheckConfig,
        engine: &dyn CheckEngine,
    ) -> CheckReport {
        if let Some(plan) = self.cluster_plan(config) {
            return self.check_clustered(&plan, config, engine);
        }
        let start = Instant::now();
        let exact = self.exact_properties();
        // One check span per generated assertion; the spans stay open
        // while the scheduler runs and close once their job has reported.
        let mut spans: Vec<Telemetry> = Vec::with_capacity(exact.len());
        let jobs: Vec<EngineJob<'_, '_>> = exact
            .iter()
            .map(|(_, name, p)| {
                let span = config.telemetry.child(SpanKind::Check, name);
                spans.push(span.clone());
                let mut job_config = config.clone();
                job_config.telemetry = span;
                EngineJob {
                    engine,
                    spec: CheckSpec::new(&self.miter)
                        .property(name.clone(), *p)
                        .constraints(&self.constraints),
                    config: job_config,
                    property: Some(name.clone()),
                    cancel: CancelToken::new(),
                }
            })
            .collect();
        let runs = Portfolio::new(config.jobs).run_engine_jobs(jobs);
        for span in &spans {
            span.close();
        }
        let mut stats = SolverCounters::default();
        for run in &runs {
            stats += &run.counters;
        }

        // Deterministic merge, in property-registration order.
        let mut verdicts: Vec<(String, PropertyVerdict)> = Vec::with_capacity(runs.len());
        let mut best_cex: Option<(usize, usize, autocc_bmc::Cex, CertificateStatus)> = None;
        let mut failures: Vec<JobFailure> = Vec::new();
        let mut unknown: Option<(usize, UnknownCause)> = None;
        let mut exhausted_bound: Option<usize> = None;
        let mut clean_bound: Option<usize> = None;
        // A Clean row claims every property held, so its certificate folds
        // every job's certificate (in property order): one uncertified
        // member makes the row uncertified.
        let mut unsat_cert: Option<CertificateStatus> = None;
        for (i, run) in runs.into_iter().enumerate() {
            verdicts.push((exact[i].1.clone(), run_verdict(&run.outcome)));
            let run_cert = run.certificate;
            match run.outcome {
                EngineOutcome::Cex(cex) => {
                    if best_cex
                        .as_ref()
                        .is_none_or(|(d, j, _, _)| (cex.depth, i) < (*d, *j))
                    {
                        best_cex = Some((cex.depth, i, cex, run_cert));
                    }
                }
                EngineOutcome::Exhausted { depth } => {
                    exhausted_bound = Some(exhausted_bound.map_or(depth, |b| b.min(depth)));
                }
                EngineOutcome::Unknown { depth, cause } => {
                    unknown = Some(match unknown {
                        None => (depth, cause),
                        // Minimum bound; the cause of the first (property
                        // order) unknown job keeps the merge deterministic.
                        Some((b, c)) => (b.min(depth), c),
                    });
                }
                EngineOutcome::Failed(f) => failures.push(f),
                EngineOutcome::BoundReached { depth }
                | EngineOutcome::Proved {
                    induction_depth: depth,
                } => {
                    clean_bound = Some(clean_bound.map_or(depth, |b| b.min(depth)));
                    unsat_cert = Some(match unsat_cert {
                        None => run_cert,
                        Some(prev) => prev.combine(&run_cert),
                    });
                }
            }
        }
        // A certified counterexample outranks everything; a CEX that fails
        // certification is a checker fault and joins the failures instead.
        let mut certified: Option<CovertChannelCex> = None;
        let mut cex_cert = CertificateStatus::Uncertified;
        if let Some((_, _, cex, cert)) = best_cex {
            let certify = config.telemetry.child(SpanKind::Phase, "certify");
            match self.certify_cex(&cex) {
                Ok(cc) => {
                    certified = Some(cc);
                    cex_cert = cert;
                }
                Err(f) => failures.push(f),
            }
            certify.close();
        }
        let outcome = if let Some(cc) = certified {
            AutoCcOutcome::Cex(Box::new(cc))
        } else if !failures.is_empty() {
            AutoCcOutcome::Failed { failures }
        } else if let Some((bound, cause)) = unknown {
            AutoCcOutcome::Unknown { bound, cause }
        } else if let Some(bound) = exhausted_bound {
            AutoCcOutcome::Exhausted { bound }
        } else {
            AutoCcOutcome::Clean {
                bound: clean_bound.unwrap_or(config.max_depth),
            }
        };
        let candidate = match &outcome {
            AutoCcOutcome::Cex(_) => cex_cert,
            _ => unsat_cert.unwrap_or(CertificateStatus::Uncertified),
        };
        CheckReport {
            certificate: gate_certificate(&outcome, candidate),
            outcome,
            elapsed: start.elapsed(),
            stats,
            verdicts,
        }
    }

    /// Computes the decomposed check plan for this testbench under
    /// `config`, or `None` at [`autocc_bmc::Granularity::Monolithic`].
    ///
    /// Per property, the plan computes the sequential COI of the property
    /// root *plus its class constraint set* — exactly the slice the
    /// cluster's engine job encodes. Attribution properties are then
    /// greedily clustered when their cones overlap by at least
    /// [`CheckConfig::cluster_overlap`] (Jaccard); exact properties stay
    /// singleton clusters so the decomposed table reproduces the
    /// monolithic path's per-property witness choice. Exact and
    /// attribution properties never share a cluster: they run under
    /// different constraint sets. The plan is deterministic in property
    /// registration order.
    pub fn cluster_plan(&self, config: &CheckConfig) -> Option<ClusterPlan> {
        if !config.granularity.is_decomposed() {
            return None;
        }
        let seq = SeqAig::from_module(&self.miter);
        let constraint_roots = |constraints: &[NodeId]| -> Vec<AigLit> {
            constraints
                .iter()
                .flat_map(|c| seq.node_lits[c.index()].iter().copied())
                .collect()
        };
        let exact_roots = constraint_roots(&self.constraints);
        let obs_roots = constraint_roots(&self.obs_constraints);

        let mut clusters: Vec<PropertyCluster> = Vec::new();
        for class in [PropertyClass::Exact, PropertyClass::Attribution] {
            let members: Vec<usize> = (0..self.properties.len())
                .filter(|&i| property_class(&self.properties[i].0) == class)
                .collect();
            if members.is_empty() {
                continue;
            }
            let class_roots = match class {
                PropertyClass::Exact => &exact_roots,
                PropertyClass::Attribution => &obs_roots,
            };
            let cones: Vec<_> = members
                .iter()
                .map(|&i| {
                    let (_, p) = self.properties[i];
                    let mut roots: Vec<AigLit> = seq.node_lits[p.index()].to_vec();
                    roots.extend_from_slice(class_roots);
                    sequential_coi(&seq, &roots)
                })
                .collect();
            // Exact-class properties are never batched: each gets its own
            // singleton cluster, so the decomposed path runs the same
            // one-property-per-solve jobs as the monolithic path and the
            // merge reproduces its `(depth, property index)` witness choice
            // exactly. A batched solve reports whichever member the SAT
            // model happens to violate — a model-dependent witness that can
            // diverge from the monolithic table. Attribution properties
            // carry no such parity obligation and cluster by cone overlap.
            let groups: Vec<ConeCluster> = match class {
                PropertyClass::Exact => cones
                    .iter()
                    .enumerate()
                    .map(|(local, cone)| ConeCluster {
                        members: vec![local],
                        cone: cone.clone(),
                    })
                    .collect(),
                PropertyClass::Attribution => cluster_cones(&cones, config.cluster_overlap),
            };
            for cluster in groups {
                let global: Vec<usize> = cluster.members.iter().map(|&l| members[l]).collect();
                let first = &self.properties[global[0]].0;
                let label = if global.len() == 1 {
                    first.clone()
                } else {
                    format!("{first}+{}", global.len() - 1)
                };
                clusters.push(PropertyCluster {
                    members: global,
                    class,
                    cone_state_bits: cluster.cone.num_kept_state(),
                    cone_port_bits: cluster.cone.num_kept_ports(),
                    label,
                });
            }
        }
        Some(ClusterPlan {
            clusters,
            total_state_bits: seq.state_cur.len(),
            total_port_bits: seq.input_lits.iter().map(|p| p.len()).sum(),
        })
    }

    /// Per-cluster content keys (bit-blasting the miter once): the key of
    /// cluster `i` covers its sliced sub-miter, member properties, and
    /// class constraints, so a DUT edit re-solves only the clusters whose
    /// cones it actually touched.
    pub fn cluster_keys(
        &self,
        plan: &ClusterPlan,
        config: &CheckConfig,
        mode: CheckMode,
    ) -> Vec<ContentKey> {
        let seq = SeqAig::from_module(&self.miter);
        plan.clusters
            .iter()
            .map(|cluster| {
                let props: Vec<(String, NodeId)> = cluster
                    .members
                    .iter()
                    .map(|&i| self.properties[i].clone())
                    .collect();
                let constraints = self.cluster_constraints(cluster);
                content_key_with_seq(&seq, &props, constraints, config, mode)
            })
            .collect()
    }

    /// The constraint set a cluster's job runs under.
    fn cluster_constraints(&self, cluster: &PropertyCluster) -> &[NodeId] {
        match cluster.class {
            PropertyClass::Exact => &self.constraints,
            PropertyClass::Attribution => &self.obs_constraints,
        }
    }

    /// Runs one cluster of the plan as a single engine job — the miter
    /// sliced to the cluster's cone, member properties checked together
    /// under the class constraint set — and converts the result into a
    /// cluster-level report with per-member verdicts. Counterexamples are
    /// certified before being reported. Cluster jobs always slice
    /// regardless of `config.slice`: the cluster exists precisely to
    /// confine the encoding to its cone, slicing is verdict-invariant,
    /// and without it every cluster would re-encode the full miter.
    pub fn check_cluster(
        &self,
        cluster: &PropertyCluster,
        config: &CheckConfig,
        engine: &dyn CheckEngine,
    ) -> CheckReport {
        let start = Instant::now();
        let span = config.telemetry.child(SpanKind::Check, &cluster.label);
        span.gauge("cone_state_bits", cluster.cone_state_bits as u64);
        span.gauge("cone_port_bits", cluster.cone_port_bits as u64);
        span.gauge("cluster_properties", cluster.members.len() as u64);
        let mut job_config = config.clone().slice(true);
        job_config.telemetry = span.clone();
        let job = EngineJob {
            engine,
            spec: self.cluster_spec(cluster),
            config: job_config,
            property: Some(cluster.label.clone()),
            cancel: CancelToken::new(),
        };
        let runs = Portfolio::new(1).run_engine_jobs(vec![job]);
        let run = runs.into_iter().next().expect("one job yields one run");
        let report = self.cluster_report(cluster, run, &span);
        span.close();
        CheckReport {
            elapsed: start.elapsed(),
            ..report
        }
    }

    /// The check spec of one cluster: member properties in registration
    /// order plus the class constraint set, labelled with the cluster.
    fn cluster_spec(&self, cluster: &PropertyCluster) -> CheckSpec<'_> {
        let mut spec = CheckSpec::new(&self.miter)
            .constraints(self.cluster_constraints(cluster))
            .group(cluster.label.clone());
        for &i in &cluster.members {
            let (name, p) = &self.properties[i];
            spec = spec.property(name.clone(), *p);
        }
        spec
    }

    /// Converts one cluster's engine run into a cluster-level report:
    /// per-member verdicts plus an outcome (with certification for
    /// counterexamples). `elapsed` is left zero for the caller to fill.
    fn cluster_report(
        &self,
        cluster: &PropertyCluster,
        run: EngineRun,
        telemetry: &Telemetry,
    ) -> CheckReport {
        let names: Vec<String> = cluster
            .members
            .iter()
            .map(|&i| self.properties[i].0.clone())
            .collect();
        let outcome = match run.outcome {
            EngineOutcome::Cex(cex) => self.certified_outcome(&cex, telemetry),
            EngineOutcome::BoundReached { depth } => AutoCcOutcome::Clean { bound: depth },
            EngineOutcome::Proved { induction_depth } => AutoCcOutcome::Proved { induction_depth },
            EngineOutcome::Exhausted { depth } => AutoCcOutcome::Exhausted { bound: depth },
            EngineOutcome::Unknown { depth, cause } => AutoCcOutcome::Unknown {
                bound: depth,
                cause,
            },
            EngineOutcome::Failed(f) => AutoCcOutcome::Failed { failures: vec![f] },
        };
        let mut verdicts = batch_verdicts(&names, &outcome);
        if let AutoCcOutcome::Cex(cc) = &outcome {
            self.widen_batch_cex(cluster, cc, &mut verdicts);
        }
        CheckReport {
            // The engine stamped the certificate (transcript hash for
            // UNSAT answers, trace hash for counterexamples); a replay
            // mismatch turned the outcome into Failed and the gate drops
            // the stale certificate with it.
            certificate: gate_certificate(&outcome, run.certificate),
            outcome,
            elapsed: Duration::ZERO,
            stats: run.counters,
            verdicts,
        }
    }

    /// A batched solve certifies one member's counterexample, but the same
    /// witness trace often violates sibling members too (several bits of
    /// one diverging register, say). Replaying the certified trace once and
    /// re-evaluating every member keeps the verdict map honest: without
    /// this, clustering would mask all but one leaking bit behind
    /// `Clean { bound: depth - 1 }`.
    fn widen_batch_cex(
        &self,
        cluster: &PropertyCluster,
        cc: &CovertChannelCex,
        verdicts: &mut [(String, PropertyVerdict)],
    ) {
        if cluster.members.len() < 2 {
            return;
        }
        let replay = cc.trace.replay(&self.miter);
        // Certification already rejected empty traces, so `depth >= 1`.
        let last = cc.depth - 1;
        for (&i, v) in cluster.members.iter().zip(verdicts.iter_mut()) {
            let (_, prop) = &self.properties[i];
            if !replay.node(last, *prop).as_bool() {
                v.1 = PropertyVerdict::Cex { depth: cc.depth };
            }
        }
    }

    /// Merges per-cluster reports (in plan order) into the task-level
    /// report. The merge is class-aware: exact-class outcomes alone
    /// decide the row — best certified CEX by `(depth, global property
    /// index)`, then failures, then minimum unknown/exhausted/clean
    /// bounds — while attribution-class answers only populate the verdict
    /// map. Attribution *failures* (contained panics, replay mismatches)
    /// still degrade the row: a broken check must never read as clean.
    pub fn merge_cluster_reports(
        &self,
        plan: &ClusterPlan,
        reports: Vec<CheckReport>,
        config: &CheckConfig,
    ) -> CheckReport {
        assert_eq!(plan.clusters.len(), reports.len());
        let mut stats = SolverCounters::default();
        let mut elapsed = Duration::ZERO;
        let mut indexed_verdicts: Vec<(usize, (String, PropertyVerdict))> = Vec::new();
        let mut best_cex: Option<(usize, usize, CovertChannelCex, CertificateStatus)> = None;
        let mut failures: Vec<JobFailure> = Vec::new();
        let mut unknown: Option<(usize, UnknownCause)> = None;
        let mut exhausted_bound: Option<usize> = None;
        let mut clean_bound: Option<usize> = None;
        // The row certificate certifies the row outcome, and exact-class
        // clusters alone decide the row — so a Clean row folds the exact
        // clusters' certificates (in plan order). Attribution clusters are
        // still individually checked; a failed attribution certification
        // degrades the row through the failures path like any failure.
        let mut unsat_cert: Option<CertificateStatus> = None;
        for (cluster, report) in plan.clusters.iter().zip(reports) {
            stats += &report.stats;
            elapsed += report.elapsed;
            let report_cert = report.certificate;
            for (&i, v) in cluster.members.iter().zip(report.verdicts) {
                indexed_verdicts.push((i, v));
            }
            let exact = cluster.class == PropertyClass::Exact;
            match report.outcome {
                AutoCcOutcome::Cex(cc) if exact => {
                    let index = self
                        .properties
                        .iter()
                        .position(|(n, _)| *n == cc.property)
                        .unwrap_or(usize::MAX);
                    if best_cex
                        .as_ref()
                        .is_none_or(|(d, j, _, _)| (cc.depth, index) < (*d, *j))
                    {
                        best_cex = Some((cc.depth, index, *cc, report_cert));
                    }
                }
                // An attribution CEX is the attribution itself — it names
                // the leaking state element in the verdict map — but it
                // is not an exact-semantics channel witness, so it never
                // decides the row.
                AutoCcOutcome::Cex(_) => {}
                AutoCcOutcome::Clean { bound }
                | AutoCcOutcome::Proved {
                    induction_depth: bound,
                } if exact => {
                    clean_bound = Some(clean_bound.map_or(bound, |b| b.min(bound)));
                    unsat_cert = Some(match unsat_cert {
                        None => report_cert,
                        Some(prev) => prev.combine(&report_cert),
                    });
                }
                AutoCcOutcome::Clean { .. } | AutoCcOutcome::Proved { .. } => {}
                AutoCcOutcome::Exhausted { bound } if exact => {
                    exhausted_bound = Some(exhausted_bound.map_or(bound, |b| b.min(bound)));
                }
                AutoCcOutcome::Exhausted { .. } => {}
                AutoCcOutcome::Unknown { bound, cause } if exact => {
                    unknown = Some(match unknown {
                        None => (bound, cause),
                        Some((b, c)) => (b.min(bound), c),
                    });
                }
                AutoCcOutcome::Unknown { .. } => {}
                // Failures degrade the row whatever the class.
                AutoCcOutcome::Failed { failures: f } => failures.extend(f),
            }
        }
        indexed_verdicts.sort_by_key(|(i, _)| *i);
        let verdicts = indexed_verdicts.into_iter().map(|(_, v)| v).collect();
        let mut cex_cert = CertificateStatus::Uncertified;
        let outcome = if let Some((_, _, cc, cert)) = best_cex {
            cex_cert = cert;
            AutoCcOutcome::Cex(Box::new(cc))
        } else if !failures.is_empty() {
            AutoCcOutcome::Failed { failures }
        } else if let Some((bound, cause)) = unknown {
            AutoCcOutcome::Unknown { bound, cause }
        } else if let Some(bound) = exhausted_bound {
            AutoCcOutcome::Exhausted { bound }
        } else {
            AutoCcOutcome::Clean {
                bound: clean_bound.unwrap_or(config.max_depth),
            }
        };
        let candidate = match &outcome {
            AutoCcOutcome::Cex(_) => cex_cert,
            _ => unsat_cert.unwrap_or(CertificateStatus::Uncertified),
        };
        CheckReport {
            certificate: gate_certificate(&outcome, candidate),
            outcome,
            elapsed,
            stats,
            verdicts,
        }
    }

    /// The decomposed check path: one engine job per cluster, scheduled
    /// largest-cone-first across `config.jobs` workers, merged
    /// class-aware. Records `clusters` / `cluster_properties` gauges and
    /// per-cluster cone sizes when telemetry is on.
    fn check_clustered(
        &self,
        plan: &ClusterPlan,
        config: &CheckConfig,
        engine: &dyn CheckEngine,
    ) -> CheckReport {
        let start = Instant::now();
        config
            .telemetry
            .gauge("clusters", plan.clusters.len() as u64);
        config
            .telemetry
            .gauge("cluster_properties", plan.num_properties() as u64);
        let mut spans: Vec<Telemetry> = Vec::with_capacity(plan.clusters.len());
        let jobs: Vec<EngineJob<'_, '_>> = plan
            .clusters
            .iter()
            .map(|cluster| {
                let span = config.telemetry.child(SpanKind::Check, &cluster.label);
                span.gauge("cone_state_bits", cluster.cone_state_bits as u64);
                span.gauge("cone_port_bits", cluster.cone_port_bits as u64);
                span.gauge("cluster_properties", cluster.members.len() as u64);
                spans.push(span.clone());
                // Clusters always slice; see `check_cluster`.
                let mut job_config = config.clone().slice(true);
                job_config.telemetry = span;
                EngineJob {
                    engine,
                    spec: self.cluster_spec(cluster),
                    config: job_config,
                    property: Some(cluster.label.clone()),
                    cancel: CancelToken::new(),
                }
            })
            .collect();
        // Execute largest-cone-first for load balance; results come back
        // positionally, so the merge stays jobs-invariant.
        let mut priority: Vec<usize> = (0..plan.clusters.len()).collect();
        priority.sort_by_key(|&i| {
            (
                std::cmp::Reverse(plan.clusters[i].cone_bits()),
                plan.clusters[i].members[0],
            )
        });
        let runs = Portfolio::new(config.jobs).run_engine_jobs_prioritized(jobs, Some(&priority));
        let reports: Vec<CheckReport> = plan
            .clusters
            .iter()
            .zip(runs)
            .zip(&spans)
            .map(|((cluster, run), span)| self.cluster_report(cluster, run, span))
            .collect();
        for span in &spans {
            span.close();
        }
        let merged = self.merge_cluster_reports(plan, reports, config);
        CheckReport {
            elapsed: start.elapsed(),
            ..merged
        }
    }

    /// Attempts a full proof through the engine layer. With `jobs > 1`
    /// this races [`KInductionEngine`] against a [`Falsifier`]-wrapped
    /// [`BmcEngine`] over the whole assertion set (first conclusive result
    /// wins, the loser is cancelled); serially it runs k-induction alone.
    pub fn prove_portfolio(&self, config: &CheckConfig) -> CheckReport {
        let falsifier = Falsifier(BmcEngine);
        if config.jobs > 1 {
            self.prove_portfolio_with(config, &[&KInductionEngine, &falsifier])
        } else {
            self.prove_portfolio_with(config, &[&KInductionEngine])
        }
    }

    /// [`FpvTestbench::prove_portfolio`] with caller-chosen engines: the
    /// seam the process-isolation layer uses to substitute subprocess
    /// engines. A single engine runs serially; several race (first
    /// conclusive result wins, losers are cancelled).
    pub fn prove_portfolio_with(
        &self,
        config: &CheckConfig,
        engines: &[&dyn CheckEngine],
    ) -> CheckReport {
        let start = Instant::now();
        let span = config.telemetry.child(SpanKind::Check, "prove");
        // Proofs run under the exact constraint set only, so only the
        // exact-class assertions are sound to include (see `configure`).
        let exact: Vec<(String, NodeId)> = self
            .exact_properties()
            .into_iter()
            .map(|(_, n, p)| (n, p))
            .collect();
        let names: Vec<String> = exact.iter().map(|(n, _)| n.clone()).collect();
        let spec = CheckSpec {
            module: &self.miter,
            properties: exact,
            constraints: self.constraints.clone(),
            group: None,
        };
        let mut run_config = config.clone();
        run_config.telemetry = span.clone();
        let run = match engines {
            [only] => only.check(&spec, &run_config, &CancelToken::new()),
            _ => {
                let (_, run) = Portfolio::new(config.jobs.max(engines.len())).race(
                    engines,
                    &spec,
                    &run_config,
                );
                run
            }
        };
        let outcome = match run.outcome {
            EngineOutcome::Proved { induction_depth } => AutoCcOutcome::Proved { induction_depth },
            EngineOutcome::Cex(cex) => self.certified_outcome(&cex, &span),
            EngineOutcome::BoundReached { depth } => AutoCcOutcome::Clean { bound: depth },
            EngineOutcome::Exhausted { depth } => AutoCcOutcome::Exhausted { bound: depth },
            EngineOutcome::Unknown { depth, cause } => AutoCcOutcome::Unknown {
                bound: depth,
                cause,
            },
            EngineOutcome::Failed(f) => AutoCcOutcome::Failed { failures: vec![f] },
        };
        span.close();
        let verdicts = batch_verdicts(&names, &outcome);
        CheckReport {
            certificate: gate_certificate(&outcome, run.certificate),
            outcome,
            elapsed: start.elapsed(),
            stats: run.counters,
            verdicts,
        }
    }

    /// Attempts a full proof by k-induction (plus base-case BMC).
    pub fn prove(&self, config: &CheckConfig) -> CheckReport {
        let start = Instant::now();
        let span = config.telemetry.child(SpanKind::Check, "prove");
        let mut run_config = config.clone();
        run_config.telemetry = span.clone();
        let mut bmc = self.configure(span.clone());
        let mut certificate = CertificateStatus::Uncertified;
        let outcome = match bmc.prove(&run_config) {
            ProveOutcome::Proved { induction_depth } => {
                certificate = bmc.prove_certificate();
                AutoCcOutcome::Proved { induction_depth }
            }
            ProveOutcome::Cex(cex) => {
                if run_config.certify {
                    certificate = CertificateStatus::Certified {
                        hash: cex_hash(&cex),
                    };
                }
                self.certified_outcome(&cex, &span)
            }
            ProveOutcome::Exhausted { bound, cause } => stop_to_outcome(bound, cause),
            ProveOutcome::Failed(failure) => AutoCcOutcome::Failed {
                failures: vec![check_failure_to_job("k-induction", failure)],
            },
        };
        let stats = bmc.counters();
        span.close();
        let names: Vec<String> = self
            .exact_properties()
            .into_iter()
            .map(|(_, n, _)| n)
            .collect();
        let verdicts = batch_verdicts(&names, &outcome);
        CheckReport {
            certificate: gate_certificate(&outcome, certificate),
            outcome,
            elapsed: start.elapsed(),
            stats,
            verdicts,
        }
    }

    /// Certifies a checker counterexample by replaying it on the miter
    /// interpreter before anything is reported: every generated assumption
    /// must hold on every cycle, the asserted property node must be false
    /// at the final cycle, and the asserted output pair must actually
    /// diverge there. A mismatch is a checker bug (encoder/simulator
    /// divergence) and comes back as a [`FailureReason::ReplayMismatch`]
    /// failure — never as a discovered channel.
    pub fn certify_cex(&self, cex: &autocc_bmc::Cex) -> Result<CovertChannelCex, JobFailure> {
        let fail = |detail: String| JobFailure {
            engine: "certify".to_string(),
            property: Some(cex.property.clone()),
            depth: cex.depth,
            reason: FailureReason::ReplayMismatch,
            detail,
            attempts: 1,
        };
        if cex.trace.is_empty() || cex.trace.len() != cex.depth {
            return Err(fail(format!(
                "trace length {} disagrees with reported depth {}",
                cex.trace.len(),
                cex.depth
            )));
        }
        let replay = cex.trace.replay(&self.miter);
        let last = cex.depth - 1;
        // Each property class runs under its own assumption set; replay
        // certification must check the same set the solver used.
        let constraints = self.class_constraints(&cex.property);
        for t in 0..cex.depth {
            for (ci, &c) in constraints.iter().enumerate() {
                if !replay.node(t, c).as_bool() {
                    return Err(fail(format!(
                        "assumption {ci} violated at cycle {t} on replay"
                    )));
                }
            }
        }
        let Some((_, prop)) = self.properties.iter().find(|(n, _)| *n == cex.property) else {
            return Err(fail(format!(
                "reported property `{}` is not a generated assertion",
                cex.property
            )));
        };
        if replay.node(last, *prop).as_bool() {
            return Err(fail(format!(
                "asserted property holds at cycle {last} on replay"
            )));
        }
        // The violated assertion is `spy_mode |-> <out>_eq`, so the raw
        // output pair must diverge at the violation cycle.
        if let Some(out_name) = cex
            .property
            .strip_prefix("as__")
            .and_then(|s| s.strip_suffix("_eq"))
        {
            if let (Some(&oa), Some(&ob)) = (
                self.inst_a.outputs.get(out_name),
                self.inst_b.outputs.get(out_name),
            ) {
                let va = replay.node(last, oa);
                let vb = replay.node(last, ob);
                if va == vb {
                    return Err(fail(format!(
                        "output pair `{out_name}` does not diverge at cycle {last} \
                         (both universes read {va})"
                    )));
                }
            }
        }
        // The attribution assertion is `obs_mode |-> <state_bit>_eq`, so
        // the named state bit must itself diverge at the violation cycle.
        // Grammar (see spec.rs section 8b): `st__<reg>_eq`,
        // `st__<reg>[<b>]_eq`, `st__<mem>[<w>]_eq`, `st__<mem>[<w>][<b>]_eq`
        // — the base name decides whether the first index is a register bit
        // or a memory word.
        if let Some(state_name) = cex
            .property
            .strip_prefix("st__")
            .and_then(|s| s.strip_suffix("_eq"))
        {
            let (base, indices) = parse_state_indices(state_name)
                .ok_or_else(|| fail(format!("malformed state index in `{}`", cex.property)))?;
            let (va, vb, bit) = if let (Some(&ma), Some(&mb)) =
                (self.inst_a.mems.get(base), self.inst_b.mems.get(base))
            {
                let (Some(&w), bit) = (indices.first(), indices.get(1).copied()) else {
                    return Err(fail(format!(
                        "attribution property `{}` names memory `{base}` without a word index",
                        cex.property
                    )));
                };
                (
                    replay.mem_word(last, ma, w),
                    replay.mem_word(last, mb, w),
                    bit,
                )
            } else if let (Some(&ra), Some(&rb)) =
                (self.inst_a.regs.get(base), self.inst_b.regs.get(base))
            {
                (
                    replay.reg(last, ra),
                    replay.reg(last, rb),
                    indices.first().copied(),
                )
            } else {
                return Err(fail(format!(
                    "attribution property names unknown state element `{base}`"
                )));
            };
            let diverges = match bit {
                Some(i) => {
                    let i = u32::try_from(i)
                        .map_err(|_| fail(format!("bit index overflow in `{}`", cex.property)))?;
                    va.get_bit(i) != vb.get_bit(i)
                }
                None => va != vb,
            };
            if !diverges {
                return Err(fail(format!(
                    "state pair `{state_name}` does not diverge at cycle {last} \
                     (both universes hold {va})"
                )));
            }
        }
        Ok(self.analyze_cex(cex))
    }

    /// Certifies `cex` (under a `certify` phase span) and wraps the result
    /// as an outcome.
    fn certified_outcome(&self, cex: &autocc_bmc::Cex, telemetry: &Telemetry) -> AutoCcOutcome {
        let certify = telemetry.child(SpanKind::Phase, "certify");
        let outcome = match self.certify_cex(cex) {
            Ok(cc) => AutoCcOutcome::Cex(Box::new(cc)),
            Err(f) => AutoCcOutcome::Failed { failures: vec![f] },
        };
        certify.close();
        outcome
    }

    /// Root-cause analysis (the paper's `FindCause`): replay the trace and
    /// diff all DUT state between universes at the spy-start cycle.
    fn analyze_cex(&self, cex: &autocc_bmc::Cex) -> CovertChannelCex {
        let replay = cex.trace.replay(&self.miter);
        // Exact-class violations anchor on Listing-1 `spy_mode`;
        // attribution-class ones on the observer's `obs_mode`.
        let mode_reg = match property_class(&cex.property) {
            PropertyClass::Exact => "autocc.spy_mode",
            PropertyClass::Attribution => "autocc.obs_mode",
        };
        let spy_reg = self
            .miter
            .find_reg(mode_reg)
            .expect("monitor register exists");
        let spy_start_cycle = (0..replay.len())
            .find(|&t| replay.reg(t, spy_reg).as_bool())
            .unwrap_or(replay.len().saturating_sub(1));

        // The context-switch window: the transfer period (at least
        // THRESHOLD counting cycles plus the flush_done cycle) up to and
        // including the spy-start cycle. State that differs anywhere inside
        // this window survived — or was written during — the switch, and is
        // the candidate storage of the channel.
        let window_start = spy_start_cycle.saturating_sub(self.threshold as usize + 1);
        let mut diverging = Vec::new();
        let window_diff = |values: &dyn Fn(usize) -> (Bv, Bv)| -> Option<(usize, usize, Bv, Bv)> {
            let mut first = None;
            let mut last = None;
            for t in window_start..=spy_start_cycle {
                let (va, vb) = values(t);
                if va != vb {
                    first.get_or_insert(t);
                    last = Some((t, va, vb));
                }
            }
            last.map(|(t, va, vb)| (first.expect("set with last"), t, va, vb))
        };

        // Registers: pair instance-a and instance-b by DUT-relative name,
        // in DUT declaration order for deterministic reports.
        let dut_reg_names: Vec<&String> = {
            let mut names: Vec<(&String, &RegId)> = self.inst_a.regs.iter().collect();
            names.sort_by_key(|(_, rid)| rid.index());
            names.into_iter().map(|(n, _)| n).collect()
        };
        for name in dut_reg_names {
            let ra = self.inst_a.regs[name];
            let rb = self.inst_b.regs[name];
            let probe = |t: usize| (replay.reg(t, ra), replay.reg(t, rb));
            if let Some((first, last, va, vb)) = window_diff(&probe) {
                diverging.push(StateDivergence {
                    name: name.clone(),
                    first_diff_cycle: first,
                    last_diff_cycle: last,
                    value_a: va,
                    value_b: vb,
                });
            }
        }
        // Memories: word-wise diff.
        let mut mem_names: Vec<(&String, &autocc_hdl::MemId)> = self.inst_a.mems.iter().collect();
        mem_names.sort_by_key(|(_, mid)| mid.index());
        for (name, _) in mem_names {
            let ma = self.inst_a.mems[name];
            let mb = self.inst_b.mems[name];
            let depth = self
                .miter
                .mems()
                .get(ma.index())
                .map(|m| m.depth)
                .unwrap_or(0);
            for w in 0..depth {
                let probe = |t: usize| (replay.mem_word(t, ma, w), replay.mem_word(t, mb, w));
                if let Some((first, last, va, vb)) = window_diff(&probe) {
                    diverging.push(StateDivergence {
                        name: format!("{name}[{w}]"),
                        first_diff_cycle: first,
                        last_diff_cycle: last,
                        value_a: va,
                        value_b: vb,
                    });
                }
            }
        }

        CovertChannelCex {
            property: cex.property.clone(),
            depth: cex.depth,
            trace: cex.trace.clone(),
            spy_start_cycle,
            diverging_state: diverging,
        }
    }

    /// Replays a CEX trace over the miter (for waveforms and reports).
    pub fn replay(&self, cex: &CovertChannelCex) -> ReplayedTrace {
        cex.trace.replay(&self.miter)
    }

    /// Greedily simplifies a counterexample for human analysis: every input
    /// value that can be zeroed — and every universe-b input that can be
    /// made equal to its universe-a twin — without losing the violation is
    /// rewritten, so the surviving differences are exactly the ones that
    /// *operate* the channel. Root-cause analysis is recomputed on the
    /// simplified trace.
    ///
    /// This needs no solver: candidates are validated by replaying through
    /// the interpreter (the paper's "little engineering effort" goal for
    /// CEX analysis, automated).
    pub fn minimize_cex(&self, cex: &CovertChannelCex) -> CovertChannelCex {
        let num_ports = self.miter.inputs().len();
        let cycles = cex.trace.len();
        let mut inputs: Vec<Vec<Bv>> = (0..cycles)
            .map(|t| (0..num_ports).map(|p| cex.trace.input(t, p)).collect())
            .collect();

        let constraints = self.class_constraints(&cex.property);
        let still_fails = |inputs: &Vec<Vec<Bv>>| -> bool {
            let trace = Trace::new(inputs.clone());
            let replay = trace.replay(&self.miter);
            let last = cycles - 1;
            // The class's constraints must hold and the original property
            // must still be violated at the final cycle.
            let constraints_ok =
                (0..cycles).all(|t| constraints.iter().all(|&c| replay.node(t, c).as_bool()));
            let violated = self
                .properties
                .iter()
                .find(|(name, _)| *name == cex.property)
                .map(|(_, p)| !replay.node(last, *p).as_bool())
                .unwrap_or(false);
            constraints_ok && violated
        };
        debug_assert!(still_fails(&inputs));

        // Pair universe-b ports with their universe-a twins.
        let twin_of: Vec<Option<(usize, usize)>> = {
            // map dut_port -> miter port index for universe a
            let mut a_of_dut = vec![usize::MAX; self.miter.inputs().len().max(1)];
            for (idx, role) in self.port_roles.iter().enumerate() {
                if let PortRole::UniverseA { dut_port } = role {
                    if *dut_port >= a_of_dut.len() {
                        a_of_dut.resize(dut_port + 1, usize::MAX);
                    }
                    a_of_dut[*dut_port] = idx;
                }
            }
            self.port_roles
                .iter()
                .enumerate()
                .map(|(idx, role)| match role {
                    PortRole::UniverseB { dut_port } => Some((idx, a_of_dut[*dut_port])),
                    _ => None,
                })
                .collect()
        };

        for t in 0..cycles {
            for p in 0..num_ports {
                let width = self.miter.inputs()[p].width;
                // 1. Try making a universe-b input equal to universe-a.
                if let Some(Some((b_idx, a_idx))) = twin_of.get(p) {
                    let a_val = inputs[t][*a_idx];
                    if inputs[t][*b_idx] != a_val {
                        let saved = inputs[t][*b_idx];
                        inputs[t][*b_idx] = a_val;
                        if !still_fails(&inputs) {
                            inputs[t][*b_idx] = saved;
                        }
                    }
                }
                // 2. Try zeroing.
                let zero = Bv::zero(width);
                if inputs[t][p] != zero {
                    let saved = inputs[t][p];
                    inputs[t][p] = zero;
                    if !still_fails(&inputs) {
                        inputs[t][p] = saved;
                    }
                }
            }
        }

        let trace = Trace::new(inputs);
        let minimized = autocc_bmc::Cex {
            property: cex.property.clone(),
            depth: cex.depth,
            trace,
        };
        self.analyze_cex(&minimized)
    }

    /// Builds the Fig.-3-style convergence waveform from a CEX: per-cycle
    /// `arch_state_eq`, `input_eq`, `output_eq`, `flush_done`, `eq_cnt`,
    /// `spy_mode`, and the violated output pair.
    pub fn convergence_waveform(&self, cex: &CovertChannelCex) -> Waveform {
        let replay = self.replay(cex);
        let m = &self.monitor;
        let mut signals: Vec<(String, NodeId)> = vec![
            ("arch_state_eq".into(), m.arch_state_eq),
            ("input_eq".into(), m.input_signal_eq),
            ("output_eq".into(), m.output_signal_eq),
            ("transfer_cond".into(), m.transfer_cond),
            ("flush_done".into(), m.flush_done),
            ("eq_cnt".into(), m.eq_cnt),
            ("spy_mode".into(), m.spy_mode),
        ];
        // Add the diverging output pair (property "as__<name>_eq").
        if let Some(out_name) = cex
            .property
            .strip_prefix("as__")
            .and_then(|s| s.strip_suffix("_eq"))
        {
            if let (Some(&oa), Some(&ob)) = (
                self.inst_a.outputs.get(out_name),
                self.inst_b.outputs.get(out_name),
            ) {
                signals.push((format!("a.{out_name}"), oa));
                signals.push((format!("b.{out_name}"), ob));
            }
        }
        replay.waveform(&self.miter, &signals)
    }
}
