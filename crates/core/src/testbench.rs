//! The generated FPV testbench and its checking interface.
//!
//! [`FpvTestbench`] owns the two-universe miter module and the generated
//! assumptions/assertions. [`FpvTestbench::check`] drives the bounded model
//! checker; a counterexample comes back as a [`CovertChannelCex`] with the
//! root-cause analysis of Sec. 4 already applied: the microarchitectural
//! state that differed between universes when the spy process started.

#[allow(deprecated)]
use autocc_bmc::BmcOptions;
use autocc_bmc::{
    Bmc, BmcEngine, CancelToken, CheckConfig, CheckEngine, CheckFailure, CheckOutcome, CheckSpec,
    EngineJob, EngineOutcome, FailureReason, Falsifier, JobFailure, KInductionEngine, Portfolio,
    ProveOutcome, ReplayedTrace, RetryPolicy, StopCause, Trace, UnknownCause,
};
use autocc_hdl::{Bv, Instance, Module, NodeId, RegId, Waveform};
use autocc_telemetry::{SolverCounters, SpanKind, Telemetry};
use std::time::{Duration, Instant};

/// Role of each miter input port relative to the DUT interface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortRole {
    /// Shared by both universes (the paper's `//AutoCC Common`).
    Common {
        /// Index of the corresponding DUT input.
        dut_port: usize,
    },
    /// Universe-a copy of a DUT input.
    UniverseA {
        /// Index of the corresponding DUT input.
        dut_port: usize,
    },
    /// Universe-b copy of a DUT input.
    UniverseB {
        /// Index of the corresponding DUT input.
        dut_port: usize,
    },
    /// The free `flush_done` oracle input.
    FlushFree,
}

/// Handles to the Listing-1 monitor signals inside the miter.
#[derive(Clone, Copy, Debug)]
pub struct MonitorHandles {
    /// Sticky register: set once the spy process is executing.
    pub spy_mode: NodeId,
    /// Consecutive-equality counter during the transfer period.
    pub eq_cnt: NodeId,
    /// Microarchitectural flush completion (free input or user condition).
    pub flush_done: NodeId,
    /// Equality of arch state, inputs, and outputs this cycle.
    pub transfer_cond: NodeId,
    /// Combinational condition that latches `spy_mode`.
    pub spy_starts: NodeId,
    /// The architectural-state equality condition.
    pub arch_state_eq: NodeId,
    /// All duplicated inputs equal this cycle (payloads valid-gated).
    pub input_signal_eq: NodeId,
    /// All outputs equal this cycle (payloads valid-gated).
    pub output_signal_eq: NodeId,
}

/// A microarchitectural state element that differed between universes
/// inside the context-switch window (the transfer period plus the spy-start
/// cycle). Differences confined to the victim phase are not reported: they
/// are the victim's legitimate divergence, not the channel's storage.
#[derive(Clone, Debug)]
pub struct StateDivergence {
    /// DUT-relative name (`pc`, `dcache.tags[2]`, ...).
    pub name: String,
    /// First cycle within the window at which the values differed.
    pub first_diff_cycle: usize,
    /// Last cycle (≤ spy start) at which the values differed.
    pub last_diff_cycle: usize,
    /// Value in universe a at `last_diff_cycle`.
    pub value_a: Bv,
    /// Value in universe b at `last_diff_cycle`.
    pub value_b: Bv,
}

/// A covert-channel counterexample: the paper's CEX, plus automatic
/// root-cause analysis.
#[derive(Clone, Debug)]
pub struct CovertChannelCex {
    /// The violated assertion (`as__<output>_eq`).
    pub property: String,
    /// Trace length in cycles — Table 1/2's "Depth".
    pub depth: usize,
    /// The miter-level input trace.
    pub trace: Trace,
    /// Cycle at which `spy_mode` first rose.
    pub spy_start_cycle: usize,
    /// Microarchitectural state that still differed between the universes
    /// when the spy began — the covert channel's storage (Sec. 3.5's
    /// `FindCause`). Ordered by DUT state declaration order.
    pub diverging_state: Vec<StateDivergence>,
}

/// Outcome of running AutoCC on a DUT.
#[derive(Clone, Debug)]
pub enum AutoCcOutcome {
    /// A covert channel (or RTL bug) was found.
    Cex(Box<CovertChannelCex>),
    /// No observable difference exists within the bound (bounded proof).
    Clean {
        /// Proven bound, in cycles.
        bound: usize,
    },
    /// The assertions hold for unbounded executions (full proof).
    Proved {
        /// Induction depth that closed the proof.
        induction_depth: usize,
    },
    /// Conflict budget exhausted first (deterministic).
    Exhausted {
        /// Deepest fully-proven depth, in cycles.
        bound: usize,
    },
    /// Stopped by a wall-clock budget or cancellation (machine-dependent,
    /// so kept apart from [`AutoCcOutcome::Exhausted`]).
    Unknown {
        /// Deepest fully-proven depth, in cycles.
        bound: usize,
        /// What stopped the run.
        cause: UnknownCause,
    },
    /// One or more check jobs failed internally (contained panic, replay
    /// mismatch, ...). The run survives; the failures carry the details.
    Failed {
        /// Every contained failure, in property order.
        failures: Vec<JobFailure>,
    },
}

impl AutoCcOutcome {
    /// The counterexample, if any.
    pub fn cex(&self) -> Option<&CovertChannelCex> {
        match self {
            AutoCcOutcome::Cex(c) => Some(c),
            _ => None,
        }
    }

    /// True when no counterexample exists within the explored bound.
    pub fn is_clean(&self) -> bool {
        matches!(
            self,
            AutoCcOutcome::Clean { .. } | AutoCcOutcome::Proved { .. }
        )
    }

    /// True when the run degraded instead of answering: a failure or a
    /// machine-dependent stop.
    pub fn is_degraded(&self) -> bool {
        matches!(
            self,
            AutoCcOutcome::Unknown { .. } | AutoCcOutcome::Failed { .. }
        )
    }
}

/// Result of a testbench run: the outcome, its wall-clock time (Table
/// 1/2's "Time"), and the solver work behind it. `stats` is collected
/// unconditionally (a struct copy per job, no clock reads), so reports can
/// print conflict counts even with telemetry disabled.
#[derive(Clone, Debug)]
pub struct CheckReport {
    /// The outcome.
    pub outcome: AutoCcOutcome,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Aggregate solver counters across every job of the run.
    pub stats: SolverCounters,
}

/// The former name of [`CheckReport`].
#[deprecated(note = "use `CheckReport`")]
pub type RunReport = CheckReport;

/// Execution settings for the engine/portfolio checking path.
#[deprecated(note = "use `CheckConfig`; convert with `CheckConfig::from(&settings)`")]
#[allow(deprecated)]
#[derive(Clone, Debug)]
pub struct CheckSettings {
    /// Solver budgets (depth, conflicts, wall-clock).
    pub options: BmcOptions,
    /// Worker threads for the portfolio scheduler (min 1).
    pub jobs: usize,
    /// Per-property cone-of-influence slicing.
    pub slice: bool,
    /// Retry policy for contained job panics.
    pub retry: RetryPolicy,
}

#[allow(deprecated)]
impl CheckSettings {
    /// Serial, unsliced settings — the legacy behaviour.
    pub fn serial(options: &BmcOptions) -> CheckSettings {
        CheckSettings {
            options: options.clone(),
            jobs: 1,
            slice: false,
            retry: RetryPolicy::default(),
        }
    }

    /// Sets the worker count (clamped to at least 1).
    pub fn with_jobs(mut self, jobs: usize) -> CheckSettings {
        self.jobs = jobs.max(1);
        self
    }

    /// Switches cone-of-influence slicing on or off.
    pub fn with_slice(mut self, slice: bool) -> CheckSettings {
        self.slice = slice;
        self
    }

    /// Sets the number of retries for panicked jobs.
    pub fn with_retries(mut self, retries: u32) -> CheckSettings {
        self.retry = RetryPolicy::with_retries(retries);
        self
    }
}

#[allow(deprecated)]
impl From<&CheckSettings> for CheckConfig {
    fn from(settings: &CheckSettings) -> CheckConfig {
        CheckConfig::from(&settings.options)
            .jobs(settings.jobs)
            .slice(settings.slice)
            .retries(settings.retry.max_retries)
            .retry_escalation(settings.retry.escalation)
    }
}

/// Maps a checker stop cause onto the outcome taxonomy: conflict budgets
/// stay deterministic exhaustion, wall-clock and cancellation degrade to
/// [`AutoCcOutcome::Unknown`].
fn stop_to_outcome(bound: usize, cause: StopCause) -> AutoCcOutcome {
    match cause {
        StopCause::ConflictBudget => AutoCcOutcome::Exhausted { bound },
        StopCause::TimeBudget => AutoCcOutcome::Unknown {
            bound,
            cause: UnknownCause::TimeBudget,
        },
        StopCause::Cancelled => AutoCcOutcome::Unknown {
            bound,
            cause: UnknownCause::Cancelled,
        },
    }
}

/// Lifts a checker-level failure into a job failure for reporting.
fn check_failure_to_job(engine: &str, failure: CheckFailure) -> JobFailure {
    JobFailure {
        engine: engine.to_string(),
        property: None,
        depth: failure.depth,
        reason: failure.reason,
        detail: failure.detail,
        attempts: 1,
    }
}

/// A generated AutoCC FPV testbench (Sec. 3.3).
pub struct FpvTestbench {
    miter: Module,
    properties: Vec<(String, NodeId)>,
    constraints: Vec<NodeId>,
    monitor: MonitorHandles,
    inst_a: Instance,
    inst_b: Instance,
    port_roles: Vec<PortRole>,
    threshold: u32,
}

impl FpvTestbench {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        miter: Module,
        properties: Vec<(String, NodeId)>,
        constraints: Vec<NodeId>,
        monitor: MonitorHandles,
        inst_a: Instance,
        inst_b: Instance,
        port_roles: Vec<PortRole>,
        threshold: u32,
    ) -> FpvTestbench {
        FpvTestbench {
            miter,
            properties,
            constraints,
            monitor,
            inst_a,
            inst_b,
            port_roles,
            threshold,
        }
    }

    /// The two-universe wrapper module (the FT's `wrapper.v`).
    pub fn miter(&self) -> &Module {
        &self.miter
    }

    /// Generated assertions: `(name, 1-bit node)`, one per DUT output.
    pub fn properties(&self) -> &[(String, NodeId)] {
        &self.properties
    }

    /// Generated assumptions (including `spy_mode |-> input_eq`).
    pub fn constraints(&self) -> &[NodeId] {
        &self.constraints
    }

    /// Monitor signal handles.
    pub fn monitor(&self) -> &MonitorHandles {
        &self.monitor
    }

    /// Universe-a instance handles.
    pub fn instance_a(&self) -> &Instance {
        &self.inst_a
    }

    /// Universe-b instance handles.
    pub fn instance_b(&self) -> &Instance {
        &self.inst_b
    }

    /// Role of each miter input port.
    pub fn port_roles(&self) -> &[PortRole] {
        &self.port_roles
    }

    /// The configured transfer-period threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    fn configure<'t>(&'t self, telemetry: Telemetry) -> Bmc<'t> {
        let mut bmc = Bmc::with_telemetry(&self.miter, telemetry);
        for &c in &self.constraints {
            bmc.add_constraint(c);
        }
        for (name, p) in &self.properties {
            bmc.add_property(name.clone(), *p);
        }
        bmc
    }

    /// Runs the exhaustive search for covert channels up to
    /// `config.max_depth` cycles.
    pub fn check(&self, config: &CheckConfig) -> CheckReport {
        let start = Instant::now();
        let span = config.telemetry.child(SpanKind::Check, "check");
        let mut run_config = config.clone();
        run_config.telemetry = span.clone();
        let mut bmc = self.configure(span.clone());
        let outcome = match bmc.check(&run_config) {
            CheckOutcome::Cex(cex) => self.certified_outcome(&cex, &span),
            CheckOutcome::BoundReached { depth } => AutoCcOutcome::Clean { bound: depth },
            CheckOutcome::Exhausted { depth, cause } => stop_to_outcome(depth, cause),
            CheckOutcome::Failed(failure) => AutoCcOutcome::Failed {
                failures: vec![check_failure_to_job("bmc", failure)],
            },
        };
        let stats = bmc.counters();
        span.close();
        CheckReport {
            outcome,
            elapsed: start.elapsed(),
            stats,
        }
    }

    /// Runs the covert-channel search through the check-engine portfolio:
    /// one [`BmcEngine`] job per generated assertion, optionally sliced to
    /// that assertion's sequential cone of influence, fanned across
    /// `settings.jobs` worker threads.
    ///
    /// The merge is deterministic: the reported counterexample is the one
    /// with the smallest `(depth, property index)`, exhaustion bounds take
    /// the minimum over jobs, and results are merged in property order —
    /// so `jobs = 1` and `jobs = N` agree exactly (absent time budgets,
    /// which are inherently machine-dependent).
    ///
    /// Every job runs panic-contained under the config's retry policy; a
    /// job whose retries are spent degrades that property to a failure
    /// instead of aborting the batch. A counterexample is reported only
    /// after [`FpvTestbench::certify_cex`] replays it successfully.
    pub fn check_portfolio(&self, config: &CheckConfig) -> CheckReport {
        self.check_portfolio_with(config, &BmcEngine)
    }

    /// [`FpvTestbench::check_portfolio`] with an explicit engine — the
    /// seam the fault-injection tests use to exercise panic containment,
    /// hang interruption, and CEX certification with misbehaving engines.
    pub fn check_portfolio_with(
        &self,
        config: &CheckConfig,
        engine: &dyn CheckEngine,
    ) -> CheckReport {
        let start = Instant::now();
        // One check span per generated assertion; the spans stay open
        // while the scheduler runs and close once their job has reported.
        let mut spans: Vec<Telemetry> = Vec::with_capacity(self.properties.len());
        let jobs: Vec<EngineJob<'_, '_>> = self
            .properties
            .iter()
            .map(|(name, p)| {
                let span = config.telemetry.child(SpanKind::Check, name);
                spans.push(span.clone());
                let mut job_config = config.clone();
                job_config.telemetry = span;
                EngineJob {
                    engine,
                    spec: CheckSpec::new(&self.miter)
                        .property(name.clone(), *p)
                        .constraints(&self.constraints),
                    config: job_config,
                    property: Some(name.clone()),
                    cancel: CancelToken::new(),
                }
            })
            .collect();
        let runs = Portfolio::new(config.jobs).run_engine_jobs(jobs);
        for span in &spans {
            span.close();
        }
        let mut stats = SolverCounters::default();
        for run in &runs {
            stats += &run.counters;
        }

        // Deterministic merge, in property-registration order.
        let mut best_cex: Option<(usize, usize, autocc_bmc::Cex)> = None;
        let mut failures: Vec<JobFailure> = Vec::new();
        let mut unknown: Option<(usize, UnknownCause)> = None;
        let mut exhausted_bound: Option<usize> = None;
        let mut clean_bound: Option<usize> = None;
        for (i, run) in runs.into_iter().enumerate() {
            match run.outcome {
                EngineOutcome::Cex(cex) => {
                    if best_cex
                        .as_ref()
                        .is_none_or(|(d, j, _)| (cex.depth, i) < (*d, *j))
                    {
                        best_cex = Some((cex.depth, i, cex));
                    }
                }
                EngineOutcome::Exhausted { depth } => {
                    exhausted_bound = Some(exhausted_bound.map_or(depth, |b| b.min(depth)));
                }
                EngineOutcome::Unknown { depth, cause } => {
                    unknown = Some(match unknown {
                        None => (depth, cause),
                        // Minimum bound; the cause of the first (property
                        // order) unknown job keeps the merge deterministic.
                        Some((b, c)) => (b.min(depth), c),
                    });
                }
                EngineOutcome::Failed(f) => failures.push(f),
                EngineOutcome::BoundReached { depth }
                | EngineOutcome::Proved {
                    induction_depth: depth,
                } => {
                    clean_bound = Some(clean_bound.map_or(depth, |b| b.min(depth)));
                }
            }
        }
        // A certified counterexample outranks everything; a CEX that fails
        // certification is a checker fault and joins the failures instead.
        let mut certified: Option<CovertChannelCex> = None;
        if let Some((_, _, cex)) = best_cex {
            let certify = config.telemetry.child(SpanKind::Phase, "certify");
            match self.certify_cex(&cex) {
                Ok(cc) => certified = Some(cc),
                Err(f) => failures.push(f),
            }
            certify.close();
        }
        let outcome = if let Some(cc) = certified {
            AutoCcOutcome::Cex(Box::new(cc))
        } else if !failures.is_empty() {
            AutoCcOutcome::Failed { failures }
        } else if let Some((bound, cause)) = unknown {
            AutoCcOutcome::Unknown { bound, cause }
        } else if let Some(bound) = exhausted_bound {
            AutoCcOutcome::Exhausted { bound }
        } else {
            AutoCcOutcome::Clean {
                bound: clean_bound.unwrap_or(config.max_depth),
            }
        };
        CheckReport {
            outcome,
            elapsed: start.elapsed(),
            stats,
        }
    }

    /// Attempts a full proof through the engine layer. With `jobs > 1`
    /// this races [`KInductionEngine`] against a [`Falsifier`]-wrapped
    /// [`BmcEngine`] over the whole assertion set (first conclusive result
    /// wins, the loser is cancelled); serially it runs k-induction alone.
    pub fn prove_portfolio(&self, config: &CheckConfig) -> CheckReport {
        let falsifier = Falsifier(BmcEngine);
        if config.jobs > 1 {
            self.prove_portfolio_with(config, &[&KInductionEngine, &falsifier])
        } else {
            self.prove_portfolio_with(config, &[&KInductionEngine])
        }
    }

    /// [`FpvTestbench::prove_portfolio`] with caller-chosen engines: the
    /// seam the process-isolation layer uses to substitute subprocess
    /// engines. A single engine runs serially; several race (first
    /// conclusive result wins, losers are cancelled).
    pub fn prove_portfolio_with(
        &self,
        config: &CheckConfig,
        engines: &[&dyn CheckEngine],
    ) -> CheckReport {
        let start = Instant::now();
        let span = config.telemetry.child(SpanKind::Check, "prove");
        let spec = CheckSpec {
            module: &self.miter,
            properties: self.properties.clone(),
            constraints: self.constraints.clone(),
        };
        let mut run_config = config.clone();
        run_config.telemetry = span.clone();
        let run = match engines {
            [only] => only.check(&spec, &run_config, &CancelToken::new()),
            _ => {
                let (_, run) = Portfolio::new(config.jobs.max(engines.len())).race(
                    engines,
                    &spec,
                    &run_config,
                );
                run
            }
        };
        let outcome = match run.outcome {
            EngineOutcome::Proved { induction_depth } => AutoCcOutcome::Proved { induction_depth },
            EngineOutcome::Cex(cex) => self.certified_outcome(&cex, &span),
            EngineOutcome::BoundReached { depth } => AutoCcOutcome::Clean { bound: depth },
            EngineOutcome::Exhausted { depth } => AutoCcOutcome::Exhausted { bound: depth },
            EngineOutcome::Unknown { depth, cause } => AutoCcOutcome::Unknown {
                bound: depth,
                cause,
            },
            EngineOutcome::Failed(f) => AutoCcOutcome::Failed { failures: vec![f] },
        };
        span.close();
        CheckReport {
            outcome,
            elapsed: start.elapsed(),
            stats: run.counters,
        }
    }

    /// Attempts a full proof by k-induction (plus base-case BMC).
    pub fn prove(&self, config: &CheckConfig) -> CheckReport {
        let start = Instant::now();
        let span = config.telemetry.child(SpanKind::Check, "prove");
        let mut run_config = config.clone();
        run_config.telemetry = span.clone();
        let mut bmc = self.configure(span.clone());
        let outcome = match bmc.prove(&run_config) {
            ProveOutcome::Proved { induction_depth } => AutoCcOutcome::Proved { induction_depth },
            ProveOutcome::Cex(cex) => self.certified_outcome(&cex, &span),
            ProveOutcome::Exhausted { bound, cause } => stop_to_outcome(bound, cause),
            ProveOutcome::Failed(failure) => AutoCcOutcome::Failed {
                failures: vec![check_failure_to_job("k-induction", failure)],
            },
        };
        let stats = bmc.counters();
        span.close();
        CheckReport {
            outcome,
            elapsed: start.elapsed(),
            stats,
        }
    }

    /// Certifies a checker counterexample by replaying it on the miter
    /// interpreter before anything is reported: every generated assumption
    /// must hold on every cycle, the asserted property node must be false
    /// at the final cycle, and the asserted output pair must actually
    /// diverge there. A mismatch is a checker bug (encoder/simulator
    /// divergence) and comes back as a [`FailureReason::ReplayMismatch`]
    /// failure — never as a discovered channel.
    pub fn certify_cex(&self, cex: &autocc_bmc::Cex) -> Result<CovertChannelCex, JobFailure> {
        let fail = |detail: String| JobFailure {
            engine: "certify".to_string(),
            property: Some(cex.property.clone()),
            depth: cex.depth,
            reason: FailureReason::ReplayMismatch,
            detail,
            attempts: 1,
        };
        if cex.trace.is_empty() || cex.trace.len() != cex.depth {
            return Err(fail(format!(
                "trace length {} disagrees with reported depth {}",
                cex.trace.len(),
                cex.depth
            )));
        }
        let replay = cex.trace.replay(&self.miter);
        let last = cex.depth - 1;
        for t in 0..cex.depth {
            for (ci, &c) in self.constraints.iter().enumerate() {
                if !replay.node(t, c).as_bool() {
                    return Err(fail(format!(
                        "assumption {ci} violated at cycle {t} on replay"
                    )));
                }
            }
        }
        let Some((_, prop)) = self.properties.iter().find(|(n, _)| *n == cex.property) else {
            return Err(fail(format!(
                "reported property `{}` is not a generated assertion",
                cex.property
            )));
        };
        if replay.node(last, *prop).as_bool() {
            return Err(fail(format!(
                "asserted property holds at cycle {last} on replay"
            )));
        }
        // The violated assertion is `spy_mode |-> <out>_eq`, so the raw
        // output pair must diverge at the violation cycle.
        if let Some(out_name) = cex
            .property
            .strip_prefix("as__")
            .and_then(|s| s.strip_suffix("_eq"))
        {
            if let (Some(&oa), Some(&ob)) = (
                self.inst_a.outputs.get(out_name),
                self.inst_b.outputs.get(out_name),
            ) {
                let va = replay.node(last, oa);
                let vb = replay.node(last, ob);
                if va == vb {
                    return Err(fail(format!(
                        "output pair `{out_name}` does not diverge at cycle {last} \
                         (both universes read {va})"
                    )));
                }
            }
        }
        Ok(self.analyze_cex(cex))
    }

    /// Certifies `cex` (under a `certify` phase span) and wraps the result
    /// as an outcome.
    fn certified_outcome(&self, cex: &autocc_bmc::Cex, telemetry: &Telemetry) -> AutoCcOutcome {
        let certify = telemetry.child(SpanKind::Phase, "certify");
        let outcome = match self.certify_cex(cex) {
            Ok(cc) => AutoCcOutcome::Cex(Box::new(cc)),
            Err(f) => AutoCcOutcome::Failed { failures: vec![f] },
        };
        certify.close();
        outcome
    }

    /// Root-cause analysis (the paper's `FindCause`): replay the trace and
    /// diff all DUT state between universes at the spy-start cycle.
    fn analyze_cex(&self, cex: &autocc_bmc::Cex) -> CovertChannelCex {
        let replay = cex.trace.replay(&self.miter);
        let spy_reg = self
            .miter
            .find_reg("autocc.spy_mode")
            .expect("monitor register exists");
        let spy_start_cycle = (0..replay.len())
            .find(|&t| replay.reg(t, spy_reg).as_bool())
            .unwrap_or(replay.len().saturating_sub(1));

        // The context-switch window: the transfer period (at least
        // THRESHOLD counting cycles plus the flush_done cycle) up to and
        // including the spy-start cycle. State that differs anywhere inside
        // this window survived — or was written during — the switch, and is
        // the candidate storage of the channel.
        let window_start = spy_start_cycle.saturating_sub(self.threshold as usize + 1);
        let mut diverging = Vec::new();
        let window_diff = |values: &dyn Fn(usize) -> (Bv, Bv)| -> Option<(usize, usize, Bv, Bv)> {
            let mut first = None;
            let mut last = None;
            for t in window_start..=spy_start_cycle {
                let (va, vb) = values(t);
                if va != vb {
                    first.get_or_insert(t);
                    last = Some((t, va, vb));
                }
            }
            last.map(|(t, va, vb)| (first.expect("set with last"), t, va, vb))
        };

        // Registers: pair instance-a and instance-b by DUT-relative name,
        // in DUT declaration order for deterministic reports.
        let dut_reg_names: Vec<&String> = {
            let mut names: Vec<(&String, &RegId)> = self.inst_a.regs.iter().collect();
            names.sort_by_key(|(_, rid)| rid.index());
            names.into_iter().map(|(n, _)| n).collect()
        };
        for name in dut_reg_names {
            let ra = self.inst_a.regs[name];
            let rb = self.inst_b.regs[name];
            let probe = |t: usize| (replay.reg(t, ra), replay.reg(t, rb));
            if let Some((first, last, va, vb)) = window_diff(&probe) {
                diverging.push(StateDivergence {
                    name: name.clone(),
                    first_diff_cycle: first,
                    last_diff_cycle: last,
                    value_a: va,
                    value_b: vb,
                });
            }
        }
        // Memories: word-wise diff.
        let mut mem_names: Vec<(&String, &autocc_hdl::MemId)> = self.inst_a.mems.iter().collect();
        mem_names.sort_by_key(|(_, mid)| mid.index());
        for (name, _) in mem_names {
            let ma = self.inst_a.mems[name];
            let mb = self.inst_b.mems[name];
            let depth = self
                .miter
                .mems()
                .get(ma.index())
                .map(|m| m.depth)
                .unwrap_or(0);
            for w in 0..depth {
                let probe = |t: usize| (replay.mem_word(t, ma, w), replay.mem_word(t, mb, w));
                if let Some((first, last, va, vb)) = window_diff(&probe) {
                    diverging.push(StateDivergence {
                        name: format!("{name}[{w}]"),
                        first_diff_cycle: first,
                        last_diff_cycle: last,
                        value_a: va,
                        value_b: vb,
                    });
                }
            }
        }

        CovertChannelCex {
            property: cex.property.clone(),
            depth: cex.depth,
            trace: cex.trace.clone(),
            spy_start_cycle,
            diverging_state: diverging,
        }
    }

    /// Replays a CEX trace over the miter (for waveforms and reports).
    pub fn replay(&self, cex: &CovertChannelCex) -> ReplayedTrace {
        cex.trace.replay(&self.miter)
    }

    /// Greedily simplifies a counterexample for human analysis: every input
    /// value that can be zeroed — and every universe-b input that can be
    /// made equal to its universe-a twin — without losing the violation is
    /// rewritten, so the surviving differences are exactly the ones that
    /// *operate* the channel. Root-cause analysis is recomputed on the
    /// simplified trace.
    ///
    /// This needs no solver: candidates are validated by replaying through
    /// the interpreter (the paper's "little engineering effort" goal for
    /// CEX analysis, automated).
    pub fn minimize_cex(&self, cex: &CovertChannelCex) -> CovertChannelCex {
        let num_ports = self.miter.inputs().len();
        let cycles = cex.trace.len();
        let mut inputs: Vec<Vec<Bv>> = (0..cycles)
            .map(|t| (0..num_ports).map(|p| cex.trace.input(t, p)).collect())
            .collect();

        let still_fails = |inputs: &Vec<Vec<Bv>>| -> bool {
            let trace = Trace::new(inputs.clone());
            let replay = trace.replay(&self.miter);
            let last = cycles - 1;
            // All constraints must hold and the original property must
            // still be violated at the final cycle.
            let constraints_ok = (0..cycles).all(|t| {
                self.constraints
                    .iter()
                    .all(|&c| replay.node(t, c).as_bool())
            });
            let violated = self
                .properties
                .iter()
                .find(|(name, _)| *name == cex.property)
                .map(|(_, p)| !replay.node(last, *p).as_bool())
                .unwrap_or(false);
            constraints_ok && violated
        };
        debug_assert!(still_fails(&inputs));

        // Pair universe-b ports with their universe-a twins.
        let twin_of: Vec<Option<(usize, usize)>> = {
            // map dut_port -> miter port index for universe a
            let mut a_of_dut = vec![usize::MAX; self.miter.inputs().len().max(1)];
            for (idx, role) in self.port_roles.iter().enumerate() {
                if let PortRole::UniverseA { dut_port } = role {
                    if *dut_port >= a_of_dut.len() {
                        a_of_dut.resize(dut_port + 1, usize::MAX);
                    }
                    a_of_dut[*dut_port] = idx;
                }
            }
            self.port_roles
                .iter()
                .enumerate()
                .map(|(idx, role)| match role {
                    PortRole::UniverseB { dut_port } => Some((idx, a_of_dut[*dut_port])),
                    _ => None,
                })
                .collect()
        };

        for t in 0..cycles {
            for p in 0..num_ports {
                let width = self.miter.inputs()[p].width;
                // 1. Try making a universe-b input equal to universe-a.
                if let Some(Some((b_idx, a_idx))) = twin_of.get(p) {
                    let a_val = inputs[t][*a_idx];
                    if inputs[t][*b_idx] != a_val {
                        let saved = inputs[t][*b_idx];
                        inputs[t][*b_idx] = a_val;
                        if !still_fails(&inputs) {
                            inputs[t][*b_idx] = saved;
                        }
                    }
                }
                // 2. Try zeroing.
                let zero = Bv::zero(width);
                if inputs[t][p] != zero {
                    let saved = inputs[t][p];
                    inputs[t][p] = zero;
                    if !still_fails(&inputs) {
                        inputs[t][p] = saved;
                    }
                }
            }
        }

        let trace = Trace::new(inputs);
        let minimized = autocc_bmc::Cex {
            property: cex.property.clone(),
            depth: cex.depth,
            trace,
        };
        self.analyze_cex(&minimized)
    }

    /// Builds the Fig.-3-style convergence waveform from a CEX: per-cycle
    /// `arch_state_eq`, `input_eq`, `output_eq`, `flush_done`, `eq_cnt`,
    /// `spy_mode`, and the violated output pair.
    pub fn convergence_waveform(&self, cex: &CovertChannelCex) -> Waveform {
        let replay = self.replay(cex);
        let m = &self.monitor;
        let mut signals: Vec<(String, NodeId)> = vec![
            ("arch_state_eq".into(), m.arch_state_eq),
            ("input_eq".into(), m.input_signal_eq),
            ("output_eq".into(), m.output_signal_eq),
            ("transfer_cond".into(), m.transfer_cond),
            ("flush_done".into(), m.flush_done),
            ("eq_cnt".into(), m.eq_cnt),
            ("spy_mode".into(), m.spy_mode),
        ];
        // Add the diverging output pair (property "as__<name>_eq").
        if let Some(out_name) = cex
            .property
            .strip_prefix("as__")
            .and_then(|s| s.strip_suffix("_eq"))
        {
            if let (Some(&oa), Some(&ob)) = (
                self.inst_a.outputs.get(out_name),
                self.inst_b.outputs.get(out_name),
            ) {
                signals.push((format!("a.{out_name}"), oa));
                signals.push((format!("b.{out_name}"), ob));
            }
        }
        replay.waveform(&self.miter, &signals)
    }
}
