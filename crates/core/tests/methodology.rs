//! Integration tests of the AutoCC methodology on purpose-built DUTs:
//! flush fixes eliminate CEXs, transactions gate payload checks,
//! architectural-state refinement, transfer-period effects, and the
//! flush-synthesis algorithms.

use autocc_bmc::CheckConfig;
use autocc_core::{decremental_flush, incremental_flush, FlushSynthesisConfig, FtSpec, PortRole};
use autocc_hdl::{Bv, Module, ModuleBuilder, NodeId};
use std::collections::BTreeSet;
use std::time::Duration;

fn opts(depth: usize) -> CheckConfig {
    CheckConfig::default()
        .depth(depth)
        .timeout(Duration::from_secs(120))
}

/// A device with a write-once config register readable via `re`, plus an
/// optional hardware flush that clears it when `flush` is high.
fn cfg_device(with_flush_input: bool, flush_clears: bool) -> Module {
    let mut b = ModuleBuilder::new("cfg_dev");
    let we = b.input("we", 1);
    let re = b.input("re", 1);
    let data = b.input("data", 4);
    let flush = if with_flush_input {
        Some(b.input_common("flush", 1))
    } else {
        None
    };
    let cfg = b.reg("cfg", 4, Bv::zero(4));
    let wr = b.mux(we, data, cfg);
    let next = match (flush, flush_clears) {
        (Some(f), true) => {
            let zero = b.lit(4, 0);
            b.mux(f, zero, wr)
        }
        _ => wr,
    };
    b.set_next(cfg, next);
    let zero = b.lit(4, 0);
    let q = b.mux(re, cfg, zero);
    b.output("q", q);
    b.build()
}

#[test]
fn unflushed_register_is_a_covert_channel() {
    let dut = cfg_device(false, false);
    let ft = FtSpec::new(&dut).generate();
    let report = ft.check(&opts(12));
    let cex = report.outcome.cex().expect("expected covert channel");
    assert_eq!(cex.property, "as__q_eq");
    assert_eq!(cex.diverging_state.len(), 1);
    assert_eq!(cex.diverging_state[0].name, "cfg");
    // Depth: at least victim-write + transfer period + observation.
    assert!(
        cex.depth >= ft.threshold() as usize + 2,
        "depth {}",
        cex.depth
    );
}

#[test]
fn hardware_flush_fix_eliminates_cex() {
    // The paper's fix-validation loop: after the RTL fix, re-running the
    // same FT finds no CEX. flush_done is the shared flush input itself —
    // the clear takes effect at the edge, and the transfer period covers
    // the remaining cycle.
    let dut = cfg_device(true, true);
    let ft = FtSpec::new(&dut)
        .flush_done(|b, _ua, _ub| b.input_node("flush").expect("common flush input"))
        .generate();
    let report = ft.check(&opts(12));
    assert!(
        report.outcome.is_clean(),
        "fixed flush must be clean: {:?}",
        report.outcome
    );
}

#[test]
fn broken_flush_still_leaks() {
    // flush input exists but does not clear the register: CEX remains.
    let dut = cfg_device(true, false);
    let ft = FtSpec::new(&dut).generate();
    let report = ft.check(&opts(12));
    assert!(
        report.outcome.cex().is_some(),
        "broken flush must still leak"
    );
}

#[test]
fn transaction_metadata_gates_payload_checks() {
    // A response interface whose payload wires carry delayed internal junk
    // while `valid` is low: the victim perturbs a scratch register whose
    // value marches down a delay chain longer than the transfer period and
    // surfaces on the (invalid) payload after the spy has started.
    //
    // Without transaction metadata this is reported as a CEX — the paper
    // calls these spurious, since a correct consumer ignores invalid
    // payloads. Declaring the transaction gates the payload assertion by
    // `valid` and the FT becomes clean.
    let build = |with_txn: bool| {
        let mut b = ModuleBuilder::new("resp_dev");
        let req = b.input("req", 1);
        let data = b.input("data", 4);
        // 4-stage delay chain seeded by victim-controlled writes.
        let s0 = b.reg("junk0", 4, Bv::zero(4));
        let s1 = b.reg("junk1", 4, Bv::zero(4));
        let s2 = b.reg("junk2", 4, Bv::zero(4));
        let s3 = b.reg("junk3", 4, Bv::zero(4));
        let seed = b.mux(req, data, s0);
        b.set_next(s0, seed);
        b.set_next(s1, s0);
        b.set_next(s2, s1);
        b.set_next(s3, s2);
        // Response: valid pulses one cycle after a request; payload shows
        // the request data while valid, the junk chain tail otherwise.
        let vld = b.reg("vld", 1, Bv::zero(1));
        b.set_next(vld, req);
        let pld = b.reg("pld", 4, Bv::zero(4));
        let pn = b.mux(req, data, pld);
        b.set_next(pld, pn);
        let out = b.mux(vld, pld, s3);
        b.output("resp_valid", vld);
        b.output("resp_data", out);
        if with_txn {
            b.transaction_out("resp", "resp_valid", &["resp_data"]);
        }
        b.build()
    };

    // Without metadata: spurious CEX on the invalid payload wires.
    let dut_plain = build(false);
    let ft = FtSpec::new(&dut_plain).threshold(2).generate();
    let report = ft.check(&opts(16));
    let cex = report
        .outcome
        .cex()
        .expect("ungated payload must report a (spurious) CEX");
    assert_eq!(cex.property, "as__resp_data_eq");
    assert!(
        cex.diverging_state
            .iter()
            .any(|d| d.name.starts_with("junk")),
        "root cause is the junk chain: {:?}",
        cex.diverging_state
    );

    // With the transaction declared: payload checked only while valid.
    let dut_txn = build(true);
    let ft = FtSpec::new(&dut_txn).threshold(2).generate();
    let report = ft.check(&opts(16));
    assert!(
        report.outcome.is_clean(),
        "valid-gated payload must not be a spurious CEX: {:?}",
        report.outcome
    );
}

#[test]
fn arch_state_refinement_removes_cex() {
    // A register file read combinationally to an output: with the regfile
    // outside the architectural state the FT reports a CEX (the OS did not
    // swap it); adding it to arch_state_eq refines the CEX away — the
    // paper's V1 workflow.
    let build = || {
        let mut b = ModuleBuilder::new("rf_dev");
        let waddr = b.input("waddr", 2);
        let wdata = b.input("wdata", 4);
        let we = b.input("we", 1);
        let raddr = b.input("raddr", 2);
        let rf = b.mem("regfile", 4, 4);
        b.mem_write(rf, we, waddr, wdata);
        let rd = b.mem_read(rf, raddr);
        b.output("rdata", rd);
        b.build()
    };
    let dut = build();
    let ft = FtSpec::new(&dut).generate();
    let report = ft.check(&opts(12));
    let cex = report.outcome.cex().expect("regfile leaks by default");
    assert!(cex.diverging_state[0].name.starts_with("regfile["));

    let dut = build();
    let ft = FtSpec::new(&dut).arch_mem("regfile").generate();
    let report = ft.check(&opts(12));
    assert!(
        report.outcome.is_clean(),
        "arch-state refinement must remove the CEX: {:?}",
        report.outcome
    );
}

#[test]
fn transfer_period_hides_short_lived_state() {
    // A one-shot delay line: input bit visible on the output 1 cycle later,
    // no retained state beyond that. With THRESHOLD >= 2 the pipeline has
    // fully drained during the transfer period, so the FT is clean.
    let mut b = ModuleBuilder::new("delay");
    let d = b.input("d", 1);
    let r1 = b.reg("r1", 1, Bv::zero(1));
    b.set_next(r1, d);
    b.output("q", r1);
    let dut = b.build();

    let ft = FtSpec::new(&dut).threshold(2).generate();
    let report = ft.check(&opts(12));
    assert!(
        report.outcome.is_clean(),
        "drained pipeline must be clean: {:?}",
        report.outcome
    );
}

#[test]
fn common_inputs_are_not_replicated() {
    let dut = cfg_device(true, true);
    let ft = FtSpec::new(&dut).generate();
    let roles = ft.port_roles();
    let commons = roles
        .iter()
        .filter(|r| matches!(r, PortRole::Common { .. }))
        .count();
    assert_eq!(commons, 1, "the flush input is common");
    // we/re/data duplicated: 3 × 2 ports, + 1 common + 1 flush_done free.
    assert_eq!(ft.miter().inputs().len(), 8);
    assert!(ft.miter().input_index("a.we").is_some());
    assert!(ft.miter().input_index("b.we").is_some());
    assert!(ft.miter().input_index("flush").is_some());
    assert!(ft.miter().input_index("flush_done").is_some());
}

#[test]
fn convergence_waveform_shows_spy_mode_rise() {
    let dut = cfg_device(false, false);
    let ft = FtSpec::new(&dut).generate();
    let report = ft.check(&opts(12));
    let cex = report.outcome.cex().expect("cex");
    let wf = ft.convergence_waveform(cex);
    assert_eq!(wf.cycles(), cex.depth);
    let spy_idx = wf.signal_index("spy_mode").unwrap();
    // spy_mode is 0 at reset and 1 at the violation cycle.
    assert_eq!(wf.value(spy_idx, 0).value(), 0);
    assert_eq!(wf.value(spy_idx, cex.depth - 1).value(), 1);
    // VCD export works.
    let vcd = wf.to_vcd("autocc_cex");
    assert!(vcd.contains("$enddefinitions"));
}

/// Three-register device for flush synthesis: two registers leak, one is
/// write-only (never observable) and needs no flush.
fn flushable_device(flush_set: &BTreeSet<String>) -> Module {
    let mut b = ModuleBuilder::new("flushable");
    let we = b.input("we", 1);
    let sel = b.input("sel", 1);
    let re = b.input("re", 1);
    let data = b.input("data", 4);
    let flush = b.input_common("flush", 1);

    let zero4 = b.lit(4, 0);
    let make_reg = |b: &mut ModuleBuilder, name: &str, wr_en: NodeId| {
        let r = b.reg(name, 4, Bv::zero(4));
        let wr = b.mux(wr_en, data, r);
        let next = if flush_set.contains(name) {
            b.mux(flush, zero4, wr)
        } else {
            wr
        };
        b.set_next(r, next);
        r
    };
    let nsel = b.not(sel);
    let we0 = b.and(we, nsel);
    let we1 = b.and(we, sel);
    let r0 = make_reg(&mut b, "bank0", we0);
    let r1 = make_reg(&mut b, "bank1", we1);
    // Write-only scratch register: retains data but never reaches outputs.
    let scratch = b.reg("scratch", 4, Bv::zero(4));
    let s_next = b.mux(we, data, scratch);
    b.set_next(scratch, s_next);

    let read = b.mux(sel, r1, r0);
    let q = b.mux(re, read, zero4);
    b.output("q", q);
    b.build()
}

#[test]
fn algorithm1_converges_to_observable_registers() {
    let config = FlushSynthesisConfig {
        check_options: opts(12),
        max_iterations: 8,
    };
    let result = incremental_flush(
        flushable_device,
        |spec| spec.flush_done(flush_asserted),
        &config,
    );
    assert!(result.converged, "algorithm 1 must converge");
    let expected: BTreeSet<String> = ["bank0", "bank1"].iter().map(|s| s.to_string()).collect();
    assert_eq!(
        result.flush_set, expected,
        "iterations: {:#?}",
        result.iterations
    );
}

#[test]
fn algorithm2_minimises_the_flush_set() {
    let config = FlushSynthesisConfig {
        check_options: opts(12),
        max_iterations: 8,
    };
    let full: BTreeSet<String> = ["bank0", "bank1", "scratch"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let candidates: Vec<String> = full.iter().cloned().collect();
    let result = decremental_flush(
        flushable_device,
        |spec| spec.flush_done(flush_asserted),
        &full,
        &candidates,
        &config,
    );
    assert!(result.converged);
    let expected: BTreeSet<String> = ["bank0", "bank1"].iter().map(|s| s.to_string()).collect();
    assert_eq!(result.flush_set, expected, "scratch needs no flush");
}

/// flush_done condition: the shared flush input itself (the flush takes
/// effect at the next edge; the transfer period covers the gap).
fn flush_asserted(
    b: &mut ModuleBuilder,
    _ua: &autocc_hdl::Instance,
    _ub: &autocc_hdl::Instance,
) -> NodeId {
    b.input_node("flush").expect("common flush input")
}

#[test]
fn cex_minimization_preserves_violation_and_reduces_noise() {
    let dut = cfg_device(false, false);
    let ft = FtSpec::new(&dut).generate();
    let report = ft.check(&opts(12));
    let cex = report.outcome.cex().expect("cex");
    let min = ft.minimize_cex(cex);

    // Same property, same depth; root cause still the config register.
    assert_eq!(min.property, cex.property);
    assert_eq!(min.depth, cex.depth);
    assert!(min.diverging_state.iter().any(|d| d.name == "cfg"));

    // Not noisier than the original: count inputs that differ between
    // universes or are non-zero.
    let noise = |c: &autocc_core::CovertChannelCex| -> usize {
        let mut n = 0;
        for t in 0..c.trace.len() {
            for p in 0..ft.miter().inputs().len() {
                if c.trace.input(t, p).value() != 0 {
                    n += 1;
                }
            }
        }
        n
    };
    assert!(
        noise(&min) <= noise(cex),
        "minimised trace must not be noisier: {} vs {}",
        noise(&min),
        noise(cex)
    );

    // The minimised trace still violates the property on replay.
    let replay = min.trace.replay(ft.miter());
    let (_, prop) = ft
        .properties()
        .iter()
        .find(|(n, _)| *n == min.property)
        .unwrap();
    assert!(!replay.node(min.depth - 1, *prop).as_bool());
}
