//! Simulation-level tests of the generated Listing-1 monitor: driving the
//! miter module directly through the interpreter and checking `eq_cnt`,
//! `spy_mode`, and `transfer_cond` behave exactly as specified.

use autocc_core::FtSpec;
use autocc_hdl::{Bv, Module, ModuleBuilder, Sim};

/// A pass-through DUT: one input, registered once, then output.
fn passthrough() -> Module {
    let mut b = ModuleBuilder::new("passthrough");
    let d = b.input("d", 4);
    let r = b.reg("r", 4, Bv::zero(4));
    b.set_next(r, d);
    b.output("q", r);
    b.build()
}

struct MiterDriver<'m> {
    sim: Sim<'m>,
}

impl<'m> MiterDriver<'m> {
    fn new(miter: &'m Module) -> MiterDriver<'m> {
        let mut sim = Sim::new(miter);
        sim.set_input("a.d", Bv::zero(4));
        sim.set_input("b.d", Bv::zero(4));
        sim.set_input("flush_done", Bv::bit(false));
        MiterDriver { sim }
    }

    fn drive(&mut self, a: u64, b: u64, flush_done: bool) {
        self.sim.set_input("a.d", Bv::new(4, a));
        self.sim.set_input("b.d", Bv::new(4, b));
        self.sim.set_input("flush_done", Bv::bit(flush_done));
        self.sim.step();
    }

    fn eq_cnt(&mut self) -> u64 {
        self.sim.output("autocc.eq_cnt").value()
    }

    fn spy_mode(&mut self) -> bool {
        self.sim.output("autocc.spy_mode").as_bool()
    }

    fn transfer_cond(&mut self) -> bool {
        self.sim.output("autocc.transfer_cond").as_bool()
    }
}

#[test]
fn eq_cnt_counts_only_after_flush_done() {
    let dut = passthrough();
    let ft = FtSpec::new(&dut).threshold(3).generate();
    let mut m = MiterDriver::new(ft.miter());
    // Equal inputs but no flush_done: the counter stays at zero.
    for _ in 0..4 {
        m.drive(5, 5, false);
        assert_eq!(m.eq_cnt(), 0);
    }
    // flush_done arms the counter; it then counts on its own.
    m.drive(5, 5, true);
    assert_eq!(m.eq_cnt(), 1);
    m.drive(5, 5, false);
    assert_eq!(m.eq_cnt(), 2);
    assert!(!m.spy_mode());
}

#[test]
fn transfer_break_resets_the_counter() {
    let dut = passthrough();
    let ft = FtSpec::new(&dut).threshold(4).generate();
    let mut m = MiterDriver::new(ft.miter());
    m.drive(1, 1, true);
    m.drive(1, 1, false);
    assert_eq!(m.eq_cnt(), 2);
    // Inputs diverge: transfer_cond falls, the counter resets.
    assert!(m.transfer_cond());
    m.drive(1, 9, false);
    assert!(!m.transfer_cond());
    m.drive(1, 1, false);
    assert_eq!(m.eq_cnt(), 0, "a broken transfer restarts the period");
    assert!(!m.spy_mode());
}

#[test]
fn spy_mode_latches_after_threshold_and_sticks() {
    let dut = passthrough();
    let threshold = 3;
    let ft = FtSpec::new(&dut).threshold(threshold).generate();
    let mut m = MiterDriver::new(ft.miter());
    m.drive(2, 2, true);
    for _ in 0..threshold as usize {
        assert!(!m.spy_mode());
        m.drive(2, 2, false);
    }
    assert!(m.spy_mode(), "spy_mode rises after THRESHOLD equal cycles");
    // Sticky: even if inputs diverge afterwards (which the generated
    // assumptions would forbid in FPV, but simulation is unconstrained).
    m.drive(2, 7, false);
    assert!(m.spy_mode());
}

#[test]
fn counter_saturates_instead_of_wrapping() {
    // Listing 1's counter wraps at 2^clog2(T)+1; ours saturates so long
    // transfer periods cannot silently restart the count.
    let dut = passthrough();
    let ft = FtSpec::new(&dut).threshold(2).generate();
    let mut m = MiterDriver::new(ft.miter());
    m.drive(0, 0, true);
    for _ in 0..12 {
        m.drive(0, 0, false);
    }
    assert_eq!(m.eq_cnt(), 2, "saturated at THRESHOLD");
    assert!(m.spy_mode());
}

#[test]
fn divergence_during_victim_phase_is_unconstrained() {
    let dut = passthrough();
    let ft = FtSpec::new(&dut).generate();
    let mut m = MiterDriver::new(ft.miter());
    // Victim phase: wildly different executions, outputs differ — no
    // property is evaluated because spy_mode is low.
    for t in 0..6 {
        m.drive(t, 15 - t, false);
        assert!(!m.spy_mode());
    }
    // Properties in the miter are pure combinational nodes; while spy_mode
    // is low they are vacuously true.
    for (name, node) in ft.properties() {
        let v = {
            let mut sim = Sim::new(ft.miter());
            sim.node(*node)
        };
        assert!(v.as_bool(), "property {name} vacuous at reset");
    }
}

#[test]
fn miter_port_count_matches_duplication_rule() {
    let dut = passthrough();
    let ft = FtSpec::new(&dut).generate();
    // One DUT input, duplicated, plus the free flush_done.
    assert_eq!(ft.miter().inputs().len(), 3);
    // Monitor outputs plus one assertion-relevant output pair is exposed
    // through instance handles rather than ports; the miter's own outputs
    // are the 7 monitor signals.
    let monitor_outputs = ft
        .miter()
        .outputs()
        .iter()
        .filter(|o| o.name.starts_with("autocc."))
        .count();
    assert_eq!(monitor_outputs, 7);
}

#[test]
fn generated_properties_one_per_dut_output() {
    let mut b = ModuleBuilder::new("multi");
    let d = b.input("d", 4);
    let r = b.reg("r", 4, Bv::zero(4));
    b.set_next(r, d);
    b.output("q0", r);
    let inv = b.not(r);
    b.output("q1", inv);
    let red = b.reduce_or(r);
    b.output("q2", red);
    let dut = b.build();
    let ft = FtSpec::new(&dut).generate();
    let names: Vec<&str> = ft.properties().iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["as__q0_eq", "as__q1_eq", "as__q2_eq"]);
    // One input-equality assumption for the single duplicated input.
    assert_eq!(ft.constraints().len(), 1);
}
