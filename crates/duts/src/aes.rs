//! A pipelined encryption accelerator (paper Sec. 4.4) plus a software
//! AES-128 reference.
//!
//! The paper's DUT is a 40-stage pipelined AES-128 core with a pure
//! request/response interface and no flush mechanism. For a from-scratch
//! SAT engine we scale the datapath: the hardware pipeline encrypts a
//! 16-bit block with a genuine SPN round function (4-bit S-box, nibble
//! permutation, round-key mixing, rotate-and-S-box key schedule), one
//! round per stage. The software AES-128 in [`mod@reference`] is the full
//! standard cipher, validated against the FIPS-197 vectors — it documents
//! what the scaled pipeline stands in for and serves the sysim workloads.
//!
//! The covert channel (A1): the accelerator assumes only one process uses
//! it at a time. Requests in flight across a context switch surface as
//! response-timing differences for the next process. The refinement that
//! achieves full proof defines the flush condition as "both pipelines
//! idle", exactly as Sec. 4.4 describes.

use autocc_hdl::{Bv, Module, ModuleBuilder, NodeId};

/// Number of pipeline stages (rounds) in the default configuration.
///
/// The paper's DUT has 40 stages; what matters for the A1 channel is that
/// the pipeline is *longer* than the transfer period (THRESHOLD = 4), so a
/// victim request can still be in flight when the spy starts. Eight rounds
/// keeps that property at a solver-friendly size.
pub const DEFAULT_ROUNDS: usize = 8;

/// The 4-bit S-box used by the scaled cipher (a fixed nonlinear
/// permutation — the inversion-based S-box of the toy cipher "Mini-AES").
pub const SBOX4: [u8; 16] = [
    0xE, 0x4, 0xD, 0x1, 0x2, 0xF, 0xB, 0x8, 0x3, 0xA, 0x6, 0xC, 0x5, 0x9, 0x0, 0x7,
];

/// Configuration of the accelerator model.
#[derive(Clone, Copy, Debug)]
pub struct AesConfig {
    /// Pipeline depth in rounds.
    pub rounds: usize,
}

impl Default for AesConfig {
    fn default() -> AesConfig {
        AesConfig {
            rounds: DEFAULT_ROUNDS,
        }
    }
}

/// Software model of one scaled-cipher round (for differential testing
/// against the hardware pipeline).
pub fn round_model(state: u16, key: u16) -> u16 {
    // SubNibbles.
    let mut nibbles = [0u16; 4];
    for (i, n) in nibbles.iter_mut().enumerate() {
        *n = u16::from(SBOX4[(state >> (4 * i) & 0xf) as usize]);
    }
    // ShiftNibbles: rotate nibble positions by one.
    let shuffled = nibbles[3] | nibbles[0] << 4 | nibbles[1] << 8 | nibbles[2] << 12;
    // AddRoundKey.
    shuffled ^ key
}

/// Software model of the scaled key schedule step.
pub fn key_schedule_model(key: u16, round: usize) -> u16 {
    let rotated = key.rotate_left(4);
    let low = u16::from(SBOX4[(rotated & 0xf) as usize]);
    (rotated & !0xf | low) ^ (round as u16 + 1)
}

/// Software model of the full scaled cipher (`rounds` rounds).
pub fn encrypt_model(block: u16, key: u16, rounds: usize) -> u16 {
    let mut state = block;
    let mut k = key;
    for r in 0..rounds {
        state = round_model(state, k);
        k = key_schedule_model(k, r);
    }
    state
}

/// Builds a 4-bit S-box lookup as a mux tree.
fn sbox4(b: &mut ModuleBuilder, nibble: NodeId) -> NodeId {
    let mut out = b.lit(4, u64::from(SBOX4[0]));
    for (i, &v) in SBOX4.iter().enumerate().skip(1) {
        let hit = b.eq_lit(nibble, i as u64);
        let val = b.lit(4, u64::from(v));
        out = b.mux(hit, val, out);
    }
    out
}

/// One hardware round: SubNibbles, ShiftNibbles, AddRoundKey.
fn round_hw(b: &mut ModuleBuilder, state: NodeId, key: NodeId) -> NodeId {
    let n0 = b.slice(state, 3, 0);
    let n1 = b.slice(state, 7, 4);
    let n2 = b.slice(state, 11, 8);
    let n3 = b.slice(state, 15, 12);
    let s0 = sbox4(b, n0);
    let s1 = sbox4(b, n1);
    let s2 = sbox4(b, n2);
    let s3 = sbox4(b, n3);
    // shuffled = s3 | s0 << 4 | s1 << 8 | s2 << 12
    let hi = b.concat(s1, s0);
    let lo = b.concat(hi, s3); // s1:s0:s3
    let shuffled = b.concat(s2, lo); // s2:s1:s0:s3
    b.xor(shuffled, key)
}

/// One hardware key-schedule step.
fn key_schedule_hw(b: &mut ModuleBuilder, key: NodeId, round: usize) -> NodeId {
    let low12 = b.slice(key, 11, 0);
    let top4 = b.slice(key, 15, 12);
    let rotated = b.concat(low12, top4);
    let rlow = b.slice(rotated, 3, 0);
    let rhigh = b.slice(rotated, 15, 4);
    let sub = sbox4(b, rlow);
    let mixed = b.concat(rhigh, sub);
    let rc = b.lit(16, round as u64 + 1);
    b.xor(mixed, rc)
}

/// Builds the pipelined accelerator.
///
/// Interface: `req_valid`/`req_data`/`req_key` in; `resp_valid`/`resp_data`
/// out, `rounds` cycles later. No flush or invalidate control exists, as in
/// the paper's AES DUT.
pub fn build_aes(config: &AesConfig) -> Module {
    assert!(config.rounds >= 1);
    let mut b = ModuleBuilder::new("aes_accel");
    let req_valid = b.input("req_valid", 1);
    let req_data = b.input("req_data", 16);
    let req_key = b.input("req_key", 16);
    b.transaction_in("req", "req_valid", &["req_data", "req_key"]);

    let mut valid = req_valid;
    let mut data = req_data;
    let mut key = req_key;
    for r in 0..config.rounds {
        let new_data = round_hw(&mut b, data, key);
        let new_key = key_schedule_hw(&mut b, key, r);
        let v = b.reg(&format!("stage{r}.valid"), 1, Bv::zero(1));
        let d = b.reg(&format!("stage{r}.data"), 16, Bv::zero(16));
        let k = b.reg(&format!("stage{r}.key"), 16, Bv::zero(16));
        b.set_next(v, valid);
        b.set_next(d, new_data);
        b.set_next(k, new_key);
        valid = v;
        data = d;
        key = k;
    }
    b.output("resp_valid", valid);
    b.output("resp_data", data);
    b.transaction_out("resp", "resp_valid", &["resp_data"]);
    b.build()
}

/// Names of all per-stage valid bits, for flush conditions and invariants.
pub fn stage_valid_names(config: &AesConfig) -> Vec<String> {
    (0..config.rounds)
        .map(|r| format!("stage{r}.valid"))
        .collect()
}

/// Full software AES-128 (FIPS-197), used by system-level workloads and to
/// document what the scaled hardware pipeline substitutes for.
pub mod reference {
    /// The AES S-box.
    const SBOX: [u8; 256] = {
        // Generated from the standard definition: multiplicative inverse in
        // GF(2^8) followed by the affine transform.
        let mut sbox = [0u8; 256];
        let mut p: u8 = 1;
        let mut q: u8 = 1;
        // 3 is a generator of GF(256)*; walk all non-zero elements.
        loop {
            // p *= 3
            p = p ^ (p << 1) ^ (if p & 0x80 != 0 { 0x1B } else { 0 });
            // q /= 3 (multiply by the inverse generator 0xF6)
            q ^= q << 1;
            q ^= q << 2;
            q ^= q << 4;
            if q & 0x80 != 0 {
                q ^= 0x09;
            }
            let x = q ^ q.rotate_left(1) ^ q.rotate_left(2) ^ q.rotate_left(3) ^ q.rotate_left(4);
            sbox[p as usize] = x ^ 0x63;
            if p == 1 {
                break;
            }
        }
        sbox[0] = 0x63;
        sbox
    };

    fn xtime(x: u8) -> u8 {
        x << 1 ^ if x & 0x80 != 0 { 0x1B } else { 0 }
    }

    /// Expands a 128-bit key into 11 round keys.
    pub fn key_expansion(key: &[u8; 16]) -> [[u8; 16]; 11] {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        let mut rcon: u8 = 1;
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in &mut temp {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= rcon;
                rcon = xtime(rcon);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        round_keys
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for s in state.iter_mut() {
            *s = SBOX[*s as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: state[4c + r] = row r, column c.
        let copy = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[4 * c + r] = copy[4 * ((c + r) % 4) + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = &mut state[4 * c..4 * c + 4];
            let t = col[0] ^ col[1] ^ col[2] ^ col[3];
            let a0 = col[0];
            let mut next = [0u8; 4];
            for r in 0..4 {
                let b = if r == 3 { a0 } else { col[r + 1] };
                next[r] = col[r] ^ t ^ xtime(col[r] ^ b);
            }
            col.copy_from_slice(&next);
        }
    }

    /// Encrypts one 16-byte block with AES-128.
    pub fn encrypt_block(block: &[u8; 16], key: &[u8; 16]) -> [u8; 16] {
        let round_keys = key_expansion(key);
        let mut state = *block;
        add_round_key(&mut state, &round_keys[0]);
        for rk in round_keys.iter().take(10).skip(1) {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, rk);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &round_keys[10]);
        state
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        /// FIPS-197 Appendix B example vector.
        #[test]
        fn fips197_appendix_b() {
            let plaintext: [u8; 16] = [
                0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                0x07, 0x34,
            ];
            let key: [u8; 16] = [
                0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                0x4f, 0x3c,
            ];
            let expected: [u8; 16] = [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32,
            ];
            assert_eq!(encrypt_block(&plaintext, &key), expected);
        }

        /// FIPS-197 Appendix C.1 (AES-128) known-answer test.
        #[test]
        fn fips197_appendix_c1() {
            let plaintext: [u8; 16] = [
                0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                0xee, 0xff,
            ];
            let key: [u8; 16] = [
                0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
                0x0e, 0x0f,
            ];
            let expected: [u8; 16] = [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a,
            ];
            assert_eq!(encrypt_block(&plaintext, &key), expected);
        }

        #[test]
        fn key_expansion_first_and_last_words() {
            let key: [u8; 16] = [
                0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                0x4f, 0x3c,
            ];
            let rks = key_expansion(&key);
            assert_eq!(&rks[0], &key);
            // FIPS-197 A.1: w[43] = b6 63 0c a6.
            assert_eq!(&rks[10][12..16], &[0xb6, 0x63, 0x0c, 0xa6]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_hdl::Sim;

    #[test]
    fn sbox4_is_a_permutation() {
        let mut seen = [false; 16];
        for &v in &SBOX4 {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn pipeline_matches_software_model() {
        let config = AesConfig::default();
        let m = build_aes(&config);
        let mut sim = Sim::new(&m);
        let cases = [(0x3243u16, 0x2b7eu16), (0xffff, 0x0000), (0x0001, 0x8000)];
        for &(block, key) in &cases {
            sim.reset();
            sim.set_input("req_valid", Bv::bit(true));
            sim.set_input("req_data", Bv::new(16, u64::from(block)));
            sim.set_input("req_key", Bv::new(16, u64::from(key)));
            sim.step();
            sim.set_input("req_valid", Bv::bit(false));
            for _ in 1..config.rounds {
                assert!(!sim.output("resp_valid").as_bool());
                sim.step();
            }
            assert!(sim.output("resp_valid").as_bool(), "latency = rounds");
            let expected = encrypt_model(block, key, config.rounds);
            assert_eq!(sim.output("resp_data").value(), u64::from(expected));
        }
    }

    #[test]
    fn back_to_back_requests_pipeline() {
        let config = AesConfig { rounds: 3 };
        let m = build_aes(&config);
        let mut sim = Sim::new(&m);
        let blocks = [0x1111u16, 0x2222, 0x3333];
        for &blk in &blocks {
            sim.set_input("req_valid", Bv::bit(true));
            sim.set_input("req_data", Bv::new(16, u64::from(blk)));
            sim.set_input("req_key", Bv::new(16, 0xabcd));
            sim.step();
        }
        sim.set_input("req_valid", Bv::bit(false));
        let mut outputs = Vec::new();
        for _ in 0..3 {
            assert!(sim.output("resp_valid").as_bool());
            outputs.push(sim.output("resp_data").value());
            sim.step();
        }
        assert!(!sim.output("resp_valid").as_bool());
        let expected: Vec<u64> = blocks
            .iter()
            .map(|&b| u64::from(encrypt_model(b, 0xabcd, 3)))
            .collect();
        assert_eq!(outputs, expected);
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        // Sanity on the cipher's key dependence (not a security claim).
        let a = encrypt_model(0x1234, 0x0000, DEFAULT_ROUNDS);
        let b = encrypt_model(0x1234, 0x0001, DEFAULT_ROUNDS);
        assert_ne!(a, b);
    }
}
