//! A CVA6-like application-class core frontend (paper Sec. 4.2).
//!
//! CVA6 is a 64-bit application-class RISC-V core. The paper evaluates the
//! frontend/MMU/cache cluster where all of its CVA6 findings live; this
//! model rebuilds that cluster at reproduction scale (16-bit addresses,
//! 2-line caches, 1-entry TLB) with the exact FSM interactions behind each
//! counterexample:
//!
//! * **K1** (known full-flush channel): an outstanding I$ AXI request
//!   killed by the flush leaves the I$ FSM in `KILL_MISS` while the other
//!   universe sits in `IDLE`.
//! * **K2** (known full-flush channel): the page-table walker is not reset
//!   by the full flush; a walk in flight leaves `WAIT_RVALID` state behind.
//! * **C1**: a fetch from the faulting region produces a *valid* response
//!   whose payload is stale I$ data; the realigner derives its
//!   compressed-instruction bit from that payload, so the next PC depends
//!   on cache-array garbage (not reset even by microreset — SRAM contents
//!   cannot be cleared in one cycle).
//! * **C2**: the PTW FSM transitions `WAIT_RVALID → IDLE` when a *second*
//!   flush (an exception) arrives mid-walk, orphaning the outstanding D$
//!   request (upstream fix: openhwgroup/cva6#1184).
//! * **C3**: a PTW-initiated D$ fill that completes in the flush's clear
//!   cycle wins the write-port race and leaves a valid line after the
//!   flush (upstream fix: pulp-platform/cva6@ae79ec5).
//!
//! `fence.t` comes in the two variants the paper studies: a *full flush*
//! (clear caches/TLB in one cycle, FSMs untouched) and *microreset*
//! (reset every microarchitectural flip-flop, constant padded latency —
//! but neither the SRAM data arrays nor the AXI protocol state, which
//! physically cannot be reset).

use autocc_hdl::{Bv, Module, ModuleBuilder};

/// The `fence.t` implementation (Sec. 4.2, after Wistoff et al.).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FenceImpl {
    /// Clear cache/TLB valid bits in one cycle; FSMs keep running.
    FullFlush,
    /// Reset all microarchitectural flip-flops with a constant (padded)
    /// latency; SRAM contents and AXI bookkeeping survive.
    Microreset,
}

/// Configuration: fence variant plus the three upstream fixes.
#[derive(Clone, Copy, Debug)]
pub struct Cva6Config {
    /// Which `fence.t` implementation to build.
    pub fence: FenceImpl,
    /// Zero the I$ response payload when the line is not a real hit (C1).
    pub fix_c1: bool,
    /// PTW stays in `WAIT_RVALID` even if flushed again (C2).
    pub fix_c2: bool,
    /// Accept D$ fills only for a live walk outside the fence window
    /// (C3: drain before and after the write-back).
    pub fix_c3: bool,
}

impl Cva6Config {
    /// The unfixed microreset configuration the paper starts from.
    pub fn microreset() -> Cva6Config {
        Cva6Config {
            fence: FenceImpl::Microreset,
            fix_c1: false,
            fix_c2: false,
            fix_c3: false,
        }
    }

    /// The unfixed full-flush configuration (for the known channels).
    pub fn full_flush() -> Cva6Config {
        Cva6Config {
            fence: FenceImpl::FullFlush,
            ..Cva6Config::microreset()
        }
    }

    /// Microreset with every fix applied.
    pub fn all_fixed() -> Cva6Config {
        Cva6Config {
            fence: FenceImpl::Microreset,
            fix_c1: true,
            fix_c2: true,
            fix_c3: true,
        }
    }
}

/// I$ controller states.
pub mod ic_state {
    /// Ready for lookups.
    pub const IDLE: u64 = 0;
    /// AXI fill request outstanding.
    pub const MISS: u64 = 1;
    /// Fill killed by a flush; draining the response.
    pub const KILL_MISS: u64 = 2;
}

/// PTW states.
pub mod ptw_state {
    /// No walk in progress.
    pub const IDLE: u64 = 0;
    /// Looking up the PTE in the D$.
    pub const PTE_LOOKUP: u64 = 1;
    /// Waiting for the D$ fill response.
    pub const WAIT_RVALID: u64 = 2;
}

/// Fence controller states.
pub mod fence_state {
    /// No fence in progress.
    pub const IDLE: u64 = 0;
    /// Write-back cycle (microreset only).
    pub const WB: u64 = 1;
    /// Flip-flops and valid bits are cleared in this cycle.
    pub const CLEAR: u64 = 2;
    /// Post-clear padding cycle (microreset only; constant latency).
    /// `fence_done` pulses here — responses landing in this window are
    /// the C3 hazard: they arrive *after* the clear.
    pub const PAD: u64 = 3;
}

/// Builds the CVA6 frontend model.
///
/// Interface: `fence_t` and `exception_i` control pulses; AXI-style fill
/// channels for the I$ (`axi_*`) and D$ (`dmem_*`); observable outputs are
/// the two request channels, the fetch response (`fetch_valid`/`fetch_pc`/
/// `fetch_data`), and `fence_done`.
pub fn build_cva6(config: &Cva6Config) -> Module {
    let mut b = ModuleBuilder::new("cva6_frontend");

    // ---- Inputs ---------------------------------------------------------
    let fence_t = b.input("fence_t", 1);
    let exception_i = b.input("exception_i", 1);
    let axi_rvalid = b.input("axi_rvalid", 1);
    let axi_rdata = b.input("axi_rdata", 16);
    b.transaction_in("axi_r", "axi_rvalid", &["axi_rdata"]);
    let dmem_rvalid = b.input("dmem_rvalid", 1);
    let dmem_rdata = b.input("dmem_rdata", 16);
    b.transaction_in("dmem_r", "dmem_rvalid", &["dmem_rdata"]);
    // Backend redirect (branches, exceptions vectoring, returns): lets the
    // PC move anywhere, in particular into the faulting region (C1).
    let redirect_valid = b.input("redirect_valid", 1);
    let redirect_target = b.input("redirect_target", 16);
    b.transaction_in("redirect", "redirect_valid", &["redirect_target"]);

    // ---- State ----------------------------------------------------------
    let pc = b.reg("frontend.pc", 16, Bv::zero(16));
    let icst = b.reg("icache.state", 2, Bv::zero(2));
    let ic_miss_idx = b.reg("icache.miss_idx", 1, Bv::zero(1));
    let ic_miss_tag = b.reg("icache.miss_tag", 7, Bv::zero(7));
    let ptwst = b.reg("ptw.state", 2, Bv::zero(2));
    let ptw_vpn = b.reg("ptw.vpn", 4, Bv::zero(4));
    let dc_outstanding = b.reg("dcache.outstanding", 1, Bv::zero(1));
    let dc_miss_idx = b.reg("dcache.miss_idx", 1, Bv::zero(1));
    let dc_miss_tag = b.reg("dcache.miss_tag", 7, Bv::zero(7));
    let tlb_valid = b.reg("itlb.valid", 1, Bv::zero(1));
    let tlb_vpn = b.reg("itlb.vpn", 4, Bv::zero(4));
    let tlb_ppn = b.reg("itlb.ppn", 4, Bv::zero(4));
    let fencest = b.reg("fence.state", 2, Bv::zero(2));

    let ic_tags = b.mem("icache.tags", 2, 7);
    let ic_valids = b.mem("icache.valids", 2, 1);
    let ic_data = b.mem("icache.data", 2, 16);
    let dc_tags = b.mem("dcache.tags", 2, 7);
    let dc_valids = b.mem("dcache.valids", 2, 1);
    let dc_data = b.mem("dcache.data", 2, 16);

    // ---- Fence controller -----------------------------------------------
    let fence_idle = b.eq_lit(fencest, fence_state::IDLE);
    let fence_wb = b.eq_lit(fencest, fence_state::WB);
    let fence_clear = b.eq_lit(fencest, fence_state::CLEAR);
    let fence_pad = b.eq_lit(fencest, fence_state::PAD);
    let fence_active = b.not(fence_idle);
    let fence_start = b.and(fence_t, fence_idle);

    let idle_l = b.lit(2, fence_state::IDLE);
    let wb_l = b.lit(2, fence_state::WB);
    let clear_l = b.lit(2, fence_state::CLEAR);
    let pad_l = b.lit(2, fence_state::PAD);
    let (fence_next, fence_done) = match config.fence {
        FenceImpl::Microreset => {
            // Constant-latency: IDLE -> WB -> CLEAR -> PAD(done) -> IDLE.
            let mut n = b.mux(fence_start, wb_l, fencest);
            n = b.mux(fence_wb, clear_l, n);
            n = b.mux(fence_clear, pad_l, n);
            n = b.mux(fence_pad, idle_l, n);
            (n, fence_pad)
        }
        FenceImpl::FullFlush => {
            // Single clear cycle; done immediately.
            let mut n = b.mux(fence_start, clear_l, fencest);
            n = b.mux(fence_clear, idle_l, n);
            (n, fence_clear)
        }
    };
    b.set_next(fencest, fence_next);

    // Flush pulse seen by the datapath FSMs: the fence starting, or an
    // exception (the second flush source in the C2 scenario).
    let flush_pulse = b.or(fence_start, exception_i);

    // ---- Instruction TLB / translation -----------------------------------
    let vpn = b.slice(pc, 15, 12);
    let page_off = b.slice(pc, 11, 0);
    let vpn_match = b.eq(vpn, tlb_vpn);
    let tlb_hit = b.and(tlb_valid, vpn_match);
    let paddr = b.concat(tlb_ppn, page_off);
    // Fetches from the top region fault (device space).
    let exception_region = b.eq_lit(vpn, 0xf);

    // ---- I$ lookup --------------------------------------------------------
    let ic_idle = b.eq_lit(icst, ic_state::IDLE);
    let ic_missing = b.eq_lit(icst, ic_state::MISS);
    let ic_killing = b.eq_lit(icst, ic_state::KILL_MISS);
    let ptw_idle = b.eq_lit(ptwst, ptw_state::IDLE);

    // A backend redirect cancels the fetch issued this cycle (and with it
    // any walk it would have started).
    let not_redirect = b.not(redirect_valid);
    let fetch_ready = {
        let a = b.and(fence_idle, ic_idle);
        let a = b.and(a, ptw_idle);
        b.and(a, not_redirect)
    };
    let ic_index = b.bit(pc, 0);
    let ic_tag = b.slice(paddr, 7, 1);
    let line_tag = b.mem_read(ic_tags, ic_index);
    let line_valid_bit = b.mem_read(ic_valids, ic_index);
    let line_valid = b.bit(line_valid_bit, 0);
    let line_data = b.mem_read(ic_data, ic_index);
    let tag_match = b.eq(line_tag, ic_tag);
    let ic_hit = b.and(line_valid, tag_match);

    // Fetch outcomes.
    let fetch_exception = b.and(fetch_ready, exception_region);
    let translated = {
        let ne = b.not(exception_region);
        let t = b.and(fetch_ready, ne);
        b.and(t, tlb_hit)
    };
    let fetch_hit = b.and(translated, ic_hit);
    let fetch_miss = {
        let nh = b.not(ic_hit);
        b.and(translated, nh)
    };
    let need_walk = {
        let ne = b.not(exception_region);
        let nt = b.not(tlb_hit);
        let w = b.and(fetch_ready, ne);
        b.and(w, nt)
    };

    // C1: an exception response is *valid* but carries whatever the indexed
    // line holds — stale SRAM garbage. The fix zeroes the payload when the
    // access was not a genuine hit.
    let zero16 = b.lit(16, 0);
    let exc_payload = if config.fix_c1 { zero16 } else { line_data };
    let fetch_valid = b.or(fetch_hit, fetch_exception);
    let fetch_data = b.mux(fetch_hit, line_data, exc_payload);

    // Realigner: the compressed bit of the payload decides the PC step.
    let compressed = b.bit(fetch_data, 0);
    let one16 = b.lit(16, 1);
    let two16 = b.lit(16, 2);
    let step = b.mux(compressed, one16, two16);
    let pc_stepped = b.add(pc, step);
    let pc_seq = b.mux(fetch_valid, pc_stepped, pc);
    let pc_next = b.mux(redirect_valid, redirect_target, pc_seq);
    // Microreset resets the PC too (the OS restores it; modelling the reset
    // keeps `arch_state_eq` free to treat the PC as arch state instead).
    b.set_next(pc, pc_next);

    // ---- I$ miss FSM ------------------------------------------------------
    let ic_idle_l = b.lit(2, ic_state::IDLE);
    let ic_miss_l = b.lit(2, ic_state::MISS);
    let ic_kill_l = b.lit(2, ic_state::KILL_MISS);
    let mut ic_next = b.mux(fetch_miss, ic_miss_l, icst);
    // Fill completes.
    let ic_fill = b.and(ic_missing, axi_rvalid);
    ic_next = b.mux(ic_fill, ic_idle_l, ic_next);
    // Flush kills an outstanding fill: MISS -> KILL_MISS.
    let ic_killed = b.and(ic_missing, flush_pulse);
    ic_next = b.mux(ic_killed, ic_kill_l, ic_next);
    // KILL_MISS drains the response.
    let ic_drained = b.and(ic_killing, axi_rvalid);
    ic_next = b.mux(ic_drained, ic_idle_l, ic_next);
    if config.fence == FenceImpl::Microreset {
        // Microreset resets the FSM (the fence padding covers the drain).
        ic_next = b.mux(fence_clear, ic_idle_l, ic_next);
    }
    b.set_next(icst, ic_next);
    let ic_miss_idx_next = b.mux(fetch_miss, ic_index, ic_miss_idx);
    b.set_next(ic_miss_idx, ic_miss_idx_next);
    let ic_miss_tag_next = b.mux(fetch_miss, ic_tag, ic_miss_tag);
    b.set_next(ic_miss_tag, ic_miss_tag_next);

    // I$ fill ports: data/tag always written on fill; valid cleared by the
    // fence (clear beats fill for the I$ — the bug lives in the D$).
    b.mem_write(ic_tags, ic_fill, ic_miss_idx, ic_miss_tag);
    b.mem_write(ic_data, ic_fill, ic_miss_idx, axi_rdata);
    let one1 = b.lit(1, 1);
    let zero1 = b.lit(1, 0);
    b.mem_write(ic_valids, ic_fill, ic_miss_idx, one1);
    for i in 0..2 {
        let idx = b.lit(1, i);
        b.mem_write(ic_valids, fence_clear, idx, zero1);
    }

    // ---- PTW --------------------------------------------------------------
    let ptw_lookup = b.eq_lit(ptwst, ptw_state::PTE_LOOKUP);
    let ptw_wait = b.eq_lit(ptwst, ptw_state::WAIT_RVALID);
    let ptw_idle_l = b.lit(2, ptw_state::IDLE);
    let ptw_lookup_l = b.lit(2, ptw_state::PTE_LOOKUP);
    let ptw_wait_l = b.lit(2, ptw_state::WAIT_RVALID);

    // PTE address: page-table base | vpn.
    let pte_addr = {
        let base = b.lit(16, 0x8000);
        let v16 = b.zext(vpn, 16);
        let walk_v16 = b.zext(ptw_vpn, 16);
        let cur = b.mux(ptw_lookup, walk_v16, v16);
        b.or(base, cur)
    };
    let dc_index = b.bit(pte_addr, 0);
    let dc_tag = b.slice(pte_addr, 7, 1);
    let dline_tag = b.mem_read(dc_tags, dc_index);
    let dline_valid_bit = b.mem_read(dc_valids, dc_index);
    let dline_valid = b.bit(dline_valid_bit, 0);
    let dline_data = b.mem_read(dc_data, dc_index);
    let dtag_match = b.eq(dline_tag, dc_tag);
    let dc_hit = b.and(dline_valid, dtag_match);

    // Walk start.
    let mut ptw_next = b.mux(need_walk, ptw_lookup_l, ptwst);
    // PTE_LOOKUP: hit -> fill TLB, IDLE; miss -> issue D$ fill, WAIT.
    let lookup_hit = b.and(ptw_lookup, dc_hit);
    let not_outstanding = b.not(dc_outstanding);
    let lookup_miss = {
        let nh = b.not(dc_hit);
        let m = b.and(ptw_lookup, nh);
        b.and(m, not_outstanding)
    };
    ptw_next = b.mux(lookup_hit, ptw_idle_l, ptw_next);
    ptw_next = b.mux(lookup_miss, ptw_wait_l, ptw_next);
    // Flush during PTE_LOOKUP: wait for the response if one is in flight.
    let flushed_in_lookup = b.and(ptw_lookup, flush_pulse);
    let flush_to_wait = b.and(flushed_in_lookup, dc_outstanding);
    let flush_to_idle = b.and(flushed_in_lookup, not_outstanding);
    ptw_next = b.mux(flush_to_wait, ptw_wait_l, ptw_next);
    ptw_next = b.mux(flush_to_idle, ptw_idle_l, ptw_next);
    // WAIT_RVALID: response completes the walk.
    let wait_done = b.and(ptw_wait, dmem_rvalid);
    ptw_next = b.mux(wait_done, ptw_idle_l, ptw_next);
    if !config.fix_c2 {
        // C2 bug: a second flush (exception) in WAIT_RVALID aborts the walk
        // immediately, orphaning the outstanding request.
        let aborted = b.and(ptw_wait, exception_i);
        ptw_next = b.mux(aborted, ptw_idle_l, ptw_next);
    }
    if config.fence == FenceImpl::Microreset {
        ptw_next = b.mux(fence_clear, ptw_idle_l, ptw_next);
    }
    b.set_next(ptwst, ptw_next);
    let ptw_vpn_next = b.mux(need_walk, vpn, ptw_vpn);
    b.set_next(ptw_vpn, ptw_vpn_next);

    // D$ outstanding bookkeeping (AXI protocol state: never reset).
    let dc_resp = b.and(dc_outstanding, dmem_rvalid);
    let mut dc_out_next = b.or(lookup_miss, dc_outstanding);
    let not_resp = b.not(dc_resp);
    dc_out_next = b.and(dc_out_next, not_resp);
    let keep_on_issue = b.or(lookup_miss, dc_out_next);
    b.set_next(dc_outstanding, keep_on_issue);
    let dc_miss_idx_next = b.mux(lookup_miss, dc_index, dc_miss_idx);
    b.set_next(dc_miss_idx, dc_miss_idx_next);
    let dc_miss_tag_next = b.mux(lookup_miss, dc_tag, dc_miss_tag);
    b.set_next(dc_miss_tag, dc_miss_tag_next);

    // D$ fill ports. C3 bug: a response always fills the array — even when
    // the fence is active (the fill wins the write-port race against the
    // clear) or when the walk that issued it is gone (an orphan). The fix
    // drains instead: fills are only accepted for a live walk outside the
    // fence window.
    let dc_fill = if config.fix_c3 {
        let nf = b.not(fence_active);
        let live = b.and(ptw_wait, nf);
        b.and(dc_resp, live)
    } else {
        dc_resp
    };
    for i in 0..2 {
        let idx = b.lit(1, i);
        b.mem_write(dc_valids, fence_clear, idx, zero1);
    }
    b.mem_write(dc_tags, dc_fill, dc_miss_idx, dc_miss_tag);
    b.mem_write(dc_data, dc_fill, dc_miss_idx, dmem_rdata);
    b.mem_write(dc_valids, dc_fill, dc_miss_idx, one1);

    // TLB fill: walk completing (hit in D$, or response while waiting and
    // not flushed away). A microreset clears the TLB.
    let tlb_fill = b.or(lookup_hit, wait_done);
    let mut tlb_v_next = b.or(tlb_fill, tlb_valid);
    let clear_tlb = match config.fence {
        FenceImpl::Microreset => fence_clear,
        FenceImpl::FullFlush => fence_clear,
    };
    {
        let nc = b.not(clear_tlb);
        tlb_v_next = b.and(tlb_v_next, nc);
    }
    b.set_next(tlb_valid, tlb_v_next);
    let walk_vpn = b.mux(ptw_lookup, ptw_vpn, vpn);
    let tlb_vpn_next = b.mux(tlb_fill, walk_vpn, tlb_vpn);
    b.set_next(tlb_vpn, tlb_vpn_next);
    let pte_source = b.mux(lookup_hit, dline_data, dmem_rdata);
    let pte_ppn = b.slice(pte_source, 3, 0);
    let tlb_ppn_next = b.mux(tlb_fill, pte_ppn, tlb_ppn);
    b.set_next(tlb_ppn, tlb_ppn_next);

    // ---- Outputs -----------------------------------------------------------
    let axi_req = b.or(ic_missing, ic_killing);
    let axi_addr = {
        let tag_idx = b.concat(ic_miss_tag, ic_miss_idx);
        b.zext(tag_idx, 16)
    };
    b.output("axi_req", axi_req);
    b.output("axi_addr", axi_addr);
    b.transaction_out("axi_ar", "axi_req", &["axi_addr"]);
    let dmem_req = dc_outstanding;
    let dmem_addr = {
        let tag_idx = b.concat(dc_miss_tag, dc_miss_idx);
        b.zext(tag_idx, 16)
    };
    b.output("dmem_req", dmem_req);
    b.output("dmem_addr", dmem_addr);
    b.transaction_out("dmem_ar", "dmem_req", &["dmem_addr"]);
    b.output("fetch_valid", fetch_valid);
    b.output("fetch_data", fetch_data);
    b.output("fetch_pc", pc);
    b.transaction_out("fetch", "fetch_valid", &["fetch_data"]);
    b.output("fence_done", fence_done);

    b.build()
}

/// Architectural state of the frontend model: the PC (the OS swaps it).
pub const ARCH_REGS: [&str; 1] = ["frontend.pc"];

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_hdl::Sim;

    fn quiet(sim: &mut Sim<'_>) {
        sim.set_input("fence_t", Bv::bit(false));
        sim.set_input("exception_i", Bv::bit(false));
        sim.set_input("axi_rvalid", Bv::bit(false));
        sim.set_input("dmem_rvalid", Bv::bit(false));
        sim.set_input("redirect_valid", Bv::bit(false));
    }

    /// Walks the TLB (PTE fetch through the D$) and fills the I$ so the
    /// frontend reaches a steady fetch state.
    fn warm_up(sim: &mut Sim<'_>) {
        quiet(sim);
        // Cycle 0: TLB miss at pc=0 -> walk starts.
        sim.step();
        // PTE lookup misses the D$ -> dmem request goes out.
        sim.step();
        assert!(sim.output("dmem_req").as_bool(), "PTE fetch issued");
        // Respond: PTE maps vpn 0 -> ppn 2.
        sim.set_input("dmem_rvalid", Bv::bit(true));
        sim.set_input("dmem_rdata", Bv::new(16, 0x2));
        sim.step();
        sim.set_input("dmem_rvalid", Bv::bit(false));
        // Fetch now misses the I$ -> axi request.
        sim.step();
        assert!(sim.output("axi_req").as_bool(), "I$ fill issued");
        sim.set_input("axi_rvalid", Bv::bit(true));
        sim.set_input("axi_rdata", Bv::new(16, 0xabcc)); // bit0=0: uncompressed
        sim.step();
        sim.set_input("axi_rvalid", Bv::bit(false));
    }

    #[test]
    fn fetch_pipeline_warms_up_and_advances_pc() {
        let m = build_cva6(&Cva6Config::microreset());
        let mut sim = Sim::new(&m);
        warm_up(&mut sim);
        assert!(sim.output("fetch_valid").as_bool(), "hit after fill");
        assert_eq!(sim.output("fetch_data").value(), 0xabcc);
        let pc0 = sim.output("fetch_pc").value();
        sim.step();
        // Uncompressed instruction: pc += 2.
        assert_eq!(sim.output("fetch_pc").value(), pc0 + 2);
    }

    #[test]
    fn exception_fetch_leaks_stale_line_data_unless_fixed() {
        for (fix, expect) in [(false, 0xabccu64), (true, 0)] {
            let m = build_cva6(&Cva6Config {
                fix_c1: fix,
                ..Cva6Config::microreset()
            });
            let mut sim = Sim::new(&m);
            warm_up(&mut sim);
            // Jump the PC into the faulting region, aligned with the warm
            // line's index (pc bit 0 = 0).
            sim.set_input("redirect_valid", Bv::bit(true));
            sim.set_input("redirect_target", Bv::new(16, 0xf000));
            sim.step();
            sim.set_input("redirect_valid", Bv::bit(false));
            assert!(sim.output("fetch_valid").as_bool(), "exception responds");
            assert_eq!(
                sim.output("fetch_data").value(),
                expect,
                "fix_c1={fix}: payload must be {}",
                if fix { "zeroed" } else { "stale line data" }
            );
        }
    }

    #[test]
    fn full_flush_kills_outstanding_icache_fill() {
        let m = build_cva6(&Cva6Config::full_flush());
        let mut sim = Sim::new(&m);
        quiet(&mut sim);
        // Get into MISS: walk TLB first.
        sim.step();
        sim.step();
        sim.set_input("dmem_rvalid", Bv::bit(true));
        sim.set_input("dmem_rdata", Bv::new(16, 0x2));
        sim.step();
        sim.set_input("dmem_rvalid", Bv::bit(false));
        sim.step(); // I$ miss -> MISS state
        let st = m.find_reg("icache.state").unwrap();
        assert_eq!(sim.reg(st).value(), ic_state::MISS);
        // Fence while the fill is outstanding.
        sim.set_input("fence_t", Bv::bit(true));
        sim.step();
        sim.set_input("fence_t", Bv::bit(false));
        assert_eq!(sim.reg(st).value(), ic_state::KILL_MISS, "K1 state");
        // The response drains it back to IDLE.
        sim.set_input("axi_rvalid", Bv::bit(true));
        sim.step();
        sim.set_input("axi_rvalid", Bv::bit(false));
        assert_eq!(sim.reg(st).value(), ic_state::IDLE);
    }

    #[test]
    fn c2_second_flush_orphans_the_walk_unless_fixed() {
        for fix in [false, true] {
            let m = build_cva6(&Cva6Config {
                fix_c2: fix,
                ..Cva6Config::microreset()
            });
            let mut sim = Sim::new(&m);
            quiet(&mut sim);
            sim.step(); // walk starts
            sim.step(); // PTE lookup misses -> WAIT_RVALID
            let st = m.find_reg("ptw.state").unwrap();
            assert_eq!(sim.reg(st).value(), ptw_state::WAIT_RVALID);
            // Second flush: an exception mid-wait.
            sim.set_input("exception_i", Bv::bit(true));
            sim.step();
            sim.set_input("exception_i", Bv::bit(false));
            if fix {
                assert_eq!(
                    sim.reg(st).value(),
                    ptw_state::WAIT_RVALID,
                    "fixed PTW waits for the response"
                );
            } else {
                assert_eq!(sim.reg(st).value(), ptw_state::IDLE, "C2: walk aborted");
                let out = m.find_reg("dcache.outstanding").unwrap();
                assert!(sim.reg(out).as_bool(), "request orphaned");
            }
        }
    }

    #[test]
    fn c3_fill_in_clear_cycle_survives_the_flush_unless_fixed() {
        for fix in [false, true] {
            let m = build_cva6(&Cva6Config {
                fix_c3: fix,
                ..Cva6Config::microreset()
            });
            let mut sim = Sim::new(&m);
            quiet(&mut sim);
            sim.step(); // walk starts
            sim.step(); // PTE lookup miss -> outstanding
                        // Fence starts; the response lands in the PAD window, *after*
                        // the clear cycle (microreset: WB, CLEAR, PAD).
            sim.set_input("fence_t", Bv::bit(true));
            sim.step(); // -> WB
            sim.set_input("fence_t", Bv::bit(false));
            sim.step(); // -> CLEAR
            sim.step(); // -> PAD
            let fs = m.find_reg("fence.state").unwrap();
            assert_eq!(sim.reg(fs).value(), fence_state::PAD);
            sim.set_input("dmem_rvalid", Bv::bit(true));
            sim.set_input("dmem_rdata", Bv::new(16, 0x3));
            sim.step(); // fill after the clear
            sim.set_input("dmem_rvalid", Bv::bit(false));
            let valids = m.find_mem("dcache.valids").unwrap();
            let any_valid = sim.mem_word(valids, 0).as_bool() || sim.mem_word(valids, 1).as_bool();
            if fix {
                assert!(!any_valid, "fix_c3 drains the fill");
            } else {
                assert!(any_valid, "C3: a line is valid after the flush");
            }
        }
    }

    #[test]
    fn microreset_clears_fsms_but_not_data_arrays() {
        let m = build_cva6(&Cva6Config::microreset());
        let mut sim = Sim::new(&m);
        warm_up(&mut sim);
        let data = m.find_mem("icache.data").unwrap();
        let idx = (0..2).find(|&w| sim.mem_word(data, w).value() == 0xabcc);
        assert!(idx.is_some(), "warm line holds data");
        sim.set_input("fence_t", Bv::bit(true));
        sim.step();
        sim.set_input("fence_t", Bv::bit(false));
        for _ in 0..3 {
            sim.step();
        }
        let valids = m.find_mem("icache.valids").unwrap();
        assert!(!sim.mem_word(valids, 0).as_bool());
        assert!(!sim.mem_word(valids, 1).as_bool());
        let tlbv = m.find_reg("itlb.valid").unwrap();
        assert!(!sim.reg(tlbv).as_bool());
        // Data array survives: the C1 leak source.
        assert_eq!(sim.mem_word(data, idx.unwrap()).value(), 0xabcc);
    }

    #[test]
    fn fence_latency_is_constant_for_microreset() {
        let m = build_cva6(&Cva6Config::microreset());
        let mut sim = Sim::new(&m);
        quiet(&mut sim);
        sim.set_input("fence_t", Bv::bit(true));
        sim.step();
        sim.set_input("fence_t", Bv::bit(false));
        let mut done_at = None;
        for t in 0..6 {
            if sim.output("fence_done").as_bool() {
                done_at = Some(t);
                break;
            }
            sim.step();
        }
        // After the start cycle: WB at t=0, CLEAR at t=1, PAD (done) at t=2.
        assert_eq!(done_at, Some(2), "WB, CLEAR, then PAD pulses done");
    }
}

#[cfg(test)]
mod redirect_tests {
    use super::*;
    use autocc_hdl::{Bv, Sim};

    fn quiet(sim: &mut Sim<'_>) {
        sim.set_input("fence_t", Bv::bit(false));
        sim.set_input("exception_i", Bv::bit(false));
        sim.set_input("axi_rvalid", Bv::bit(false));
        sim.set_input("dmem_rvalid", Bv::bit(false));
        sim.set_input("redirect_valid", Bv::bit(false));
    }

    #[test]
    fn backend_redirect_moves_the_pc() {
        let m = build_cva6(&Cva6Config::microreset());
        let mut sim = Sim::new(&m);
        quiet(&mut sim);
        sim.set_input("redirect_valid", Bv::bit(true));
        sim.set_input("redirect_target", Bv::new(16, 0x3456));
        sim.step();
        sim.set_input("redirect_valid", Bv::bit(false));
        assert_eq!(sim.output("fetch_pc").value(), 0x3456);
    }

    #[test]
    fn fault_region_fetch_responds_without_a_walk() {
        let m = build_cva6(&Cva6Config::microreset());
        let mut sim = Sim::new(&m);
        quiet(&mut sim);
        sim.set_input("redirect_valid", Bv::bit(true));
        sim.set_input("redirect_target", Bv::new(16, 0xf000));
        sim.step();
        sim.set_input("redirect_valid", Bv::bit(false));
        // Exception fetches respond immediately (valid) with no PTW
        // activity and no memory request.
        assert!(sim.output("fetch_valid").as_bool());
        assert!(!sim.output("dmem_req").as_bool());
        assert!(!sim.output("axi_req").as_bool());
        let ptw = m.find_reg("ptw.state").unwrap();
        assert_eq!(sim.reg(ptw).value(), ptw_state::IDLE);
    }

    #[test]
    fn compressed_bit_controls_the_pc_step() {
        // C1's observable: the realigner steps the PC by 1 or 2 depending
        // on payload bit 0 — here exercised through the fault path where
        // the payload is the (stale) line data.
        let m = build_cva6(&Cva6Config::microreset());
        let mut sim = Sim::new(&m);
        quiet(&mut sim);
        let data = m.find_mem("icache.data").unwrap();
        for (stale, step) in [(0x0000u64, 2u64), (0x0001, 1)] {
            sim.reset();
            quiet(&mut sim);
            sim.set_mem_word(data, 0, Bv::new(16, stale));
            sim.set_input("redirect_valid", Bv::bit(true));
            sim.set_input("redirect_target", Bv::new(16, 0xf000));
            sim.step();
            sim.set_input("redirect_valid", Bv::bit(false));
            let pc0 = sim.output("fetch_pc").value();
            sim.step();
            assert_eq!(
                sim.output("fetch_pc").value(),
                pc0 + step,
                "stale={stale:#x}"
            );
        }
    }
}
