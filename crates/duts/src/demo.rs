//! Small teaching DUTs for the examples and quickstart.

use autocc_hdl::{Bv, Module, ModuleBuilder};

/// A direct-mapped cache model with a hit/miss timing interface — the
/// Fig.-1 motivating substrate for the prime-and-probe example.
///
/// * `req`/`addr`: lookup request.
/// * `hit`: combinational hit indication (the "timing" a spy observes).
/// * Misses allocate the line on the next edge.
/// * `flush`: common control that invalidates every line when high
///   (present only when `with_flush` is set).
pub fn direct_mapped_cache(lines: usize, tag_bits: u32, with_flush: bool) -> Module {
    assert!(lines.is_power_of_two() && lines >= 2);
    let index_bits = lines.trailing_zeros();
    let mut b = ModuleBuilder::new("dm_cache");
    let req = b.input("req", 1);
    let addr = b.input("addr", index_bits + tag_bits);
    let flush = with_flush.then(|| b.input_common("flush", 1));

    let tags = b.mem("tags", lines, tag_bits);
    let valids = b.mem("valids", lines, 1);

    let index = b.slice(addr, index_bits - 1, 0);
    let tag = b.slice(addr, index_bits + tag_bits - 1, index_bits);
    let line_tag = b.mem_read(tags, index);
    let line_valid = b.mem_read(valids, index);
    let tag_match = b.eq(line_tag, tag);
    let hit = {
        let h = b.and(line_valid, tag_match);
        b.and(h, req)
    };
    // Allocate on miss.
    let miss = {
        let nh = b.not(hit);
        b.and(req, nh)
    };
    b.mem_write(tags, miss, index, tag);
    let one = b.lit(1, 1);
    b.mem_write(valids, miss, index, one);
    if let Some(f) = flush {
        // Invalidate every line: one write port per line, highest priority.
        for i in 0..lines {
            let idx = b.lit(index_bits, i as u64);
            let zero = b.lit(1, 0);
            b.mem_write(valids, f, idx, zero);
        }
    }
    b.output("hit", hit);
    b.build()
}

/// The quickstart DUT: a device with a configuration register that is
/// readable back through a gated port — a minimal covert channel.
pub fn config_device(with_flush: bool) -> Module {
    let mut b = ModuleBuilder::new("config_device");
    let we = b.input("we", 1);
    let re = b.input("re", 1);
    let data = b.input("data", 8);
    let flush = with_flush.then(|| b.input_common("flush", 1));
    let cfg = b.reg("cfg", 8, Bv::zero(8));
    let wr = b.mux(we, data, cfg);
    let next = match flush {
        Some(f) => {
            let zero = b.lit(8, 0);
            b.mux(f, zero, wr)
        }
        None => wr,
    };
    b.set_next(cfg, next);
    let zero = b.lit(8, 0);
    let q = b.mux(re, cfg, zero);
    b.output("q", q);
    b.build()
}

/// A device whose flush *latency* depends on microarchitectural state —
/// the Sec. 3.2 blind spot: synchronising on flush *completion* hides the
/// channel, synchronising on flush *start* exposes it.
///
/// A dirty buffer needs an extra write-back cycle: a clean flush takes two
/// cycles, a dirty one three. The buffer itself is cleared, so no *state*
/// survives — only the latency differs.
pub fn variable_latency_flush_device() -> Module {
    let mut b = ModuleBuilder::new("var_latency_flush");
    let we = b.input("we", 1);
    let data = b.input("data", 8);
    let flush_req = b.input("flush_req", 1);

    let buf = b.reg("buf", 8, Bv::zero(8));
    let dirty = b.reg("dirty", 1, Bv::zero(1));
    // Down-counter: 0 = idle; loaded with the flush latency on start;
    // `flush_done` pulses when it reaches 1.
    let ctr = b.reg("flush_ctr", 2, Bv::zero(2));

    let idle = b.eq_lit(ctr, 0);
    let start = b.and(flush_req, idle);
    let two_l = b.lit(2, 2);
    let three_l = b.lit(2, 3);
    let latency = b.mux(dirty, three_l, two_l);
    let one2 = b.lit(2, 1);
    let dec = b.sub(ctr, one2);
    let running = b.not(idle);
    let hold = b.mux(running, dec, ctr);
    let ctr_next = b.mux(start, latency, hold);
    b.set_next(ctr, ctr_next);

    // Writes mark the buffer dirty; any flush activity clears both.
    let flushing = running;
    let wr = b.mux(we, data, buf);
    let zero8 = b.lit(8, 0);
    let buf_next = b.mux(flushing, zero8, wr);
    b.set_next(buf, buf_next);
    let one1 = b.lit(1, 1);
    let d_set = b.mux(we, one1, dirty);
    let zero1 = b.lit(1, 0);
    let d_next = b.mux(flushing, zero1, d_set);
    b.set_next(dirty, d_next);

    // The externally visible handshake.
    let done = b.eq_lit(ctr, 1);
    b.output("flush_done", done);
    b.output("busy", flushing);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_hdl::{Bv, Sim};

    #[test]
    fn cache_hits_after_allocation() {
        let m = direct_mapped_cache(4, 4, false);
        let mut sim = Sim::new(&m);
        sim.set_input("req", Bv::bit(true));
        sim.set_input("addr", Bv::new(6, 0b10_10_01));
        assert!(!sim.output("hit").as_bool(), "cold miss");
        sim.step();
        assert!(sim.output("hit").as_bool(), "hit after allocation");
        // Conflicting tag evicts.
        sim.set_input("addr", Bv::new(6, 0b01_10_01));
        assert!(!sim.output("hit").as_bool(), "conflict miss");
        sim.step();
        sim.set_input("addr", Bv::new(6, 0b10_10_01));
        assert!(!sim.output("hit").as_bool(), "old line evicted");
    }

    #[test]
    fn flush_invalidates_all_lines() {
        let m = direct_mapped_cache(4, 4, true);
        let mut sim = Sim::new(&m);
        sim.set_input("req", Bv::bit(true));
        for i in 0..4u64 {
            sim.set_input("addr", Bv::new(6, i));
            sim.step();
        }
        sim.set_input("addr", Bv::new(6, 2));
        assert!(sim.output("hit").as_bool());
        sim.set_input("flush", Bv::bit(true));
        sim.set_input("req", Bv::bit(false));
        sim.step();
        sim.set_input("flush", Bv::bit(false));
        sim.set_input("req", Bv::bit(true));
        assert!(!sim.output("hit").as_bool(), "flushed");
    }

    #[test]
    fn flush_latency_depends_on_dirtiness() {
        let flush_latency = |dirty: bool| -> Result<usize, String> {
            let m = variable_latency_flush_device();
            let mut sim = Sim::new(&m);
            sim.set_input("we", Bv::bit(dirty));
            sim.set_input("data", Bv::new(8, 0xaa));
            sim.set_input("flush_req", Bv::bit(false));
            sim.step();
            sim.set_input("we", Bv::bit(false));
            sim.set_input("flush_req", Bv::bit(true));
            sim.step();
            sim.set_input("flush_req", Bv::bit(false));
            for t in 1..6 {
                if sim.output("flush_done").as_bool() {
                    return Ok(t);
                }
                sim.step();
            }
            Err("flush did not complete within 6 cycles".into())
        };
        let clean = flush_latency(false).expect("clean flush completes");
        assert_eq!(clean, 2, "clean flush: base latency");
        let dirty = flush_latency(true).expect("dirty flush completes");
        assert_eq!(dirty, 3, "dirty flush: one extra cycle");
    }

    #[test]
    fn config_device_round_trips() {
        let m = config_device(false);
        let mut sim = Sim::new(&m);
        sim.set_input("we", Bv::bit(true));
        sim.set_input("data", Bv::new(8, 0x5c));
        sim.step();
        sim.set_input("we", Bv::bit(false));
        sim.set_input("re", Bv::bit(true));
        assert_eq!(sim.output("q").value(), 0x5c);
        sim.set_input("re", Bv::bit(false));
        assert_eq!(sim.output("q").value(), 0);
    }
}
