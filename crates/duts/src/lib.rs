//! # autocc-duts
//!
//! Netlist models of the four hardware projects the AutoCC paper evaluates
//! (Sec. 4), rebuilt at reproduction scale against `autocc-hdl`:
//!
//! * [`vscale`] — a 3-stage RISC core (Table 2's V1–V5 counterexamples).
//! * `cva6` — an application-class core model with caches, TLB, page-table
//!   walker, and `fence.t` temporal partitioning (C1–C3).
//! * `maple` — a memory-access engine with configuration registers and an
//!   invalidation FSM (M1–M3 and the Listing-2 exploit).
//! * `aes` — a pipelined encryption accelerator (A1 and the full proof).
//! * [`demo`] — small teaching designs used by the examples and the
//!   flush-synthesis experiments.
//!
//! Each model is engineered to contain exactly the microarchitectural
//! mechanisms behind the paper's findings, plus `fixed` variants with the
//! corresponding upstream patches applied, so the fix-validation runs
//! (re-running the testbench after the RTL fix) can be reproduced too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod cva6;
pub mod demo;
pub mod maple;
pub mod vscale;
