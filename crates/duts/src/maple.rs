//! A MAPLE-like memory-access engine (paper Sec. 4.3).
//!
//! MAPLE is an accelerator for fetching memory patterns, configured through
//! memory-mapped registers and cleaned between processes by an invalidation
//! FSM. This model reproduces the three covert channels the paper found:
//!
//! * **M1** — outgoing requests parked in the NoC output buffer across the
//!   context switch (refined away with an environment assumption).
//! * **M2** — the TLB-enable flip-flop is not reset by the cleanup; a
//!   Trojan disables the TLB and the spy observes a page-fault difference.
//! * **M3** — the array base-address register is not reset by the cleanup;
//!   the spy's loads are issued relative to the victim's base address
//!   (the register exploited by the Listing-2 system-level attack).
//!
//! `MapleConfig::fix_*` applies the upstream patches (resetting the
//! registers during invalidation) for the fix-validation runs.
//!
//! ## Interface
//!
//! | signal            | dir | meaning                                     |
//! |-------------------|-----|---------------------------------------------|
//! | `conf_we/addr/data` | in | configuration write port                   |
//! | `load_valid/index`  | in | offload a load of `array[index]`           |
//! | `cons_ready`        | in | consume one word from the response queue   |
//! | `noc_ready`         | in | NoC accepts a request this cycle           |
//! | `noc_resp_valid/data` | in | memory response                          |
//! | `noc_req_valid/addr`  | out | memory request (transaction)            |
//! | `resp_valid/data`     | out | response queue head (transaction)       |
//! | `fault`               | out | translation fault pulse                 |
//! | `inv_done`            | out | invalidation completing this cycle      |
//!
//! Configuration space: `0` = array base, `1` = TLB enable (bit 0),
//! `2` = start invalidation, `3` = TLB entry 0 fill (`{vpn[3:0], ppn[3:0]}`
//! in the low byte).

use autocc_hdl::{Bv, Module, ModuleBuilder};

/// Which RTL fixes are applied (the paper's upstream patches).
#[derive(Clone, Copy, Debug, Default)]
pub struct MapleConfig {
    /// Reset the TLB-enable flip-flop during invalidation (fixes M2).
    pub fix_tlb_enable: bool,
    /// Reset the array base-address register during invalidation (fixes M3).
    pub fix_array_base: bool,
}

impl MapleConfig {
    /// Configuration with every fix applied.
    pub fn all_fixed() -> MapleConfig {
        MapleConfig {
            fix_tlb_enable: true,
            fix_array_base: true,
        }
    }
}

/// Invalidation FSM states.
pub mod inv_state {
    /// No invalidation in progress.
    pub const IDLE: u64 = 0;
    /// Clearing TLB and queues.
    pub const CLEAR: u64 = 1;
    /// Final cycle; `inv_done` pulses.
    pub const DONE: u64 = 2;
}

/// Builds the MAPLE engine model.
pub fn build_maple(config: &MapleConfig) -> Module {
    let mut b = ModuleBuilder::new("maple");

    // ---- Inputs --------------------------------------------------------
    let conf_we = b.input("conf_we", 1);
    let conf_addr = b.input("conf_addr", 2);
    let conf_data = b.input("conf_data", 16);
    let load_valid = b.input("load_valid", 1);
    let load_index = b.input("load_index", 8);
    let cons_ready = b.input("cons_ready", 1);
    let noc_ready = b.input("noc_ready", 1);
    let noc_resp_valid = b.input("noc_resp_valid", 1);
    let noc_resp_data = b.input("noc_resp_data", 16);
    b.transaction_in("noc_resp", "noc_resp_valid", &["noc_resp_data"]);

    // ---- Configuration registers ----------------------------------------
    let array_base = b.reg("array_base", 16, Bv::zero(16));
    let tlb_enable = b.reg("tlb_enable", 1, Bv::new(1, 1)); // enabled at reset
                                                            // TLB entry 0: valid, vpn, ppn.
    let tlb_valid = b.reg("tlb_valid", 1, Bv::zero(1));
    let tlb_vpn = b.reg("tlb_vpn", 4, Bv::zero(4));
    let tlb_ppn = b.reg("tlb_ppn", 4, Bv::zero(4));

    // ---- Invalidation FSM ------------------------------------------------
    let inv = b.reg("inv_state", 2, Bv::zero(2));
    let conf_is_inv = b.eq_lit(conf_addr, 2);
    let start_inv = {
        let idle = b.eq_lit(inv, inv_state::IDLE);
        let w = b.and(conf_we, conf_is_inv);
        b.and(w, idle)
    };
    let in_clear = b.eq_lit(inv, inv_state::CLEAR);
    let in_done = b.eq_lit(inv, inv_state::DONE);
    let clear_lit = b.lit(2, inv_state::CLEAR);
    let done_lit = b.lit(2, inv_state::DONE);
    let idle_lit = b.lit(2, inv_state::IDLE);
    let mut inv_next = b.mux(start_inv, clear_lit, inv);
    inv_next = b.mux(in_clear, done_lit, inv_next);
    inv_next = b.mux(in_done, idle_lit, inv_next);
    b.set_next(inv, inv_next);
    // The flush signal used inside the datapath: active during CLEAR.
    let clearing = in_clear;

    // ---- Configuration writes -------------------------------------------
    let conf_is_base = b.eq_lit(conf_addr, 0);
    let conf_is_tlben = b.eq_lit(conf_addr, 1);
    let conf_is_tlbw = b.eq_lit(conf_addr, 3);

    // array_base: written by config; reset by the cleanup only when fixed.
    let base_we = b.and(conf_we, conf_is_base);
    let mut base_next = b.mux(base_we, conf_data, array_base);
    if config.fix_array_base {
        let zero = b.lit(16, 0);
        base_next = b.mux(clearing, zero, base_next);
    }
    b.set_next(array_base, base_next);

    // tlb_enable: bit 0 of config writes; reset (to enabled) by the cleanup
    // only when fixed.
    let en_we = b.and(conf_we, conf_is_tlben);
    let en_bit = b.bit(conf_data, 0);
    let mut en_next = b.mux(en_we, en_bit, tlb_enable);
    if config.fix_tlb_enable {
        let one = b.lit(1, 1);
        en_next = b.mux(clearing, one, en_next);
    }
    b.set_next(tlb_enable, en_next);

    // TLB entry: filled by config, always invalidated by the cleanup.
    let tlb_we = b.and(conf_we, conf_is_tlbw);
    let wr_vpn = b.slice(conf_data, 7, 4);
    let wr_ppn = b.slice(conf_data, 3, 0);
    let one1 = b.lit(1, 1);
    let mut tlb_v_next = b.mux(tlb_we, one1, tlb_valid);
    {
        let zero = b.lit(1, 0);
        tlb_v_next = b.mux(clearing, zero, tlb_v_next);
    }
    b.set_next(tlb_valid, tlb_v_next);
    let tlb_vpn_next = b.mux(tlb_we, wr_vpn, tlb_vpn);
    b.set_next(tlb_vpn, tlb_vpn_next);
    let tlb_ppn_next = b.mux(tlb_we, wr_ppn, tlb_ppn);
    b.set_next(tlb_ppn, tlb_ppn_next);

    // ---- Load unit --------------------------------------------------------
    // Virtual address: base + index. Translation replaces the top nibble
    // through the TLB when enabled; a lookup miss raises `fault`.
    let idx16 = b.zext(load_index, 16);
    let vaddr = b.add(array_base, idx16);
    let vpn = b.slice(vaddr, 15, 12);
    let offset = b.slice(vaddr, 11, 0);
    let tlb_hit = {
        let m = b.eq(vpn, tlb_vpn);
        b.and(m, tlb_valid)
    };
    let paddr_translated = b.concat(tlb_ppn, offset);
    let paddr = b.mux(tlb_enable, paddr_translated, vaddr);
    let translation_ok = {
        let bypass = b.not(tlb_enable);
        b.or(bypass, tlb_hit)
    };
    let idle_path = b.eq_lit(inv, inv_state::IDLE);
    let accept = b.and(load_valid, idle_path);
    let fault = {
        let bad = b.not(translation_ok);
        b.and(accept, bad)
    };
    let issue = b.and(accept, translation_ok);

    // ---- NoC output buffer (one entry; M1's parked request) ---------------
    let obuf_valid = b.reg("obuf_valid", 1, Bv::zero(1));
    let obuf_addr = b.reg("obuf_addr", 16, Bv::zero(16));
    // Dequeue when the NoC is ready; enqueue on issue (issue wins when the
    // buffer drains the same cycle).
    let drained = b.and(obuf_valid, noc_ready);
    let not_drained_valid = {
        let nd = b.not(drained);
        b.and(obuf_valid, nd)
    };
    let obuf_v_next = b.or(issue, not_drained_valid);
    b.set_next(obuf_valid, obuf_v_next);
    let obuf_a_next = b.mux(issue, paddr, obuf_addr);
    b.set_next(obuf_addr, obuf_a_next);

    // ---- Response queue (one entry, cleared by cleanup) -------------------
    let rq_valid = b.reg("rq_valid", 1, Bv::zero(1));
    let rq_data = b.reg("rq_data", 16, Bv::zero(16));
    let consumed = b.and(rq_valid, cons_ready);
    let keep = {
        let nc = b.not(consumed);
        b.and(rq_valid, nc)
    };
    let mut rq_v_next = b.or(noc_resp_valid, keep);
    {
        let zero = b.lit(1, 0);
        rq_v_next = b.mux(clearing, zero, rq_v_next);
    }
    b.set_next(rq_valid, rq_v_next);
    let mut rq_d_next = b.mux(noc_resp_valid, noc_resp_data, rq_data);
    {
        let zero = b.lit(16, 0);
        rq_d_next = b.mux(clearing, zero, rq_d_next);
    }
    b.set_next(rq_data, rq_d_next);

    // ---- Outputs -----------------------------------------------------------
    b.output("noc_req_valid", obuf_valid);
    b.output("noc_req_addr", obuf_addr);
    b.transaction_out("noc_req", "noc_req_valid", &["noc_req_addr"]);
    b.output("resp_valid", rq_valid);
    b.output("resp_data", rq_data);
    b.transaction_out("resp", "resp_valid", &["resp_data"]);
    b.output("fault", fault);
    b.output("inv_done", in_done);

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_hdl::Sim;

    fn idle_inputs(sim: &mut Sim<'_>) {
        sim.set_input("conf_we", Bv::bit(false));
        sim.set_input("load_valid", Bv::bit(false));
        sim.set_input("cons_ready", Bv::bit(false));
        sim.set_input("noc_ready", Bv::bit(true));
        sim.set_input("noc_resp_valid", Bv::bit(false));
    }

    fn write_conf(sim: &mut Sim<'_>, addr: u64, data: u64) {
        sim.set_input("conf_we", Bv::bit(true));
        sim.set_input("conf_addr", Bv::new(2, addr));
        sim.set_input("conf_data", Bv::new(16, data));
        sim.step();
        sim.set_input("conf_we", Bv::bit(false));
    }

    #[test]
    fn load_issues_base_plus_index() {
        let m = build_maple(&MapleConfig::default());
        let mut sim = Sim::new(&m);
        idle_inputs(&mut sim);
        write_conf(&mut sim, 1, 0); // disable TLB: physical addressing
        write_conf(&mut sim, 0, 0x1000); // base
        sim.set_input("load_valid", Bv::bit(true));
        sim.set_input("load_index", Bv::new(8, 0x24));
        sim.step();
        sim.set_input("load_valid", Bv::bit(false));
        assert!(sim.output("noc_req_valid").as_bool());
        assert_eq!(sim.output("noc_req_addr").value(), 0x1024);
    }

    #[test]
    fn tlb_translates_and_faults() {
        let m = build_maple(&MapleConfig::default());
        let mut sim = Sim::new(&m);
        idle_inputs(&mut sim);
        write_conf(&mut sim, 0, 0x5000); // base: vpn 5
                                         // No TLB entry yet: fault.
        sim.set_input("load_valid", Bv::bit(true));
        sim.set_input("load_index", Bv::new(8, 0));
        assert!(sim.output("fault").as_bool(), "miss faults");
        sim.set_input("load_valid", Bv::bit(false));
        // Fill vpn 5 -> ppn 9 and retry.
        write_conf(&mut sim, 3, 0x59);
        sim.set_input("load_valid", Bv::bit(true));
        sim.set_input("load_index", Bv::new(8, 0x30));
        assert!(!sim.output("fault").as_bool(), "hit does not fault");
        sim.step();
        assert_eq!(sim.output("noc_req_addr").value(), 0x9030);
    }

    #[test]
    fn invalidation_clears_tlb_and_queues_but_not_buggy_registers() {
        let m = build_maple(&MapleConfig::default());
        let mut sim = Sim::new(&m);
        idle_inputs(&mut sim);
        write_conf(&mut sim, 0, 0x4000);
        write_conf(&mut sim, 1, 0); // disable TLB (the M2 Trojan action)
        write_conf(&mut sim, 3, 0x12);
        // Park a response in the queue.
        sim.set_input("noc_resp_valid", Bv::bit(true));
        sim.set_input("noc_resp_data", Bv::new(16, 0xbeef));
        sim.step();
        sim.set_input("noc_resp_valid", Bv::bit(false));
        assert!(sim.output("resp_valid").as_bool());
        // Cleanup.
        write_conf(&mut sim, 2, 0);
        let mut done_seen = false;
        for _ in 0..4 {
            done_seen |= sim.output("inv_done").as_bool();
            sim.step();
        }
        assert!(done_seen, "inv_done pulses");
        assert!(!sim.output("resp_valid").as_bool(), "queue cleared");
        assert!(!sim.reg_by_name("tlb_valid").as_bool(), "TLB cleared");
        // The buggy registers survive — the M2/M3 covert channels.
        assert_eq!(sim.reg_by_name("array_base").value(), 0x4000, "M3 bug");
        assert_eq!(sim.reg_by_name("tlb_enable").value(), 0, "M2 bug");
    }

    #[test]
    fn fixed_rtl_resets_registers_during_invalidation() {
        let m = build_maple(&MapleConfig::all_fixed());
        let mut sim = Sim::new(&m);
        idle_inputs(&mut sim);
        write_conf(&mut sim, 0, 0x4000);
        write_conf(&mut sim, 1, 0);
        write_conf(&mut sim, 2, 0); // cleanup
        for _ in 0..4 {
            sim.step();
        }
        assert_eq!(sim.reg_by_name("array_base").value(), 0, "M3 fixed");
        assert_eq!(sim.reg_by_name("tlb_enable").value(), 1, "M2 fixed");
    }

    #[test]
    fn loads_are_not_accepted_during_invalidation() {
        let m = build_maple(&MapleConfig::default());
        let mut sim = Sim::new(&m);
        idle_inputs(&mut sim);
        write_conf(&mut sim, 1, 0);
        write_conf(&mut sim, 2, 0); // start cleanup
        sim.set_input("load_valid", Bv::bit(true));
        sim.set_input("load_index", Bv::new(8, 1));
        sim.step(); // CLEAR state
        assert!(
            !sim.output("noc_req_valid").as_bool(),
            "no issue mid-cleanup"
        );
    }

    #[test]
    fn response_queue_consumption() {
        let m = build_maple(&MapleConfig::default());
        let mut sim = Sim::new(&m);
        idle_inputs(&mut sim);
        sim.set_input("noc_resp_valid", Bv::bit(true));
        sim.set_input("noc_resp_data", Bv::new(16, 0x1234));
        sim.step();
        sim.set_input("noc_resp_valid", Bv::bit(false));
        assert_eq!(sim.output("resp_data").value(), 0x1234);
        sim.set_input("cons_ready", Bv::bit(true));
        sim.step();
        assert!(!sim.output("resp_valid").as_bool(), "consumed");
    }
}
