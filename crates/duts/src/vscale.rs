//! A Vscale-like 3-stage RISC core (paper Sec. 4.1).
//!
//! The original Vscale is a 32-bit RV32I core with a 3-stage pipeline
//! (fetch, decode/execute, write-back) and no caches. This model keeps that
//! shape at reproduction scale: a 16-bit datapath, an 8-entry register
//! file, a 4-entry CSR file (as a child module so it can be blackboxed,
//! matching the paper's V2 refinement), PC registers along the pipeline,
//! and the interrupt-in-WB stall path behind the paper's V5 counterexample.
//!
//! ## Interface
//!
//! | signal        | dir | meaning                                   |
//! |---------------|-----|-------------------------------------------|
//! | `imem_hrdata` | in  | instruction at the fetched address        |
//! | `interrupt`   | in  | external interrupt request                |
//! | `dmem_hrdata` | in  | load data                                 |
//! | `imem_haddr`  | out | instruction fetch address (= PC)          |
//! | `dmem_haddr`  | out | data address                              |
//! | `dmem_hwrite` | out | store strobe                              |
//! | `dmem_hwdata` | out | store data                                |
//!
//! ## Instruction encoding (16-bit)
//!
//! `[15:13] opcode, [12:10] rd, [9:7] rs1, [6:4] rs2, [3:0] imm4`
//!
//! | opcode | mnemonic | semantics                                   |
//! |--------|----------|---------------------------------------------|
//! | 0      | `ADD`    | `rd = rs1 + rs2`                            |
//! | 1      | `ADDI`   | `rd = rs1 + sext(imm4)`                     |
//! | 2      | `LOAD`   | `rd = dmem[rs1 + sext(imm4)]`               |
//! | 3      | `STORE`  | `dmem[rs1 + sext(imm4)] = rs2`              |
//! | 4      | `BEQZ`   | `if rs1 == 0: pc = pc_dx + sext(imm4)`      |
//! | 5      | `JR`     | `pc = rs1`                                  |
//! | 6      | `CSRR`   | `rd = csr[imm4[1:0]]`                       |
//! | 7      | `CSRW`   | `csr[imm4[1:0]] = rs1`                      |

use autocc_hdl::{Bv, Module, ModuleBuilder, NodeId};
use std::collections::HashMap;

/// Configuration of the Vscale model.
#[derive(Clone, Copy, Debug, Default)]
pub struct VscaleConfig {
    /// Replace the CSR child module by a blackbox (Sec. 3.4 / CEX V2):
    /// its storage leaves the verification model; its read data becomes a
    /// free input and the wires feeding it become checked outputs.
    pub blackbox_csr: bool,
    /// Mark the instruction input `//AutoCC Common`: both universes run
    /// the *same program* and only data may differ — the constant-time
    /// software analysis mode of Sec. 2.1.
    pub common_imem: bool,
}

/// Architectural-state name groups used by the paper's iterative
/// refinement of the Vscale testbench (Table 2).
pub mod arch {
    /// V1: the register file (`pipeline.regfile.data` in the paper).
    pub const REGFILE_MEM: &str = "regfile";
    /// V3/V4: the PC, decode and write-back stage registers — "all
    /// instructions inside the pipeline should be equal when the spy
    /// process is about to start" (Sec. 4.1).
    pub const PIPELINE_REGS: [&str; 9] = [
        "pc_f", "pc_dx", "pc_wb", "instr_dx", "valid_dx", "wb_valid", "wb_wen", "wb_rd", "wb_val",
    ];
    /// V5: the interrupt-pending flip-flop.
    pub const INT_REGS: [&str; 1] = ["int_flag"];
}

/// Builds the CSR file as a stand-alone module (so it can be blackboxed).
/// `csr[3]` bit 0 is the interrupt-enable (`ie`) control.
fn build_csr() -> Module {
    let mut b = ModuleBuilder::new("csr");
    let raddr = b.input("raddr", 2);
    let wen = b.input("wen", 1);
    let waddr = b.input("waddr", 2);
    let wdata = b.input("wdata", 16);
    let mem = b.mem("file", 4, 16);
    b.mem_write(mem, wen, waddr, wdata);
    let rdata = b.mem_read(mem, raddr);
    b.output("rdata", rdata);
    let status = b.read_mem_word(mem, 3);
    let ie = b.bit(status, 0);
    b.output("ie", ie);
    b.build()
}

/// Builds the Vscale core model.
pub fn build_vscale(config: &VscaleConfig) -> Module {
    let mut b = ModuleBuilder::new("vscale");

    // ---- Inputs ------------------------------------------------------
    let imem_hrdata = if config.common_imem {
        b.input_common("imem_hrdata", 16)
    } else {
        b.input("imem_hrdata", 16)
    };
    let interrupt = b.input("interrupt", 1);
    let dmem_hrdata = b.input("dmem_hrdata", 16);

    // ---- Pipeline state ----------------------------------------------
    let pc_f = b.reg("pc_f", 16, Bv::zero(16));
    let pc_dx = b.reg("pc_dx", 16, Bv::zero(16));
    let pc_wb = b.reg("pc_wb", 16, Bv::zero(16));
    let instr_dx = b.reg("instr_dx", 16, Bv::zero(16));
    let valid_dx = b.reg("valid_dx", 1, Bv::zero(1));
    let wb_valid = b.reg("wb_valid", 1, Bv::zero(1));
    let wb_wen = b.reg("wb_wen", 1, Bv::zero(1));
    let wb_rd = b.reg("wb_rd", 3, Bv::zero(3));
    let wb_val = b.reg("wb_val", 16, Bv::zero(16));
    // Interrupt-pending latch, sampled while an instruction is in WB and
    // sticky until the interrupt is taken (the paper's V5 channel: pending
    // state from the victim era fires once the spy unmasks interrupts).
    let int_flag = b.reg("int_flag", 1, Bv::zero(1));

    let regfile = b.mem("regfile", 8, 16);

    // ---- Decode ------------------------------------------------------
    let opcode = b.slice(instr_dx, 15, 13);
    let rd = b.slice(instr_dx, 12, 10);
    let rs1 = b.slice(instr_dx, 9, 7);
    let rs2 = b.slice(instr_dx, 6, 4);
    let imm4 = b.slice(instr_dx, 3, 0);
    let imm = b.sext(imm4, 16);

    let rs1_val = b.mem_read(regfile, rs1);
    let rs2_val = b.mem_read(regfile, rs2);

    let is_add = b.eq_lit(opcode, 0);
    let is_addi = b.eq_lit(opcode, 1);
    let is_load = b.eq_lit(opcode, 2);
    let is_store = b.eq_lit(opcode, 3);
    let is_beqz = b.eq_lit(opcode, 4);
    let is_jr = b.eq_lit(opcode, 5);
    let is_csrr = b.eq_lit(opcode, 6);
    let is_csrw = b.eq_lit(opcode, 7);

    // ---- CSR file (child module, optionally blackboxed) ---------------
    let csr_raddr = b.slice(imm4, 1, 0);
    let csr_wen = b.and(is_csrw, valid_dx);
    let csr = build_csr();
    let mut csr_wires: HashMap<String, NodeId> = HashMap::new();
    csr_wires.insert("raddr".to_string(), csr_raddr);
    csr_wires.insert("wen".to_string(), csr_wen);
    csr_wires.insert("waddr".to_string(), csr_raddr);
    csr_wires.insert("wdata".to_string(), rs1_val);
    let csr_inst = if config.blackbox_csr {
        b.instantiate_blackbox(&csr, "csr", &csr_wires)
    } else {
        b.instantiate(&csr, "csr", &csr_wires)
    };
    let csr_rdata = csr_inst.outputs["rdata"];
    let int_enable = csr_inst.outputs["ie"];

    // ---- Execute -----------------------------------------------------
    let add_result = b.add(rs1_val, rs2_val);
    let addi_result = b.add(rs1_val, imm);
    let mem_addr = b.add(rs1_val, imm);

    let rs1_zero = b.eq_lit(rs1_val, 0);
    let branch_taken = {
        let t = b.and(is_beqz, rs1_zero);
        b.and(t, valid_dx)
    };
    let branch_target = b.add(pc_dx, imm);
    let jump_taken = b.and(is_jr, valid_dx);

    // Write-back value selection.
    let mut wb_value = add_result;
    wb_value = b.mux(is_addi, addi_result, wb_value);
    wb_value = b.mux(is_load, dmem_hrdata, wb_value);
    wb_value = b.mux(is_csrr, csr_rdata, wb_value);
    let writes_rd = {
        let alu = b.or(is_add, is_addi);
        let ld = b.or(is_load, is_csrr);
        let wr = b.or(alu, ld);
        b.and(wr, valid_dx)
    };

    // ---- Fetch / next PC ----------------------------------------------
    // A pending interrupt fires once enabled: fetch redirects to the
    // vector and the in-flight fetch is squashed.
    let int_taken = b.and(int_flag, int_enable);
    let one = b.lit(16, 1);
    let pc_plus1 = b.add(pc_f, one);
    let exec_redirect = b.or(branch_taken, jump_taken);
    let redirect = b.or(exec_redirect, int_taken);
    let branch_or_jump = b.mux(jump_taken, rs1_val, branch_target);
    let vector = b.lit(16, 0x10);
    let redirect_target = b.mux(int_taken, vector, branch_or_jump);
    let pc_next = b.mux(redirect, redirect_target, pc_plus1);
    b.set_next(pc_f, pc_next);

    // DX receives the fetched instruction unless squashed by a redirect
    // (bubble).
    let dx_valid_next = b.not(redirect);
    b.set_next(instr_dx, imem_hrdata);
    b.set_next(valid_dx, dx_valid_next);
    b.set_next(pc_dx, pc_f);

    // ---- Write-back stage ---------------------------------------------
    b.set_next(wb_valid, valid_dx);
    b.set_next(wb_wen, writes_rd);
    b.set_next(wb_rd, rd);
    b.set_next(wb_val, wb_value);
    b.set_next(pc_wb, pc_dx);
    let wb_write = b.and(wb_valid, wb_wen);
    b.mem_write(regfile, wb_write, wb_rd, wb_val);

    // Interrupt-pending latch: set when an instruction is in WB during an
    // external interrupt; sticky until the interrupt is taken.
    let int_sample = b.and(interrupt, wb_valid);
    let not_taken = b.not(int_taken);
    let keep = b.and(int_flag, not_taken);
    let int_next = b.or(int_sample, keep);
    b.set_next(int_flag, int_next);

    // ---- Data memory interface ----------------------------------------
    let dmem_write = b.and(is_store, valid_dx);
    b.output("imem_haddr", pc_f);
    b.output("dmem_haddr", mem_addr);
    b.output("dmem_hwrite", dmem_write);
    b.output("dmem_hwdata", rs2_val);

    b.build()
}

/// Instruction assembler for directed tests and the system simulator.
pub mod asm {
    /// `rd = rs1 + rs2`
    pub fn add(rd: u16, rs1: u16, rs2: u16) -> u16 {
        encode(0, rd, rs1, rs2, 0)
    }
    /// `rd = rs1 + sext(imm4)`
    pub fn addi(rd: u16, rs1: u16, imm4: u16) -> u16 {
        encode(1, rd, rs1, 0, imm4)
    }
    /// `rd = dmem[rs1 + sext(imm4)]`
    pub fn load(rd: u16, rs1: u16, imm4: u16) -> u16 {
        encode(2, rd, rs1, 0, imm4)
    }
    /// `dmem[rs1 + sext(imm4)] = rs2`
    pub fn store(rs1: u16, rs2: u16, imm4: u16) -> u16 {
        encode(3, 0, rs1, rs2, imm4)
    }
    /// `if rs1 == 0: pc = pc_dx + sext(imm4)`
    pub fn beqz(rs1: u16, imm4: u16) -> u16 {
        encode(4, 0, rs1, 0, imm4)
    }
    /// `pc = rs1`
    pub fn jr(rs1: u16) -> u16 {
        encode(5, 0, rs1, 0, 0)
    }
    /// `rd = csr[imm4 & 3]`
    pub fn csrr(rd: u16, csr: u16) -> u16 {
        encode(6, rd, 0, 0, csr & 3)
    }
    /// `csr[imm4 & 3] = rs1`
    pub fn csrw(csr: u16, rs1: u16) -> u16 {
        encode(7, 0, rs1, 0, csr & 3)
    }
    /// No-operation (`r0 = r0 + r0`; r0 writes are real in this toy ISA,
    /// so "nop" uses rd = 0 with rs1 = rs2 = 0, which keeps r0 at 0 only
    /// if r0 is 0 — fine for programs that never write r0).
    pub fn nop() -> u16 {
        add(0, 0, 0)
    }

    fn encode(opcode: u16, rd: u16, rs1: u16, rs2: u16, imm4: u16) -> u16 {
        assert!(opcode < 8 && rd < 8 && rs1 < 8 && rs2 < 8 && imm4 < 16);
        opcode << 13 | rd << 10 | rs1 << 7 | rs2 << 4 | imm4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_hdl::Sim;

    fn run_program(program: &[u16], cycles: usize) -> Sim<'static> {
        let module = Box::leak(Box::new(build_vscale(&VscaleConfig::default())));
        let mut sim = Sim::new(module);
        for _ in 0..cycles {
            let pc = sim.output("imem_haddr").value() as usize;
            let instr = program.get(pc).copied().unwrap_or(asm::nop());
            sim.set_input("imem_hrdata", Bv::new(16, u64::from(instr)));
            sim.step();
        }
        sim
    }

    #[test]
    fn addi_and_add_write_the_regfile() {
        // No bypass network: dependent instructions need 2 cycles spacing.
        let program = [
            asm::addi(1, 0, 5), // r1 = 5
            asm::addi(2, 0, 3), // r2 = 3
            asm::nop(),
            asm::nop(),
            asm::add(3, 1, 2), // r3 = 8
        ];
        let sim = run_program(&program, 10);
        let rf = sim.module().find_mem("regfile").unwrap();
        assert_eq!(sim.mem_word(rf, 1).value(), 5);
        assert_eq!(sim.mem_word(rf, 2).value(), 3);
        assert_eq!(sim.mem_word(rf, 3).value(), 8);
    }

    #[test]
    fn store_drives_dmem_interface() {
        // imm4 is sign-extended, so immediates stay in 0..=7.
        let program = [
            asm::addi(1, 0, 7), // r1 = 7
            asm::addi(2, 0, 4), // r2 = 4
            asm::nop(),
            asm::nop(),
            asm::store(2, 1, 1), // dmem[r2 + 1] = r1
        ];
        let module = build_vscale(&VscaleConfig::default());
        let mut sim = Sim::new(&module);
        let mut saw_write = false;
        for _ in 0..10 {
            let pc = sim.output("imem_haddr").value() as usize;
            let instr = program.get(pc).copied().unwrap_or(asm::nop());
            sim.set_input("imem_hrdata", Bv::new(16, u64::from(instr)));
            if sim.output("dmem_hwrite").as_bool() {
                assert_eq!(sim.output("dmem_haddr").value(), 5);
                assert_eq!(sim.output("dmem_hwdata").value(), 7);
                saw_write = true;
            }
            sim.step();
        }
        assert!(saw_write, "store must reach the dmem interface");
    }

    #[test]
    fn beqz_and_jr_redirect_fetch() {
        // r1 = 0 so beqz is taken; then at the target, jr r2 with r2 = 2.
        let program = [
            asm::addi(2, 0, 2), // r2 = 2
            asm::nop(),
            asm::beqz(1, 4), // taken (r1 == 0): pc = 2 + 4 = 6
            asm::nop(),
            asm::nop(),
            asm::nop(),
            asm::jr(2), // pc = r2 = 2
        ];
        let module = build_vscale(&VscaleConfig::default());
        let mut sim = Sim::new(&module);
        let mut pcs = Vec::new();
        for _ in 0..12 {
            let pc = sim.output("imem_haddr").value();
            pcs.push(pc);
            let instr = program.get(pc as usize).copied().unwrap_or(asm::nop());
            sim.set_input("imem_hrdata", Bv::new(16, u64::from(instr)));
            sim.step();
        }
        assert!(
            pcs.windows(2).any(|w| w[0] == 3 && w[1] == 6),
            "beqz redirect: {pcs:?}"
        );
        assert!(
            pcs.windows(2).any(|w| w[0] == 7 && w[1] == 2),
            "jr redirect: {pcs:?}"
        );
    }

    #[test]
    fn csr_round_trip() {
        let program = [
            asm::addi(1, 0, 7), // r1 = 7
            asm::nop(),
            asm::nop(),
            asm::csrw(2, 1), // csr[2] = 7
            asm::nop(),
            asm::csrr(3, 2), // r3 = csr[2]
        ];
        let sim = run_program(&program, 12);
        let rf = sim.module().find_mem("regfile").unwrap();
        assert_eq!(sim.mem_word(rf, 3).value(), 7);
    }

    #[test]
    fn pending_interrupt_fires_when_enabled() {
        let module = build_vscale(&VscaleConfig::default());
        let mut sim = Sim::new(&module);
        let int_flag = module.find_reg("int_flag").unwrap();
        // Phase 1: interrupts masked (csr[3] = 0); pulse the interrupt.
        let mut pcs = Vec::new();
        for t in 0..6 {
            sim.set_input("imem_hrdata", Bv::new(16, u64::from(asm::nop())));
            sim.set_input("interrupt", Bv::bit(t == 3));
            pcs.push(sim.output("imem_haddr").value());
            sim.step();
        }
        assert!(
            sim.reg(int_flag).as_bool(),
            "interrupt stays pending while masked"
        );
        assert!(
            pcs.windows(2).all(|w| w[1] == w[0] + 1),
            "no vectoring while masked: {pcs:?}"
        );
        // Phase 2: enable interrupts (csr[3] = 1 via r1 = 1; csrw 3, r1).
        let program = [asm::addi(1, 0, 1), asm::nop(), asm::nop(), asm::csrw(3, 1)];
        let mut vectored = false;
        for t in 0..12 {
            let pc = sim.output("imem_haddr").value();
            if pc == 0x10 {
                vectored = true;
                break;
            }
            let instr = program.get(t).copied().unwrap_or(asm::nop());
            sim.set_input("imem_hrdata", Bv::new(16, u64::from(instr)));
            sim.set_input("interrupt", Bv::bit(false));
            sim.step();
        }
        assert!(vectored, "pending interrupt must vector once enabled");
        assert!(
            !sim.reg(int_flag).as_bool(),
            "pending flag clears when taken"
        );
    }

    #[test]
    fn blackboxed_csr_removes_storage() {
        let plain = build_vscale(&VscaleConfig::default());
        let bb = build_vscale(&VscaleConfig {
            blackbox_csr: true,
            ..VscaleConfig::default()
        });
        assert!(plain.find_mem("csr.file").is_some());
        assert!(bb.find_mem("csr.file").is_none());
        assert!(bb.input_index("csr.rdata").is_some());
        assert!(bb.output_node("csr.to_bb.wdata").is_some());
        assert!(bb.state_bits() < plain.state_bits());
    }
}
