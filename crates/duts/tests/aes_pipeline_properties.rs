//! Property tests of the AES accelerator pipeline against the software
//! cipher model, across configurations and request patterns.

use autocc_duts::aes::{build_aes, encrypt_model, AesConfig};
use autocc_hdl::{Bv, Sim};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of requests and bubbles comes out encrypted, in
    /// order, exactly `rounds` cycles after issue.
    #[test]
    fn pipeline_is_a_shift_register_of_encryptions(
        rounds in 1usize..7,
        reqs in proptest::collection::vec((any::<bool>(), any::<u16>(), any::<u16>()), 1..24),
    ) {
        let config = AesConfig { rounds };
        let m = build_aes(&config);
        let mut sim = Sim::new(&m);

        // Scoreboard: expected (cycle, ciphertext) pairs.
        let mut expected: Vec<Option<u16>> = Vec::new();
        for (t, &(valid, block, key)) in reqs.iter().enumerate() {
            sim.set_input("req_valid", Bv::bit(valid));
            sim.set_input("req_data", Bv::new(16, u64::from(block)));
            sim.set_input("req_key", Bv::new(16, u64::from(key)));
            expected.push(valid.then(|| encrypt_model(block, key, rounds)));
            let _ = t;
            sim.step();
        }
        sim.set_input("req_valid", Bv::bit(false));
        // Drain.
        for _ in 0..rounds {
            expected.push(None);
            sim.step();
        }

        // Re-run observing outputs: response at t equals request at t-rounds.
        let mut sim = Sim::new(&m);
        for t in 0..reqs.len() + rounds {
            if let Some(&(valid, block, key)) = reqs.get(t) {
                sim.set_input("req_valid", Bv::bit(valid));
                sim.set_input("req_data", Bv::new(16, u64::from(block)));
                sim.set_input("req_key", Bv::new(16, u64::from(key)));
            } else {
                sim.set_input("req_valid", Bv::bit(false));
            }
            if t >= rounds {
                let want = expected[t - rounds];
                prop_assert_eq!(
                    sim.output("resp_valid").as_bool(),
                    want.is_some(),
                    "valid at t={}", t
                );
                if let Some(ct) = want {
                    prop_assert_eq!(
                        sim.output("resp_data").value(),
                        u64::from(ct),
                        "ciphertext at t={}", t
                    );
                }
            }
            sim.step();
        }
    }

    /// The scaled cipher is a permutation per key: encrypting two distinct
    /// blocks never collides.
    #[test]
    fn cipher_is_injective_per_key(key in any::<u16>(), a in any::<u16>(), b in any::<u16>()) {
        prop_assume!(a != b);
        let ea = encrypt_model(a, key, 5);
        let eb = encrypt_model(b, key, 5);
        prop_assert_ne!(ea, eb, "distinct plaintexts must map to distinct ciphertexts");
    }
}
