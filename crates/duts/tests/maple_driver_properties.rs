//! Property tests on the MAPLE engine: random driver-level operation
//! sequences against a reference model of the engine's architectural
//! behaviour (configuration registers, TLB, queues, the cleanup).

use autocc_duts::maple::{build_maple, MapleConfig};
use autocc_hdl::{Bv, Sim};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    ConfBase(u16),
    ConfTlbEnable(bool),
    ConfTlbFill { vpn: u8, ppn: u8 },
    Invalidate,
    Load { index: u8 },
    Idle,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..0xfff).prop_map(Op::ConfBase),
        any::<bool>().prop_map(Op::ConfTlbEnable),
        (0u8..16, 0u8..16).prop_map(|(vpn, ppn)| Op::ConfTlbFill { vpn, ppn }),
        Just(Op::Invalidate),
        (0u8..=255).prop_map(|index| Op::Load { index }),
        Just(Op::Idle),
    ]
}

/// Reference model of the engine's register state under the driver ops.
#[derive(Clone, Debug)]
struct Model {
    base: u16,
    tlb_enable: bool,
    tlb: Option<(u8, u8)>,
    config: MapleConfig,
}

impl Model {
    fn new(config: MapleConfig) -> Model {
        Model {
            base: 0,
            tlb_enable: true,
            tlb: None,
            config,
        }
    }

    fn apply(&mut self, op: Op) {
        match op {
            Op::ConfBase(v) => self.base = v,
            Op::ConfTlbEnable(e) => self.tlb_enable = e,
            Op::ConfTlbFill { vpn, ppn } => self.tlb = Some((vpn, ppn)),
            Op::Invalidate => {
                self.tlb = None;
                if self.config.fix_array_base {
                    self.base = 0;
                }
                if self.config.fix_tlb_enable {
                    self.tlb_enable = true;
                }
            }
            Op::Load { .. } | Op::Idle => {}
        }
    }

    /// Expected translation outcome for a load of `array[index]`.
    fn translate(&self, index: u8) -> Option<u16> {
        let vaddr = self.base.wrapping_add(u16::from(index));
        if !self.tlb_enable {
            return Some(vaddr);
        }
        let vpn = (vaddr >> 12) as u8;
        match self.tlb {
            Some((tvpn, ppn)) if tvpn == vpn => Some(u16::from(ppn) << 12 | (vaddr & 0x0fff)),
            _ => None,
        }
    }
}

fn drive_op(sim: &mut Sim<'_>, op: Op) {
    let conf = |sim: &mut Sim<'_>, addr: u64, data: u64| {
        sim.set_input("conf_we", Bv::bit(true));
        sim.set_input("conf_addr", Bv::new(2, addr));
        sim.set_input("conf_data", Bv::new(16, data));
        sim.step();
        sim.set_input("conf_we", Bv::bit(false));
    };
    match op {
        Op::ConfBase(v) => conf(sim, 0, u64::from(v)),
        Op::ConfTlbEnable(e) => conf(sim, 1, u64::from(e)),
        Op::ConfTlbFill { vpn, ppn } => conf(sim, 3, u64::from(vpn) << 4 | u64::from(ppn)),
        Op::Invalidate => {
            conf(sim, 2, 0);
            for _ in 0..3 {
                sim.step();
            }
        }
        Op::Load { index } => {
            sim.set_input("load_valid", Bv::bit(true));
            sim.set_input("load_index", Bv::new(8, u64::from(index)));
            sim.step();
            sim.set_input("load_valid", Bv::bit(false));
        }
        Op::Idle => sim.step(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any operation sequence, the engine's registers and the
    /// translation outcome of a probe load match the reference model —
    /// for the buggy RTL and for both fixes.
    #[test]
    fn engine_matches_reference_model(
        ops in proptest::collection::vec(arb_op(), 1..24),
        probe in 0u8..=255,
        fix_sel in 0u8..4,
    ) {
        let config = MapleConfig {
            fix_tlb_enable: fix_sel & 1 != 0,
            fix_array_base: fix_sel & 2 != 0,
        };
        let module = build_maple(&config);
        let mut sim = Sim::new(&module);
        sim.set_input("conf_we", Bv::bit(false));
        sim.set_input("load_valid", Bv::bit(false));
        sim.set_input("cons_ready", Bv::bit(false));
        sim.set_input("noc_ready", Bv::bit(true));
        sim.set_input("noc_resp_valid", Bv::bit(false));
        let mut model = Model::new(config);

        for op in ops {
            drive_op(&mut sim, op);
            model.apply(op);
        }

        // Register state.
        prop_assert_eq!(
            sim.reg_by_name("array_base").value() as u16,
            model.base,
            "array_base"
        );
        prop_assert_eq!(
            sim.reg_by_name("tlb_enable").as_bool(),
            model.tlb_enable,
            "tlb_enable"
        );

        // Probe load: fault vs issued address.
        sim.set_input("load_valid", Bv::bit(true));
        sim.set_input("load_index", Bv::new(8, u64::from(probe)));
        match model.translate(probe) {
            Some(paddr) => {
                prop_assert!(!sim.output("fault").as_bool(), "unexpected fault");
                sim.step();
                sim.set_input("load_valid", Bv::bit(false));
                prop_assert!(sim.output("noc_req_valid").as_bool());
                prop_assert_eq!(
                    sim.output("noc_req_addr").value() as u16,
                    paddr,
                    "issued address"
                );
            }
            None => {
                prop_assert!(sim.output("fault").as_bool(), "expected fault");
            }
        }
    }
}
