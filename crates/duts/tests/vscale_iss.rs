//! Golden-model differential: random straight-line programs run on the
//! Vscale netlist must produce the same architectural effects as a simple
//! instruction-set simulator (ISS).
//!
//! Programs are hazard-spaced (two nops between dependent instructions —
//! the core has no bypass network) and control-flow free, so the ISS can
//! be a plain sequential interpreter.

use autocc_duts::vscale::{asm, build_vscale, VscaleConfig};
use autocc_hdl::{Bv, Sim};
use proptest::prelude::*;

/// One generated instruction (straight-line subset).
#[derive(Clone, Copy, Debug)]
enum Insn {
    Addi { rd: u16, rs1: u16, imm: u16 },
    Add { rd: u16, rs1: u16, rs2: u16 },
    Load { rd: u16, rs1: u16, imm: u16 },
    Store { rs1: u16, rs2: u16, imm: u16 },
    Csrw { csr: u16, rs1: u16 },
    Csrr { rd: u16, csr: u16 },
}

impl Insn {
    fn encode(self) -> u16 {
        match self {
            Insn::Addi { rd, rs1, imm } => asm::addi(rd, rs1, imm),
            Insn::Add { rd, rs1, rs2 } => asm::add(rd, rs1, rs2),
            Insn::Load { rd, rs1, imm } => asm::load(rd, rs1, imm),
            Insn::Store { rs1, rs2, imm } => asm::store(rs1, rs2, imm),
            Insn::Csrw { csr, rs1 } => asm::csrw(csr, rs1),
            Insn::Csrr { rd, csr } => asm::csrr(rd, csr),
        }
    }
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    // Registers 1..=7 (r0 is used by the nop filler), immediates 0..=7
    // (non-negative after sign extension).
    let reg = 1u16..8;
    let imm = 0u16..8;
    prop_oneof![
        (reg.clone(), reg.clone(), imm.clone()).prop_map(|(rd, rs1, imm)| Insn::Addi {
            rd,
            rs1,
            imm
        }),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(rd, rs1, rs2)| Insn::Add {
            rd,
            rs1,
            rs2
        }),
        (reg.clone(), reg.clone(), imm.clone()).prop_map(|(rd, rs1, imm)| Insn::Load {
            rd,
            rs1,
            imm
        }),
        (reg.clone(), reg.clone(), imm.clone()).prop_map(|(rs1, rs2, imm)| Insn::Store {
            rs1,
            rs2,
            imm
        }),
        (0u16..4, reg.clone()).prop_map(|(csr, rs1)| Insn::Csrw { csr, rs1 }),
        (reg, 0u16..4).prop_map(|(rd, csr)| Insn::Csrr { rd, csr }),
    ]
}

/// Sequential reference semantics.
#[derive(Default)]
struct Iss {
    regs: [u16; 8],
    csrs: [u16; 4],
    dmem: std::collections::HashMap<u16, u16>,
    stores: Vec<(u16, u16)>,
}

impl Iss {
    fn exec(&mut self, insn: Insn) {
        match insn {
            Insn::Addi { rd, rs1, imm } => {
                self.regs[rd as usize] = self.regs[rs1 as usize].wrapping_add(imm);
            }
            Insn::Add { rd, rs1, rs2 } => {
                self.regs[rd as usize] =
                    self.regs[rs1 as usize].wrapping_add(self.regs[rs2 as usize]);
            }
            Insn::Load { rd, rs1, imm } => {
                let addr = self.regs[rs1 as usize].wrapping_add(imm);
                self.regs[rd as usize] = self.dmem.get(&addr).copied().unwrap_or(0);
            }
            Insn::Store { rs1, rs2, imm } => {
                let addr = self.regs[rs1 as usize].wrapping_add(imm);
                let value = self.regs[rs2 as usize];
                self.dmem.insert(addr, value);
                self.stores.push((addr, value));
            }
            Insn::Csrw { csr, rs1 } => {
                self.csrs[csr as usize] = self.regs[rs1 as usize];
            }
            Insn::Csrr { rd, csr } => {
                self.regs[rd as usize] = self.csrs[csr as usize];
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn netlist_matches_iss(insns in proptest::collection::vec(arb_insn(), 1..12)) {
        // Hazard-space the program: two nops after every instruction.
        let mut program: Vec<u16> = Vec::new();
        for insn in &insns {
            program.push(insn.encode());
            program.push(asm::nop());
            program.push(asm::nop());
        }

        // Reference execution.
        let mut iss = Iss::default();
        for insn in &insns {
            iss.exec(*insn);
        }

        // Netlist execution with a behavioural dmem and store capture.
        let module = build_vscale(&VscaleConfig::default());
        let mut sim = Sim::new(&module);
        let mut dmem: std::collections::HashMap<u16, u16> = std::collections::HashMap::new();
        let mut stores: Vec<(u16, u16)> = Vec::new();
        sim.set_input("interrupt", Bv::bit(false));
        for _ in 0..program.len() + 6 {
            let pc = sim.output("imem_haddr").value() as usize;
            let word = program.get(pc).copied().unwrap_or(asm::nop());
            sim.set_input("imem_hrdata", Bv::new(16, u64::from(word)));
            // Combinational dmem: serve the load address of this cycle.
            let addr = sim.output("dmem_haddr").value() as u16;
            let rdata = dmem.get(&addr).copied().unwrap_or(0);
            sim.set_input("dmem_hrdata", Bv::new(16, u64::from(rdata)));
            if sim.output("dmem_hwrite").as_bool() {
                let a = sim.output("dmem_haddr").value() as u16;
                let v = sim.output("dmem_hwdata").value() as u16;
                dmem.insert(a, v);
                stores.push((a, v));
            }
            sim.step();
        }

        // Compare architectural state.
        let rf = module.find_mem("regfile").unwrap();
        for r in 1..8 {
            prop_assert_eq!(
                sim.mem_word(rf, r).value() as u16,
                iss.regs[r],
                "register r{} mismatch", r
            );
        }
        let csr = module.find_mem("csr.file").unwrap();
        for c in 0..4 {
            prop_assert_eq!(
                sim.mem_word(csr, c).value() as u16,
                iss.csrs[c],
                "csr[{}] mismatch", c
            );
        }
        prop_assert_eq!(stores, iss.stores, "store stream mismatch");
    }
}
