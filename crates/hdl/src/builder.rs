//! Construction DSL for [`Module`]s.
//!
//! [`ModuleBuilder`] is the hardware-construction API the DUT models are
//! written against (playing the role the RTL source plays in the paper).
//! Widths are checked at construction time; violations panic with a
//! descriptive message, mirroring elaboration errors in an HDL compiler.

use crate::bv::Bv;
use crate::ir::{
    BinOp, Direction, MemId, Memory, Module, Node, NodeId, OutputPort, Port, RegId, Register,
    Transaction, WritePort,
};
use std::collections::HashMap;

/// Result of instantiating one module inside another: name-keyed handles
/// into the parent for the child's outputs and state elements.
#[derive(Clone, Debug, Default)]
pub struct Instance {
    /// Child output name → parent node carrying that output.
    pub outputs: HashMap<String, NodeId>,
    /// Child register name (unprefixed) → parent register.
    pub regs: HashMap<String, RegId>,
    /// Child register name (unprefixed) → parent node reading that register.
    pub reg_outs: HashMap<String, NodeId>,
    /// Child memory name (unprefixed) → parent memory.
    pub mems: HashMap<String, MemId>,
}

/// Incremental builder for a [`Module`].
///
/// # Examples
///
/// ```
/// use autocc_hdl::{Bv, ModuleBuilder};
///
/// let mut b = ModuleBuilder::new("counter");
/// let enable = b.input("enable", 1);
/// let count = b.reg("count", 8, Bv::zero(8));
/// let one = b.lit(8, 1);
/// let next = b.add(count, one);
/// let next = b.mux(enable, next, count);
/// b.set_next(count, next);
/// b.output("value", count);
/// let module = b.build();
/// assert_eq!(module.state_bits(), 8);
/// ```
pub struct ModuleBuilder {
    name: String,
    nodes: Vec<Node>,
    widths: Vec<u32>,
    inputs: Vec<Port>,
    outputs: Vec<OutputPort>,
    regs: Vec<Register>,
    /// Node reading each register, so `set_next` can be keyed by that node.
    reg_read_nodes: Vec<NodeId>,
    mems: Vec<Memory>,
    transactions: Vec<Transaction>,
    scope: Vec<String>,
}

impl ModuleBuilder {
    /// Starts building a module called `name`.
    pub fn new(name: impl Into<String>) -> ModuleBuilder {
        ModuleBuilder {
            name: name.into(),
            nodes: Vec::new(),
            widths: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            regs: Vec::new(),
            reg_read_nodes: Vec::new(),
            mems: Vec::new(),
            transactions: Vec::new(),
            scope: Vec::new(),
        }
    }

    fn push(&mut self, node: Node, width: u32) -> NodeId {
        debug_assert!((1..=64).contains(&width));
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.widths.push(width);
        id
    }

    /// Width of an already-created node.
    pub fn width(&self, id: NodeId) -> u32 {
        self.widths[id.index()]
    }

    fn scoped(&self, name: &str) -> String {
        if self.scope.is_empty() {
            name.to_string()
        } else {
            format!("{}.{}", self.scope.join("."), name)
        }
    }

    /// Enters a hierarchical naming scope (affects subsequently created
    /// inputs, outputs, registers, and memories).
    pub fn scope_push(&mut self, name: impl Into<String>) {
        self.scope.push(name.into());
    }

    /// Leaves the innermost naming scope.
    ///
    /// # Panics
    ///
    /// Panics if no scope is open.
    pub fn scope_pop(&mut self) {
        self.scope
            .pop()
            .expect("scope_pop without matching scope_push");
    }

    // ------------------------------------------------------------------
    // Ports and state
    // ------------------------------------------------------------------

    /// Declares an input port.
    pub fn input(&mut self, name: &str, width: u32) -> NodeId {
        let name = self.scoped(name);
        assert!(
            !self.inputs.iter().any(|p| p.name == name),
            "duplicate input {name}"
        );
        let port = self.inputs.len();
        self.inputs.push(Port {
            name,
            width,
            common: false,
        });
        self.push(Node::Input { port }, width)
    }

    /// Declares an input that the AutoCC wrapper must not replicate across
    /// universes (the paper's `//AutoCC Common` annotation).
    pub fn input_common(&mut self, name: &str, width: u32) -> NodeId {
        let id = self.input(name, width);
        self.inputs.last_mut().expect("just pushed").common = true;
        id
    }

    /// Returns the node of an already-declared input port, by full name.
    pub fn input_node(&self, name: &str) -> Option<NodeId> {
        let port = self.inputs.iter().position(|p| p.name == name)?;
        self.nodes
            .iter()
            .position(|n| matches!(n, Node::Input { port: p } if *p == port))
            .map(NodeId::from_index)
    }

    /// Declares an output port driven by `node`.
    pub fn output(&mut self, name: &str, node: NodeId) {
        let name = self.scoped(name);
        assert!(
            !self.outputs.iter().any(|o| o.name == name),
            "duplicate output {name}"
        );
        self.outputs.push(OutputPort { name, node });
    }

    /// Creates a register and returns the node reading its current value.
    pub fn reg(&mut self, name: &str, width: u32, init: Bv) -> NodeId {
        assert_eq!(init.width(), width, "register {name}: init width mismatch");
        let name = self.scoped(name);
        assert!(
            !self.regs.iter().any(|r| r.name == name),
            "duplicate register {name}"
        );
        let rid = RegId(self.regs.len() as u32);
        self.regs.push(Register {
            name,
            width,
            init,
            next: None,
        });
        let node = self.push(Node::RegOut(rid), width);
        self.reg_read_nodes.push(node);
        node
    }

    /// Sets the next-state driver of a register created by [`Self::reg`].
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a register-read node, on width mismatch, or if
    /// the next-state was already set.
    pub fn set_next(&mut self, reg: NodeId, next: NodeId) {
        let rid = match self.nodes[reg.index()] {
            Node::RegOut(r) => r,
            _ => panic!("set_next target is not a register"),
        };
        let r = &mut self.regs[rid.index()];
        assert_eq!(
            self.widths[next.index()],
            r.width,
            "register {}: next width mismatch",
            r.name
        );
        assert!(r.next.is_none(), "register {} driven twice", r.name);
        r.next = Some(next);
    }

    /// Creates a memory of `depth` words of `width` bits, zero-initialised.
    pub fn mem(&mut self, name: &str, depth: usize, width: u32) -> MemId {
        assert!(depth >= 1, "memory {name}: depth must be positive");
        let name = self.scoped(name);
        assert!(
            !self.mems.iter().any(|m| m.name == name),
            "duplicate memory {name}"
        );
        let id = MemId(self.mems.len() as u32);
        self.mems.push(Memory {
            name,
            depth,
            width,
            init: vec![Bv::zero(width); depth],
            writes: Vec::new(),
        });
        id
    }

    /// Overrides the initial contents of a memory.
    ///
    /// # Panics
    ///
    /// Panics if `init` has the wrong length or word width.
    pub fn mem_init(&mut self, mem: MemId, init: Vec<Bv>) {
        let m = &mut self.mems[mem.index()];
        assert_eq!(init.len(), m.depth, "memory {}: bad init length", m.name);
        for w in &init {
            assert_eq!(w.width(), m.width, "memory {}: bad init width", m.name);
        }
        m.init = init;
    }

    /// Asynchronous read of `mem` at `addr`.
    pub fn mem_read(&mut self, mem: MemId, addr: NodeId) -> NodeId {
        let width = self.mems[mem.index()].width;
        self.push(Node::MemRead { mem, addr }, width)
    }

    /// Adds a write port: when `en` is 1 at the clock edge, `mem[addr] = data`.
    /// Ports added later take priority on address collisions.
    pub fn mem_write(&mut self, mem: MemId, en: NodeId, addr: NodeId, data: NodeId) {
        assert_eq!(self.widths[en.index()], 1, "write enable must be 1 bit");
        let m = &self.mems[mem.index()];
        assert_eq!(
            self.widths[data.index()],
            m.width,
            "memory {}: write data width mismatch",
            m.name
        );
        self.mems[mem.index()]
            .writes
            .push(WritePort { en, addr, data });
    }

    // ------------------------------------------------------------------
    // Combinational operators
    // ------------------------------------------------------------------

    /// Constant node.
    pub fn constant(&mut self, value: Bv) -> NodeId {
        self.push(Node::Const(value), value.width())
    }

    /// Constant node from width and raw value.
    pub fn lit(&mut self, width: u32, value: u64) -> NodeId {
        self.constant(Bv::new(width, value))
    }

    fn binary(&mut self, op: BinOp, a: NodeId, b: NodeId) -> NodeId {
        let (wa, wb) = (self.widths[a.index()], self.widths[b.index()]);
        let width = match op {
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Add | BinOp::Sub => {
                assert_eq!(wa, wb, "{op:?}: width mismatch {wa} vs {wb}");
                wa
            }
            BinOp::Eq | BinOp::Ult => {
                assert_eq!(wa, wb, "{op:?}: width mismatch {wa} vs {wb}");
                1
            }
            BinOp::Shl | BinOp::Shr => wa,
        };
        self.push(Node::Binary { op, a, b }, width)
    }

    /// Bitwise AND.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::And, a, b)
    }

    /// Bitwise OR.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Or, a, b)
    }

    /// Bitwise XOR.
    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Xor, a, b)
    }

    /// Bitwise NOT.
    pub fn not(&mut self, a: NodeId) -> NodeId {
        let w = self.widths[a.index()];
        self.push(Node::Not(a), w)
    }

    /// Wrapping addition.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Sub, a, b)
    }

    /// Equality comparison (1-bit result).
    pub fn eq(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Eq, a, b)
    }

    /// Inequality comparison (1-bit result).
    pub fn ne(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let e = self.eq(a, b);
        self.not(e)
    }

    /// Equality against a constant.
    pub fn eq_lit(&mut self, a: NodeId, value: u64) -> NodeId {
        let w = self.widths[a.index()];
        let c = self.lit(w, value);
        self.eq(a, c)
    }

    /// Unsigned less-than (1-bit result).
    pub fn ult(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.binary(BinOp::Ult, a, b)
    }

    /// Unsigned less-or-equal (1-bit result).
    pub fn ule(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let gt = self.binary(BinOp::Ult, b, a);
        self.not(gt)
    }

    /// Logical shift left by a variable amount.
    pub fn shl(&mut self, a: NodeId, amount: NodeId) -> NodeId {
        self.binary(BinOp::Shl, a, amount)
    }

    /// Logical shift right by a variable amount.
    pub fn shr(&mut self, a: NodeId, amount: NodeId) -> NodeId {
        self.binary(BinOp::Shr, a, amount)
    }

    /// 2:1 multiplexer `sel ? t : e`.
    ///
    /// # Panics
    ///
    /// Panics unless `sel` is 1 bit wide and `t`/`e` widths match.
    pub fn mux(&mut self, sel: NodeId, t: NodeId, e: NodeId) -> NodeId {
        assert_eq!(self.widths[sel.index()], 1, "mux select must be 1 bit");
        let (wt, we) = (self.widths[t.index()], self.widths[e.index()]);
        assert_eq!(wt, we, "mux arm width mismatch {wt} vs {we}");
        self.push(Node::Mux { sel, t, e }, wt)
    }

    /// Bit slice `a[hi:lo]` (inclusive).
    pub fn slice(&mut self, a: NodeId, hi: u32, lo: u32) -> NodeId {
        let w = self.widths[a.index()];
        assert!(hi >= lo && hi < w, "bad slice [{hi}:{lo}] of width {w}");
        self.push(Node::Slice { a, hi, lo }, hi - lo + 1)
    }

    /// Extracts a single bit.
    pub fn bit(&mut self, a: NodeId, i: u32) -> NodeId {
        self.slice(a, i, i)
    }

    /// Concatenation; `hi` supplies the high bits.
    pub fn concat(&mut self, hi: NodeId, lo: NodeId) -> NodeId {
        let w = self.widths[hi.index()] + self.widths[lo.index()];
        assert!(w <= 64, "concat width {w} exceeds 64");
        self.push(Node::Concat { hi, lo }, w)
    }

    /// Zero extension.
    pub fn zext(&mut self, a: NodeId, width: u32) -> NodeId {
        let w = self.widths[a.index()];
        assert!(width >= w, "zext target {width} below {w}");
        if width == w {
            return a;
        }
        self.push(Node::Zext { a, width }, width)
    }

    /// Sign extension.
    pub fn sext(&mut self, a: NodeId, width: u32) -> NodeId {
        let w = self.widths[a.index()];
        assert!(width >= w, "sext target {width} below {w}");
        if width == w {
            return a;
        }
        self.push(Node::Sext { a, width }, width)
    }

    /// OR-reduction: 1 iff any bit of `a` is set.
    pub fn reduce_or(&mut self, a: NodeId) -> NodeId {
        self.push(Node::ReduceOr(a), 1)
    }

    /// AND-reduction: 1 iff all bits of `a` are set.
    pub fn reduce_and(&mut self, a: NodeId) -> NodeId {
        self.push(Node::ReduceAnd(a), 1)
    }

    /// XOR-reduction: parity of `a`.
    pub fn reduce_xor(&mut self, a: NodeId) -> NodeId {
        self.push(Node::ReduceXor(a), 1)
    }

    /// AND of a list of 1-bit nodes (1 for the empty list).
    pub fn all(&mut self, bits: &[NodeId]) -> NodeId {
        match bits.split_first() {
            None => self.lit(1, 1),
            Some((&first, rest)) => {
                let mut acc = first;
                for &b in rest {
                    acc = self.and(acc, b);
                }
                acc
            }
        }
    }

    /// OR of a list of 1-bit nodes (0 for the empty list).
    pub fn any(&mut self, bits: &[NodeId]) -> NodeId {
        match bits.split_first() {
            None => self.lit(1, 0),
            Some((&first, rest)) => {
                let mut acc = first;
                for &b in rest {
                    acc = self.or(acc, b);
                }
                acc
            }
        }
    }

    // ------------------------------------------------------------------
    // Interface metadata
    // ------------------------------------------------------------------

    /// Declares an incoming transaction: `valid` (an input port name)
    /// governs the listed payload input ports.
    pub fn transaction_in(&mut self, name: &str, valid: &str, payload: &[&str]) {
        self.transactions.push(Transaction {
            name: self.scoped(name),
            direction: Direction::Input,
            valid: valid.to_string(),
            payload: payload.iter().map(|s| s.to_string()).collect(),
        });
    }

    /// Declares an outgoing transaction: `valid` (an output port name)
    /// governs the listed payload output ports.
    pub fn transaction_out(&mut self, name: &str, valid: &str, payload: &[&str]) {
        self.transactions.push(Transaction {
            name: self.scoped(name),
            direction: Direction::Output,
            valid: valid.to_string(),
            payload: payload.iter().map(|s| s.to_string()).collect(),
        });
    }

    // ------------------------------------------------------------------
    // Hierarchy
    // ------------------------------------------------------------------

    /// Copies `child` into this module under the naming scope `prefix`,
    /// substituting the child's input ports with the given parent nodes.
    ///
    /// Returns handles to the child's outputs and state inside the parent.
    /// Transactions of the child are not propagated (they describe the
    /// child's own boundary, not the parent's).
    ///
    /// # Panics
    ///
    /// Panics if an input is missing from `inputs` or has the wrong width.
    pub fn instantiate(
        &mut self,
        child: &Module,
        prefix: &str,
        inputs: &HashMap<String, NodeId>,
    ) -> Instance {
        let mut node_map: Vec<NodeId> = Vec::with_capacity(child.nodes.len());
        let mut instance = Instance::default();

        // Create all child registers and memories first so RegOut/MemRead
        // nodes can reference them during the copy.
        let reg_base = self.regs.len();
        for r in &child.regs {
            let name = self.scoped(&format!("{prefix}.{}", r.name));
            assert!(
                !self.regs.iter().any(|x| x.name == name),
                "duplicate register {name}"
            );
            self.regs.push(Register {
                name,
                width: r.width,
                init: r.init,
                next: None,
            });
            self.reg_read_nodes.push(NodeId(u32::MAX)); // patched below
        }
        let mem_base = self.mems.len();
        for m in &child.mems {
            let name = self.scoped(&format!("{prefix}.{}", m.name));
            assert!(
                !self.mems.iter().any(|x| x.name == name),
                "duplicate memory {name}"
            );
            self.mems.push(Memory {
                name,
                depth: m.depth,
                width: m.width,
                init: m.init.clone(),
                writes: Vec::new(),
            });
        }

        for (i, node) in child.nodes.iter().enumerate() {
            let mapped = match node {
                Node::Input { port } => {
                    let p = &child.inputs[*port];
                    let supplied = *inputs.get(&p.name).unwrap_or_else(|| {
                        panic!("instantiate {prefix}: missing input {}", p.name)
                    });
                    assert_eq!(
                        self.widths[supplied.index()],
                        p.width,
                        "instantiate {prefix}: width mismatch on input {}",
                        p.name
                    );
                    supplied
                }
                Node::Const(bv) => self.constant(*bv),
                Node::Not(a) => {
                    let a = node_map[a.index()];
                    self.not(a)
                }
                Node::Binary { op, a, b } => {
                    let (a, b) = (node_map[a.index()], node_map[b.index()]);
                    self.binary(*op, a, b)
                }
                Node::Mux { sel, t, e } => {
                    let (sel, t, e) = (
                        node_map[sel.index()],
                        node_map[t.index()],
                        node_map[e.index()],
                    );
                    self.mux(sel, t, e)
                }
                Node::Slice { a, hi, lo } => {
                    let a = node_map[a.index()];
                    self.slice(a, *hi, *lo)
                }
                Node::Concat { hi, lo } => {
                    let (hi, lo) = (node_map[hi.index()], node_map[lo.index()]);
                    self.concat(hi, lo)
                }
                Node::Zext { a, width } => {
                    let a = node_map[a.index()];
                    self.zext(a, *width)
                }
                Node::Sext { a, width } => {
                    let a = node_map[a.index()];
                    self.sext(a, *width)
                }
                Node::ReduceOr(a) => {
                    let a = node_map[a.index()];
                    self.reduce_or(a)
                }
                Node::ReduceAnd(a) => {
                    let a = node_map[a.index()];
                    self.reduce_and(a)
                }
                Node::ReduceXor(a) => {
                    let a = node_map[a.index()];
                    self.reduce_xor(a)
                }
                Node::RegOut(r) => {
                    let rid = RegId((reg_base + r.index()) as u32);
                    let width = self.regs[rid.index()].width;
                    let nid = self.push(Node::RegOut(rid), width);
                    self.reg_read_nodes[rid.index()] = nid;
                    instance
                        .reg_outs
                        .insert(child.regs[r.index()].name.clone(), nid);
                    nid
                }
                Node::MemRead { mem, addr } => {
                    let addr = node_map[addr.index()];
                    let mid = MemId((mem_base + mem.index()) as u32);
                    self.mem_read(mid, addr)
                }
            };
            debug_assert_eq!(node_map.len(), i);
            node_map.push(mapped);
        }

        // Patch register next-state drivers and memory write ports.
        for (i, r) in child.regs.iter().enumerate() {
            let next = r
                .next
                .unwrap_or_else(|| panic!("instantiate {prefix}: register {} undriven", r.name));
            self.regs[reg_base + i].next = Some(node_map[next.index()]);
            instance
                .regs
                .insert(r.name.clone(), RegId((reg_base + i) as u32));
        }
        for (i, m) in child.mems.iter().enumerate() {
            for w in &m.writes {
                self.mems[mem_base + i].writes.push(WritePort {
                    en: node_map[w.en.index()],
                    addr: node_map[w.addr.index()],
                    data: node_map[w.data.index()],
                });
            }
            instance
                .mems
                .insert(m.name.clone(), MemId((mem_base + i) as u32));
        }
        for o in &child.outputs {
            instance
                .outputs
                .insert(o.name.clone(), node_map[o.node.index()]);
        }
        instance
    }

    /// Instantiates `child` as a *blackbox* (Sec. 3.4 of the paper): its
    /// internals vanish from the verification model. Each child output
    /// becomes a fresh free input of this module (named
    /// `<prefix>.<output>`), and each wire feeding the blackbox is exposed
    /// as an output of this module (named `<prefix>.to_bb.<input>`) so the
    /// AutoCC properties check it for equality across universes.
    pub fn instantiate_blackbox(
        &mut self,
        child: &Module,
        prefix: &str,
        inputs: &HashMap<String, NodeId>,
    ) -> Instance {
        let mut instance = Instance::default();
        for p in &child.inputs {
            let supplied = *inputs
                .get(&p.name)
                .unwrap_or_else(|| panic!("blackbox {prefix}: missing input {}", p.name));
            assert_eq!(
                self.widths[supplied.index()],
                p.width,
                "blackbox {prefix}: width mismatch on input {}",
                p.name
            );
            self.output(&format!("{prefix}.to_bb.{}", p.name), supplied);
        }
        for o in &child.outputs {
            let width = child.widths[o.node.index()];
            let free = self.input(&format!("{prefix}.{}", o.name), width);
            instance.outputs.insert(o.name.clone(), free);
        }
        instance
    }

    /// Returns a node reading register `rid`, reusing the existing read
    /// node when one exists (registers are only ever read through one node).
    pub fn read_reg(&mut self, rid: RegId) -> NodeId {
        let existing = self.reg_read_nodes[rid.index()];
        if existing != NodeId(u32::MAX) {
            return existing;
        }
        let width = self.regs[rid.index()].width;
        let node = self.push(Node::RegOut(rid), width);
        self.reg_read_nodes[rid.index()] = node;
        node
    }

    /// Reads word `index` of memory `mid` through a constant address.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the memory depth.
    pub fn read_mem_word(&mut self, mid: MemId, index: usize) -> NodeId {
        let m = &self.mems[mid.index()];
        assert!(
            index < m.depth,
            "memory {}: word {index} out of range",
            m.name
        );
        let addr_width = (usize::BITS - m.depth.next_power_of_two().leading_zeros()).clamp(1, 64);
        let addr = self.lit(addr_width, index as u64);
        self.mem_read(mid, addr)
    }

    /// Depth of memory `mid` in words.
    pub fn mem_depth(&self, mid: MemId) -> usize {
        self.mems[mid.index()].depth
    }

    /// Finalises and validates the module.
    ///
    /// # Panics
    ///
    /// Panics on malformed designs (see [`Module::validate`]), most commonly
    /// a register whose next-state was never set.
    pub fn build(self) -> Module {
        assert!(self.scope.is_empty(), "unbalanced scope_push/scope_pop");
        let module = Module {
            name: self.name,
            nodes: self.nodes,
            widths: self.widths,
            inputs: self.inputs,
            outputs: self.outputs,
            regs: self.regs,
            mems: self.mems,
            transactions: self.transactions,
        };
        module.validate();
        module
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter() -> Module {
        let mut b = ModuleBuilder::new("counter");
        let en = b.input("en", 1);
        let c = b.reg("count", 4, Bv::zero(4));
        let one = b.lit(4, 1);
        let inc = b.add(c, one);
        let next = b.mux(en, inc, c);
        b.set_next(c, next);
        b.output("value", c);
        b.build()
    }

    #[test]
    fn builds_counter() {
        let m = counter();
        assert_eq!(m.inputs().len(), 1);
        assert_eq!(m.outputs().len(), 1);
        assert_eq!(m.regs().len(), 1);
        assert_eq!(m.state_bits(), 4);
    }

    #[test]
    #[should_panic(expected = "no next-state driver")]
    fn undriven_register_panics() {
        let mut b = ModuleBuilder::new("bad");
        let _ = b.reg("r", 4, Bv::zero(4));
        b.build();
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let mut b = ModuleBuilder::new("bad");
        let a = b.input("a", 4);
        let c = b.input("b", 5);
        let _ = b.add(a, c);
    }

    #[test]
    fn instantiate_copies_state() {
        let child = counter();
        let mut b = ModuleBuilder::new("parent");
        let en = b.input("en", 1);
        let mut wires = HashMap::new();
        wires.insert("en".to_string(), en);
        let inst = b.instantiate(&child, "u0", &wires);
        let inst2 = b.instantiate(&child, "u1", &wires);
        b.output("v0", inst.outputs["value"]);
        b.output("v1", inst2.outputs["value"]);
        let m = b.build();
        assert_eq!(m.regs().len(), 2);
        assert!(m.find_reg("u0.count").is_some());
        assert!(m.find_reg("u1.count").is_some());
        assert_eq!(m.state_bits(), 8);
    }

    #[test]
    fn blackbox_exposes_boundary() {
        let child = counter();
        let mut b = ModuleBuilder::new("parent");
        let en = b.input("en", 1);
        let mut wires = HashMap::new();
        wires.insert("en".to_string(), en);
        let inst = b.instantiate_blackbox(&child, "bb", &wires);
        b.output("v", inst.outputs["value"]);
        let m = b.build();
        // Child register is gone; its output became a free input.
        assert!(m.find_reg("bb.count").is_none());
        assert!(m.input_index("bb.value").is_some());
        assert!(m.output_node("bb.to_bb.en").is_some());
        assert_eq!(m.state_bits(), 0);
    }

    #[test]
    fn scopes_prefix_names() {
        let mut b = ModuleBuilder::new("m");
        b.scope_push("frontend");
        let r = b.reg("pc", 8, Bv::zero(8));
        b.scope_pop();
        b.set_next(r, r);
        let m = b.build();
        assert!(m.find_reg("frontend.pc").is_some());
    }
}
