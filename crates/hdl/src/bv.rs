//! Fixed-width bit-vector values.
//!
//! [`Bv`] is the value domain of the netlist simulator: an unsigned integer
//! of 1–64 bits with wrapping arithmetic, matching two-state RTL semantics.

use std::fmt;

/// Maximum supported bit width.
pub const MAX_WIDTH: u32 = 64;

/// A bit-vector value of fixed width (1..=64 bits).
///
/// All operations respect the width: arithmetic wraps, shifts discard bits
/// shifted past the width, and the invariant `value < 2^width` always holds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bv {
    width: u32,
    value: u64,
}

#[allow(clippy::should_implement_trait)] // `add`/`sub`/`not`/`shl`/`shr` mirror
                                         // the netlist operator names; the std operator traits would hide the
                                         // width-checking panics behind operator sugar.
impl Bv {
    /// Creates a bit-vector of `width` bits holding `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`MAX_WIDTH`], or if `value`
    /// does not fit in `width` bits.
    pub fn new(width: u32, value: u64) -> Bv {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "bit-vector width {width} out of range 1..={MAX_WIDTH}"
        );
        assert!(
            width == 64 || value < 1u64 << width,
            "value {value:#x} does not fit in {width} bits"
        );
        Bv { width, value }
    }

    /// Creates a bit-vector truncating `value` to `width` bits.
    pub fn masked(width: u32, value: u64) -> Bv {
        assert!(
            (1..=MAX_WIDTH).contains(&width),
            "bit-vector width {width} out of range 1..={MAX_WIDTH}"
        );
        Bv {
            width,
            value: value & Self::mask(width),
        }
    }

    /// The all-zeros vector of `width` bits.
    pub fn zero(width: u32) -> Bv {
        Bv::new(width, 0)
    }

    /// The all-ones vector of `width` bits.
    pub fn ones(width: u32) -> Bv {
        Bv::masked(width, u64::MAX)
    }

    /// Single-bit vector from a boolean.
    pub fn bit(b: bool) -> Bv {
        Bv::new(1, b as u64)
    }

    /// The bit mask for `width` bits.
    #[inline]
    pub fn mask(width: u32) -> u64 {
        if width >= 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        }
    }

    /// Width in bits.
    #[inline]
    pub fn width(self) -> u32 {
        self.width
    }

    /// The raw value (always `< 2^width`).
    #[inline]
    pub fn value(self) -> u64 {
        self.value
    }

    /// Interprets the vector as a boolean (true iff non-zero).
    #[inline]
    pub fn as_bool(self) -> bool {
        self.value != 0
    }

    /// Extracts bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn get_bit(self, i: u32) -> bool {
        assert!(
            i < self.width,
            "bit {i} out of range for width {}",
            self.width
        );
        self.value >> i & 1 == 1
    }

    fn same_width(self, other: Bv) -> u32 {
        assert_eq!(
            self.width, other.width,
            "width mismatch: {} vs {}",
            self.width, other.width
        );
        self.width
    }

    /// Bitwise AND. Panics on width mismatch.
    pub fn and(self, other: Bv) -> Bv {
        Bv::new(self.same_width(other), self.value & other.value)
    }

    /// Bitwise OR. Panics on width mismatch.
    pub fn or(self, other: Bv) -> Bv {
        Bv::new(self.same_width(other), self.value | other.value)
    }

    /// Bitwise XOR. Panics on width mismatch.
    pub fn xor(self, other: Bv) -> Bv {
        Bv::new(self.same_width(other), self.value ^ other.value)
    }

    /// Bitwise NOT.
    pub fn not(self) -> Bv {
        Bv::masked(self.width, !self.value)
    }

    /// Wrapping addition. Panics on width mismatch.
    pub fn add(self, other: Bv) -> Bv {
        Bv::masked(self.same_width(other), self.value.wrapping_add(other.value))
    }

    /// Wrapping subtraction. Panics on width mismatch.
    pub fn sub(self, other: Bv) -> Bv {
        Bv::masked(self.same_width(other), self.value.wrapping_sub(other.value))
    }

    /// Equality as a 1-bit vector. Panics on width mismatch.
    pub fn eq_bv(self, other: Bv) -> Bv {
        self.same_width(other);
        Bv::bit(self.value == other.value)
    }

    /// Unsigned less-than as a 1-bit vector. Panics on width mismatch.
    pub fn ult(self, other: Bv) -> Bv {
        self.same_width(other);
        Bv::bit(self.value < other.value)
    }

    /// Logical shift left by a (possibly wider) shift amount.
    pub fn shl(self, amount: Bv) -> Bv {
        if amount.value >= u64::from(self.width) {
            Bv::zero(self.width)
        } else {
            Bv::masked(self.width, self.value << amount.value)
        }
    }

    /// Logical shift right by a (possibly wider) shift amount.
    pub fn shr(self, amount: Bv) -> Bv {
        if amount.value >= u64::from(self.width) {
            Bv::zero(self.width)
        } else {
            Bv::new(self.width, self.value >> amount.value)
        }
    }

    /// Extracts bits `hi..=lo` into a `(hi - lo + 1)`-bit vector.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo` or `hi >= width`.
    pub fn slice(self, hi: u32, lo: u32) -> Bv {
        assert!(
            hi >= lo && hi < self.width,
            "bad slice [{hi}:{lo}] of width {}",
            self.width
        );
        let w = hi - lo + 1;
        Bv::masked(w, self.value >> lo)
    }

    /// Concatenation: `self` becomes the high bits.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds [`MAX_WIDTH`].
    pub fn concat(self, low: Bv) -> Bv {
        let w = self.width + low.width;
        assert!(w <= MAX_WIDTH, "concat width {w} exceeds {MAX_WIDTH}");
        Bv::new(w, self.value << low.width | low.value)
    }

    /// Zero-extends to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the current width.
    pub fn zext(self, width: u32) -> Bv {
        assert!(
            width >= self.width,
            "zext target {width} below {}",
            self.width
        );
        Bv::new(width, self.value)
    }

    /// Sign-extends to `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the current width.
    pub fn sext(self, width: u32) -> Bv {
        assert!(
            width >= self.width,
            "sext target {width} below {}",
            self.width
        );
        if self.get_bit(self.width - 1) {
            let ext = Self::mask(width) & !Self::mask(self.width);
            Bv::new(width, self.value | ext)
        } else {
            Bv::new(width, self.value)
        }
    }

    /// OR-reduction: 1 iff any bit set.
    pub fn reduce_or(self) -> Bv {
        Bv::bit(self.value != 0)
    }

    /// AND-reduction: 1 iff all bits set.
    pub fn reduce_and(self) -> Bv {
        Bv::bit(self.value == Self::mask(self.width))
    }

    /// XOR-reduction: parity of the bits.
    pub fn reduce_xor(self) -> Bv {
        Bv::bit(self.value.count_ones() % 2 == 1)
    }
}

impl fmt::Debug for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.value)
    }
}

impl fmt::Display for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}'h{:x}", self.width, self.value)
    }
}

impl fmt::LowerHex for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.value, f)
    }
}

impl fmt::Binary for Bv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.value, f)
    }
}

impl From<bool> for Bv {
    fn from(b: bool) -> Bv {
        Bv::bit(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_masks() {
        assert_eq!(Bv::new(8, 0xff).value(), 0xff);
        assert_eq!(Bv::masked(4, 0x1f).value(), 0xf);
        assert_eq!(Bv::ones(3).value(), 0b111);
        assert_eq!(Bv::zero(64).value(), 0);
        assert_eq!(Bv::mask(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_panics() {
        Bv::new(4, 16);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let _ = Bv::new(4, 1).add(Bv::new(5, 1));
    }

    #[test]
    fn arithmetic_wraps() {
        let a = Bv::new(4, 0xf);
        let one = Bv::new(4, 1);
        assert_eq!(a.add(one), Bv::zero(4));
        assert_eq!(Bv::zero(4).sub(one), Bv::ones(4));
    }

    #[test]
    fn shifts_saturate() {
        let a = Bv::new(8, 0b1010_0101);
        assert_eq!(a.shl(Bv::new(4, 8)).value(), 0);
        assert_eq!(a.shr(Bv::new(8, 200)).value(), 0);
        assert_eq!(a.shl(Bv::new(3, 1)).value(), 0b0100_1010);
        assert_eq!(a.shr(Bv::new(3, 1)).value(), 0b0101_0010);
    }

    #[test]
    fn slice_concat_extend() {
        let a = Bv::new(8, 0xa5);
        assert_eq!(a.slice(7, 4).value(), 0xa);
        assert_eq!(a.slice(3, 0).value(), 0x5);
        assert_eq!(a.slice(7, 4).concat(a.slice(3, 0)), a);
        assert_eq!(Bv::new(4, 0x8).sext(8).value(), 0xf8);
        assert_eq!(Bv::new(4, 0x7).sext(8).value(), 0x07);
        assert_eq!(Bv::new(4, 0x8).zext(8).value(), 0x08);
    }

    #[test]
    fn reductions() {
        assert_eq!(Bv::new(4, 0).reduce_or(), Bv::bit(false));
        assert_eq!(Bv::new(4, 2).reduce_or(), Bv::bit(true));
        assert_eq!(Bv::new(4, 0xf).reduce_and(), Bv::bit(true));
        assert_eq!(Bv::new(4, 0x7).reduce_and(), Bv::bit(false));
        assert_eq!(Bv::new(4, 0b0110).reduce_xor(), Bv::bit(false));
        assert_eq!(Bv::new(4, 0b0111).reduce_xor(), Bv::bit(true));
    }

    #[test]
    fn comparisons() {
        assert_eq!(Bv::new(4, 3).ult(Bv::new(4, 5)), Bv::bit(true));
        assert_eq!(Bv::new(4, 5).ult(Bv::new(4, 5)), Bv::bit(false));
        assert_eq!(Bv::new(4, 5).eq_bv(Bv::new(4, 5)), Bv::bit(true));
    }
}
