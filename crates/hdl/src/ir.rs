//! Word-level netlist intermediate representation.
//!
//! A [`Module`] is a flat directed acyclic graph of combinational [`Node`]s
//! over primary inputs, register outputs, and memory reads, plus the state
//! tables (registers, memories) and interface metadata (ports, transactions)
//! that the AutoCC testbench generator consumes.
//!
//! The only sequential elements are registers and memories; their next-state
//! functions reference combinational nodes, which keeps the graph acyclic
//! and lets both the simulator and the bit-blaster evaluate nodes in
//! creation order.

use crate::bv::Bv;
use std::collections::HashMap;
use std::fmt;

/// Handle to a combinational node within a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Dense index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a handle from a dense index into [`Module::nodes`].
    /// Only meaningful for the module the index came from.
    #[inline]
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Handle to a register within a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RegId(pub(crate) u32);

impl RegId {
    /// Dense index of the register.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a handle from a dense index into [`Module::regs`].
    /// Only meaningful for the module the index came from.
    #[inline]
    pub fn from_index(index: usize) -> RegId {
        RegId(index as u32)
    }
}

/// Handle to a memory within a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MemId(pub(crate) u32);

impl MemId {
    /// Dense index of the memory.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a handle from a dense index into [`Module::mems`].
    /// Only meaningful for the module the index came from.
    #[inline]
    pub fn from_index(index: usize) -> MemId {
        MemId(index as u32)
    }
}

/// Two-operand combinational operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Equality (1-bit result).
    Eq,
    /// Unsigned less-than (1-bit result).
    Ult,
    /// Logical shift left (shift amount is the second operand).
    Shl,
    /// Logical shift right (shift amount is the second operand).
    Shr,
}

/// A combinational node.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Node {
    /// Primary input; `port` indexes [`Module::inputs`].
    Input {
        /// Index into the module's input port table.
        port: usize,
    },
    /// Constant value.
    Const(Bv),
    /// Bitwise NOT.
    Not(NodeId),
    /// Binary operator.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        a: NodeId,
        /// Right operand (shift amount for shifts).
        b: NodeId,
    },
    /// 2:1 multiplexer: `sel ? t : e` (`sel` is 1 bit wide).
    Mux {
        /// 1-bit select.
        sel: NodeId,
        /// Value when `sel` is 1.
        t: NodeId,
        /// Value when `sel` is 0.
        e: NodeId,
    },
    /// Bit slice `a[hi:lo]`.
    Slice {
        /// Source node.
        a: NodeId,
        /// High bit (inclusive).
        hi: u32,
        /// Low bit (inclusive).
        lo: u32,
    },
    /// Concatenation; `hi` supplies the high bits.
    Concat {
        /// High part.
        hi: NodeId,
        /// Low part.
        lo: NodeId,
    },
    /// Zero extension to `width`.
    Zext {
        /// Source node.
        a: NodeId,
        /// Target width.
        width: u32,
    },
    /// Sign extension to `width`.
    Sext {
        /// Source node.
        a: NodeId,
        /// Target width.
        width: u32,
    },
    /// OR-reduction to 1 bit.
    ReduceOr(NodeId),
    /// AND-reduction to 1 bit.
    ReduceAnd(NodeId),
    /// XOR-reduction (parity) to 1 bit.
    ReduceXor(NodeId),
    /// Current-cycle output of a register.
    RegOut(RegId),
    /// Asynchronous (combinational) memory read.
    MemRead {
        /// The memory.
        mem: MemId,
        /// Read address.
        addr: NodeId,
    },
}

/// An input port of a module.
#[derive(Clone, Debug)]
pub struct Port {
    /// Hierarchical signal name.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// `true` when the AutoCC wrapper should *not* replicate this signal
    /// across universes (the paper's `//AutoCC Common` annotation).
    pub common: bool,
}

/// An output port of a module.
#[derive(Clone, Debug)]
pub struct OutputPort {
    /// Hierarchical signal name.
    pub name: String,
    /// The node driving the output.
    pub node: NodeId,
}

/// A register (flip-flop vector) with its reset value and next-state driver.
#[derive(Clone, Debug)]
pub struct Register {
    /// Hierarchical signal name.
    pub name: String,
    /// Width in bits.
    pub width: u32,
    /// Reset/initial value.
    pub init: Bv,
    /// Node computing the next-cycle value. `None` only while building.
    pub next: Option<NodeId>,
}

/// A write port of a memory; write ports later in the list take priority.
#[derive(Clone, Debug)]
pub struct WritePort {
    /// 1-bit write enable.
    pub en: NodeId,
    /// Write address.
    pub addr: NodeId,
    /// Write data.
    pub data: NodeId,
}

/// A small word-addressed memory (register file, cache array, TLB, ...).
#[derive(Clone, Debug)]
pub struct Memory {
    /// Hierarchical name.
    pub name: String,
    /// Number of words.
    pub depth: usize,
    /// Word width in bits.
    pub width: u32,
    /// Initial contents (length `depth`).
    pub init: Vec<Bv>,
    /// Write ports, applied in order each cycle (later ports win).
    pub writes: Vec<WritePort>,
}

/// Direction of a transaction at the module boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Into the module.
    Input,
    /// Out of the module.
    Output,
}

/// A valid-governed signal group at the interface (Sec. 3.3.2 of the paper):
/// the payload is only meaningful while `valid` is asserted, so the AutoCC
/// properties gate payload equality on validity.
#[derive(Clone, Debug)]
pub struct Transaction {
    /// Transaction name.
    pub name: String,
    /// Whether the group enters or leaves the module.
    pub direction: Direction,
    /// Port name of the 1-bit valid signal.
    pub valid: String,
    /// Port names of the payload signals.
    pub payload: Vec<String>,
}

/// A complete sequential design: the AutoCC design under test (DUT).
#[derive(Clone, Debug)]
pub struct Module {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) widths: Vec<u32>,
    pub(crate) inputs: Vec<Port>,
    pub(crate) outputs: Vec<OutputPort>,
    pub(crate) regs: Vec<Register>,
    pub(crate) mems: Vec<Memory>,
    pub(crate) transactions: Vec<Transaction>,
}

impl Module {
    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All combinational nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Width of a node's value in bits.
    pub fn width(&self, id: NodeId) -> u32 {
        self.widths[id.index()]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Input ports in declaration order.
    pub fn inputs(&self) -> &[Port] {
        &self.inputs
    }

    /// Output ports in declaration order.
    pub fn outputs(&self) -> &[OutputPort] {
        &self.outputs
    }

    /// Registers in declaration order.
    pub fn regs(&self) -> &[Register] {
        &self.regs
    }

    /// Memories in declaration order.
    pub fn mems(&self) -> &[Memory] {
        &self.mems
    }

    /// Interface transactions.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Index of the input port named `name`.
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|p| p.name == name)
    }

    /// The node driving the output named `name`.
    pub fn output_node(&self, name: &str) -> Option<NodeId> {
        self.outputs.iter().find(|o| o.name == name).map(|o| o.node)
    }

    /// The register named `name`.
    pub fn find_reg(&self, name: &str) -> Option<RegId> {
        self.regs
            .iter()
            .position(|r| r.name == name)
            .map(|i| RegId(i as u32))
    }

    /// The memory named `name`.
    pub fn find_mem(&self, name: &str) -> Option<MemId> {
        self.mems
            .iter()
            .position(|m| m.name == name)
            .map(|i| MemId(i as u32))
    }

    /// Registers whose hierarchical name starts with `prefix`.
    pub fn regs_with_prefix<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = RegId> + 'a {
        self.regs
            .iter()
            .enumerate()
            .filter(move |(_, r)| r.name.starts_with(prefix))
            .map(|(i, _)| RegId(i as u32))
    }

    /// Total state bits (registers plus memories) — the paper's measure of
    /// FPV hardness.
    pub fn state_bits(&self) -> usize {
        let reg_bits: usize = self.regs.iter().map(|r| r.width as usize).sum();
        let mem_bits: usize = self.mems.iter().map(|m| m.depth * m.width as usize).sum();
        reg_bits + mem_bits
    }

    /// Maps node id to a human-readable description (for traces).
    pub fn describe(&self, id: NodeId) -> String {
        match &self.nodes[id.index()] {
            Node::Input { port } => format!("input {}", self.inputs[*port].name),
            Node::Const(bv) => format!("const {bv}"),
            Node::RegOut(r) => format!("reg {}", self.regs[r.index()].name),
            Node::MemRead { mem, .. } => format!("read {}", self.mems[mem.index()].name),
            other => format!("{other:?}"),
        }
    }

    /// Checks internal consistency; called by the builder and useful after
    /// hand-written transforms.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on malformed modules (dangling
    /// node references, unset register next-state, width violations).
    pub fn validate(&self) {
        let n = self.nodes.len();
        let check = |id: NodeId, ctx: &str| {
            assert!(id.index() < n, "{ctx}: dangling node reference {id:?}");
        };
        for (i, node) in self.nodes.iter().enumerate() {
            let ctx = format!("node n{i}");
            match node {
                Node::Input { port } => assert!(*port < self.inputs.len(), "{ctx}: bad port"),
                Node::Const(_) => {}
                Node::Not(a)
                | Node::Zext { a, .. }
                | Node::Sext { a, .. }
                | Node::Slice { a, .. }
                | Node::ReduceOr(a)
                | Node::ReduceAnd(a)
                | Node::ReduceXor(a) => check(*a, &ctx),
                Node::Binary { a, b, .. } | Node::Concat { hi: a, lo: b } => {
                    check(*a, &ctx);
                    check(*b, &ctx);
                }
                Node::Mux { sel, t, e } => {
                    check(*sel, &ctx);
                    check(*t, &ctx);
                    check(*e, &ctx);
                    assert_eq!(self.widths[sel.index()], 1, "{ctx}: mux select not 1 bit");
                }
                Node::RegOut(r) => assert!(r.index() < self.regs.len(), "{ctx}: bad reg"),
                Node::MemRead { mem, addr } => {
                    assert!(mem.index() < self.mems.len(), "{ctx}: bad mem");
                    check(*addr, &ctx);
                }
            }
        }
        for r in &self.regs {
            let next = r
                .next
                .unwrap_or_else(|| panic!("register {} has no next-state driver", r.name));
            assert_eq!(
                self.widths[next.index()],
                r.width,
                "register {}: next-state width mismatch",
                r.name
            );
        }
        for m in &self.mems {
            assert_eq!(m.init.len(), m.depth, "memory {}: bad init length", m.name);
            for w in &m.writes {
                assert_eq!(
                    self.widths[w.en.index()],
                    1,
                    "memory {}: enable not 1 bit",
                    m.name
                );
                assert_eq!(
                    self.widths[w.data.index()],
                    m.width,
                    "memory {}: write data width mismatch",
                    m.name
                );
            }
        }
        let mut seen = HashMap::new();
        for o in &self.outputs {
            check(o.node, &format!("output {}", o.name));
            if let Some(_prev) = seen.insert(&o.name, ()) {
                panic!("duplicate output name {}", o.name);
            }
        }
        for t in &self.transactions {
            let lookup = |pname: &str| match t.direction {
                Direction::Input => self.input_index(pname).is_some(),
                Direction::Output => self.output_node(pname).is_some(),
            };
            assert!(
                lookup(&t.valid),
                "transaction {}: unknown valid {}",
                t.name,
                t.valid
            );
            for p in &t.payload {
                assert!(lookup(p), "transaction {}: unknown payload {}", t.name, p);
            }
        }
    }

    /// Reconstructs a module from its flat parts, recomputing node widths
    /// under the same rules [`crate::ModuleBuilder`] enforces during
    /// construction. This is the deserialization entry point for wire
    /// formats that ship a netlist across a process boundary: the width
    /// table is derived, never trusted from the wire.
    ///
    /// Combinational nodes must reference strictly earlier nodes (the
    /// builder's append order); only register next-state and memory write
    /// ports may point forward. Returns a descriptive error instead of
    /// panicking on malformed input, then runs the full
    /// [`Module::validate`] pass on the accepted result.
    #[allow(clippy::result_large_err)]
    pub fn from_parts(
        name: String,
        nodes: Vec<Node>,
        inputs: Vec<Port>,
        outputs: Vec<OutputPort>,
        regs: Vec<Register>,
        mems: Vec<Memory>,
        transactions: Vec<Transaction>,
    ) -> Result<Module, String> {
        let mut widths: Vec<u32> = Vec::with_capacity(nodes.len());
        let width_of = |widths: &[u32], id: NodeId, i: usize| -> Result<u32, String> {
            widths
                .get(id.index())
                .copied()
                .ok_or_else(|| format!("node n{i}: forward or dangling reference n{}", id.index()))
        };
        for (i, node) in nodes.iter().enumerate() {
            let w = match node {
                Node::Input { port } => inputs
                    .get(*port)
                    .map(|p| p.width)
                    .ok_or_else(|| format!("node n{i}: bad input port {port}"))?,
                Node::Const(v) => v.width(),
                Node::Not(a) => width_of(&widths, *a, i)?,
                Node::Binary { op, a, b } => {
                    let (wa, wb) = (width_of(&widths, *a, i)?, width_of(&widths, *b, i)?);
                    match op {
                        BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Add | BinOp::Sub => {
                            if wa != wb {
                                return Err(format!("node n{i}: {op:?} width {wa} vs {wb}"));
                            }
                            wa
                        }
                        BinOp::Eq | BinOp::Ult => {
                            if wa != wb {
                                return Err(format!("node n{i}: {op:?} width {wa} vs {wb}"));
                            }
                            1
                        }
                        BinOp::Shl | BinOp::Shr => wa,
                    }
                }
                Node::Mux { sel, t, e } => {
                    let ws = width_of(&widths, *sel, i)?;
                    let (wt, we) = (width_of(&widths, *t, i)?, width_of(&widths, *e, i)?);
                    if ws != 1 {
                        return Err(format!("node n{i}: mux select is {ws} bits"));
                    }
                    if wt != we {
                        return Err(format!("node n{i}: mux arm width {wt} vs {we}"));
                    }
                    wt
                }
                Node::Slice { a, hi, lo } => {
                    let w = width_of(&widths, *a, i)?;
                    if !(hi >= lo && *hi < w) {
                        return Err(format!("node n{i}: bad slice [{hi}:{lo}] of width {w}"));
                    }
                    hi - lo + 1
                }
                Node::Concat { hi, lo } => {
                    let w = width_of(&widths, *hi, i)? + width_of(&widths, *lo, i)?;
                    if w > 64 {
                        return Err(format!("node n{i}: concat width {w} exceeds 64"));
                    }
                    w
                }
                Node::Zext { a, width } | Node::Sext { a, width } => {
                    let w = width_of(&widths, *a, i)?;
                    if *width < w {
                        return Err(format!("node n{i}: extension target {width} below {w}"));
                    }
                    *width
                }
                Node::ReduceOr(a) | Node::ReduceAnd(a) | Node::ReduceXor(a) => {
                    width_of(&widths, *a, i)?;
                    1
                }
                Node::RegOut(r) => regs
                    .get(r.index())
                    .map(|reg| reg.width)
                    .ok_or_else(|| format!("node n{i}: bad register r{}", r.index()))?,
                Node::MemRead { mem, addr } => {
                    width_of(&widths, *addr, i)?;
                    mems.get(mem.index())
                        .map(|m| m.width)
                        .ok_or_else(|| format!("node n{i}: bad memory m{}", mem.index()))?
                }
            };
            if !(1..=64).contains(&w) {
                return Err(format!("node n{i}: width {w} out of range"));
            }
            widths.push(w);
        }
        let module = Module {
            name,
            nodes,
            widths,
            inputs,
            outputs,
            regs,
            mems,
            transactions,
        };
        let checked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            module.validate();
            module
        }));
        checked.map_err(|payload| {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "module validation failed".to_string());
            format!("invalid module: {msg}")
        })
    }
}
