//! # autocc-hdl
//!
//! Word-level netlist infrastructure for the AutoCC reproduction
//! (Orenes-Vera et al., MICRO 2023): a register-transfer-level
//! intermediate representation, a hardware-construction DSL, a
//! cycle-accurate interpreter, and VCD waveform output.
//!
//! In the paper, designs under test (DUTs) are SystemVerilog projects and
//! interface metadata is recovered by parsing RTL with AutoSVA. Here, DUTs
//! are built programmatically with [`ModuleBuilder`], which records the
//! same metadata (ports, valid/payload transactions, `common` signals) as
//! the design is constructed — so the AutoCC testbench generator in
//! `autocc-core` still needs nothing beyond a handle to the [`Module`].
//!
//! ## Layers
//!
//! * [`Bv`] — fixed-width bit-vector values with RTL semantics.
//! * [`Module`]/[`Node`] — a flat, acyclic word-level netlist with
//!   registers and word-addressed memories as the only sequential state.
//! * [`ModuleBuilder`] — width-checked construction DSL with hierarchy
//!   (child modules are *instantiated*, flattening into the parent) and
//!   blackboxing (Sec. 3.4 of the paper).
//! * [`Sim`] — cycle-accurate interpreter used for system-level exploit
//!   simulation and for replay-validating model-checker traces.
//! * [`Waveform`] — trace capture with VCD and ASCII rendering.
//!
//! ## Example
//!
//! ```
//! use autocc_hdl::{Bv, ModuleBuilder, Sim};
//!
//! // A 4-bit accumulator with an enable.
//! let mut b = ModuleBuilder::new("acc");
//! let en = b.input("en", 1);
//! let d = b.input("d", 4);
//! let acc = b.reg("acc", 4, Bv::zero(4));
//! let sum = b.add(acc, d);
//! let next = b.mux(en, sum, acc);
//! b.set_next(acc, next);
//! b.output("q", acc);
//! let m = b.build();
//!
//! let mut sim = Sim::new(&m);
//! sim.set_input("en", Bv::bit(true));
//! sim.set_input("d", Bv::new(4, 3));
//! sim.step();
//! sim.step();
//! assert_eq!(sim.output("q").value(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod bv;
mod ir;
mod sim;
mod vcd;
mod verilog;

pub use builder::{Instance, ModuleBuilder};
pub use bv::{Bv, MAX_WIDTH};
pub use ir::{
    BinOp, Direction, MemId, Memory, Module, Node, NodeId, OutputPort, Port, RegId, Register,
    Transaction, WritePort,
};
pub use sim::Sim;
pub use vcd::Waveform;
pub use verilog::to_verilog;
