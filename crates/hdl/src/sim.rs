//! Cycle-accurate netlist interpreter.
//!
//! [`Sim`] evaluates a [`Module`] one clock cycle at a time. It serves three
//! roles in the AutoCC flow: system-level simulation of exploits (the
//! paper's VCS runs), replay-validation of BMC counterexample traces, and
//! differential testing of the CNF encoder.

use crate::bv::Bv;
use crate::ir::{BinOp, MemId, Module, Node, NodeId, RegId};

/// Interpreter state for one module instance.
///
/// # Examples
///
/// ```
/// use autocc_hdl::{Bv, ModuleBuilder, Sim};
///
/// let mut b = ModuleBuilder::new("counter");
/// let en = b.input("en", 1);
/// let c = b.reg("count", 8, Bv::zero(8));
/// let one = b.lit(8, 1);
/// let inc = b.add(c, one);
/// let next = b.mux(en, inc, c);
/// b.set_next(c, next);
/// b.output("value", c);
/// let m = b.build();
///
/// let mut sim = Sim::new(&m);
/// sim.set_input("en", Bv::new(1, 1));
/// sim.step();
/// sim.step();
/// assert_eq!(sim.output("value").value(), 2);
/// ```
pub struct Sim<'m> {
    module: &'m Module,
    regs: Vec<Bv>,
    mems: Vec<Vec<Bv>>,
    inputs: Vec<Bv>,
    nodes: Vec<Bv>,
    /// Set when `nodes` reflects current `regs`/`mems`/`inputs`.
    evaluated: bool,
    cycle: u64,
}

impl<'m> Sim<'m> {
    /// Creates a simulator with all state at its reset values.
    pub fn new(module: &'m Module) -> Sim<'m> {
        let regs = module.regs().iter().map(|r| r.init).collect();
        let mems = module.mems().iter().map(|m| m.init.clone()).collect();
        let inputs = module.inputs().iter().map(|p| Bv::zero(p.width)).collect();
        let nodes = vec![Bv::zero(1); module.num_nodes()];
        Sim {
            module,
            regs,
            mems,
            inputs,
            nodes,
            evaluated: false,
            cycle: 0,
        }
    }

    /// The module being simulated.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Number of completed clock cycles.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Resets all state to initial values.
    pub fn reset(&mut self) {
        for (v, r) in self.regs.iter_mut().zip(self.module.regs()) {
            *v = r.init;
        }
        for (v, m) in self.mems.iter_mut().zip(self.module.mems()) {
            v.clone_from(&m.init);
        }
        self.cycle = 0;
        self.evaluated = false;
    }

    /// Drives input port `name` for the upcoming cycle(s).
    ///
    /// # Panics
    ///
    /// Panics on an unknown port or width mismatch.
    pub fn set_input(&mut self, name: &str, value: Bv) {
        let idx = self
            .module
            .input_index(name)
            .unwrap_or_else(|| panic!("unknown input {name}"));
        assert_eq!(
            value.width(),
            self.module.inputs()[idx].width,
            "input {name}: width mismatch"
        );
        self.inputs[idx] = value;
        self.evaluated = false;
    }

    /// Drives input port by index (used by trace replay).
    pub fn set_input_index(&mut self, idx: usize, value: Bv) {
        assert_eq!(
            value.width(),
            self.module.inputs()[idx].width,
            "input #{idx}: width mismatch"
        );
        self.inputs[idx] = value;
        self.evaluated = false;
    }

    /// Evaluates all combinational nodes for the current state and inputs
    /// without advancing the clock.
    pub fn eval(&mut self) {
        for i in 0..self.module.nodes().len() {
            self.nodes[i] = self.eval_node(&self.module.nodes()[i]);
        }
        self.evaluated = true;
    }

    fn eval_node(&self, node: &Node) -> Bv {
        match node {
            Node::Input { port } => self.inputs[*port],
            Node::Const(bv) => *bv,
            Node::Not(a) => self.nodes[a.index()].not(),
            Node::Binary { op, a, b } => {
                let (x, y) = (self.nodes[a.index()], self.nodes[b.index()]);
                match op {
                    BinOp::And => x.and(y),
                    BinOp::Or => x.or(y),
                    BinOp::Xor => x.xor(y),
                    BinOp::Add => x.add(y),
                    BinOp::Sub => x.sub(y),
                    BinOp::Eq => x.eq_bv(y),
                    BinOp::Ult => x.ult(y),
                    BinOp::Shl => x.shl(y),
                    BinOp::Shr => x.shr(y),
                }
            }
            Node::Mux { sel, t, e } => {
                if self.nodes[sel.index()].as_bool() {
                    self.nodes[t.index()]
                } else {
                    self.nodes[e.index()]
                }
            }
            Node::Slice { a, hi, lo } => self.nodes[a.index()].slice(*hi, *lo),
            Node::Concat { hi, lo } => self.nodes[hi.index()].concat(self.nodes[lo.index()]),
            Node::Zext { a, width } => self.nodes[a.index()].zext(*width),
            Node::Sext { a, width } => self.nodes[a.index()].sext(*width),
            Node::ReduceOr(a) => self.nodes[a.index()].reduce_or(),
            Node::ReduceAnd(a) => self.nodes[a.index()].reduce_and(),
            Node::ReduceXor(a) => self.nodes[a.index()].reduce_xor(),
            Node::RegOut(r) => self.regs[r.index()],
            Node::MemRead { mem, addr } => {
                let m = &self.mems[mem.index()];
                let a = self.nodes[addr.index()].value() as usize;
                // Out-of-range reads return zero, matching the bit-blasted
                // mux-tree semantics in `autocc-aig`.
                m.get(a)
                    .copied()
                    .unwrap_or_else(|| Bv::zero(self.module.mems()[mem.index()].width))
            }
        }
    }

    /// Advances one clock cycle: evaluates combinational logic, then commits
    /// register next-states and memory writes.
    pub fn step(&mut self) {
        self.eval();
        let new_regs: Vec<Bv> = self
            .module
            .regs()
            .iter()
            .map(|r| self.nodes[r.next.expect("validated module").index()])
            .collect();
        for (mi, m) in self.module.mems().iter().enumerate() {
            for w in &m.writes {
                if self.nodes[w.en.index()].as_bool() {
                    let addr = self.nodes[w.addr.index()].value() as usize;
                    if addr < m.depth {
                        self.mems[mi][addr] = self.nodes[w.data.index()];
                    }
                }
            }
        }
        self.regs = new_regs;
        self.cycle += 1;
        self.evaluated = false;
    }

    /// Value of a node after the most recent [`Sim::eval`]/[`Sim::step`].
    /// Evaluates lazily if inputs or state changed since.
    pub fn node(&mut self, id: NodeId) -> Bv {
        if !self.evaluated {
            self.eval();
        }
        self.nodes[id.index()]
    }

    /// Value of output port `name` for the current state and inputs.
    ///
    /// # Panics
    ///
    /// Panics on an unknown output.
    pub fn output(&mut self, name: &str) -> Bv {
        let node = self
            .module
            .output_node(name)
            .unwrap_or_else(|| panic!("unknown output {name}"));
        self.node(node)
    }

    /// Current (pre-edge) value of a register.
    pub fn reg(&self, id: RegId) -> Bv {
        self.regs[id.index()]
    }

    /// Current value of register `name`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown register.
    pub fn reg_by_name(&self, name: &str) -> Bv {
        let id = self
            .module
            .find_reg(name)
            .unwrap_or_else(|| panic!("unknown register {name}"));
        self.reg(id)
    }

    /// Overwrites a register value (for directed tests and trace replay).
    pub fn set_reg(&mut self, id: RegId, value: Bv) {
        assert_eq!(
            value.width(),
            self.module.regs()[id.index()].width,
            "set_reg width mismatch"
        );
        self.regs[id.index()] = value;
        self.evaluated = false;
    }

    /// Current contents of a memory word.
    pub fn mem_word(&self, id: MemId, index: usize) -> Bv {
        self.mems[id.index()][index]
    }

    /// Overwrites a memory word (for directed tests).
    pub fn set_mem_word(&mut self, id: MemId, index: usize, value: Bv) {
        assert_eq!(
            value.width(),
            self.module.mems()[id.index()].width,
            "set_mem_word width mismatch"
        );
        self.mems[id.index()][index] = value;
        self.evaluated = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn counter_counts_and_resets() {
        let mut b = ModuleBuilder::new("counter");
        let en = b.input("en", 1);
        let c = b.reg("count", 8, Bv::zero(8));
        let one = b.lit(8, 1);
        let inc = b.add(c, one);
        let next = b.mux(en, inc, c);
        b.set_next(c, next);
        b.output("value", c);
        let m = b.build();

        let mut sim = Sim::new(&m);
        sim.set_input("en", Bv::bit(true));
        for _ in 0..5 {
            sim.step();
        }
        assert_eq!(sim.output("value").value(), 5);
        sim.set_input("en", Bv::bit(false));
        sim.step();
        assert_eq!(sim.output("value").value(), 5);
        sim.reset();
        assert_eq!(sim.output("value").value(), 0);
        assert_eq!(sim.cycle(), 0);
    }

    #[test]
    fn memory_write_then_read() {
        let mut b = ModuleBuilder::new("ram");
        let we = b.input("we", 1);
        let addr = b.input("addr", 2);
        let data = b.input("data", 8);
        let mem = b.mem("ram", 4, 8);
        b.mem_write(mem, we, addr, data);
        let rd = b.mem_read(mem, addr);
        b.output("q", rd);
        let m = b.build();

        let mut sim = Sim::new(&m);
        sim.set_input("we", Bv::bit(true));
        sim.set_input("addr", Bv::new(2, 2));
        sim.set_input("data", Bv::new(8, 0xab));
        // Asynchronous read sees the pre-write value this cycle.
        assert_eq!(sim.output("q").value(), 0);
        sim.step();
        sim.set_input("we", Bv::bit(false));
        assert_eq!(sim.output("q").value(), 0xab);
        assert_eq!(sim.mem_word(mem, 2).value(), 0xab);
    }

    #[test]
    fn write_port_priority_later_wins() {
        let mut b = ModuleBuilder::new("dual");
        let addr = b.input("addr", 1);
        let d0 = b.input("d0", 4);
        let d1 = b.input("d1", 4);
        let en = b.lit(1, 1);
        let mem = b.mem("m", 2, 4);
        b.mem_write(mem, en, addr, d0);
        b.mem_write(mem, en, addr, d1);
        let rd = b.mem_read(mem, addr);
        b.output("q", rd);
        let m = b.build();

        let mut sim = Sim::new(&m);
        sim.set_input("addr", Bv::new(1, 0));
        sim.set_input("d0", Bv::new(4, 3));
        sim.set_input("d1", Bv::new(4, 9));
        sim.step();
        assert_eq!(sim.mem_word(mem, 0).value(), 9);
    }

    #[test]
    fn instantiated_children_run_independently() {
        use std::collections::HashMap;
        let mut cb = ModuleBuilder::new("counter");
        let en = cb.input("en", 1);
        let c = cb.reg("count", 8, Bv::zero(8));
        let one = cb.lit(8, 1);
        let inc = cb.add(c, one);
        let next = cb.mux(en, inc, c);
        cb.set_next(c, next);
        cb.output("value", c);
        let child = cb.build();

        let mut b = ModuleBuilder::new("pair");
        let e0 = b.input("e0", 1);
        let e1 = b.input("e1", 1);
        let mut w0 = HashMap::new();
        w0.insert("en".to_string(), e0);
        let mut w1 = HashMap::new();
        w1.insert("en".to_string(), e1);
        let i0 = b.instantiate(&child, "u0", &w0);
        let i1 = b.instantiate(&child, "u1", &w1);
        b.output("v0", i0.outputs["value"]);
        b.output("v1", i1.outputs["value"]);
        let m = b.build();

        let mut sim = Sim::new(&m);
        sim.set_input("e0", Bv::bit(true));
        sim.set_input("e1", Bv::bit(false));
        for _ in 0..3 {
            sim.step();
        }
        assert_eq!(sim.output("v0").value(), 3);
        assert_eq!(sim.output("v1").value(), 0);
    }
}
