//! Waveform capture and VCD (Value Change Dump) emission.
//!
//! Counterexample traces from the model checker and simulation runs can be
//! captured into a [`Waveform`] and written as standard VCD for inspection
//! in any waveform viewer — the equivalent of the JasperGold waveform
//! window used throughout the paper's evaluation.

use crate::bv::Bv;
use std::fmt::Write as _;

/// A named signal captured over time.
#[derive(Clone, Debug)]
struct Signal {
    name: String,
    width: u32,
    values: Vec<Bv>,
}

/// A multi-signal waveform sampled once per clock cycle.
#[derive(Clone, Debug, Default)]
pub struct Waveform {
    signals: Vec<Signal>,
    cycles: usize,
}

impl Waveform {
    /// Creates an empty waveform.
    pub fn new() -> Waveform {
        Waveform::default()
    }

    /// Number of sampled cycles.
    pub fn cycles(&self) -> usize {
        self.cycles
    }

    /// Number of captured signals.
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// Registers a signal. All signals must be added before sampling.
    ///
    /// # Panics
    ///
    /// Panics if sampling has started or the name is duplicated.
    pub fn add_signal(&mut self, name: impl Into<String>, width: u32) -> usize {
        assert_eq!(self.cycles, 0, "cannot add signals after sampling started");
        let name = name.into();
        assert!(
            !self.signals.iter().any(|s| s.name == name),
            "duplicate signal {name}"
        );
        self.signals.push(Signal {
            name,
            width,
            values: Vec::new(),
        });
        self.signals.len() - 1
    }

    /// Appends one cycle of samples, in signal registration order.
    ///
    /// # Panics
    ///
    /// Panics if the sample count or any width does not match.
    pub fn sample(&mut self, values: &[Bv]) {
        assert_eq!(values.len(), self.signals.len(), "sample count mismatch");
        for (s, v) in self.signals.iter_mut().zip(values) {
            assert_eq!(
                v.width(),
                s.width,
                "signal {}: sample width mismatch",
                s.name
            );
            s.values.push(*v);
        }
        self.cycles += 1;
    }

    /// Value of signal `index` at `cycle`.
    pub fn value(&self, index: usize, cycle: usize) -> Bv {
        self.signals[index].values[cycle]
    }

    /// Looks up a signal index by name.
    pub fn signal_index(&self, name: &str) -> Option<usize> {
        self.signals.iter().position(|s| s.name == name)
    }

    /// Iterates over `(name, width)` pairs.
    pub fn signal_names(&self) -> impl Iterator<Item = (&str, u32)> {
        self.signals.iter().map(|s| (s.name.as_str(), s.width))
    }

    /// Renders the waveform as VCD text with one timestep per cycle.
    pub fn to_vcd(&self, top: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date AutoCC trace $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {top} $end");
        for (i, s) in self.signals.iter().enumerate() {
            let id = vcd_id(i);
            let safe = s.name.replace([' ', '.'], "_");
            let _ = writeln!(out, "$var wire {} {} {} $end", s.width, id, safe);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        for t in 0..self.cycles {
            let _ = writeln!(out, "#{t}");
            for (i, s) in self.signals.iter().enumerate() {
                let v = s.values[t];
                // Emit only changes after the first sample.
                if t > 0 && s.values[t - 1] == v {
                    continue;
                }
                let id = vcd_id(i);
                if s.width == 1 {
                    let _ = writeln!(out, "{}{}", v.value(), id);
                } else {
                    let _ = writeln!(out, "b{:b} {}", v.value(), id);
                }
            }
        }
        let _ = writeln!(out, "#{}", self.cycles);
        out
    }

    /// Renders an ASCII table of the waveform (for terminal reports).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let name_w = self
            .signals
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        let _ = write!(out, "{:name_w$} |", "cycle");
        for t in 0..self.cycles {
            let _ = write!(out, " {t:>4}");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(name_w + 2 + 5 * self.cycles));
        for s in &self.signals {
            let _ = write!(out, "{:name_w$} |", s.name);
            for v in &s.values {
                let _ = write!(out, " {:>4x}", v.value());
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Generates a short printable VCD identifier for signal `i`.
fn vcd_id(mut i: usize) -> String {
    // Identifiers use printable ASCII 33..=126.
    let mut id = String::new();
    loop {
        id.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_and_emit() {
        let mut w = Waveform::new();
        let a = w.add_signal("clk_count", 4);
        let b = w.add_signal("valid", 1);
        assert_eq!((a, b), (0, 1));
        w.sample(&[Bv::new(4, 1), Bv::bit(false)]);
        w.sample(&[Bv::new(4, 2), Bv::bit(true)]);
        w.sample(&[Bv::new(4, 2), Bv::bit(true)]);
        assert_eq!(w.cycles(), 3);
        assert_eq!(w.value(0, 1).value(), 2);

        let vcd = w.to_vcd("dut");
        assert!(vcd.contains("$var wire 4"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#2"));
        // Unchanged values are not re-emitted at #2.
        let after_t2 = vcd.split("#2").nth(1).unwrap();
        assert!(!after_t2.contains("b10 "));

        let table = w.to_table();
        assert!(table.contains("clk_count"));
    }

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let id = vcd_id(i);
            assert!(id.chars().all(|c| (33..=126).contains(&(c as u32))));
            assert!(seen.insert(id));
        }
    }

    #[test]
    #[should_panic(expected = "sample count mismatch")]
    fn wrong_sample_arity_panics() {
        let mut w = Waveform::new();
        w.add_signal("a", 1);
        w.sample(&[]);
    }
}
