//! Property tests of the bit-vector value type against plain `u64`
//! reference semantics and algebraic laws.

use autocc_hdl::Bv;
use proptest::prelude::*;

fn arb_bv() -> impl Strategy<Value = Bv> {
    (1u32..=64, any::<u64>()).prop_map(|(w, v)| Bv::masked(w, v))
}

fn arb_pair() -> impl Strategy<Value = (Bv, Bv)> {
    (1u32..=64, any::<u64>(), any::<u64>())
        .prop_map(|(w, a, b)| (Bv::masked(w, a), Bv::masked(w, b)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn masked_always_fits((w, v) in (1u32..=64, any::<u64>())) {
        let bv = Bv::masked(w, v);
        prop_assert_eq!(bv.value() & Bv::mask(w), bv.value());
        prop_assert_eq!(bv.value(), v & Bv::mask(w));
    }

    #[test]
    fn add_matches_wrapping_u64((a, b) in arb_pair()) {
        let w = a.width();
        prop_assert_eq!(a.add(b).value(), a.value().wrapping_add(b.value()) & Bv::mask(w));
    }

    #[test]
    fn sub_is_inverse_of_add((a, b) in arb_pair()) {
        prop_assert_eq!(a.add(b).sub(b), a);
        prop_assert_eq!(a.sub(b).add(b), a);
    }

    #[test]
    fn bitwise_de_morgan((a, b) in arb_pair()) {
        prop_assert_eq!(a.and(b).not(), a.not().or(b.not()));
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }

    #[test]
    fn xor_is_add_without_carry_on_1bit(a in any::<bool>(), b in any::<bool>()) {
        let (x, y) = (Bv::bit(a), Bv::bit(b));
        prop_assert_eq!(x.xor(y), x.add(y));
    }

    #[test]
    fn shifts_match_u64(a in arb_bv(), amount in 0u64..80) {
        let w = a.width();
        let sh = Bv::masked(7, amount);
        let expect_l = if amount >= u64::from(w) { 0 } else { (a.value() << amount) & Bv::mask(w) };
        let expect_r = if amount >= u64::from(w) { 0 } else { a.value() >> amount };
        prop_assert_eq!(a.shl(sh).value(), expect_l);
        prop_assert_eq!(a.shr(sh).value(), expect_r);
    }

    #[test]
    fn slice_concat_round_trip(a in arb_bv(), split in 0u32..63) {
        let w = a.width();
        prop_assume!(w >= 2);
        let mid = split % (w - 1); // 0..w-2: lo part is [mid:0]
        let lo = a.slice(mid, 0);
        let hi = a.slice(w - 1, mid + 1);
        prop_assert_eq!(hi.concat(lo), a);
    }

    #[test]
    fn sext_preserves_signed_value(a in arb_bv(), extra in 0u32..8) {
        let w = a.width();
        prop_assume!(w + extra <= 64);
        let target = w + extra;
        let extended = a.sext(target);
        // Interpret both as signed and compare.
        let sign = |bv: Bv| -> i64 {
            let v = bv.value();
            let wb = bv.width();
            if wb == 64 {
                v as i64
            } else if v >> (wb - 1) & 1 == 1 {
                (v | !Bv::mask(wb)) as i64
            } else {
                v as i64
            }
        };
        prop_assert_eq!(sign(extended), sign(a));
    }

    #[test]
    fn reductions_match_popcount(a in arb_bv()) {
        prop_assert_eq!(a.reduce_or().as_bool(), a.value() != 0);
        prop_assert_eq!(a.reduce_and().as_bool(), a.value() == Bv::mask(a.width()));
        prop_assert_eq!(a.reduce_xor().as_bool(), a.value().count_ones() % 2 == 1);
    }

    #[test]
    fn comparisons_match_u64((a, b) in arb_pair()) {
        prop_assert_eq!(a.ult(b).as_bool(), a.value() < b.value());
        prop_assert_eq!(a.eq_bv(b).as_bool(), a.value() == b.value());
    }
}
