//! Property tests: random combinational expression trees built through the
//! `ModuleBuilder` DSL must evaluate exactly like the reference `Bv`
//! semantics, across random inputs and multiple cycles of state.

use autocc_hdl::{Bv, Module, ModuleBuilder, NodeId, Sim};
use proptest::prelude::*;

/// A serialisable expression-tree description.
#[derive(Clone, Debug)]
enum Expr {
    Input(usize),
    Const(u64),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
    Shl(Box<Expr>, Box<Expr>),
    Shr(Box<Expr>, Box<Expr>),
}

const WIDTH: u32 = 8;
const NUM_INPUTS: usize = 3;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0..NUM_INPUTS).prop_map(Expr::Input),
        (0u64..256).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(s, t, e)| Expr::Mux(
                Box::new(s),
                Box::new(t),
                Box::new(e)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Shl(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Shr(Box::new(a), Box::new(b))),
        ]
    })
}

fn build(expr: &Expr, b: &mut ModuleBuilder, inputs: &[NodeId]) -> NodeId {
    match expr {
        Expr::Input(i) => inputs[*i],
        Expr::Const(v) => b.lit(WIDTH, v & Bv::mask(WIDTH)),
        Expr::Not(a) => {
            let a = build(a, b, inputs);
            b.not(a)
        }
        Expr::And(a, c) => {
            let (a, c) = (build(a, b, inputs), build(c, b, inputs));
            b.and(a, c)
        }
        Expr::Or(a, c) => {
            let (a, c) = (build(a, b, inputs), build(c, b, inputs));
            b.or(a, c)
        }
        Expr::Xor(a, c) => {
            let (a, c) = (build(a, b, inputs), build(c, b, inputs));
            b.xor(a, c)
        }
        Expr::Add(a, c) => {
            let (a, c) = (build(a, b, inputs), build(c, b, inputs));
            b.add(a, c)
        }
        Expr::Sub(a, c) => {
            let (a, c) = (build(a, b, inputs), build(c, b, inputs));
            b.sub(a, c)
        }
        Expr::Mux(s, t, e) => {
            let s = build(s, b, inputs);
            let sel = b.reduce_or(s);
            let (t, e) = (build(t, b, inputs), build(e, b, inputs));
            b.mux(sel, t, e)
        }
        Expr::Shl(a, c) => {
            let (a, c) = (build(a, b, inputs), build(c, b, inputs));
            b.shl(a, c)
        }
        Expr::Shr(a, c) => {
            let (a, c) = (build(a, b, inputs), build(c, b, inputs));
            b.shr(a, c)
        }
    }
}

fn eval(expr: &Expr, values: &[Bv]) -> Bv {
    match expr {
        Expr::Input(i) => values[*i],
        Expr::Const(v) => Bv::masked(WIDTH, *v),
        Expr::Not(a) => eval(a, values).not(),
        Expr::And(a, b) => eval(a, values).and(eval(b, values)),
        Expr::Or(a, b) => eval(a, values).or(eval(b, values)),
        Expr::Xor(a, b) => eval(a, values).xor(eval(b, values)),
        Expr::Add(a, b) => eval(a, values).add(eval(b, values)),
        Expr::Sub(a, b) => eval(a, values).sub(eval(b, values)),
        Expr::Mux(s, t, e) => {
            if eval(s, values).as_bool() {
                eval(t, values)
            } else {
                eval(e, values)
            }
        }
        Expr::Shl(a, b) => eval(a, values).shl(eval(b, values)),
        Expr::Shr(a, b) => eval(a, values).shr(eval(b, values)),
    }
}

fn module_for(expr: &Expr) -> Module {
    let mut b = ModuleBuilder::new("expr");
    let inputs: Vec<NodeId> = (0..NUM_INPUTS)
        .map(|i| b.input(&format!("in{i}"), WIDTH))
        .collect();
    let out = build(expr, &mut b, &inputs);
    // Also register the expression's value to check state commit paths.
    let reg = b.reg("latched", WIDTH, Bv::zero(WIDTH));
    b.set_next(reg, out);
    b.output("comb", out);
    b.output("latched", reg);
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The DSL-built netlist computes the reference semantics,
    /// combinationally and through a register.
    #[test]
    fn dsl_matches_reference(expr in arb_expr(), cycles in proptest::collection::vec(
        proptest::array::uniform3(0u64..256), 1..6)) {
        let m = module_for(&expr);
        let mut sim = Sim::new(&m);
        let mut prev: Option<Bv> = None;
        for cycle in &cycles {
            let values: Vec<Bv> = cycle.iter().map(|&v| Bv::masked(WIDTH, v)).collect();
            for (i, v) in values.iter().enumerate() {
                sim.set_input(&format!("in{i}"), *v);
            }
            let expected = eval(&expr, &values);
            prop_assert_eq!(sim.output("comb"), expected, "combinational");
            if let Some(p) = prev {
                prop_assert_eq!(sim.output("latched"), p, "registered");
            }
            sim.step();
            prev = Some(expected);
        }
    }

    /// Instantiating the expression module twice gives two independent
    /// copies — the foundation the AutoCC miter relies on.
    #[test]
    fn instantiation_isolates_universes(expr in arb_expr(),
        a_vals in proptest::array::uniform3(0u64..256),
        b_vals in proptest::array::uniform3(0u64..256)) {
        use std::collections::HashMap;
        let child = module_for(&expr);
        let mut b = ModuleBuilder::new("pair");
        let mut wires_a = HashMap::new();
        let mut wires_b = HashMap::new();
        for i in 0..NUM_INPUTS {
            wires_a.insert(format!("in{i}"), b.input(&format!("a{i}"), WIDTH));
            wires_b.insert(format!("in{i}"), b.input(&format!("b{i}"), WIDTH));
        }
        let ia = b.instantiate(&child, "ua", &wires_a);
        let ib = b.instantiate(&child, "ub", &wires_b);
        b.output("qa", ia.outputs["comb"]);
        b.output("qb", ib.outputs["comb"]);
        let m = b.build();

        let mut sim = Sim::new(&m);
        for i in 0..NUM_INPUTS {
            sim.set_input(&format!("a{i}"), Bv::masked(WIDTH, a_vals[i]));
            sim.set_input(&format!("b{i}"), Bv::masked(WIDTH, b_vals[i]));
        }
        let va: Vec<Bv> = a_vals.iter().map(|&v| Bv::masked(WIDTH, v)).collect();
        let vb: Vec<Bv> = b_vals.iter().map(|&v| Bv::masked(WIDTH, v)).collect();
        prop_assert_eq!(sim.output("qa"), eval(&expr, &va));
        prop_assert_eq!(sim.output("qb"), eval(&expr, &vb));
    }
}
