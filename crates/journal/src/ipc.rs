//! Length-prefixed JSON IPC between a check supervisor and its worker
//! subprocess, plus the worker-side serve loop.
//!
//! The process-isolation layer runs one check attempt per worker
//! subprocess: the parent serializes the (COI-relevant) miter, the
//! property set, and the deterministic check budgets into a single
//! request frame on the worker's stdin; the worker streams heartbeat
//! frames (liveness + RSS) on stdout while it solves and finishes with
//! exactly one result frame. Everything rides on the journal's
//! hand-rolled [`Json`] (u64-exact, no floats), reusing the same
//! outcome/trace/failure serde as the on-disk records so the wire format
//! and the journal cannot drift apart.
//!
//! ## Framing
//!
//! Each frame is `LLLLLLLL` (eight lowercase ASCII hex digits, the
//! payload byte length) followed by exactly that many bytes of compact
//! JSON. No delimiters, no escaping concerns, resynchronization is never
//! attempted: a malformed frame kills the stream, and the supervisor
//! treats a dead stream as a dead worker.
//!
//! ## Protocol
//!
//! ```text
//! parent -> worker   {"kind":"request", engine, config, module, properties, constraints}
//! worker -> parent   {"kind":"heartbeat","rss_kb":N}     (every heartbeat_ms)
//! worker -> parent   {"kind":"result", outcome, counters} (exactly once, last)
//! ```
//!
//! The worker never reads again after the request and the parent never
//! writes again, so neither side can deadlock on a full pipe. Budgets
//! (conflicts, wall clock, depth) are enforced *inside* the worker's
//! solver exactly as in-process; the parent additionally enforces the
//! RSS budget and heartbeat liveness from the outside, where a wedged or
//! dying worker cannot evade them.
//!
//! ## Remote transport
//!
//! The same frames ride TCP for the remote worker fleet (`autocc worker
//! --connect <addr>`). A remote connection is long-lived and multi-job,
//! so the wire grows four frames on top of the single-shot protocol:
//!
//! ```text
//! worker -> fleet   {"kind":"hello","proto":1,"worker":NAME}
//! fleet  -> worker  {"kind":"job","job":N,"lease_ms":M, ...request fields}
//! worker -> fleet   {"kind":"heartbeat","rss_kb":K,"job":N}
//! worker -> fleet   {"kind":"result","job":N, ...result fields}
//! fleet  -> worker  {"kind":"ack","job":N}
//! ```
//!
//! Every result and heartbeat is tagged with the job id it answers, so
//! the fleet supervisor can enforce at-most-once accounting: a job whose
//! lease expired is re-dispatched, and a late result from the original
//! worker is recognized (same id, stale assignment) and dropped instead
//! of double-reporting. TCP reads go through [`NetFrameReader`], which
//! enforces the frame-length ceiling *before* allocating and bounds
//! every read with a deadline so a stalled or half-open socket can never
//! wedge a supervisor thread.
//!
//! ## Fault injection
//!
//! The worker honours the `AUTOCC_WORKER_FAULT` environment variable so
//! the fault-injection suite can stage worker deaths deterministically:
//! `abort` (die before solving), `abort_if:<path>` (die once, removing
//! the flag file first), `sigkill` (SIGKILL self), `stall` (stop
//! heartbeating and hang), `rss:<kb>` (report an inflated RSS). Remote
//! workers add the network shapes: `net_drop_result` (write half a
//! result frame, then sever the connection), `net_dup_result` (send the
//! result frame twice), `net_slow:<ms>` (keep heartbeating but delay the
//! result — the lease-expiry shape). Real campaigns never set it.

use crate::json::Json;
use crate::record::{
    counters_json, failure_json, field, hex16, parse_cause, parse_counters, parse_failure,
    parse_trace, str_field, trace_json, u64_field, usize_field,
};
use autocc_bmc::{
    BmcEngine, CancelToken, CertificateStatus, CheckConfig, CheckEngine, CheckSpec, ContentKey,
    EngineOutcome, EngineRun, FailureReason, Falsifier, JobFailure, KInductionEngine,
};
use autocc_hdl::{
    BinOp, Bv, Direction, MemId, Memory, Module, Node, NodeId, OutputPort, Port, RegId, Register,
    Transaction, WritePort,
};
use std::io::{BufRead, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Hard ceiling on a single frame's payload (64 MiB). Real miters are
/// well under a megabyte; anything bigger is a corrupt length prefix.
/// Enforced on every transport *before* the payload buffer is allocated,
/// so a corrupt or hostile length prefix cannot trigger a giant
/// allocation.
pub const MAX_FRAME_BYTES: u64 = 64 << 20;

/// Remote wire-protocol version carried in the hello frame. A fleet
/// supervisor refuses workers speaking a different version rather than
/// guessing at frame semantics.
pub const WIRE_PROTO: u64 = 1;

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one frame: an 8-hex-digit byte length, then the compact JSON.
pub fn write_frame(out: &mut dyn Write, payload: &Json) -> std::io::Result<()> {
    let body = payload.to_string_compact();
    write!(out, "{:08x}", body.len())?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

/// Reads one frame. `Ok(None)` is a clean end of stream (EOF exactly at
/// a frame boundary); a truncated or malformed frame is an error.
pub fn read_frame(input: &mut dyn BufRead) -> std::io::Result<Option<Json>> {
    let mut prefix = [0u8; 8];
    let mut filled = 0;
    while filled < prefix.len() {
        let n = input.read(&mut prefix[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(bad_data("truncated frame length prefix"));
        }
        filled += n;
    }
    let text = std::str::from_utf8(&prefix).map_err(|_| bad_data("non-ASCII length prefix"))?;
    let len = u64::from_str_radix(text, 16).map_err(|_| bad_data("non-hex length prefix"))?;
    if len > MAX_FRAME_BYTES {
        return Err(bad_data("frame length exceeds the 64 MiB ceiling"));
    }
    let mut body = vec![0u8; len as usize];
    input.read_exact(&mut body)?;
    let text = String::from_utf8(body).map_err(|_| bad_data("frame payload is not UTF-8"))?;
    Json::parse(&text).map(Some).map_err(|e| bad_data(&e))
}

fn bad_data(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

// ---------------------------------------------------------------------
// Deadline-bounded TCP framing
// ---------------------------------------------------------------------

/// Outcome of one bounded read poll on a TCP frame stream.
pub enum NetRead {
    /// A complete frame arrived.
    Frame(Json),
    /// The deadline elapsed with no complete frame; partial bytes (if
    /// any) stay buffered for the next poll, so polling is lossless.
    Timeout,
    /// The peer closed the connection cleanly, exactly at a frame
    /// boundary. A close mid-frame is an error instead.
    Eof,
}

/// Incremental frame reader over a [`TcpStream`] whose every read is
/// bounded by a caller-supplied deadline.
///
/// Two hardening guarantees, both load-bearing for the fleet supervisor:
///
/// * the declared frame length is validated against [`MAX_FRAME_BYTES`]
///   as soon as the 8-byte prefix is in, **before** any payload buffer
///   is allocated — a corrupt prefix costs a closed connection, not an
///   out-of-memory; and
/// * [`NetFrameReader::poll_frame`] never blocks past its `wait`
///   argument — a stalled, wedged, or half-open socket surfaces as
///   [`NetRead::Timeout`] ticks the caller can count against a lease or
///   heartbeat budget, never as a hung supervisor thread.
pub struct NetFrameReader {
    stream: TcpStream,
    pending: Vec<u8>,
}

impl NetFrameReader {
    /// Wraps a connected stream. The reader owns its (cloned) handle;
    /// writes go through a separate clone.
    pub fn new(stream: TcpStream) -> NetFrameReader {
        NetFrameReader {
            stream,
            pending: Vec::new(),
        }
    }

    /// Tries to parse one complete frame out of the buffered bytes.
    fn try_extract(&mut self) -> std::io::Result<Option<Json>> {
        if self.pending.len() < 8 {
            return Ok(None);
        }
        let text = std::str::from_utf8(&self.pending[..8])
            .map_err(|_| bad_data("non-ASCII length prefix"))?;
        let len = u64::from_str_radix(text, 16).map_err(|_| bad_data("non-hex length prefix"))?;
        if len > MAX_FRAME_BYTES {
            return Err(bad_data("frame length exceeds the 64 MiB ceiling"));
        }
        let total = 8 + len as usize;
        if self.pending.len() < total {
            return Ok(None);
        }
        let text = std::str::from_utf8(&self.pending[8..total])
            .map_err(|_| bad_data("frame payload is not UTF-8"))?;
        let json = Json::parse(text).map_err(|e| bad_data(&e))?;
        self.pending.drain(..total);
        Ok(Some(json))
    }

    /// Waits up to `wait` for one complete frame. Partial frames carry
    /// over between polls; a peer close mid-frame is an error.
    pub fn poll_frame(&mut self, wait: Duration) -> std::io::Result<NetRead> {
        let deadline = Instant::now() + wait;
        loop {
            if let Some(frame) = self.try_extract()? {
                return Ok(NetRead::Frame(frame));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(NetRead::Timeout);
            }
            // set_read_timeout(0) would mean "block forever"; the max(1ms)
            // costs at most one extra millisecond on the final poll.
            self.stream
                .set_read_timeout(Some((deadline - now).max(Duration::from_millis(1))))?;
            let mut buf = [0u8; 4096];
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    if self.pending.is_empty() {
                        return Ok(NetRead::Eof);
                    }
                    return Err(bad_data("connection closed mid-frame"));
                }
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Ok(NetRead::Timeout);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Reconnect backoff
// ---------------------------------------------------------------------

/// Exponential backoff with bounded, deterministic jitter for worker
/// reconnects.
///
/// The delay doubles from `base` up to `max`; each delay then gains a
/// jitter of up to 25%, derived by hashing the process id and attempt
/// counter (FNV-1a) so a fleet of workers restarted together does not
/// reconnect in lockstep, while any single worker's schedule stays
/// reproducible. No randomness source is consulted.
#[derive(Clone, Debug)]
pub struct Backoff {
    base: Duration,
    max: Duration,
    attempt: u32,
}

impl Backoff {
    /// A backoff schedule from `base` doubling up to `max`.
    pub fn new(base: Duration, max: Duration) -> Backoff {
        Backoff {
            base: base.max(Duration::from_millis(1)),
            max: max.max(base),
            attempt: 0,
        }
    }

    /// Number of delays handed out since the last [`Backoff::reset`].
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Returns the next delay and advances the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(20);
        self.attempt = self.attempt.saturating_add(1);
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX))
            .min(self.max);
        // Bounded jitter: up to a quarter of the current delay, keyed on
        // (pid, attempt) so concurrent workers spread out.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in std::process::id()
            .to_le_bytes()
            .into_iter()
            .chain(self.attempt.to_le_bytes())
        {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let quarter = (exp / 4).as_millis() as u64;
        let jitter = if quarter == 0 { 0 } else { h % quarter };
        (exp + Duration::from_millis(jitter)).min(self.max)
    }

    /// Restarts the schedule from `base` (after a successful connection).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

// ---------------------------------------------------------------------
// Module wire form
// ---------------------------------------------------------------------

fn bv_json(v: Bv) -> Json {
    Json::Arr(vec![Json::Num(u64::from(v.width())), Json::Num(v.value())])
}

fn parse_bv(v: &Json) -> Result<Bv, String> {
    let a = v.as_arr().ok_or("bv is not an array")?;
    match a {
        [w, val] => {
            let w = w.as_u64().ok_or("bv width is not a number")?;
            let val = val.as_u64().ok_or("bv value is not a number")?;
            if !(1..=64).contains(&w) {
                return Err(format!("bv width {w} out of range"));
            }
            Ok(Bv::new(w as u32, val))
        }
        _ => Err("bv is not a [width, value] pair".to_string()),
    }
}

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Eq => "eq",
        BinOp::Ult => "ult",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
    }
}

fn parse_binop(s: &str) -> Option<BinOp> {
    Some(match s {
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "eq" => BinOp::Eq,
        "ult" => BinOp::Ult,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return None,
    })
}

fn id(n: NodeId) -> Json {
    Json::Num(n.index() as u64)
}

fn node_json(node: &Node) -> Json {
    let tag = |t: &str| Json::Str(t.to_string());
    let n = |v: usize| Json::Num(v as u64);
    Json::Arr(match node {
        Node::Input { port } => vec![tag("in"), n(*port)],
        Node::Const(v) => vec![tag("const"), bv_json(*v)],
        Node::Not(a) => vec![tag("not"), id(*a)],
        Node::Binary { op, a, b } => vec![tag(binop_str(*op)), id(*a), id(*b)],
        Node::Mux { sel, t, e } => vec![tag("mux"), id(*sel), id(*t), id(*e)],
        Node::Slice { a, hi, lo } => vec![
            tag("slice"),
            id(*a),
            Json::Num(u64::from(*hi)),
            Json::Num(u64::from(*lo)),
        ],
        Node::Concat { hi, lo } => vec![tag("cat"), id(*hi), id(*lo)],
        Node::Zext { a, width } => vec![tag("zext"), id(*a), Json::Num(u64::from(*width))],
        Node::Sext { a, width } => vec![tag("sext"), id(*a), Json::Num(u64::from(*width))],
        Node::ReduceOr(a) => vec![tag("ror"), id(*a)],
        Node::ReduceAnd(a) => vec![tag("rand"), id(*a)],
        Node::ReduceXor(a) => vec![tag("rxor"), id(*a)],
        Node::RegOut(r) => vec![tag("reg"), n(r.index())],
        Node::MemRead { mem, addr } => vec![tag("mem"), n(mem.index()), id(*addr)],
    })
}

fn arr_num(a: &[Json], i: usize, what: &str) -> Result<u64, String> {
    a.get(i)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{what}: operand {i} is not a number"))
}

fn arr_id(a: &[Json], i: usize, what: &str) -> Result<NodeId, String> {
    Ok(NodeId::from_index(arr_num(a, i, what)? as usize))
}

fn parse_node(v: &Json) -> Result<Node, String> {
    let a = v.as_arr().ok_or("node is not an array")?;
    let tag = a
        .first()
        .and_then(Json::as_str)
        .ok_or("node has no string tag")?;
    if let Some(op) = parse_binop(tag) {
        return Ok(Node::Binary {
            op,
            a: arr_id(a, 1, tag)?,
            b: arr_id(a, 2, tag)?,
        });
    }
    Ok(match tag {
        "in" => Node::Input {
            port: arr_num(a, 1, tag)? as usize,
        },
        "const" => Node::Const(parse_bv(a.get(1).ok_or("const without value")?)?),
        "not" => Node::Not(arr_id(a, 1, tag)?),
        "mux" => Node::Mux {
            sel: arr_id(a, 1, tag)?,
            t: arr_id(a, 2, tag)?,
            e: arr_id(a, 3, tag)?,
        },
        "slice" => Node::Slice {
            a: arr_id(a, 1, tag)?,
            hi: arr_num(a, 2, tag)? as u32,
            lo: arr_num(a, 3, tag)? as u32,
        },
        "cat" => Node::Concat {
            hi: arr_id(a, 1, tag)?,
            lo: arr_id(a, 2, tag)?,
        },
        "zext" => Node::Zext {
            a: arr_id(a, 1, tag)?,
            width: arr_num(a, 2, tag)? as u32,
        },
        "sext" => Node::Sext {
            a: arr_id(a, 1, tag)?,
            width: arr_num(a, 2, tag)? as u32,
        },
        "ror" => Node::ReduceOr(arr_id(a, 1, tag)?),
        "rand" => Node::ReduceAnd(arr_id(a, 1, tag)?),
        "rxor" => Node::ReduceXor(arr_id(a, 1, tag)?),
        "reg" => Node::RegOut(RegId::from_index(arr_num(a, 1, tag)? as usize)),
        "mem" => Node::MemRead {
            mem: MemId::from_index(arr_num(a, 1, tag)? as usize),
            addr: arr_id(a, 2, tag)?,
        },
        other => return Err(format!("unknown node tag `{other}`")),
    })
}

/// Serializes a module for the wire. Node widths are *not* shipped: the
/// receiver recomputes them via [`Module::from_parts`], so a corrupted
/// width table cannot smuggle an ill-typed netlist across the boundary.
pub fn module_json(m: &Module) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(m.name().to_string())),
        (
            "nodes".to_string(),
            Json::Arr(m.nodes().iter().map(node_json).collect()),
        ),
        (
            "inputs".to_string(),
            Json::Arr(
                m.inputs()
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(p.name.clone())),
                            ("width".to_string(), Json::Num(u64::from(p.width))),
                            ("common".to_string(), Json::Bool(p.common)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "outputs".to_string(),
            Json::Arr(
                m.outputs()
                    .iter()
                    .map(|o| Json::Arr(vec![Json::Str(o.name.clone()), id(o.node)]))
                    .collect(),
            ),
        ),
        (
            "regs".to_string(),
            Json::Arr(
                m.regs()
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(r.name.clone())),
                            ("width".to_string(), Json::Num(u64::from(r.width))),
                            ("init".to_string(), bv_json(r.init)),
                            ("next".to_string(), r.next.map_or(Json::Null, id)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "mems".to_string(),
            Json::Arr(
                m.mems()
                    .iter()
                    .map(|mem| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(mem.name.clone())),
                            ("depth".to_string(), Json::Num(mem.depth as u64)),
                            ("width".to_string(), Json::Num(u64::from(mem.width))),
                            (
                                "init".to_string(),
                                Json::Arr(mem.init.iter().map(|v| bv_json(*v)).collect()),
                            ),
                            (
                                "writes".to_string(),
                                Json::Arr(
                                    mem.writes
                                        .iter()
                                        .map(|w| Json::Arr(vec![id(w.en), id(w.addr), id(w.data)]))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "transactions".to_string(),
            Json::Arr(
                m.transactions()
                    .iter()
                    .map(|t| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(t.name.clone())),
                            (
                                "dir".to_string(),
                                Json::Str(
                                    match t.direction {
                                        Direction::Input => "in",
                                        Direction::Output => "out",
                                    }
                                    .to_string(),
                                ),
                            ),
                            ("valid".to_string(), Json::Str(t.valid.clone())),
                            (
                                "payload".to_string(),
                                Json::Arr(t.payload.iter().map(|p| Json::Str(p.clone())).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Deserializes [`module_json`], recomputing and re-validating widths.
pub fn parse_module(v: &Json) -> Result<Module, String> {
    let list = |key: &str| -> Result<&[Json], String> {
        field(v, key)?
            .as_arr()
            .ok_or_else(|| format!("module {key} is not an array"))
    };
    let nodes = list("nodes")?
        .iter()
        .map(parse_node)
        .collect::<Result<Vec<_>, _>>()?;
    let inputs = list("inputs")?
        .iter()
        .map(|p| {
            Ok(Port {
                name: str_field(p, "name")?,
                width: u64_field(p, "width")? as u32,
                common: matches!(field(p, "common")?, Json::Bool(true)),
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let outputs = list("outputs")?
        .iter()
        .map(|o| match o.as_arr() {
            Some([name, node]) => Ok(OutputPort {
                name: name
                    .as_str()
                    .ok_or("output name is not a string")?
                    .to_string(),
                node: NodeId::from_index(
                    node.as_u64().ok_or("output node is not a number")? as usize
                ),
            }),
            _ => Err("output is not a [name, node] pair".to_string()),
        })
        .collect::<Result<Vec<_>, String>>()?;
    let regs = list("regs")?
        .iter()
        .map(|r| {
            let next = match field(r, "next")? {
                Json::Null => None,
                n => Some(NodeId::from_index(
                    n.as_u64().ok_or("register next is not a number")? as usize,
                )),
            };
            Ok(Register {
                name: str_field(r, "name")?,
                width: u64_field(r, "width")? as u32,
                init: parse_bv(field(r, "init")?)?,
                next,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let mems = list("mems")?
        .iter()
        .map(|m| {
            let init = field(m, "init")?
                .as_arr()
                .ok_or("memory init is not an array")?
                .iter()
                .map(parse_bv)
                .collect::<Result<Vec<_>, _>>()?;
            let writes = field(m, "writes")?
                .as_arr()
                .ok_or("memory writes is not an array")?
                .iter()
                .map(|w| {
                    let a = w.as_arr().ok_or("write port is not an array")?;
                    Ok(WritePort {
                        en: arr_id(a, 0, "write")?,
                        addr: arr_id(a, 1, "write")?,
                        data: arr_id(a, 2, "write")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Memory {
                name: str_field(m, "name")?,
                depth: usize_field(m, "depth")?,
                width: u64_field(m, "width")? as u32,
                init,
                writes,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let transactions = list("transactions")?
        .iter()
        .map(|t| {
            let dir = str_field(t, "dir")?;
            Ok(Transaction {
                name: str_field(t, "name")?,
                direction: match dir.as_str() {
                    "in" => Direction::Input,
                    "out" => Direction::Output,
                    other => return Err(format!("unknown transaction direction `{other}`")),
                },
                valid: str_field(t, "valid")?,
                payload: field(t, "payload")?
                    .as_arr()
                    .ok_or("transaction payload is not an array")?
                    .iter()
                    .map(|p| {
                        p.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "payload entry is not a string".to_string())
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Module::from_parts(
        str_field(v, "name")?,
        nodes,
        inputs,
        outputs,
        regs,
        mems,
        transactions,
    )
}

// ---------------------------------------------------------------------
// Request / response frames
// ---------------------------------------------------------------------

/// A parsed worker request: which engine to run over which spec.
pub struct WireRequest {
    /// Wire engine selector (see [`wire_engine`]).
    pub engine: String,
    /// Budgets and switches for the solve (telemetry off, jobs 1).
    pub config: CheckConfig,
    /// The reconstructed miter.
    pub module: Module,
    /// `(name, node)` properties, indices into the module's node table.
    pub properties: Vec<(String, NodeId)>,
    /// Constraint nodes.
    pub constraints: Vec<NodeId>,
}

/// Builds the engine named by a wire request: `bmc`, `k-induction`, or
/// `falsifier-bmc` (a [`Falsifier`]-wrapped [`BmcEngine`], the proof
/// race's counterexample hunter).
pub fn wire_engine(name: &str) -> Option<Box<dyn CheckEngine + Send + Sync>> {
    Some(match name {
        "bmc" => Box::new(BmcEngine),
        "k-induction" => Box::new(KInductionEngine),
        "falsifier-bmc" => Box::new(Falsifier(BmcEngine)),
        _ => return None,
    })
}

/// Serializes a check request frame.
pub fn request_json(
    engine: &str,
    module: &Module,
    properties: &[(String, NodeId)],
    constraints: &[NodeId],
    config: &CheckConfig,
) -> Json {
    Json::Obj(vec![
        ("kind".to_string(), Json::Str("request".to_string())),
        ("engine".to_string(), Json::Str(engine.to_string())),
        (
            "config".to_string(),
            Json::Obj(vec![
                ("depth".to_string(), Json::Num(config.max_depth as u64)),
                (
                    "conflicts".to_string(),
                    config.conflict_budget.map_or(Json::Null, Json::Num),
                ),
                (
                    "time_us".to_string(),
                    config
                        .time_budget
                        .map_or(Json::Null, |d| Json::Num(d.as_micros() as u64)),
                ),
                ("slice".to_string(), Json::Bool(config.slice)),
                ("poll".to_string(), Json::Num(config.poll_interval)),
                ("heartbeat_ms".to_string(), Json::Num(config.heartbeat_ms)),
                ("certify".to_string(), Json::Bool(config.certify)),
            ]),
        ),
        ("module".to_string(), module_json(module)),
        (
            "properties".to_string(),
            Json::Arr(
                properties
                    .iter()
                    .map(|(name, p)| Json::Arr(vec![Json::Str(name.clone()), id(*p)]))
                    .collect(),
            ),
        ),
        (
            "constraints".to_string(),
            Json::Arr(constraints.iter().map(|c| id(*c)).collect()),
        ),
    ])
}

/// Parses a request frame back into its parts. The returned config has
/// telemetry off and `jobs = 1`: the worker is exactly one attempt.
pub fn parse_request(v: &Json) -> Result<WireRequest, String> {
    if str_field(v, "kind")? != "request" {
        return Err("not a request frame".to_string());
    }
    let c = field(v, "config")?;
    let opt_num = |key: &str| -> Result<Option<u64>, String> {
        match field(c, key)? {
            Json::Null => Ok(None),
            n => n
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("config {key} is neither null nor a number")),
        }
    };
    let config = CheckConfig::default()
        .depth(usize_field(c, "depth")?)
        .conflicts(opt_num("conflicts")?)
        .slice(matches!(field(c, "slice")?, Json::Bool(true)))
        .poll_interval(u64_field(c, "poll")?)
        .heartbeat_ms(u64_field(c, "heartbeat_ms")?)
        .certify(matches!(field(c, "certify")?, Json::Bool(true)))
        .jobs(1)
        .retries(0);
    let config = match opt_num("time_us")? {
        Some(us) => config.timeout(Duration::from_micros(us)),
        None => config.no_timeout(),
    };
    let module = parse_module(field(v, "module")?)?;
    let properties = field(v, "properties")?
        .as_arr()
        .ok_or("properties is not an array")?
        .iter()
        .map(|p| match p.as_arr() {
            Some([name, node]) => Ok((
                name.as_str()
                    .ok_or("property name is not a string")?
                    .to_string(),
                NodeId::from_index(node.as_u64().ok_or("property node is not a number")? as usize),
            )),
            _ => Err("property is not a [name, node] pair".to_string()),
        })
        .collect::<Result<Vec<_>, String>>()?;
    let constraints = field(v, "constraints")?
        .as_arr()
        .ok_or("constraints is not an array")?
        .iter()
        .map(|c| {
            c.as_u64()
                .map(|n| NodeId::from_index(n as usize))
                .ok_or_else(|| "constraint is not a number".to_string())
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(WireRequest {
        engine: str_field(v, "engine")?,
        config,
        module,
        properties,
        constraints,
    })
}

fn outcome_json(outcome: &EngineOutcome) -> Json {
    let kind = |k: &str| ("kind".to_string(), Json::Str(k.to_string()));
    match outcome {
        EngineOutcome::Cex(cex) => Json::Obj(vec![
            kind("cex"),
            ("property".to_string(), Json::Str(cex.property.clone())),
            ("depth".to_string(), Json::Num(cex.depth as u64)),
            (
                "trace".to_string(),
                trace_json(&cex.trace, cex.trace.num_ports()),
            ),
        ]),
        EngineOutcome::BoundReached { depth } => Json::Obj(vec![
            kind("bound"),
            ("depth".to_string(), Json::Num(*depth as u64)),
        ]),
        EngineOutcome::Proved { induction_depth } => Json::Obj(vec![
            kind("proved"),
            ("k".to_string(), Json::Num(*induction_depth as u64)),
        ]),
        EngineOutcome::Exhausted { depth } => Json::Obj(vec![
            kind("exhausted"),
            ("depth".to_string(), Json::Num(*depth as u64)),
        ]),
        EngineOutcome::Unknown { depth, cause } => Json::Obj(vec![
            kind("unknown"),
            ("depth".to_string(), Json::Num(*depth as u64)),
            (
                "cause".to_string(),
                Json::Str(crate::record::cause_str(*cause).to_string()),
            ),
        ]),
        EngineOutcome::Failed(f) => Json::Obj(vec![
            kind("failed"),
            ("failure".to_string(), failure_json(f)),
        ]),
    }
}

fn parse_engine_outcome(v: &Json) -> Result<EngineOutcome, String> {
    Ok(match str_field(v, "kind")?.as_str() {
        "cex" => EngineOutcome::Cex(autocc_bmc::Cex {
            property: str_field(v, "property")?,
            depth: usize_field(v, "depth")?,
            trace: parse_trace(field(v, "trace")?)?,
        }),
        "bound" => EngineOutcome::BoundReached {
            depth: usize_field(v, "depth")?,
        },
        "proved" => EngineOutcome::Proved {
            induction_depth: usize_field(v, "k")?,
        },
        "exhausted" => EngineOutcome::Exhausted {
            depth: usize_field(v, "depth")?,
        },
        "unknown" => {
            let cause = str_field(v, "cause")?;
            EngineOutcome::Unknown {
                depth: usize_field(v, "depth")?,
                cause: parse_cause(&cause).ok_or_else(|| format!("unknown cause `{cause}`"))?,
            }
        }
        "failed" => EngineOutcome::Failed(parse_failure(field(v, "failure")?)?),
        other => return Err(format!("unknown outcome kind `{other}`")),
    })
}

/// One frame from worker to supervisor.
pub enum WorkerFrame {
    /// Liveness: the worker is solving and (where measurable) currently
    /// holds `rss_kb` KiB.
    Heartbeat {
        /// Resident set size in KiB; `None` where the platform offers no
        /// `/proc`-style RSS reading. A supervisor receiving `None` keeps
        /// the liveness signal but skips RSS enforcement — an
        /// unmeasurable worker is degraded, not dead.
        rss_kb: Option<u64>,
    },
    /// The final answer; the worker exits after sending it.
    Result(EngineRun),
}

/// Serializes a heartbeat frame. `rss_kb: None` (RSS unmeasurable on
/// this platform) crosses the wire as `null`.
pub fn heartbeat_json(rss_kb: Option<u64>) -> Json {
    Json::Obj(vec![
        ("kind".to_string(), Json::Str("heartbeat".to_string())),
        ("rss_kb".to_string(), rss_kb.map_or(Json::Null, Json::Num)),
    ])
}

/// Serializes a result frame. Only the certificate *status and hash*
/// cross the process boundary — the proof transcript itself stays inside
/// the worker, where it was already checked.
pub fn result_json(run: &EngineRun) -> Json {
    Json::Obj(vec![
        ("kind".to_string(), Json::Str("result".to_string())),
        ("outcome".to_string(), outcome_json(&run.outcome)),
        ("counters".to_string(), counters_json(&run.counters)),
        (
            "cert".to_string(),
            match run.certificate {
                CertificateStatus::Uncertified => Json::Null,
                CertificateStatus::Certified { hash } => hex16(hash),
            },
        ),
    ])
}

fn parse_certificate(v: &Json) -> Result<CertificateStatus, String> {
    match v {
        Json::Null => Ok(CertificateStatus::Uncertified),
        other => other
            .as_str()
            .and_then(ContentKey::parse_hex)
            .map(|k| CertificateStatus::Certified { hash: k.0 })
            .ok_or_else(|| "cert is neither null nor a 16-hex-digit hash".to_string()),
    }
}

fn parse_rss(v: &Json) -> Result<Option<u64>, String> {
    match field(v, "rss_kb")? {
        Json::Null => Ok(None),
        n => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| "rss_kb is neither null nor a number".to_string()),
    }
}

/// Parses a worker-to-supervisor frame.
pub fn parse_worker_frame(v: &Json) -> Result<WorkerFrame, String> {
    match str_field(v, "kind")?.as_str() {
        "heartbeat" => Ok(WorkerFrame::Heartbeat {
            rss_kb: parse_rss(v)?,
        }),
        "result" => Ok(WorkerFrame::Result(parse_result_body(v)?)),
        other => Err(format!("unknown worker frame kind `{other}`")),
    }
}

fn parse_result_body(v: &Json) -> Result<EngineRun, String> {
    Ok(EngineRun {
        outcome: parse_engine_outcome(field(v, "outcome")?)?,
        counters: parse_counters(field(v, "counters")?)?,
        certificate: parse_certificate(field(v, "cert")?)?,
    })
}

// ---------------------------------------------------------------------
// Remote fleet frames (hello / job / ack / job-tagged worker frames)
// ---------------------------------------------------------------------

/// Serializes the registration frame a remote worker sends on connect.
pub fn hello_json(worker: &str) -> Json {
    Json::Obj(vec![
        ("kind".to_string(), Json::Str("hello".to_string())),
        ("proto".to_string(), Json::Num(WIRE_PROTO)),
        ("worker".to_string(), Json::Str(worker.to_string())),
    ])
}

/// Parses a hello frame, returning the worker's self-reported name.
/// Rejects protocol-version mismatches outright.
pub fn parse_hello(v: &Json) -> Result<String, String> {
    if str_field(v, "kind")? != "hello" {
        return Err("not a hello frame".to_string());
    }
    let proto = u64_field(v, "proto")?;
    if proto != WIRE_PROTO {
        return Err(format!(
            "worker speaks wire protocol {proto}, supervisor speaks {WIRE_PROTO}"
        ));
    }
    str_field(v, "worker")
}

/// Wraps a request payload as a dispatched job: the request fields plus
/// a job id and the lease deadline (milliseconds) the supervisor grants.
pub fn job_json(job: u64, lease_ms: Option<u64>, request: &Json) -> Json {
    let mut fields = vec![
        ("kind".to_string(), Json::Str("job".to_string())),
        ("job".to_string(), Json::Num(job)),
        (
            "lease_ms".to_string(),
            lease_ms.map_or(Json::Null, Json::Num),
        ),
    ];
    if let Json::Obj(request_fields) = request {
        fields.extend(request_fields.iter().filter(|(k, _)| k != "kind").cloned());
    }
    Json::Obj(fields)
}

/// Parses a job frame into its id, lease, and embedded request.
pub fn parse_job(v: &Json) -> Result<(u64, Option<u64>, WireRequest), String> {
    if str_field(v, "kind")? != "job" {
        return Err("not a job frame".to_string());
    }
    let job = u64_field(v, "job")?;
    let lease_ms = match field(v, "lease_ms")? {
        Json::Null => None,
        n => Some(n.as_u64().ok_or("lease_ms is neither null nor a number")?),
    };
    // Re-tag the remaining fields as a request and reuse its parser.
    let Json::Obj(fields) = v else {
        return Err("job frame is not an object".to_string());
    };
    let mut request_fields: Vec<(String, Json)> = fields
        .iter()
        .filter(|(k, _)| k != "kind" && k != "job" && k != "lease_ms")
        .cloned()
        .collect();
    request_fields.insert(0, ("kind".to_string(), Json::Str("request".to_string())));
    let request = parse_request(&Json::Obj(request_fields))?;
    Ok((job, lease_ms, request))
}

/// Serializes the supervisor's acknowledgement of a result frame.
pub fn ack_json(job: u64) -> Json {
    Json::Obj(vec![
        ("kind".to_string(), Json::Str("ack".to_string())),
        ("job".to_string(), Json::Num(job)),
    ])
}

/// Parses an ack frame, returning the acknowledged job id.
pub fn parse_ack(v: &Json) -> Result<u64, String> {
    if str_field(v, "kind")? != "ack" {
        return Err("not an ack frame".to_string());
    }
    u64_field(v, "job")
}

/// Tags a frame object with the job id it belongs to.
fn tag_job(frame: Json, job: u64) -> Json {
    match frame {
        Json::Obj(mut fields) => {
            fields.push(("job".to_string(), Json::Num(job)));
            Json::Obj(fields)
        }
        other => other,
    }
}

/// A job-tagged heartbeat for the remote transport.
pub fn heartbeat_json_tagged(job: u64, rss_kb: Option<u64>) -> Json {
    tag_job(heartbeat_json(rss_kb), job)
}

/// A job-tagged result for the remote transport.
pub fn result_json_tagged(job: u64, run: &EngineRun) -> Json {
    tag_job(result_json(run), job)
}

/// One frame a fleet supervisor can receive from a remote worker.
pub enum RemoteFrame {
    /// Registration (first frame on a fresh connection).
    Hello {
        /// The worker's self-reported name.
        worker: String,
    },
    /// Liveness for the named job.
    Heartbeat {
        /// The job this heartbeat answers.
        job: u64,
        /// RSS in KiB; `None` where unmeasurable (no enforcement).
        rss_kb: Option<u64>,
    },
    /// The final answer for the named job.
    Result {
        /// The job this result answers.
        job: u64,
        /// The engine's verdict.
        run: EngineRun,
    },
}

/// Parses a worker-to-supervisor frame on the remote transport. Job tags
/// are mandatory there — an untagged heartbeat or result is a protocol
/// violation, because at-most-once accounting needs to know which
/// assignment a frame answers.
pub fn parse_remote_frame(v: &Json) -> Result<RemoteFrame, String> {
    match str_field(v, "kind")?.as_str() {
        "hello" => Ok(RemoteFrame::Hello {
            worker: parse_hello(v)?,
        }),
        "heartbeat" => Ok(RemoteFrame::Heartbeat {
            job: u64_field(v, "job")?,
            rss_kb: parse_rss(v)?,
        }),
        "result" => Ok(RemoteFrame::Result {
            job: u64_field(v, "job")?,
            run: parse_result_body(v)?,
        }),
        other => Err(format!("unknown remote frame kind `{other}`")),
    }
}

// ---------------------------------------------------------------------
// Worker runtime
// ---------------------------------------------------------------------

/// The current process's resident set size in KiB, from
/// `/proc/self/status` (`VmRSS`). Returns `None` on platforms without a
/// readable `/proc` — the worker then heartbeats without an RSS reading
/// (liveness intact, memory enforcement gracefully skipped) instead of
/// failing.
pub fn current_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmRSS:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
}

/// Applies the staged `AUTOCC_WORKER_FAULT` death, if any. Returns the
/// RSS override for `rss:<kb>`; diverges (never returns) for the
/// death-shaped faults. Network-shaped faults (`net_*`) are handled by
/// the remote serve loop, not here.
fn apply_fault(fault: Option<&str>) -> Option<u64> {
    match fault {
        Some("abort") => std::process::abort(),
        Some("sigkill") => {
            let _ = std::process::Command::new("kill")
                .args(["-9", &std::process::id().to_string()])
                .status();
            // SIGKILL is not maskable; give delivery a moment.
            loop {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        Some(spec) if spec.starts_with("abort_if:") => {
            let path = &spec["abort_if:".len()..];
            if std::fs::remove_file(path).is_ok() {
                std::process::abort();
            }
            None
        }
        Some(spec) => spec.strip_prefix("rss:").and_then(|kb| kb.parse().ok()),
        None => None,
    }
}

/// Runs one parsed request to completion while a sibling thread
/// heartbeats on `output` every `heartbeat_ms`. Shared by the one-shot
/// stdio worker and the multi-job remote worker: `job` tags the frames
/// on the remote transport, `result_delay` is the `net_slow` fault's
/// hook, and panics inside the engine come back as `FAILED (panic)`
/// results exactly as the in-process scheduler would classify them.
fn solve_request<W: Write + Send + 'static>(
    req: &WireRequest,
    output: &Arc<Mutex<W>>,
    job: Option<u64>,
    rss_override: Option<u64>,
    result_delay: Option<Duration>,
) -> Result<EngineRun, String> {
    let engine =
        wire_engine(&req.engine).ok_or_else(|| format!("unknown wire engine `{}`", req.engine))?;
    let done = Arc::new(AtomicBool::new(false));
    let heartbeat = {
        let output = Arc::clone(output);
        let done = Arc::clone(&done);
        let period = Duration::from_millis(req.config.heartbeat_ms);
        std::thread::spawn(move || {
            while !done.load(Ordering::Acquire) {
                let rss = rss_override.map_or_else(current_rss_kb, Some);
                let frame = match job {
                    Some(job) => heartbeat_json_tagged(job, rss),
                    None => heartbeat_json(rss),
                };
                let sent = match output.lock() {
                    Ok(mut out) => write_frame(&mut *out, &frame).is_ok(),
                    Err(_) => false,
                };
                if !sent {
                    break; // supervisor is gone; nobody left to reassure
                }
                // Sleep in short slices so the post-solve join returns
                // promptly even under long heartbeat periods — the result
                // frame must not wait out a full period.
                let mut remaining = period;
                while !done.load(Ordering::Acquire) && remaining > Duration::ZERO {
                    let slice = remaining.min(Duration::from_millis(25));
                    std::thread::sleep(slice);
                    remaining = remaining.saturating_sub(slice);
                }
            }
        })
    };

    let spec = CheckSpec {
        module: &req.module,
        properties: req.properties.clone(),
        constraints: req.constraints.clone(),
        // The cluster label is display provenance; the wire protocol
        // doesn't carry it and the worker never reads it.
        group: None,
    };
    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.check(&spec, &req.config, &CancelToken::new())
    }))
    .unwrap_or_else(|payload| {
        let detail = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "non-string panic payload".to_string());
        EngineRun::from(EngineOutcome::Failed(JobFailure {
            engine: req.engine.clone(),
            property: None,
            depth: 0,
            reason: FailureReason::Panic,
            detail,
            attempts: 1,
        }))
    });
    // `net_slow`: hold the answer while the heartbeats keep flowing — a
    // healthy-but-slow worker, the shape that expires a lease.
    if let Some(delay) = result_delay {
        std::thread::sleep(delay);
    }
    done.store(true, Ordering::Release);
    let _ = heartbeat.join();
    Ok(run)
}

/// Serves exactly one check request: read the request frame from
/// `input`, heartbeat on `output` every `heartbeat_ms` while solving,
/// write the result frame, return. Panics inside the engine are
/// contained and reported as a `FAILED (panic)` result frame, exactly as
/// the in-process scheduler would classify them.
pub fn serve_worker<W: Write + Send + 'static>(
    input: &mut dyn BufRead,
    output: W,
) -> Result<(), String> {
    let frame = read_frame(input)
        .map_err(|e| format!("reading request: {e}"))?
        .ok_or("empty request stream")?;
    let req = parse_request(&frame)?;
    let fault = std::env::var("AUTOCC_WORKER_FAULT").ok();
    if fault.as_deref() == Some("stall") {
        // A wedged worker: alive, silent, never answering. The
        // supervisor's heartbeat-stall detection must reap it.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    let output: Arc<Mutex<W>> = Arc::new(Mutex::new(output));
    let rss_override = apply_fault(fault.as_deref());
    let run = solve_request(&req, &output, None, rss_override, None)?;
    let written = match output.lock() {
        Ok(mut out) => {
            write_frame(&mut *out, &result_json(&run)).map_err(|e| format!("writing result: {e}"))
        }
        Err(_) => Err("output poisoned".to_string()),
    };
    written
}

/// The `worker` subcommand entry point: serve one request on
/// stdin/stdout, then exit. Exit code 0 even for FAILED outcomes — those
/// are *results*; a nonzero exit means the worker itself broke (and the
/// supervisor classifies that as a dead worker).
pub fn worker_main() -> ! {
    let stdin = std::io::stdin();
    let mut input = stdin.lock();
    match serve_worker(&mut input, std::io::stdout()) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker: {e}");
            std::process::exit(70);
        }
    }
}

// ---------------------------------------------------------------------
// Remote worker runtime
// ---------------------------------------------------------------------

/// Configuration for a `worker --connect <addr>` process.
#[derive(Debug, Clone)]
pub struct RemoteWorkerOptions {
    /// The fleet supervisor's `host:port`.
    pub addr: String,
    /// First reconnect delay.
    pub backoff_base_ms: u64,
    /// Reconnect delay ceiling.
    pub backoff_max_ms: u64,
    /// Give up (clean exit) after this many consecutive failed connect
    /// attempts; `None` retries forever.
    pub max_connect_attempts: Option<u64>,
}

impl Default for RemoteWorkerOptions {
    fn default() -> RemoteWorkerOptions {
        RemoteWorkerOptions {
            addr: String::new(),
            backoff_base_ms: 200,
            backoff_max_ms: 10_000,
            max_connect_attempts: None,
        }
    }
}

/// How long a remote worker waits for the post-result `ack` before
/// treating the supervisor as gone and reconnecting.
const ACK_DEADLINE: Duration = Duration::from_secs(30);

/// Serves jobs on one established fleet connection until the supervisor
/// closes it (clean shutdown) or something breaks. Returns the number of
/// jobs answered on this connection.
fn serve_remote_connection(stream: TcpStream) -> Result<u64, String> {
    let _ = stream.set_nodelay(true);
    stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("set_write_timeout: {e}"))?;
    let writer = stream
        .try_clone()
        .map_err(|e| format!("cloning stream: {e}"))?;
    let output: Arc<Mutex<TcpStream>> = Arc::new(Mutex::new(writer));
    let worker_id = format!("pid-{}", std::process::id());
    {
        let mut out = output.lock().map_err(|_| "output poisoned".to_string())?;
        write_frame(&mut *out, &hello_json(&worker_id)).map_err(|e| format!("hello: {e}"))?;
    }
    let mut reader = NetFrameReader::new(stream);
    let fault = std::env::var("AUTOCC_WORKER_FAULT").ok();
    let mut served = 0u64;
    loop {
        let frame = match reader.poll_frame(Duration::from_secs(1)) {
            Ok(NetRead::Frame(frame)) => frame,
            Ok(NetRead::Timeout) => continue, // idle between jobs
            Ok(NetRead::Eof) => return Ok(served), // supervisor done with us
            Err(e) => return Err(format!("reading job: {e}")),
        };
        let (job, _lease_ms, req) = parse_job(&frame)?;
        if fault.as_deref() == Some("stall") {
            // Wedged after accepting the job: heartbeats stop, the
            // supervisor's stall clock must reap the lease.
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        let rss_override = apply_fault(fault.as_deref());
        let result_delay = fault
            .as_deref()
            .and_then(|spec| spec.strip_prefix("net_slow:"))
            .and_then(|ms| ms.parse().ok())
            .map(Duration::from_millis);
        let run = solve_request(&req, &output, Some(job), rss_override, result_delay)?;
        let result = result_json_tagged(job, &run);
        match fault.as_deref() {
            Some("net_drop_result") => {
                // Mid-frame connection drop: declare the full length,
                // ship half the payload, sever. The supervisor must
                // classify this as a dead worker and requeue the job.
                let payload = result.to_string_compact();
                let bytes = payload.as_bytes();
                let half = &bytes[..bytes.len() / 2];
                if let Ok(mut out) = output.lock() {
                    let _ = write!(out, "{:08x}", bytes.len());
                    let _ = out.write_all(half);
                    let _ = out.flush();
                    let _ = out.shutdown(std::net::Shutdown::Both);
                }
                return Err("injected mid-frame drop".to_string());
            }
            Some("net_dup_result") => {
                // Duplicate result: the at-most-once ledger must accept
                // exactly one copy and count the other as a duplicate.
                let mut out = output.lock().map_err(|_| "output poisoned".to_string())?;
                write_frame(&mut *out, &result).map_err(|e| format!("writing result: {e}"))?;
                write_frame(&mut *out, &result).map_err(|e| format!("writing result: {e}"))?;
            }
            _ => {
                let mut out = output.lock().map_err(|_| "output poisoned".to_string())?;
                write_frame(&mut *out, &result).map_err(|e| format!("writing result: {e}"))?;
            }
        }
        served += 1;
        // Wait for the ack before taking another job: it confirms the
        // supervisor accounted the result (or tells us, via EOF, that it
        // no longer wants this connection).
        let ack_deadline = Instant::now() + ACK_DEADLINE;
        loop {
            match reader.poll_frame(Duration::from_secs(1)) {
                Ok(NetRead::Frame(frame)) => {
                    let acked = parse_ack(&frame)?;
                    if acked != job {
                        return Err(format!("ack for job {acked}, expected {job}"));
                    }
                    break;
                }
                Ok(NetRead::Timeout) => {
                    if Instant::now() >= ack_deadline {
                        return Err("ack deadline exceeded".to_string());
                    }
                }
                Ok(NetRead::Eof) => return Ok(served),
                Err(e) => return Err(format!("reading ack: {e}")),
            }
        }
    }
}

/// The connect/serve/backoff loop of a remote worker. Returns total jobs
/// served once the supervisor closes the connection cleanly, or an error
/// once `max_connect_attempts` consecutive connection failures pile up.
pub fn run_remote_worker(opts: &RemoteWorkerOptions) -> Result<u64, String> {
    let mut backoff = Backoff::new(
        Duration::from_millis(opts.backoff_base_ms),
        Duration::from_millis(opts.backoff_max_ms),
    );
    loop {
        match TcpStream::connect(&opts.addr) {
            Ok(stream) => match serve_remote_connection(stream) {
                Ok(served) => {
                    // Clean close from the supervisor: fleet shutdown.
                    return Ok(served);
                }
                Err(e) => {
                    eprintln!("worker: connection to {} failed: {e}", opts.addr);
                    if std::env::var("AUTOCC_WORKER_FAULT").is_ok() {
                        // Injected faults are one-shot: a faulted worker
                        // that reconnected would re-fault forever.
                        return Err(e);
                    }
                    backoff.reset(); // the connect itself worked
                    std::thread::sleep(backoff.next_delay());
                }
            },
            Err(e) => {
                if let Some(max) = opts.max_connect_attempts {
                    if u64::from(backoff.attempts()) + 1 >= max {
                        return Err(format!("connect to {}: {e}", opts.addr));
                    }
                }
                std::thread::sleep(backoff.next_delay());
            }
        }
    }
}

/// The `worker --connect <addr>` entry point. Exit code 0 when the
/// supervisor hangs up cleanly; 69 (EX_UNAVAILABLE) when the fleet was
/// never reachable or the connection broke irrecoverably.
pub fn remote_worker_main(opts: &RemoteWorkerOptions) -> ! {
    match run_remote_worker(opts) {
        Ok(_) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker: {e}");
            std::process::exit(69);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_hdl::ModuleBuilder;

    fn leaky_module() -> Module {
        let mut b = ModuleBuilder::new("dev");
        let inc = b.input("inc", 1);
        let ra = b.reg("a", 4, Bv::zero(4));
        let one = b.lit(4, 1);
        let na = b.add(ra, one);
        let next = b.mux(inc, na, ra);
        b.set_next(ra, next);
        let five = b.lit(4, 5);
        let ok = b.ult(ra, five);
        b.output("small", ok);
        b.build()
    }

    #[test]
    fn frames_round_trip_through_a_pipe_shaped_buffer() {
        let payload = heartbeat_json(Some(4096));
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        write_frame(&mut buf, &heartbeat_json(Some(8192))).unwrap();
        let mut cursor = std::io::BufReader::new(&buf[..]);
        let first = read_frame(&mut cursor).unwrap().unwrap();
        let second = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(first.to_string_compact(), payload.to_string_compact());
        assert_eq!(second.get("rss_kb").and_then(Json::as_u64), Some(8192));
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frames_are_errors_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &heartbeat_json(Some(1))).unwrap();
        for cut in 1..buf.len() {
            let mut cursor = std::io::BufReader::new(&buf[..cut]);
            assert!(
                read_frame(&mut cursor).is_err(),
                "cut at {cut} must not parse"
            );
        }
    }

    #[test]
    fn module_round_trips_with_recomputed_widths() {
        let m = leaky_module();
        let wire = module_json(&m);
        let back = parse_module(&wire).expect("round trip");
        assert_eq!(back.name(), m.name());
        assert_eq!(back.num_nodes(), m.num_nodes());
        for i in 0..m.num_nodes() {
            let id = NodeId::from_index(i);
            assert_eq!(back.width(id), m.width(id), "width of n{i}");
        }
        assert_eq!(back.regs().len(), m.regs().len());
        assert_eq!(back.state_bits(), m.state_bits());
    }

    #[test]
    fn corrupt_modules_are_rejected_not_panicked() {
        let m = leaky_module();
        let wire = module_json(&m);
        // Break the output node index far out of range.
        let Json::Obj(mut fields) = wire else {
            panic!("module wire form is an object")
        };
        for (k, field) in &mut fields {
            if k == "outputs" {
                *field = Json::Arr(vec![Json::Arr(vec![
                    Json::Str("small".to_string()),
                    Json::Num(9999),
                ])]);
            }
        }
        assert!(parse_module(&Json::Obj(fields)).is_err());
    }

    #[test]
    fn request_and_result_round_trip() {
        let m = leaky_module();
        let p = m.output_node("small").unwrap();
        let config = CheckConfig::default()
            .depth(9)
            .conflicts(Some(1234))
            .no_timeout()
            .slice(true)
            .heartbeat_ms(77)
            .certify(true);
        let props = vec![("small".to_string(), p)];
        let wire = request_json("bmc", &m, &props, &[], &config);
        let req = parse_request(&wire).expect("parse request");
        assert_eq!(req.engine, "bmc");
        assert_eq!(req.config.max_depth, 9);
        assert_eq!(req.config.conflict_budget, Some(1234));
        assert_eq!(req.config.time_budget, None);
        assert!(req.config.slice);
        assert_eq!(req.config.heartbeat_ms, 77);
        assert!(req.config.certify, "certify knob crosses the wire");
        assert_eq!(req.properties, props);

        let mut run = EngineRun::from(EngineOutcome::BoundReached { depth: 9 });
        run.certificate = CertificateStatus::Certified {
            hash: 0xdead_beef_0bad_f00d,
        };
        match parse_worker_frame(&result_json(&run)).expect("parse result") {
            WorkerFrame::Result(back) => {
                match back.outcome {
                    EngineOutcome::BoundReached { depth: 9 } => {}
                    other => panic!("expected BoundReached, got {other:?}"),
                }
                assert_eq!(back.certificate, run.certificate);
            }
            WorkerFrame::Heartbeat { .. } => panic!("expected a result frame"),
        }
        // An uncertified run crosses as null and comes back uncertified.
        run.certificate = CertificateStatus::Uncertified;
        match parse_worker_frame(&result_json(&run)).expect("parse result") {
            WorkerFrame::Result(back) => {
                assert_eq!(back.certificate, CertificateStatus::Uncertified)
            }
            WorkerFrame::Heartbeat { .. } => panic!("expected a result frame"),
        }
    }

    #[test]
    fn worker_serves_a_request_end_to_end_in_memory() {
        let m = leaky_module();
        let p = m.output_node("small").unwrap();
        let config = CheckConfig::default().depth(8).no_timeout().certify(true);
        let wire = request_json("bmc", &m, &[("small".to_string(), p)], &[], &config);
        let mut request_bytes = Vec::new();
        write_frame(&mut request_bytes, &wire).unwrap();

        let out: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct SharedOut(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedOut {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut input = std::io::BufReader::new(&request_bytes[..]);
        serve_worker(&mut input, SharedOut(Arc::clone(&out))).expect("serve");

        let bytes = out.lock().unwrap().clone();
        let mut cursor = std::io::BufReader::new(&bytes[..]);
        let mut result = None;
        while let Some(frame) = read_frame(&mut cursor).unwrap() {
            match parse_worker_frame(&frame).unwrap() {
                WorkerFrame::Heartbeat { .. } => {}
                WorkerFrame::Result(run) => result = Some(run),
            }
        }
        // The device counts to 5 and violates `small`: a CEX at depth 6,
        // exactly what the in-process engine reports.
        let run = result.expect("worker must emit a result frame");
        assert!(
            run.certificate.is_certified(),
            "certified request yields a certified result over the wire"
        );
        match run.outcome {
            EngineOutcome::Cex(cex) => {
                assert_eq!(cex.property, "small");
                assert!(cex.depth > 0);
            }
            other => panic!("expected a CEX, got {other:?}"),
        }
    }
}
