//! The append-only journal file: creation, durable appends, and
//! torn-tail-tolerant recovery.
//!
//! A journal is a newline-delimited JSON file. Line 1 is the header
//! (schema version, campaign-config fingerprint, campaign name); every
//! later line is one completed check. Appends are committed with
//! `sync_data` before [`Journal::append`] returns, so a record that the
//! caller has seen acknowledged survives a crash — including `kill -9` —
//! at any later point.
//!
//! Recovery ([`load`]) replays the file line by line. A parse failure in
//! the **final** content region is treated as a torn write (the crash hit
//! mid-append): the tail is discarded and the journal resumes from the
//! last intact record. A parse failure anywhere *earlier* is real
//! corruption and is reported as an error rather than silently dropped —
//! recovery never discards an intact record and never trusts a torn one.

use crate::record::{
    entry_line, header_line, parse_entry, parse_header, JournalEntry, JournalHeader,
    JOURNAL_MIN_SCHEMA_VERSION, JOURNAL_SCHEMA_VERSION,
};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Why a journal could not be opened or appended to.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// A record before the final one failed to parse — the file is
    /// damaged beyond the torn-tail rule's tolerance.
    Corrupt {
        /// 1-based line number of the bad record.
        line: usize,
        /// Parser diagnostic.
        detail: String,
    },
    /// The header line is missing, malformed, or from another schema
    /// version.
    Header(String),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Corrupt { line, detail } => {
                write!(f, "journal corrupt at line {line}: {detail}")
            }
            JournalError::Header(detail) => write!(f, "journal header invalid: {detail}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

/// The result of recovering a journal file from disk.
#[derive(Debug)]
pub struct RecoveredJournal {
    /// The parsed header.
    pub header: JournalHeader,
    /// Every intact check record, in append order. A check re-run with
    /// `--retry-failed` appears more than once; later records supersede
    /// earlier ones.
    pub entries: Vec<JournalEntry>,
    /// Bytes discarded from the tail as a torn final record (0 when the
    /// file ended cleanly).
    pub torn_bytes: usize,
}

/// Parses journal bytes, tolerating a torn final record.
///
/// Returns the header, the intact entries, and how many trailing bytes
/// were discarded as torn. Errors if the header is invalid or any
/// non-final record fails to parse.
pub fn recover(bytes: &[u8]) -> Result<RecoveredJournal, JournalError> {
    let text = std::str::from_utf8(bytes).map_or_else(
        // A torn write can cut a multi-byte character; decode the longest
        // valid prefix and let the line logic classify the ragged tail.
        |e| &bytes[..e.valid_up_to()],
        |_| bytes,
    );
    let text = std::str::from_utf8(text).expect("prefix is valid UTF-8");
    let invalid_suffix = bytes.len() - text.len();

    // Split into content regions. Only a region terminated by '\n' was
    // fully committed; an unterminated tail is by definition torn.
    let mut regions: Vec<(usize, &str, bool)> = Vec::new(); // (offset, line, terminated)
    let mut offset = 0;
    while offset < text.len() {
        match text[offset..].find('\n') {
            Some(rel) => {
                regions.push((offset, &text[offset..offset + rel], true));
                offset += rel + 1;
            }
            None => {
                regions.push((offset, &text[offset..], false));
                break;
            }
        }
    }

    let Some(&(_, header_text, header_terminated)) = regions.first() else {
        return Err(JournalError::Header("journal file is empty".to_string()));
    };
    if !header_terminated {
        return Err(JournalError::Header(
            "journal ends inside the header record".to_string(),
        ));
    }
    let header = parse_header(header_text).map_err(JournalError::Header)?;
    if header.schema < JOURNAL_MIN_SCHEMA_VERSION || header.schema > JOURNAL_SCHEMA_VERSION {
        return Err(JournalError::Header(format!(
            "schema version {} (this build reads versions {}..={})",
            header.schema, JOURNAL_MIN_SCHEMA_VERSION, JOURNAL_SCHEMA_VERSION
        )));
    }

    let mut entries = Vec::new();
    let mut torn_bytes = 0;
    for (i, &(start, line, terminated)) in regions.iter().enumerate().skip(1) {
        let last = i + 1 == regions.len();
        match parse_entry(line) {
            Ok(entry) if terminated => entries.push(entry),
            // Parsed but unterminated: the '\n' (and possibly the
            // sync_data) never landed — the record was not committed.
            Ok(_) => torn_bytes = bytes.len() - start,
            Err(detail) => {
                if last {
                    torn_bytes = bytes.len() - start;
                } else {
                    return Err(JournalError::Corrupt {
                        line: i + 1,
                        detail,
                    });
                }
            }
        }
    }
    if torn_bytes == 0 && invalid_suffix > 0 {
        // Invalid UTF-8 dangling after the last complete line.
        torn_bytes = invalid_suffix;
    }
    Ok(RecoveredJournal {
        header,
        entries,
        torn_bytes,
    })
}

/// An open journal file accepting durable appends.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Creates a fresh journal at `path`, truncating any existing file,
    /// and durably writes the header.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(header_line(header).as_bytes())?;
        file.sync_data()?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Re-opens an existing journal for resumption: recovers its records,
    /// truncates any torn tail, and positions for appending.
    ///
    /// The caller checks the returned header's fingerprint against the
    /// current campaign configuration before trusting the entries.
    pub fn resume(path: &Path) -> Result<(Journal, RecoveredJournal), JournalError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let recovered = recover(&bytes)?;
        let file = OpenOptions::new().append(true).open(path)?;
        if recovered.torn_bytes > 0 {
            let keep = (bytes.len() - recovered.torn_bytes) as u64;
            file.set_len(keep)?;
            file.sync_data()?;
        }
        Ok((
            Journal {
                file,
                path: path.to_path_buf(),
            },
            recovered,
        ))
    }

    /// Durably appends one check record. On return the record has been
    /// handed to the device (`sync_data`), so a later crash cannot lose it.
    pub fn append(&mut self, entry: &JournalEntry) -> Result<(), JournalError> {
        self.file.write_all(entry_line(entry).as_bytes())?;
        self.file.sync_data()?;
        Ok(())
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocc_bmc::{CheckMode, ContentKey};
    use autocc_core::{AutoCcOutcome, CheckReport};
    use autocc_telemetry::SolverCounters;
    use std::time::Duration;

    fn header() -> JournalHeader {
        JournalHeader {
            schema: JOURNAL_SCHEMA_VERSION,
            fingerprint: 0xabcd,
            root: "test".to_string(),
        }
    }

    fn entry(id: &str, key: u64, bound: usize) -> JournalEntry {
        JournalEntry {
            key: ContentKey(key),
            id: id.to_string(),
            mode: CheckMode::Check,
            engine: "portfolio".to_string(),
            attempt: 1,
            report: CheckReport {
                outcome: AutoCcOutcome::Clean { bound },
                elapsed: Duration::from_micros(77),
                stats: SolverCounters::default(),
                verdicts: Vec::new(),
                certificate: autocc_bmc::CertificateStatus::Uncertified,
            },
        }
    }

    fn journal_bytes(entries: &[JournalEntry]) -> Vec<u8> {
        let mut bytes = header_line(&header()).into_bytes();
        for e in entries {
            bytes.extend_from_slice(entry_line(e).as_bytes());
        }
        bytes
    }

    #[test]
    fn clean_journal_recovers_fully() {
        let entries = vec![entry("A", 1, 5), entry("B", 2, 6)];
        let rec = recover(&journal_bytes(&entries)).expect("recover");
        assert_eq!(rec.header, header());
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.entries[1].key, ContentKey(2));
        assert_eq!(rec.torn_bytes, 0);
    }

    #[test]
    fn empty_and_headerless_files_are_rejected() {
        assert!(matches!(recover(b""), Err(JournalError::Header(_))));
        assert!(matches!(
            recover(b"{\"kind\":\"check\"}\n"),
            Err(JournalError::Header(_))
        ));
        // Torn header (no newline) is unrecoverable: nothing was committed.
        let full = header_line(&header());
        let torn = &full.as_bytes()[..full.len() - 5];
        assert!(matches!(recover(torn), Err(JournalError::Header(_))));
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        for schema in [JOURNAL_MIN_SCHEMA_VERSION - 1, JOURNAL_SCHEMA_VERSION + 1] {
            let mut h = header();
            h.schema = schema;
            let bytes = header_line(&h).into_bytes();
            let err = recover(&bytes).unwrap_err();
            assert!(err.to_string().contains("schema version"), "{err}");
        }
    }

    #[test]
    fn v2_journals_resume_uncertified_under_v3_readers() {
        // A v2 journal (no `cert` fields anywhere) is a valid v3 journal:
        // every row resumes, all of them uncertified.
        let mut h = header();
        h.schema = 2;
        let mut bytes = header_line(&h).into_bytes();
        bytes.extend_from_slice(entry_line(&entry("A", 1, 5)).as_bytes());
        bytes.extend_from_slice(entry_line(&entry("B", 2, 6)).as_bytes());
        let rec = recover(&bytes).expect("v2 journal resumes");
        assert_eq!(rec.header.schema, 2);
        assert_eq!(rec.entries.len(), 2);
        for e in &rec.entries {
            assert_eq!(
                e.report.certificate,
                autocc_bmc::CertificateStatus::Uncertified
            );
        }
    }

    #[test]
    fn torn_final_record_is_discarded() {
        let entries = vec![entry("A", 1, 5), entry("B", 2, 6)];
        let full = journal_bytes(&entries);
        // Cut 10 bytes into the final record.
        let torn_at = full.len() - 10;
        let rec = recover(&full[..torn_at]).expect("recover");
        assert_eq!(rec.entries.len(), 1);
        assert_eq!(rec.entries[0].key, ContentKey(1));
        assert!(rec.torn_bytes > 0);
    }

    #[test]
    fn complete_but_unterminated_final_record_is_torn() {
        // Everything but the trailing '\n' landed: still not committed.
        let entries = vec![entry("A", 1, 5), entry("B", 2, 6)];
        let full = journal_bytes(&entries);
        let rec = recover(&full[..full.len() - 1]).expect("recover");
        assert_eq!(rec.entries.len(), 1);
        assert!(rec.torn_bytes > 0);
    }

    #[test]
    fn corruption_before_the_tail_is_an_error() {
        let mut bytes = header_line(&header()).into_bytes();
        bytes.extend_from_slice(b"garbage line\n");
        bytes.extend_from_slice(entry_line(&entry("B", 2, 6)).as_bytes());
        match recover(&bytes) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn create_append_resume_round_trip() {
        let dir = std::env::temp_dir().join(format!("autocc-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.jsonl");

        let mut j = Journal::create(&path, &header()).expect("create");
        j.append(&entry("A", 1, 5)).expect("append");
        j.append(&entry("B", 2, 6)).expect("append");
        drop(j);

        // Tear the tail on disk, then resume: the torn record is gone and
        // the file is truncated back to the last intact entry.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let (mut j, rec) = Journal::resume(&path).expect("resume");
        assert_eq!(rec.entries.len(), 1);
        assert!(rec.torn_bytes > 0);
        j.append(&entry("B", 2, 6)).expect("re-append");
        drop(j);

        let (_, rec) = Journal::resume(&path).expect("second resume");
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.torn_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
