//! A minimal JSON value model, parser, and writer.
//!
//! The build environment vendors no serde, so — like the telemetry
//! crate's profile reader — the journal carries its own small JSON layer.
//! It covers exactly what journal records need: objects, arrays, strings,
//! booleans, `null`, and **unsigned 64-bit integers**. All journal numbers
//! are unsigned integers, and `u64` (unlike `f64`) represents solver
//! counters and 64-bit bit-vector values exactly; floats, exponents and
//! negative numbers are rejected as malformed.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form journal records use).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes the value (compact, no whitespace).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_json_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes the value to a fresh string.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error (a record line must be exactly one value).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Writes `s` as a JSON string literal with escapes.
fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!(
                "unexpected byte `{}` at {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if let Some(b'.' | b'e' | b'E' | b'-' | b'+') = self.peek() {
            return Err(format!(
                "non-integer number at byte {start} (journal numbers are unsigned integers)"
            ));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("number out of range at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Journal writers never emit surrogate pairs
                            // (only control characters are \u-escaped).
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| format!("bad code point at {}", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input is a `&str` and
                    // the parser only advances over whole scalars, so the
                    // tail is always valid UTF-8.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) {
        let s = v.to_string_compact();
        assert_eq!(&Json::parse(&s).expect("parse"), v, "via {s}");
    }

    #[test]
    fn values_round_trip() {
        round_trip(&Json::Null);
        round_trip(&Json::Bool(true));
        round_trip(&Json::Num(0));
        round_trip(&Json::Num(u64::MAX));
        round_trip(&Json::Str("plain".to_string()));
        round_trip(&Json::Str("esc \" \\ \n \t \r \u{1} é".to_string()));
        round_trip(&Json::Arr(vec![Json::Num(1), Json::Null]));
        round_trip(&Json::Obj(vec![
            ("a".to_string(), Json::Num(7)),
            ("b".to_string(), Json::Arr(vec![])),
        ]));
    }

    #[test]
    fn u64_precision_is_exact() {
        // 2^53 + 1 is where f64-based JSON layers silently corrupt.
        let v = Json::Num((1 << 53) + 1);
        assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "", "{", "[1,", "\"x", "{\"a\"}", "1.5", "-3", "1e9", "nul", "{} x",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
