//! # autocc-journal
//!
//! Crash-safe campaign journal for the AutoCC reproduction: an
//! append-only record of every completed check, durable across `kill -9`,
//! plus the recovery loader that lets an interrupted campaign resume
//! without redoing finished work.
//!
//! The paper's experiments are hours-long FPV campaigns (Table 1 reports
//! multi-hour JasperGold runs); a crash near the end of such a campaign
//! should not cost the whole run. This crate provides the durability
//! layer:
//!
//! * **Journal** ([`Journal`]): newline-delimited JSON, one record per
//!   completed check, each committed with `sync_data` before the campaign
//!   proceeds. The first line is a header pinning the journal schema
//!   version and the [`config_fingerprint`] of the campaign's
//!   `CheckConfig`, so a resume under different settings is rejected.
//! * **Recovery** ([`recover`]): tolerates a torn or truncated *final*
//!   record — the signature of a crash mid-append — by discarding it and
//!   resuming from the last intact entry. Corruption anywhere earlier is
//!   an error, never silently skipped: recovery never discards an intact
//!   record and never trusts a torn one.
//! * **Content addressing**: records are keyed by
//!   [`autocc_bmc::content_key`] — a stable hash of the COI-sliced AIG,
//!   the property set, and the deterministic check budgets — so a resumed
//!   campaign re-runs exactly the checks whose inputs changed and serves
//!   the rest from the journal. Cached counterexamples must be
//!   replay-certified (`FpvTestbench::certify_cex`) before being trusted;
//!   that policy lives in the campaign runner, not here.
//!
//! [`config_fingerprint`]: autocc_bmc::config_fingerprint

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ipc;
mod journal;
pub mod json;
pub mod record;

pub use journal::{recover, Journal, JournalError, RecoveredJournal};
pub use record::{
    entry_line, header_line, outcome_json, parse_entry, parse_header, parse_outcome, JournalEntry,
    JournalHeader, JOURNAL_SCHEMA_VERSION,
};
