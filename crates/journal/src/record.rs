//! Journal record serialization: one JSON line per record.
//!
//! Two record kinds exist. The **header** (always line 1) pins the journal
//! schema version and the [`config_fingerprint`] of the campaign
//! configuration, so a resume under a different configuration is rejected
//! instead of silently mixing regimes. Every following line is a **check
//! record**: the content key, the full [`CheckReport`] (outcome including
//! any counterexample trace, wall-clock time, solver counters), and
//! engine/attempt provenance.
//!
//! The encoding is versioned (`JOURNAL_SCHEMA_VERSION`) and pinned by a
//! byte-exact test; any format change must bump the version.
//!
//! [`config_fingerprint`]: autocc_bmc::config_fingerprint

use crate::json::Json;
use autocc_bmc::{
    certificate_digest, CertificateStatus, CheckMode, ContentKey, FailureReason, JobFailure, Trace,
    UnknownCause,
};
use autocc_core::{AutoCcOutcome, CheckReport, CovertChannelCex, PropertyVerdict, StateDivergence};
use autocc_hdl::Bv;
use autocc_telemetry::SolverCounters;
use std::time::Duration;

/// Version of the journal line format. Bump on any encoding change; the
/// recovery loader refuses journals from other versions (except the
/// additive v2 → v3 step, which v3 readers still accept).
///
/// v2 added the per-property `verdicts` field to check records. v3 added
/// the optional `cert` field — `[hash, binding]` of a checked certificate,
/// present only on certified records, where `binding` ties the hash to the
/// record's content key so a tampered journal cannot re-attach a
/// certificate to a different check. Uncertified v3 records are
/// byte-identical to v2 records, and v3 readers resume v2 journals
/// (every record uncertified).
pub const JOURNAL_SCHEMA_VERSION: u64 = 3;

/// The oldest schema version v3 readers still resume. v2 records are a
/// strict subset of v3 records (no `cert` field), so nothing is lost:
/// the rows simply carry no certificate.
pub const JOURNAL_MIN_SCHEMA_VERSION: u64 = 2;

/// The journal's first record: schema + campaign-config identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalHeader {
    /// [`JOURNAL_SCHEMA_VERSION`] at write time.
    pub schema: u64,
    /// [`autocc_bmc::config_fingerprint`] of the campaign's `CheckConfig`.
    pub fingerprint: u64,
    /// Campaign name (`table1`, `table2`, `fix_validation`, a DUT name).
    pub root: String,
}

/// One completed (or watchdog-abandoned) check.
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// Content address of the check (COI-sliced AIG + property +
    /// deterministic budgets + mode).
    pub key: ContentKey,
    /// Experiment id (`V5`, `C2`, ...) — display provenance only; cache
    /// lookups go through `key`.
    pub id: String,
    /// Bounded check or proof attempt.
    pub mode: CheckMode,
    /// What produced the record (`portfolio`, `watchdog`, ...).
    pub engine: String,
    /// Campaign attempt ordinal (1 = first run; `--retry-failed` reruns
    /// append a fresh record with the next ordinal).
    pub attempt: u32,
    /// The full result: outcome, wall-clock time, solver counters.
    pub report: CheckReport,
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

pub(crate) fn hex16(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

pub(crate) fn bv_json(v: Bv) -> Json {
    Json::Arr(vec![Json::Num(u64::from(v.width())), Json::Num(v.value())])
}

pub(crate) fn counters_json(c: &SolverCounters) -> Json {
    Json::Arr(vec![
        Json::Num(c.solve_calls),
        Json::Num(c.conflicts),
        Json::Num(c.decisions),
        Json::Num(c.propagations),
        Json::Num(c.restarts),
        Json::Num(c.learnt_clauses),
        Json::Num(c.deleted_clauses),
    ])
}

pub(crate) fn trace_json(trace: &Trace, num_ports: usize) -> Json {
    Json::Arr(
        (0..trace.len())
            .map(|t| Json::Arr((0..num_ports).map(|p| bv_json(trace.input(t, p))).collect()))
            .collect(),
    )
}

fn divergence_json(d: &StateDivergence) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str(d.name.clone())),
        ("first".to_string(), Json::Num(d.first_diff_cycle as u64)),
        ("last".to_string(), Json::Num(d.last_diff_cycle as u64)),
        ("a".to_string(), bv_json(d.value_a)),
        ("b".to_string(), bv_json(d.value_b)),
    ])
}

pub(crate) fn reason_str(r: FailureReason) -> &'static str {
    match r {
        FailureReason::ReplayMismatch => "replay-mismatch",
        FailureReason::InternalInconsistency => "internal-inconsistency",
        FailureReason::Panic => "panic",
        FailureReason::Hang => "hang",
        FailureReason::WorkerDied => "worker-died",
        FailureReason::MemoryLimit => "memory-limit",
        FailureReason::Quarantined => "quarantined",
        FailureReason::Certification => "certification",
    }
}

pub(crate) fn parse_reason(s: &str) -> Option<FailureReason> {
    Some(match s {
        "replay-mismatch" => FailureReason::ReplayMismatch,
        "internal-inconsistency" => FailureReason::InternalInconsistency,
        "panic" => FailureReason::Panic,
        "hang" => FailureReason::Hang,
        "worker-died" => FailureReason::WorkerDied,
        "memory-limit" => FailureReason::MemoryLimit,
        "quarantined" => FailureReason::Quarantined,
        "certification" => FailureReason::Certification,
        _ => return None,
    })
}

pub(crate) fn cause_str(c: UnknownCause) -> &'static str {
    match c {
        UnknownCause::TimeBudget => "time-budget",
        UnknownCause::Cancelled => "cancelled",
    }
}

pub(crate) fn parse_cause(s: &str) -> Option<UnknownCause> {
    Some(match s {
        "time-budget" => UnknownCause::TimeBudget,
        "cancelled" => UnknownCause::Cancelled,
        _ => return None,
    })
}

pub(crate) fn failure_json(f: &JobFailure) -> Json {
    Json::Obj(vec![
        ("engine".to_string(), Json::Str(f.engine.clone())),
        (
            "property".to_string(),
            f.property
                .as_ref()
                .map_or(Json::Null, |p| Json::Str(p.clone())),
        ),
        ("depth".to_string(), Json::Num(f.depth as u64)),
        ("reason".to_string(), Json::Str(reason_str(f.reason).into())),
        ("detail".to_string(), Json::Str(f.detail.clone())),
        ("attempts".to_string(), Json::Num(u64::from(f.attempts))),
    ])
}

/// Encodes an outcome as a tagged JSON object.
pub fn outcome_json(outcome: &AutoCcOutcome) -> Json {
    let kind = |k: &str| ("kind".to_string(), Json::Str(k.to_string()));
    match outcome {
        AutoCcOutcome::Cex(cex) => {
            let num_ports = cex.trace.num_ports();
            Json::Obj(vec![
                kind("cex"),
                ("property".to_string(), Json::Str(cex.property.clone())),
                ("depth".to_string(), Json::Num(cex.depth as u64)),
                (
                    "spy_start".to_string(),
                    Json::Num(cex.spy_start_cycle as u64),
                ),
                ("trace".to_string(), trace_json(&cex.trace, num_ports)),
                (
                    "diverging".to_string(),
                    Json::Arr(cex.diverging_state.iter().map(divergence_json).collect()),
                ),
            ])
        }
        AutoCcOutcome::Clean { bound } => Json::Obj(vec![
            kind("clean"),
            ("bound".to_string(), Json::Num(*bound as u64)),
        ]),
        AutoCcOutcome::Proved { induction_depth } => Json::Obj(vec![
            kind("proved"),
            ("k".to_string(), Json::Num(*induction_depth as u64)),
        ]),
        AutoCcOutcome::Exhausted { bound } => Json::Obj(vec![
            kind("exhausted"),
            ("bound".to_string(), Json::Num(*bound as u64)),
        ]),
        AutoCcOutcome::Unknown { bound, cause } => Json::Obj(vec![
            kind("unknown"),
            ("bound".to_string(), Json::Num(*bound as u64)),
            ("cause".to_string(), Json::Str(cause_str(*cause).into())),
        ]),
        AutoCcOutcome::Failed { failures } => Json::Obj(vec![
            kind("failed"),
            (
                "failures".to_string(),
                Json::Arr(failures.iter().map(failure_json).collect()),
            ),
        ]),
    }
}

/// Encodes a per-property verdict map as `[[name, kind, num], ...]`.
fn verdicts_json(verdicts: &[(String, PropertyVerdict)]) -> Json {
    Json::Arr(
        verdicts
            .iter()
            .map(|(name, v)| {
                Json::Arr(vec![
                    Json::Str(name.clone()),
                    Json::Str(v.kind().to_string()),
                    Json::Num(v.num() as u64),
                ])
            })
            .collect(),
    )
}

fn parse_verdicts(v: &Json) -> Result<Vec<(String, PropertyVerdict)>, String> {
    v.as_arr()
        .ok_or("verdicts is not an array")?
        .iter()
        .map(|item| {
            let triple = item
                .as_arr()
                .ok_or("verdict is not a [name,kind,num] triple")?;
            let [name, kind, num] = triple else {
                return Err("verdict is not a 3-element array".to_string());
            };
            let name = name.as_str().ok_or("verdict name is not a string")?;
            let kind = kind.as_str().ok_or("verdict kind is not a string")?;
            let num = num.as_u64().ok_or("verdict num is not an integer")? as usize;
            let verdict = PropertyVerdict::from_kind(kind, num)
                .ok_or_else(|| format!("unknown verdict kind `{kind}`"))?;
            Ok((name.to_string(), verdict))
        })
        .collect()
}

/// Serializes the header as one newline-terminated JSON line.
pub fn header_line(header: &JournalHeader) -> String {
    let mut out = Json::Obj(vec![
        ("kind".to_string(), Json::Str("header".to_string())),
        ("schema".to_string(), Json::Num(header.schema)),
        ("fingerprint".to_string(), hex16(header.fingerprint)),
        ("root".to_string(), Json::Str(header.root.clone())),
    ])
    .to_string_compact();
    out.push('\n');
    out
}

/// Serializes a check record as one newline-terminated JSON line.
///
/// Certified records append a `cert` field: `[hash, binding]`, where
/// `binding = certificate_digest(key, hash)` ties the certificate to this
/// record's content key. Uncertified records omit the field entirely and
/// stay byte-identical to the v2 encoding.
pub fn entry_line(entry: &JournalEntry) -> String {
    let mut fields = vec![
        ("kind".to_string(), Json::Str("check".to_string())),
        ("key".to_string(), Json::Str(entry.key.to_string())),
        ("id".to_string(), Json::Str(entry.id.clone())),
        (
            "mode".to_string(),
            Json::Str(entry.mode.as_str().to_string()),
        ),
        ("engine".to_string(), Json::Str(entry.engine.clone())),
        ("attempt".to_string(), Json::Num(u64::from(entry.attempt))),
        (
            "elapsed_us".to_string(),
            Json::Num(entry.report.elapsed.as_micros() as u64),
        ),
        ("stats".to_string(), counters_json(&entry.report.stats)),
        ("outcome".to_string(), outcome_json(&entry.report.outcome)),
        (
            "verdicts".to_string(),
            verdicts_json(&entry.report.verdicts),
        ),
    ];
    if let CertificateStatus::Certified { hash } = entry.report.certificate {
        fields.push((
            "cert".to_string(),
            Json::Arr(vec![
                hex16(hash),
                hex16(certificate_digest(entry.key, hash)),
            ]),
        ));
    }
    let mut out = Json::Obj(fields).to_string_compact();
    out.push('\n');
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

pub(crate) fn field<'j>(v: &'j Json, key: &str) -> Result<&'j Json, String> {
    v.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

pub(crate) fn str_field(v: &Json, key: &str) -> Result<String, String> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field `{key}` is not a string"))?
        .to_string())
}

pub(crate) fn u64_field(v: &Json, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` is not an integer"))
}

pub(crate) fn usize_field(v: &Json, key: &str) -> Result<usize, String> {
    Ok(u64_field(v, key)? as usize)
}

fn hex_field(v: &Json, key: &str) -> Result<u64, String> {
    let s = str_field(v, key)?;
    ContentKey::parse_hex(&s)
        .map(|k| k.0)
        .ok_or_else(|| format!("field `{key}` is not a 16-hex-digit value"))
}

pub(crate) fn parse_bv(v: &Json) -> Result<Bv, String> {
    let pair = v.as_arr().ok_or("bit-vector is not a [width,value] pair")?;
    let (w, val) = match pair {
        [w, val] => (
            w.as_u64().ok_or("bad bit-vector width")?,
            val.as_u64().ok_or("bad bit-vector value")?,
        ),
        _ => return Err("bit-vector is not a 2-element array".to_string()),
    };
    if w == 0 || w > 64 {
        return Err(format!("bit-vector width {w} out of range"));
    }
    Ok(Bv::new(w as u32, val))
}

pub(crate) fn parse_counters(v: &Json) -> Result<SolverCounters, String> {
    let items = v.as_arr().ok_or("stats is not an array")?;
    let get = |i: usize| -> Result<u64, String> {
        items
            .get(i)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("stats[{i}] missing or non-integer"))
    };
    if items.len() != 7 {
        return Err(format!("stats has {} fields, expected 7", items.len()));
    }
    Ok(SolverCounters {
        solve_calls: get(0)?,
        conflicts: get(1)?,
        decisions: get(2)?,
        propagations: get(3)?,
        restarts: get(4)?,
        learnt_clauses: get(5)?,
        deleted_clauses: get(6)?,
    })
}

pub(crate) fn parse_trace(v: &Json) -> Result<Trace, String> {
    let cycles = v.as_arr().ok_or("trace is not an array")?;
    let mut inputs = Vec::with_capacity(cycles.len());
    for cycle in cycles {
        let ports = cycle.as_arr().ok_or("trace cycle is not an array")?;
        inputs.push(ports.iter().map(parse_bv).collect::<Result<Vec<_>, _>>()?);
    }
    Ok(Trace::new(inputs))
}

fn parse_divergence(v: &Json) -> Result<StateDivergence, String> {
    Ok(StateDivergence {
        name: str_field(v, "name")?,
        first_diff_cycle: usize_field(v, "first")?,
        last_diff_cycle: usize_field(v, "last")?,
        value_a: parse_bv(field(v, "a")?)?,
        value_b: parse_bv(field(v, "b")?)?,
    })
}

pub(crate) fn parse_failure(v: &Json) -> Result<JobFailure, String> {
    let property = match field(v, "property")? {
        Json::Null => None,
        p => Some(
            p.as_str()
                .ok_or("failure property is neither null nor a string")?
                .to_string(),
        ),
    };
    let reason_s = str_field(v, "reason")?;
    Ok(JobFailure {
        engine: str_field(v, "engine")?,
        property,
        depth: usize_field(v, "depth")?,
        reason: parse_reason(&reason_s).ok_or_else(|| format!("unknown reason `{reason_s}`"))?,
        detail: str_field(v, "detail")?,
        attempts: u64_field(v, "attempts")? as u32,
    })
}

/// Decodes an outcome encoded by [`outcome_json`].
pub fn parse_outcome(v: &Json) -> Result<AutoCcOutcome, String> {
    let kind = str_field(v, "kind")?;
    Ok(match kind.as_str() {
        "cex" => AutoCcOutcome::Cex(Box::new(CovertChannelCex {
            property: str_field(v, "property")?,
            depth: usize_field(v, "depth")?,
            trace: parse_trace(field(v, "trace")?)?,
            spy_start_cycle: usize_field(v, "spy_start")?,
            diverging_state: field(v, "diverging")?
                .as_arr()
                .ok_or("diverging is not an array")?
                .iter()
                .map(parse_divergence)
                .collect::<Result<Vec<_>, _>>()?,
        })),
        "clean" => AutoCcOutcome::Clean {
            bound: usize_field(v, "bound")?,
        },
        "proved" => AutoCcOutcome::Proved {
            induction_depth: usize_field(v, "k")?,
        },
        "exhausted" => AutoCcOutcome::Exhausted {
            bound: usize_field(v, "bound")?,
        },
        "unknown" => {
            let cause_s = str_field(v, "cause")?;
            AutoCcOutcome::Unknown {
                bound: usize_field(v, "bound")?,
                cause: parse_cause(&cause_s).ok_or_else(|| format!("unknown cause `{cause_s}`"))?,
            }
        }
        "failed" => AutoCcOutcome::Failed {
            failures: field(v, "failures")?
                .as_arr()
                .ok_or("failures is not an array")?
                .iter()
                .map(parse_failure)
                .collect::<Result<Vec<_>, _>>()?,
        },
        other => return Err(format!("unknown outcome kind `{other}`")),
    })
}

/// Decodes a header line.
pub fn parse_header(line: &str) -> Result<JournalHeader, String> {
    let v = Json::parse(line)?;
    let kind = str_field(&v, "kind")?;
    if kind != "header" {
        return Err(format!("first record has kind `{kind}`, expected `header`"));
    }
    Ok(JournalHeader {
        schema: u64_field(&v, "schema")?,
        fingerprint: hex_field(&v, "fingerprint")?,
        root: str_field(&v, "root")?,
    })
}

/// Parses the hex payload of one `cert` array element.
fn parse_cert_word(v: &Json, what: &str) -> Result<u64, String> {
    v.as_str()
        .and_then(ContentKey::parse_hex)
        .map(|k| k.0)
        .ok_or_else(|| format!("cert {what} is not a 16-hex-digit value"))
}

/// Decodes a check-record line.
///
/// A present `cert` field is verified against the record's content key:
/// `binding` must equal `certificate_digest(key, hash)`. A mismatch —
/// a flipped hash, an edited binding, or a certificate copied from a
/// different record — does not reject the line; it degrades the decoded
/// report to `FAILED(certification)` so a tampered journal resumes as a
/// visible failure, never as a certified PASS.
pub fn parse_entry(line: &str) -> Result<JournalEntry, String> {
    let v = Json::parse(line)?;
    let kind = str_field(&v, "kind")?;
    if kind != "check" {
        return Err(format!("record has kind `{kind}`, expected `check`"));
    }
    let mode_s = str_field(&v, "mode")?;
    let key = ContentKey(hex_field(&v, "key")?);
    let mut outcome = parse_outcome(field(&v, "outcome")?)?;
    let mut certificate = CertificateStatus::Uncertified;
    if let Some(cert) = v.get("cert") {
        let pair = cert.as_arr().ok_or("cert is not a [hash,binding] pair")?;
        let [hash, binding] = pair else {
            return Err("cert is not a 2-element array".to_string());
        };
        let hash = parse_cert_word(hash, "hash")?;
        let binding = parse_cert_word(binding, "binding")?;
        if binding == certificate_digest(key, hash) {
            certificate = CertificateStatus::Certified { hash };
        } else {
            outcome = AutoCcOutcome::Failed {
                failures: vec![JobFailure {
                    engine: "journal".to_string(),
                    property: None,
                    depth: 0,
                    reason: FailureReason::Certification,
                    detail: format!(
                        "journaled certificate binding does not match key {key} \
                         (hash {hash:016x}): record tampered or miscopied"
                    ),
                    attempts: 1,
                }],
            };
        }
    }
    Ok(JournalEntry {
        key,
        id: str_field(&v, "id")?,
        mode: CheckMode::parse(&mode_s).ok_or_else(|| format!("unknown mode `{mode_s}`"))?,
        engine: str_field(&v, "engine")?,
        attempt: u64_field(&v, "attempt")? as u32,
        report: CheckReport {
            outcome,
            elapsed: Duration::from_micros(u64_field(&v, "elapsed_us")?),
            stats: parse_counters(field(&v, "stats")?)?,
            verdicts: parse_verdicts(field(&v, "verdicts")?)?,
            certificate,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips() {
        let h = JournalHeader {
            schema: JOURNAL_SCHEMA_VERSION,
            fingerprint: 0xdead_beef_0bad_cafe,
            root: "table1".to_string(),
        };
        let line = header_line(&h);
        assert!(line.ends_with('\n'));
        assert_eq!(parse_header(line.trim_end()).unwrap(), h);
    }

    #[test]
    fn non_header_first_record_is_rejected() {
        assert!(parse_header("{\"kind\":\"check\"}").is_err());
        assert!(parse_header("garbage").is_err());
    }

    #[test]
    fn cex_entry_round_trips_through_bytes() {
        let cex = CovertChannelCex {
            property: "as__q_eq".to_string(),
            depth: 2,
            trace: Trace::new(vec![
                vec![Bv::new(1, 1), Bv::new(8, 0xab)],
                vec![Bv::new(1, 0), Bv::new(8, 0)],
            ]),
            spy_start_cycle: 1,
            diverging_state: vec![StateDivergence {
                name: "bank0".to_string(),
                first_diff_cycle: 0,
                last_diff_cycle: 1,
                value_a: Bv::new(8, 0xab),
                value_b: Bv::new(8, 0),
            }],
        };
        let entry = JournalEntry {
            key: ContentKey(42),
            id: "A1".to_string(),
            mode: CheckMode::Check,
            engine: "portfolio".to_string(),
            attempt: 1,
            report: CheckReport {
                outcome: AutoCcOutcome::Cex(Box::new(cex)),
                elapsed: Duration::from_micros(12345),
                stats: SolverCounters {
                    solve_calls: 3,
                    conflicts: 99,
                    ..SolverCounters::default()
                },
                verdicts: vec![
                    ("as__q_eq".to_string(), PropertyVerdict::Cex { depth: 2 }),
                    ("as__r_eq".to_string(), PropertyVerdict::Clean { bound: 1 }),
                ],
                certificate: CertificateStatus::Certified {
                    hash: 0x1122_3344_5566_7788,
                },
            },
        };
        let line = entry_line(&entry);
        let decoded = parse_entry(line.trim_end()).expect("decode");
        // Encoding is canonical, so a decode/encode cycle is byte-stable.
        assert_eq!(entry_line(&decoded), line);
        let cex = decoded.report.outcome.cex().expect("cex");
        assert_eq!(cex.property, "as__q_eq");
        assert_eq!(cex.trace.len(), 2);
        assert_eq!(cex.trace.input(0, 1), Bv::new(8, 0xab));
        assert_eq!(cex.diverging_state[0].name, "bank0");
        assert_eq!(decoded.report.elapsed, Duration::from_micros(12345));
        assert_eq!(decoded.report.stats.conflicts, 99);
        assert_eq!(
            decoded.report.certificate,
            CertificateStatus::Certified {
                hash: 0x1122_3344_5566_7788
            },
            "a valid binding restores the certificate"
        );
    }

    #[test]
    fn every_plain_outcome_round_trips() {
        use autocc_bmc::{FailureReason, JobFailure, UnknownCause};
        let outcomes = vec![
            AutoCcOutcome::Clean { bound: 12 },
            AutoCcOutcome::Proved { induction_depth: 4 },
            AutoCcOutcome::Exhausted { bound: 7 },
            AutoCcOutcome::Unknown {
                bound: 3,
                cause: UnknownCause::TimeBudget,
            },
            AutoCcOutcome::Unknown {
                bound: 0,
                cause: UnknownCause::Cancelled,
            },
            AutoCcOutcome::Failed {
                failures: vec![JobFailure {
                    engine: "watchdog".to_string(),
                    property: None,
                    depth: 0,
                    reason: FailureReason::Hang,
                    detail: "exceeded 4x budget".to_string(),
                    attempts: 2,
                }],
            },
        ];
        for outcome in outcomes {
            let j = outcome_json(&outcome);
            let back = parse_outcome(&j).expect("decode");
            assert_eq!(outcome_json(&back), j);
        }
    }

    #[test]
    fn pinned_bytes_guard_the_schema() {
        // Byte-exact golden lines: if this test fails, the on-disk format
        // changed — bump JOURNAL_SCHEMA_VERSION and update the goldens.
        assert_eq!(JOURNAL_SCHEMA_VERSION, 3);
        let header = JournalHeader {
            schema: JOURNAL_SCHEMA_VERSION,
            fingerprint: 0x0123_4567_89ab_cdef,
            root: "table1".to_string(),
        };
        assert_eq!(
            header_line(&header),
            "{\"kind\":\"header\",\"schema\":3,\"fingerprint\":\"0123456789abcdef\",\
             \"root\":\"table1\"}\n"
        );
        let mut entry = JournalEntry {
            key: ContentKey(0xfeed_face_cafe_f00d),
            id: "V5".to_string(),
            mode: CheckMode::Check,
            engine: "portfolio".to_string(),
            attempt: 1,
            report: CheckReport {
                outcome: AutoCcOutcome::Clean { bound: 20 },
                elapsed: Duration::from_micros(250),
                stats: SolverCounters::default(),
                verdicts: vec![("as__q_eq".to_string(), PropertyVerdict::Clean { bound: 20 })],
                certificate: CertificateStatus::Uncertified,
            },
        };
        // Uncertified records are byte-identical to the v2 encoding.
        let v2_line = "{\"kind\":\"check\",\"key\":\"feedfacecafef00d\",\"id\":\"V5\",\
             \"mode\":\"check\",\"engine\":\"portfolio\",\"attempt\":1,\
             \"elapsed_us\":250,\"stats\":[0,0,0,0,0,0,0],\
             \"outcome\":{\"kind\":\"clean\",\"bound\":20},\
             \"verdicts\":[[\"as__q_eq\",\"clean\",20]]}\n";
        assert_eq!(entry_line(&entry), v2_line);
        let decoded = parse_entry(v2_line.trim_end()).expect("v2 line decodes");
        assert_eq!(decoded.report.certificate, CertificateStatus::Uncertified);
        // Certified records append `cert`: [hash, binding(key, hash)].
        entry.report.certificate = CertificateStatus::Certified {
            hash: 0x1122_3344_5566_7788,
        };
        assert_eq!(
            entry_line(&entry),
            "{\"kind\":\"check\",\"key\":\"feedfacecafef00d\",\"id\":\"V5\",\
             \"mode\":\"check\",\"engine\":\"portfolio\",\"attempt\":1,\
             \"elapsed_us\":250,\"stats\":[0,0,0,0,0,0,0],\
             \"outcome\":{\"kind\":\"clean\",\"bound\":20},\
             \"verdicts\":[[\"as__q_eq\",\"clean\",20]],\
             \"cert\":[\"1122334455667788\",\"f18b8e5871770321\"]}\n"
        );
    }

    #[test]
    fn flipped_cert_hash_degrades_to_failed_certification() {
        let entry = JournalEntry {
            key: ContentKey(0xfeed_face_cafe_f00d),
            id: "V5".to_string(),
            mode: CheckMode::Check,
            engine: "portfolio".to_string(),
            attempt: 1,
            report: CheckReport {
                outcome: AutoCcOutcome::Clean { bound: 20 },
                elapsed: Duration::from_micros(250),
                stats: SolverCounters::default(),
                verdicts: vec![("as__q_eq".to_string(), PropertyVerdict::Clean { bound: 20 })],
                certificate: CertificateStatus::Certified {
                    hash: 0x1122_3344_5566_7788,
                },
            },
        };
        let line = entry_line(&entry);
        // Flip one digit of the journaled certificate hash; the binding
        // no longer matches, so the row must resume as FAILED, not PASS.
        let tampered = line.replace("1122334455667788", "f122334455667788");
        assert_ne!(tampered, line, "tamper target present in the line");
        let decoded = parse_entry(tampered.trim_end()).expect("tampered line still decodes");
        assert_eq!(decoded.report.certificate, CertificateStatus::Uncertified);
        match &decoded.report.outcome {
            AutoCcOutcome::Failed { failures } => {
                assert_eq!(failures[0].reason, FailureReason::Certification);
                assert!(
                    failures[0].detail.contains("binding"),
                    "{}",
                    failures[0].detail
                );
            }
            other => panic!("tampered certificate must degrade the row, got {other:?}"),
        }
        // Re-binding the certificate to a different record's key must
        // fail the same way: the binding covers the content key.
        let mut moved = parse_entry(line.trim_end()).expect("decode");
        moved.key = ContentKey(0x0bad_0bad_0bad_0bad);
        let moved_line = entry_line(&moved);
        let reattached = line
            .trim_end()
            .replace("feedfacecafef00d", "0bad0bad0bad0bad");
        assert_ne!(
            moved_line.trim_end(),
            reattached,
            "binding moved with the key"
        );
        let decoded = parse_entry(&reattached).expect("decode");
        assert!(matches!(
            decoded.report.outcome,
            AutoCcOutcome::Failed { .. }
        ));
    }

    #[test]
    fn corrupt_entries_are_rejected_with_context() {
        for bad in [
            "{\"kind\":\"check\"}",
            "{\"kind\":\"header\",\"schema\":1,\"fingerprint\":\"00\",\"root\":\"x\"}",
            "{\"kind\":\"check\",\"key\":\"zz\",\"id\":\"a\",\"mode\":\"check\",\
             \"engine\":\"e\",\"attempt\":1,\"elapsed_us\":0,\
             \"stats\":[0,0,0,0,0,0,0],\"outcome\":{\"kind\":\"clean\",\"bound\":1}}",
            // Malformed cert payloads are corruption, not tampering.
            "{\"kind\":\"check\",\"key\":\"0000000000000001\",\"id\":\"a\",\
             \"mode\":\"check\",\"engine\":\"e\",\"attempt\":1,\"elapsed_us\":0,\
             \"stats\":[0,0,0,0,0,0,0],\"outcome\":{\"kind\":\"clean\",\"bound\":1},\
             \"verdicts\":[],\"cert\":\"not-a-pair\"}",
            "{\"kind\":\"check\",\"key\":\"0000000000000001\",\"id\":\"a\",\
             \"mode\":\"check\",\"engine\":\"e\",\"attempt\":1,\"elapsed_us\":0,\
             \"stats\":[0,0,0,0,0,0,0],\"outcome\":{\"kind\":\"clean\",\"bound\":1},\
             \"verdicts\":[],\"cert\":[\"xyz\",\"0000000000000000\"]}",
        ] {
            assert!(parse_entry(bad).is_err(), "accepted {bad}");
        }
    }
}
