//! Hardened TCP framing and reconnect-backoff suite.
//!
//! The fleet supervisor trusts `NetFrameReader` for three load-bearing
//! guarantees: a corrupt length prefix cannot trigger a giant
//! allocation, a stalled peer surfaces as countable `Timeout` ticks
//! instead of a hung thread, and a close mid-frame is distinguishable
//! from a clean goodbye at a frame boundary. `Backoff` must double up
//! to its cap, jitter by at most a quarter, and restart after `reset`.

use autocc_journal::ipc::{write_frame, Backoff, NetFrameReader, NetRead, MAX_FRAME_BYTES};
use autocc_journal::json::Json;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// A connected loopback pair: (client writer, server-side reader).
fn pair() -> (TcpStream, NetFrameReader) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let client = TcpStream::connect(addr).expect("connect loopback");
    let (server, _) = listener.accept().expect("accept loopback");
    (client, NetFrameReader::new(server))
}

fn sample_frame() -> Vec<u8> {
    let payload = Json::Obj(vec![("kind".into(), Json::Str("probe".into()))]);
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &payload).expect("encode frame");
    bytes
}

#[test]
fn complete_frame_round_trips() {
    let (mut client, mut reader) = pair();
    client.write_all(&sample_frame()).expect("send frame");
    match reader.poll_frame(Duration::from_secs(5)).expect("poll") {
        NetRead::Frame(json) => {
            assert_eq!(json.get("kind").and_then(Json::as_str), Some("probe"));
        }
        _ => panic!("expected a complete frame"),
    }
}

#[test]
fn two_frames_in_one_write_are_both_delivered() {
    let (mut client, mut reader) = pair();
    let mut bytes = sample_frame();
    bytes.extend_from_slice(&sample_frame());
    client.write_all(&bytes).expect("send both frames");
    for _ in 0..2 {
        match reader.poll_frame(Duration::from_secs(5)).expect("poll") {
            NetRead::Frame(_) => {}
            _ => panic!("expected back-to-back frames"),
        }
    }
}

/// A declared length above the 64 MiB ceiling is rejected as soon as the
/// 8-byte prefix arrives — no payload is ever read or buffered, so the
/// attacker-controlled length never sizes an allocation.
#[test]
fn oversized_declared_length_is_rejected_from_prefix_alone() {
    let (mut client, mut reader) = pair();
    let declared = MAX_FRAME_BYTES + 1;
    client
        .write_all(format!("{declared:08x}").as_bytes())
        .expect("send prefix");
    // Deliberately send no payload: the reject must come from the prefix.
    let err = match reader.poll_frame(Duration::from_secs(5)) {
        Err(e) => e,
        Ok(_) => panic!("oversized frame must be an error"),
    };
    assert!(
        err.to_string().contains("ceiling"),
        "unexpected error: {err}"
    );
}

#[test]
fn non_hex_length_prefix_is_rejected() {
    let (mut client, mut reader) = pair();
    client.write_all(b"zzzzzzzz{}").expect("send junk");
    assert!(reader.poll_frame(Duration::from_secs(5)).is_err());
}

/// A partial frame left in the buffer at a timeout must survive into the
/// next poll: polling is lossless.
#[test]
fn partial_frame_carries_over_between_polls() {
    let (mut client, mut reader) = pair();
    let bytes = sample_frame();
    let (head, tail) = bytes.split_at(bytes.len() / 2);
    client.write_all(head).expect("send first half");
    match reader.poll_frame(Duration::from_millis(50)).expect("poll") {
        NetRead::Timeout => {}
        _ => panic!("half a frame must time out, not parse"),
    }
    client.write_all(tail).expect("send second half");
    match reader.poll_frame(Duration::from_secs(5)).expect("poll") {
        NetRead::Frame(json) => {
            assert_eq!(json.get("kind").and_then(Json::as_str), Some("probe"));
        }
        _ => panic!("carried-over frame must complete"),
    }
}

/// `poll_frame` returns within (roughly) its deadline against a silent
/// peer — the half-open-socket guarantee the lease clock depends on.
#[test]
fn poll_frame_honors_its_deadline_against_a_silent_peer() {
    let (_client, mut reader) = pair();
    let started = Instant::now();
    match reader.poll_frame(Duration::from_millis(100)).expect("poll") {
        NetRead::Timeout => {}
        _ => panic!("silent peer must time out"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "poll blocked far past its deadline"
    );
}

#[test]
fn peer_close_at_frame_boundary_is_clean_eof() {
    let (client, mut reader) = pair();
    drop(client);
    match reader.poll_frame(Duration::from_secs(5)).expect("poll") {
        NetRead::Eof => {}
        _ => panic!("close at a boundary must be Eof"),
    }
}

#[test]
fn peer_close_mid_frame_is_an_error() {
    let (mut client, mut reader) = pair();
    let bytes = sample_frame();
    client.write_all(&bytes[..6]).expect("send partial prefix");
    client.flush().expect("flush");
    drop(client);
    assert!(
        reader.poll_frame(Duration::from_secs(5)).is_err(),
        "close mid-frame must be an error, not Eof"
    );
}

// ---------------------------------------------------------------------
// Backoff schedule
// ---------------------------------------------------------------------

#[test]
fn backoff_doubles_and_caps_at_max() {
    let base = Duration::from_millis(100);
    let max = Duration::from_millis(1000);
    let mut backoff = Backoff::new(base, max);
    let mut previous = Duration::ZERO;
    for attempt in 0..10 {
        let delay = backoff.next_delay();
        // The un-jittered exponential for this attempt, capped at max.
        let exp = base.saturating_mul(1u32 << attempt.min(20)).min(max);
        assert!(
            delay >= exp,
            "attempt {attempt}: delay {delay:?} below exponential floor {exp:?}"
        );
        assert!(
            delay <= exp + exp / 4 && delay <= max,
            "attempt {attempt}: delay {delay:?} above jitter ceiling"
        );
        // Monotone until the cap: the schedule never shrinks mid-climb.
        if exp < max {
            assert!(delay >= previous.min(exp));
        }
        previous = delay;
    }
    assert_eq!(backoff.attempts(), 10);
}

#[test]
fn backoff_reset_restarts_the_schedule() {
    let base = Duration::from_millis(200);
    let mut backoff = Backoff::new(base, Duration::from_secs(10));
    for _ in 0..5 {
        backoff.next_delay();
    }
    assert_eq!(backoff.attempts(), 5);
    backoff.reset();
    assert_eq!(backoff.attempts(), 0);
    let first = backoff.next_delay();
    assert!(
        first <= base + base / 4,
        "post-reset delay {first:?} did not restart from base"
    );
}

#[test]
fn backoff_is_deterministic_within_a_process() {
    let mut a = Backoff::new(Duration::from_millis(50), Duration::from_secs(2));
    let mut b = Backoff::new(Duration::from_millis(50), Duration::from_secs(2));
    for _ in 0..8 {
        assert_eq!(a.next_delay(), b.next_delay());
    }
}

#[test]
fn backoff_survives_extreme_attempt_counts() {
    let mut backoff = Backoff::new(Duration::from_millis(1), Duration::from_secs(30));
    let mut last = Duration::ZERO;
    for _ in 0..100 {
        last = backoff.next_delay();
        assert!(last <= Duration::from_secs(30));
    }
    assert!(
        last >= Duration::from_secs(20),
        "cap never reached: {last:?}"
    );
}
