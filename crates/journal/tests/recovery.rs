//! Torn-write recovery, exhaustively: truncate the final journal record
//! at every byte offset and require that recovery keeps every intact
//! entry, reports exactly the torn tail, and that a resumed journal
//! heals the file so the lost check can be recommitted.

use autocc_bmc::{CertificateStatus, CheckMode, ContentKey};
use autocc_core::{AutoCcOutcome, CheckReport, PropertyVerdict};
use autocc_journal::{
    entry_line, header_line, recover, Journal, JournalEntry, JournalHeader, JOURNAL_SCHEMA_VERSION,
};
use autocc_telemetry::SolverCounters;
use std::time::Duration;

fn header() -> JournalHeader {
    JournalHeader {
        schema: JOURNAL_SCHEMA_VERSION,
        fingerprint: 0x00c0_ffee,
        root: "torn-suite".to_string(),
    }
}

fn entry(n: u64) -> JournalEntry {
    JournalEntry {
        key: ContentKey(0x1000 + n),
        id: format!("E{n}"),
        mode: CheckMode::Check,
        engine: "portfolio".to_string(),
        attempt: 1,
        report: CheckReport {
            outcome: AutoCcOutcome::Clean {
                bound: 8 + n as usize,
            },
            elapsed: Duration::from_micros(100 + n),
            stats: SolverCounters {
                solve_calls: n,
                conflicts: 2 * n,
                ..SolverCounters::default()
            },
            // A verdict map makes the torn-tail sweep also cut through the
            // per-property verdict bytes.
            verdicts: vec![(
                format!("as__q{n}_eq"),
                PropertyVerdict::Clean {
                    bound: 8 + n as usize,
                },
            )],
            // A certificate makes the sweep also cut through the trailing
            // `cert` field (hash and binding bytes).
            certificate: CertificateStatus::Certified {
                hash: 0xc0de_0000_0000_0000 + n,
            },
        },
    }
}

/// Header plus two committed entries, then the final record — returned
/// separately so tests can tear it apart byte by byte.
fn journal_parts() -> (Vec<u8>, String) {
    let mut intact = header_line(&header()).into_bytes();
    intact.extend(entry_line(&entry(1)).into_bytes());
    intact.extend(entry_line(&entry(2)).into_bytes());
    (intact, entry_line(&entry(3)))
}

#[test]
fn truncation_at_every_offset_keeps_exactly_the_intact_entries() {
    let (intact, last) = journal_parts();
    // `kept == last.len()` would be the complete record; everything short
    // of that — including zero bytes — is a torn tail.
    for kept in 0..last.len() {
        let mut bytes = intact.clone();
        bytes.extend(&last.as_bytes()[..kept]);
        let recovered = recover(&bytes)
            .unwrap_or_else(|e| panic!("recovery failed with {kept} torn bytes: {e}"));
        assert_eq!(recovered.entries.len(), 2, "kept={kept}");
        assert_eq!(recovered.torn_bytes, kept, "kept={kept}");
        assert_eq!(entry_line(&recovered.entries[0]), entry_line(&entry(1)));
        assert_eq!(entry_line(&recovered.entries[1]), entry_line(&entry(2)));
        assert_eq!(recovered.header, header());
        // Intact certified records keep their certificate through
        // recovery; the torn record's certificate dies with it.
        for (i, e) in recovered.entries.iter().enumerate() {
            assert!(
                e.report.certificate.is_certified(),
                "entry {i}, kept={kept}"
            );
        }
    }
}

#[test]
fn complete_final_record_is_never_discarded() {
    let (intact, last) = journal_parts();
    let mut bytes = intact;
    bytes.extend(last.as_bytes());
    let recovered = recover(&bytes).unwrap();
    assert_eq!(recovered.entries.len(), 3);
    assert_eq!(recovered.torn_bytes, 0);
    assert_eq!(entry_line(&recovered.entries[2]), last);
}

#[test]
fn resume_truncates_the_torn_tail_and_recommits_the_lost_record() {
    let (intact, last) = journal_parts();
    let path = std::env::temp_dir().join(format!(
        "autocc-journal-recovery-{}.jsonl",
        std::process::id()
    ));
    // A spread of tear points: first byte, mid-record, one byte short of
    // the commit (the newline itself).
    for kept in [1, last.len() / 2, last.len() - 1] {
        let mut bytes = intact.clone();
        bytes.extend(&last.as_bytes()[..kept]);
        std::fs::write(&path, &bytes).unwrap();

        let (mut journal, recovered) = Journal::resume(&path).unwrap();
        assert_eq!(recovered.entries.len(), 2, "kept={kept}");
        assert_eq!(recovered.torn_bytes, kept, "kept={kept}");
        // The file itself healed: the torn bytes are gone from disk.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact.len() as u64);

        // Re-running "exactly the lost check" appends it after the intact
        // prefix, as if the crash had never happened.
        journal.append(&entry(3)).unwrap();
        drop(journal);
        let healed = recover(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(healed.entries.len(), 3);
        assert_eq!(healed.torn_bytes, 0);
        assert_eq!(entry_line(&healed.entries[2]), last);
    }
    let _ = std::fs::remove_file(&path);
}
