//! Property-based round-trips for the journal's hand-rolled record
//! serde: an arbitrary header, entry, or outcome encodes to a line that
//! decodes to a value whose re-encoding is byte-identical. The encoding
//! is canonical, so re-encoded equality is full structural equality.

use autocc_bmc::{
    CertificateStatus, CheckMode, ContentKey, FailureReason, JobFailure, Trace, UnknownCause,
};
use autocc_core::{AutoCcOutcome, CheckReport, CovertChannelCex, PropertyVerdict, StateDivergence};
use autocc_hdl::Bv;
use autocc_journal::{
    entry_line, header_line, outcome_json, parse_entry, parse_header, parse_outcome, JournalEntry,
    JournalHeader,
};
use autocc_telemetry::SolverCounters;
use proptest::collection::vec;
use proptest::prelude::*;
use std::time::Duration;

/// A small alphabet that still exercises every string-escaping path:
/// plain ASCII, the two JSON metacharacters, control characters (written
/// as `\u` escapes), and multi-byte UTF-8.
fn arb_string() -> impl Strategy<Value = String> {
    const ALPHABET: [char; 8] = ['a', 'Z', '_', '"', '\\', '\n', '\u{1}', 'é'];
    vec(0usize..ALPHABET.len(), 0..12).prop_map(|ix| ix.into_iter().map(|i| ALPHABET[i]).collect())
}

fn arb_bv() -> impl Strategy<Value = Bv> {
    (1u32..=64, any::<u64>()).prop_map(|(w, v)| Bv::masked(w, v))
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    (0usize..4, 0usize..4)
        .prop_flat_map(|(cycles, ports)| vec(vec(arb_bv(), ports), cycles))
        .prop_map(Trace::new)
}

fn arb_counters() -> impl Strategy<Value = SolverCounters> {
    vec(any::<u64>(), 7).prop_map(|v| SolverCounters {
        solve_calls: v[0],
        conflicts: v[1],
        decisions: v[2],
        propagations: v[3],
        restarts: v[4],
        learnt_clauses: v[5],
        deleted_clauses: v[6],
    })
}

fn arb_divergence() -> impl Strategy<Value = StateDivergence> {
    (arb_string(), 0usize..256, 0usize..256, arb_bv(), arb_bv()).prop_map(
        |(name, first, last, value_a, value_b)| StateDivergence {
            name,
            first_diff_cycle: first,
            last_diff_cycle: last,
            value_a,
            value_b,
        },
    )
}

fn arb_reason() -> impl Strategy<Value = FailureReason> {
    prop_oneof![
        Just(FailureReason::ReplayMismatch),
        Just(FailureReason::InternalInconsistency),
        Just(FailureReason::Panic),
        Just(FailureReason::Hang),
        Just(FailureReason::Certification),
    ]
}

fn arb_certificate() -> impl Strategy<Value = CertificateStatus> {
    prop_oneof![
        Just(CertificateStatus::Uncertified),
        any::<u64>().prop_map(|hash| CertificateStatus::Certified { hash }),
    ]
}

fn arb_failure() -> impl Strategy<Value = JobFailure> {
    (
        arb_string(),
        (any::<bool>(), arb_string()).prop_map(|(some, s)| some.then_some(s)),
        0usize..1024,
        arb_reason(),
        arb_string(),
        any::<u32>(),
    )
        .prop_map(
            |(engine, property, depth, reason, detail, attempts)| JobFailure {
                engine,
                property,
                depth,
                reason,
                detail,
                attempts,
            },
        )
}

fn arb_outcome() -> BoxedStrategy<AutoCcOutcome> {
    prop_oneof![
        (
            arb_string(),
            0usize..256,
            arb_trace(),
            0usize..256,
            vec(arb_divergence(), 0..3),
        )
            .prop_map(
                |(property, depth, trace, spy_start_cycle, diverging_state)| {
                    AutoCcOutcome::Cex(Box::new(CovertChannelCex {
                        property,
                        depth,
                        trace,
                        spy_start_cycle,
                        diverging_state,
                    }))
                }
            ),
        (0usize..1024).prop_map(|bound| AutoCcOutcome::Clean { bound }),
        (0usize..1024).prop_map(|induction_depth| AutoCcOutcome::Proved { induction_depth }),
        (0usize..1024).prop_map(|bound| AutoCcOutcome::Exhausted { bound }),
        (
            0usize..1024,
            prop_oneof![
                Just(UnknownCause::TimeBudget),
                Just(UnknownCause::Cancelled)
            ],
        )
            .prop_map(|(bound, cause)| AutoCcOutcome::Unknown { bound, cause }),
        vec(arb_failure(), 0..3).prop_map(|failures| AutoCcOutcome::Failed { failures }),
    ]
    .boxed()
}

fn arb_verdict() -> impl Strategy<Value = (String, PropertyVerdict)> {
    (
        arb_string(),
        prop_oneof![
            (0usize..1024).prop_map(|depth| PropertyVerdict::Cex { depth }),
            (0usize..1024).prop_map(|bound| PropertyVerdict::Clean { bound }),
            (0usize..1024).prop_map(|induction_depth| PropertyVerdict::Proved { induction_depth }),
            (0usize..1024).prop_map(|bound| PropertyVerdict::Exhausted { bound }),
            (0usize..1024).prop_map(|bound| PropertyVerdict::Unknown { bound }),
            Just(PropertyVerdict::Failed),
        ],
    )
}

fn arb_entry() -> impl Strategy<Value = JournalEntry> {
    (
        (
            any::<u64>(),
            arb_string(),
            prop_oneof![Just(CheckMode::Check), Just(CheckMode::Prove)],
            arb_string(),
            any::<u32>(),
        ),
        (
            arb_outcome(),
            any::<u64>(),
            arb_counters(),
            vec(arb_verdict(), 0..4),
            arb_certificate(),
        ),
    )
        .prop_map(
            |(
                (key, id, mode, engine, attempt),
                (outcome, elapsed_us, stats, verdicts, certificate),
            )| {
                JournalEntry {
                    key: ContentKey(key),
                    id,
                    mode,
                    engine,
                    attempt,
                    report: CheckReport {
                        outcome,
                        elapsed: Duration::from_micros(elapsed_us),
                        stats,
                        verdicts,
                        certificate,
                    },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn entry_line_round_trips(entry in arb_entry()) {
        let line = entry_line(&entry);
        let decoded = parse_entry(&line)
            .unwrap_or_else(|e| panic!("parse failed: {e}\nline: {line}"));
        prop_assert_eq!(entry_line(&decoded), line);
        // The binding is recomputed from the record's own key, so a
        // faithful copy always restores the certificate exactly.
        prop_assert_eq!(decoded.report.certificate, entry.report.certificate);
    }

    #[test]
    fn header_line_round_trips(
        schema in any::<u64>(),
        fingerprint in any::<u64>(),
        root in arb_string(),
    ) {
        let header = JournalHeader { schema, fingerprint, root };
        let line = header_line(&header);
        let decoded = parse_header(&line)
            .unwrap_or_else(|e| panic!("parse failed: {e}\nline: {line}"));
        prop_assert_eq!(decoded, header);
    }

    #[test]
    fn outcome_json_round_trips(outcome in arb_outcome()) {
        let encoded = outcome_json(&outcome);
        let decoded = parse_outcome(&encoded)
            .unwrap_or_else(|e| panic!("parse failed: {e}"));
        prop_assert_eq!(outcome_json(&decoded), encoded);
    }

    #[test]
    fn content_key_hex_round_trips(raw in any::<u64>()) {
        let key = ContentKey(raw);
        let hex = key.to_string();
        prop_assert_eq!(hex.len(), 16, "display is always zero-padded");
        prop_assert_eq!(ContentKey::parse_hex(&hex), Some(key));
    }
}
