//! Exhaustive reference solver for differential testing.
//!
//! Enumerates all assignments; only usable for formulas with a small number
//! of variables, which is exactly what the property-based tests generate.

use crate::dimacs::Cnf;
use crate::lit::Lit;

/// Maximum variable count accepted by [`solve_brute_force`].
pub const BRUTE_FORCE_VAR_LIMIT: usize = 24;

/// Exhaustively decides satisfiability of `cnf`, returning a model when one
/// exists.
///
/// # Panics
///
/// Panics if `cnf.num_vars` exceeds [`BRUTE_FORCE_VAR_LIMIT`].
pub fn solve_brute_force(cnf: &Cnf) -> Option<Vec<bool>> {
    assert!(
        cnf.num_vars <= BRUTE_FORCE_VAR_LIMIT,
        "brute force limited to {BRUTE_FORCE_VAR_LIMIT} variables"
    );
    let n = cnf.num_vars;
    for bits in 0u64..(1u64 << n) {
        if cnf
            .clauses
            .iter()
            .all(|clause| clause_satisfied(clause, bits))
        {
            return Some((0..n).map(|i| bits >> i & 1 == 1).collect());
        }
    }
    None
}

fn clause_satisfied(clause: &[Lit], bits: u64) -> bool {
    clause
        .iter()
        .any(|l| (bits >> l.var().index() & 1 == 1) == l.is_positive())
}

/// Checks that `model` satisfies every clause of `cnf`.
pub fn check_model(cnf: &Cnf, model: &[bool]) -> bool {
    cnf.clauses.iter().all(|clause| {
        clause
            .iter()
            .any(|l| model[l.var().index()] == l.is_positive())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimacs::Cnf;

    #[test]
    fn brute_force_agrees_on_tiny_instances() {
        let sat = Cnf::parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        let model = solve_brute_force(&sat).unwrap();
        assert!(check_model(&sat, &model));

        let unsat = Cnf::parse_dimacs("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert!(solve_brute_force(&unsat).is_none());
    }
}
